// Package qav answers tree pattern queries using views, implementing
// Lakshmanan, Wang and Zhao, "Answering Tree Pattern Queries Using
// Views" (VLDB 2006).
//
// Given a query Q and a materialized view V — both tree pattern queries
// in the XPath fragment XP{/,//,[]} of child steps, descendant steps
// and predicates — the package decides whether Q is answerable using V
// and computes the maximal contained rewriting (MCR): the most complete
// set of sound answers obtainable from the view alone, the formulation
// appropriate for information integration (as opposed to the equivalent
// rewritings of classical query optimization).
//
// # Without a schema
//
//	q := qav.MustParseQuery("//Trials[//Status]//Trial")
//	v := qav.MustParseQuery("//Trials//Trial")
//	res, err := qav.Rewrite(q, v)
//	// res.Union is a union of tree patterns contained in q — here
//	// //Trials//Trial[//Status] — evaluable directly or through the
//	// materialized view via qav.AnswerUsingView.
//
// The MCR without a schema is in general a union of tree patterns, in
// the worst case exponentially many (§3.2 of the paper); existence is
// decidable in polynomial time (Theorems 1 and 2).
//
// # With a schema
//
//	s := qav.MustParseSchema(auctionDSL)
//	rw := qav.NewSchemaRewriter(s)
//	res, err := rw.Rewrite(q, v)
//
// A schema (without recursion or union types) is distilled into five
// classes of constraints — sibling, functional, cousin, parent-child
// and intermediate-node (§4.1) — that drive a chase of the view; the
// MCR then consists of at most one tree pattern and is computed in
// polynomial time (Theorems 8 and 9). Recursive schemas are handled by
// RewriteRecursive (§5), where the MCR may again be a union.
//
// # Answering through the view
//
// Each contained rewriting carries its compensation query E with
// R ≡ E ∘ V. AnswerUsingView materializes V once and evaluates the
// compensations against the view forest, never touching the parts of
// the document outside the view — the source of the "substantial
// savings" reported by the paper's experiments.
package qav
