package names

import (
	"sort"
	"testing"
)

// TestNoDuplicates pins that identifiers are unique within each
// namespace. Cross-namespace reuse is deliberate where a fault point
// is named after the stage it probes (plan.exec), so only intra-kind
// duplicates are errors.
func TestNoDuplicates(t *testing.T) {
	check := func(kind string, list []string) {
		seen := make(map[string]bool, len(list))
		for _, n := range list {
			if n == "" {
				t.Errorf("%s: empty name", kind)
			}
			if seen[n] {
				t.Errorf("%s: duplicate name %q", kind, n)
			}
			seen[n] = true
		}
	}
	check("stage", Stages())
	check("fault", FaultPoints())
	check("op", Ops())
}

// TestFaultPointsSorted pins the contract that FaultPoints matches the
// order fault.Names reports, so the chaos completeness diff can
// compare slices directly.
func TestFaultPointsSorted(t *testing.T) {
	pts := FaultPoints()
	if !sort.StringsAreSorted(pts) {
		t.Fatalf("FaultPoints not sorted: %v", pts)
	}
}
