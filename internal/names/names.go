// Package names is the central registry of observability and chaos
// identifiers: pipeline stage names, fault injection point names, and
// slow-query-log operation labels. Every call site that needs one of
// these strings — obs stage tables, fault.Register calls, SlowEntry
// records — must reference a constant declared here rather than a raw
// literal; the stagereg analyzer (internal/lint) enforces that
// mechanically. Centralizing the strings makes renames atomic: a stage
// renamed here changes /metrics, the slow-query log, qavbench -json,
// and the chaos suite's completeness check together, instead of
// drifting apart one literal at a time.
//
// The package is a leaf: it imports nothing and is importable from
// anywhere (obs, fault call sites, tests, CI smoke checks).
package names

// Pipeline stage names, in pipeline order. These are the stable metric
// keys used by /metrics, the slow-query log and qavbench -json; the
// order must match the obs.Stage enum, which obs pins with a test.
const (
	StageParse       = "parse"
	StageChase       = "chase"
	StageEnumerate   = "enumerate"
	StageBuildCR     = "buildcr"
	StageContain     = "contain"
	StagePlanCompile = "plan.compile"
	StagePlanIndex   = "plan.index"
	StagePlanExec    = "plan.exec"
	// StageCatalogPrune is the signature-index candidate selection of
	// the multi-view path: root-tag partition probe plus tag-bitmap scan
	// over the view catalog.
	StageCatalogPrune = "catalog.prune"
	// StageBatchChase is the batched multi-view pipeline's shared
	// query-side work: the labeling metadata computed once per query and
	// reused across every surviving candidate view.
	StageBatchChase = "batch.chase"
	// StageCacheReplay is the warm-boot replay of the persistent cache
	// tier: reading the on-disk segment back into the warm tier at
	// engine construction. Credited once per boot.
	StageCacheReplay = "cache.replay"
	// StageRouterPick is the cluster router's replica selection: one
	// credit per routed request, covering affinity-key derivation and
	// the policy's candidate ranking.
	StageRouterPick = "router.pick"
	// StageRouterRetry is the router's backoff-and-retry layer: one
	// credit per retry round slept, with the backoff duration (capped
	// exponential, seeded jitter, Retry-After aware) as the credit.
	StageRouterRetry = "router.retry"
	// StageRouterHedge is the hedged-request layer: one credit per
	// hedge launched, carrying the delay the hedge waited before
	// firing (the tracked tail-latency quantile).
	StageRouterHedge = "router.hedge"
	// StageRouterBreaker counts circuit-breaker state transitions; the
	// credit duration is the time spent in the state being left, so
	// the histogram shows how long replicas stayed open.
	StageRouterBreaker = "router.breaker"
)

// Fault injection point names. Each constant is passed to
// fault.Register by exactly one package; the chaos suite diffs
// FaultPoints against fault.Names so a point added in one place but
// not the other fails tests instead of silently going unexercised.
const (
	FaultServerHandler    = "server.handler"
	FaultCacheFlight      = "cache.singleflight"
	FaultCachePersist     = "cache.persist"
	FaultCatalogLookup    = "catalog.lookup"
	FaultChaseStep        = "chase.step"
	FaultEngineCompute    = "engine.compute"
	FaultPlanExec         = "plan.exec"
	FaultRewriteEnumerate = "rewrite.enumerate"
	FaultRewriteBuildCR   = "rewrite.buildcr"
	FaultRewriteContain   = "rewrite.contain"
	FaultRewriteWorker    = "rewrite.worker"
	// Router-side points (internal/router): replica selection, the
	// active health prober, and the hedged-attempt launcher.
	FaultRouterPick  = "router.pick"
	FaultRouterProbe = "router.probe"
	FaultRouterHedge = "router.hedge"
)

// Slow-query-log operation labels (obs.SlowEntry.Op).
const (
	OpRewrite = "rewrite"
	OpAnswer  = "answer"
	OpPanic   = "panic"
)

// Stages returns the declared stage names in pipeline order.
func Stages() []string {
	return []string{
		StageParse, StageChase, StageEnumerate, StageBuildCR,
		StageContain, StagePlanCompile, StagePlanIndex, StagePlanExec,
		StageCatalogPrune, StageBatchChase, StageCacheReplay,
		StageRouterPick, StageRouterRetry, StageRouterHedge,
		StageRouterBreaker,
	}
}

// FaultPoints returns the declared fault point names in sorted order
// (matching the order fault.Names reports).
func FaultPoints() []string {
	return []string{
		FaultCachePersist, FaultCacheFlight, FaultCatalogLookup,
		FaultChaseStep, FaultEngineCompute, FaultPlanExec,
		FaultRewriteBuildCR, FaultRewriteContain, FaultRewriteEnumerate,
		FaultRewriteWorker, FaultRouterHedge, FaultRouterPick,
		FaultRouterProbe, FaultServerHandler,
	}
}

// Ops returns the declared slow-log operation labels.
func Ops() []string {
	return []string{OpRewrite, OpAnswer, OpPanic}
}
