package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/leaktest"
	"qav/internal/limits"
	"qav/internal/plan"
	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/tpq"
	"qav/internal/viewstore"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

const auctionSchema = `root Auctions
Auctions -> Auction*
Auction -> open_auction* closed_auction?
open_auction -> item bids?
closed_auction -> item person? buyer?
bids -> person+
buyer -> person
person -> name
item -> name
`

func TestRewriteSchemaless(t *testing.T) {
	e := New(Config{})
	res, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Trials[//Status]//Trial", View: "//Trials//Trial",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Union.Empty() {
		t.Fatal("expected answerable")
	}
	// Must agree with the rewrite package called directly.
	direct, err := rewrite.MCR(tpq.MustParse("//Trials[//Status]//Trial"), tpq.MustParse("//Trials//Trial"), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Union.SameAs(direct.Union) {
		t.Errorf("engine union %s != direct %s", res.Union, direct.Union)
	}
}

func TestRewriteWithSchemaSelectsAlgorithm(t *testing.T) {
	e := New(Config{})
	res, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Auction[//item]//name", View: "//Auction//person", Schema: auctionSchema,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Union.String(); got != "//Auction//person//name" {
		t.Errorf("union = %s", got)
	}
	// A recursive schema must silently select the §5 algorithm.
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//a//b", View: "//a//b", Schema: "root a\na -> a? b\nb -> c?\n",
	}); err != nil {
		t.Fatalf("recursive schema: %v", err)
	}
}

func TestInvalidInputs(t *testing.T) {
	e := New(Config{})
	var inv *InvalidRequestError
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "///", View: "//a"}); !errors.As(err, &inv) || inv.Field != "query" {
		t.Errorf("bad query: %v", err)
	}
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "//a", View: "//b", Schema: "not a schema"}); !errors.As(err, &inv) || inv.Field != "schema" {
		t.Errorf("bad schema: %v", err)
	}
	if _, err := e.AnswerExpr(context.Background(), AnswerRequest{Query: "//a", View: "//a", Document: "<unclosed"}); !errors.As(err, &inv) || inv.Field != "document" {
		t.Errorf("bad document: %v", err)
	}
}

func TestAnswerExpr(t *testing.T) {
	e := New(Config{})
	ans, err := e.AnswerExpr(context.Background(), AnswerRequest{
		Query:    "//Trials[//Status]//Trial/Patient",
		View:     "//Trials//Trial",
		Document: "<PharmaLab><Trials><Trial><Patient>John</Patient><Status/></Trial><Trial><Patient>Jen</Patient></Trial></Trials></PharmaLab>",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Answers) != 1 || ans.Answers[0].Text != "John" {
		t.Errorf("answers = %v", ans.Answers)
	}
	if len(ans.ViewNodes) != 2 || len(ans.Direct) != 2 {
		t.Errorf("viewNodes = %d, direct = %d", len(ans.ViewNodes), len(ans.Direct))
	}
	// Unanswerable pair.
	if _, err := e.AnswerExpr(context.Background(), AnswerRequest{Query: "/b", View: "/a//c", Document: "<a/>"}); !errors.Is(err, ErrNotAnswerable) {
		t.Errorf("err = %v, want ErrNotAnswerable", err)
	}
}

func TestAnswerStored(t *testing.T) {
	e := New(Config{})
	d, err := xmltree.ParseString("<Trials><Trial><Patient>Ann</Patient><Status/></Trial></Trials>")
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterView("src1", viewstore.Materialize(tpq.MustParse("//Trials//Trial"), d))
	_, answers, err := e.AnswerStored(context.Background(), tpq.MustParse("//Trials//Trial/Patient"), "src1")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Text != "Ann" {
		t.Errorf("answers = %v", answers)
	}
	if _, _, err := e.AnswerStored(context.Background(), tpq.MustParse("//x"), "nope"); !errors.Is(err, ErrUnknownView) {
		t.Errorf("err = %v, want ErrUnknownView", err)
	}
}

func TestContain(t *testing.T) {
	e := New(Config{})
	pInQ, qInP, err := e.ContainExpr(context.Background(), ContainRequest{P: "//a/b", Q: "//a//b"})
	if err != nil || !pInQ || qInP {
		t.Errorf("contain = %v %v %v", pInQ, qInP, err)
	}
	// Schema-relative: the Figure 2 pair holds only under the schema.
	pInQ, _, err = e.ContainExpr(context.Background(), ContainRequest{
		P: "//Auction//person//name", Q: "//Auction[//item]//name", Schema: auctionSchema,
	})
	if err != nil || !pInQ {
		t.Errorf("S-containment = %v %v", pInQ, err)
	}
}

func TestSchemaContextShared(t *testing.T) {
	e := New(Config{})
	g1 := schema.MustParse(auctionSchema)
	g2 := schema.MustParse(auctionSchema)
	if e.SchemaContext(g1) != e.SchemaContext(g2) {
		t.Error("structurally equal schemas must share one inferred context")
	}
	if n := e.Stats().SchemaContexts; n != 1 {
		t.Errorf("SchemaContexts = %d", n)
	}
}

// A context cancelled before the call returns its error immediately.
func TestRewriteCancelledUpfront(t *testing.T) {
	e := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Rewrite(ctx, Request{Query: workload.Fig8Query(4), View: workload.Fig8View()}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// Deadline mid-enumeration: the Figure 8 family has 2^n useful
// embeddings and a quadratic redundancy-elimination phase on top, so an
// uncancelled run at n=12 takes many seconds. A deadline must stop it
// promptly — and, under graceful degradation, hand back the sound union
// found so far as a Partial result rather than an error.
func TestRewriteDeadlineStopsEnumeration(t *testing.T) {
	defer leaktest.Check(t)()
	e := New(Config{})
	q, v := workload.Fig8Query(12), workload.Fig8View()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := e.Rewrite(ctx, Request{Query: q, View: v, MaxEmbeddings: 1 << 22})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("err = %v, want a partial result", err)
	}
	if !res.Partial || res.PartialReason != rewrite.PartialDeadline {
		t.Fatalf("result = {Partial: %v, Reason: %q}, want a deadline partial", res.Partial, res.PartialReason)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; the deadline was not honored in the hot loop", elapsed)
	}
	// Every disjunct of a partial union must still be contained in q.
	for _, p := range res.Union.Patterns {
		if !tpq.Contained(p, q) {
			t.Errorf("partial disjunct %s not contained in the query", p)
		}
	}
	// The partial result must not have been cached: the next caller with
	// a healthy deadline deserves a shot at the full answer.
	if s := e.Stats(); s.CacheEntries != 0 {
		t.Errorf("partial computation was cached (%d entries)", s.CacheEntries)
	}
}

// A cancelled client (as opposed to an expired deadline) still gets an
// error: nobody is left to read a partial answer.
func TestRewriteCancelIsNotPartial(t *testing.T) {
	defer leaktest.Check(t)()
	e := New(Config{})
	q, v := workload.Fig8Query(12), workload.Fig8View()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := e.Rewrite(ctx, Request{Query: q, View: v, MaxEmbeddings: 1 << 22})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The engine timeout config applies when the caller's context has none;
// its expiry degrades to a partial result like any other deadline.
func TestConfigTimeout(t *testing.T) {
	e := New(Config{Timeout: 20 * time.Millisecond})
	res, err := e.Rewrite(context.Background(), Request{Query: workload.Fig8Query(12), View: workload.Fig8View(), MaxEmbeddings: 1 << 22})
	if err != nil {
		t.Fatalf("err = %v, want a partial result", err)
	}
	if !res.Partial || res.PartialReason != rewrite.PartialDeadline {
		t.Fatalf("result = {Partial: %v, Reason: %q}, want a deadline partial", res.Partial, res.PartialReason)
	}
}

// Singleflight: N concurrent identical requests compute once.
// A computed rewrite credits its pipeline stages into the metrics
// registry; a cache hit credits nothing (the hit path must stay a map
// probe).
func TestMetricsSnapshotStages(t *testing.T) {
	e := New(Config{})
	req := RewriteRequest{Query: "//Trials[//Status]//Trial", View: "//Trials//Trial"}
	if _, err := e.RewriteExpr(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	snap := e.MetricsSnapshot()
	for _, st := range []string{"parse", "enumerate", "buildcr", "contain"} {
		if snap.Stages[st].Count == 0 || snap.Stages[st].TotalNs == 0 {
			t.Errorf("stage %s not recorded: %+v", st, snap.Stages[st])
		}
	}
	if snap.Cache == nil || snap.Cache.Misses != 1 || snap.Cache.Hits != 0 {
		t.Fatalf("cache = %+v", snap.Cache)
	}

	// The same request again is a hit: parse runs (expression decoding
	// is outside the cache), the pipeline stages must not.
	enumBefore := snap.Stages["enumerate"].Count
	if _, err := e.RewriteExpr(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	snap = e.MetricsSnapshot()
	if snap.Cache.Hits != 1 {
		t.Errorf("cache = %+v, want one hit", snap.Cache)
	}
	if got := snap.Stages["enumerate"].Count; got != enumBefore {
		t.Errorf("enumerate count grew on a cache hit: %d -> %d", enumBefore, got)
	}
}

// The schema pipeline credits the chase stage too.
func TestMetricsSnapshotSchemaStages(t *testing.T) {
	e := New(Config{})
	_, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Auction[//item]//name", View: "//Auction//person", Schema: auctionSchema,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.MetricsSnapshot()
	if snap.Stages["chase"].Count == 0 {
		t.Errorf("chase stage not recorded: %+v", snap.Stages)
	}
}

func TestSlowQueryLog(t *testing.T) {
	e := New(Config{SlowQueryThreshold: time.Nanosecond})
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Trials[//Status]//Trial", View: "//Trials//Trial",
	}); err != nil {
		t.Fatal(err)
	}
	snap := e.SlowLog().Snapshot()
	if snap.Total != 1 || len(snap.Entries) != 1 {
		t.Fatalf("slowlog = %+v", snap)
	}
	entry := snap.Entries[0]
	if entry.Op != "rewrite" || entry.Query == "" || entry.DurationNs <= 0 {
		t.Errorf("entry = %+v", entry)
	}
	if len(entry.StageNs) == 0 {
		t.Error("entry has no stage breakdown")
	}
	// A repeat of the same request is a cache hit and must not be
	// logged again, no matter how low the threshold.
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Trials[//Status]//Trial", View: "//Trials//Trial",
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.SlowLog().Snapshot().Total; got != 1 {
		t.Errorf("total = %d after cache hit, want 1", got)
	}
}

func TestSlowQueryLogDisabledByDefault(t *testing.T) {
	e := New(Config{})
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Trials[//Status]//Trial", View: "//Trials//Trial",
	}); err != nil {
		t.Fatal(err)
	}
	if snap := e.SlowLog().Snapshot(); snap.Total != 0 {
		t.Errorf("slowlog recorded %d entries with a zero threshold", snap.Total)
	}
}

func TestConcurrentDuplicatesComputeOnce(t *testing.T) {
	e := New(Config{})
	req := Request{Query: tpq.MustParse("//Trials[//Status]//Trial"), View: tpq.MustParse("//Trials//Trial")}
	const workers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := e.Rewrite(context.Background(), req); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if s := e.Stats(); s.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight dedup)", s.CacheMisses)
	}
}

// Hammer one shared Engine from many goroutines across every entry
// point; run with -race.
func TestEngineConcurrentMixedUse(t *testing.T) {
	e := New(Config{CacheSize: 8})
	queries := []string{"//a[b]", "//a[c]", "//a//b", "//a/b[c]", "//x/y"}
	doc := "<r><a><b>1</b><c/></a><x><y/></x></r>"
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := queries[(w+i)%len(queries)]
				switch i % 4 {
				case 0:
					if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: q, View: "//a"}); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: q, View: "//a", Schema: auctionSchema}); err != nil {
						t.Error(err)
					}
				case 2:
					if _, _, err := e.ContainExpr(context.Background(), ContainRequest{P: q, Q: "//a"}); err != nil {
						t.Error(err)
					}
				case 3:
					ans, err := e.AnswerExpr(context.Background(), AnswerRequest{Query: "//a/b", View: "//a", Document: doc})
					if err != nil {
						t.Error(err)
					} else if len(ans.Answers) != 1 {
						t.Errorf("answers = %d", len(ans.Answers))
					}
				}
				e.Stats()
			}
		}(w)
	}
	// Concurrent view registration and stored answering.
	d, _ := xmltree.ParseString(doc)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("v%d", w)
			e.RegisterView(name, viewstore.Materialize(tpq.MustParse("//a"), d))
			for i := 0; i < 10; i++ {
				if _, _, err := e.AnswerStored(context.Background(), tpq.MustParse("//a/b"), name); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Admission control: with one compute slot and no queue, a second
// concurrent computation sheds with *limits.SaturatedError while the
// admitted one completes normally. Cache hits bypass the gate entirely.
func TestGateShedsUnderSaturation(t *testing.T) {
	e := New(Config{Gate: limits.New(limits.Config{MaxInFlight: 1, MaxQueue: 0})})
	defer fault.Disable()
	// Hold the only slot by delaying the admitted computation.
	if err := fault.Enable(&fault.Plan{Seed: 11, Injections: []fault.Injection{
		{Point: "engine.compute", Action: fault.ActDelay, Delay: 300 * time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() {
		_, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "//a[b]//c", View: "//a//c"})
		first <- err
	}()
	// Wait for the first request to occupy the slot.
	deadline := time.Now().Add(2 * time.Second)
	for e.cfg.Gate.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the gate")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "//x[y]//z", View: "//x//z"})
	var sat *limits.SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("second request err = %v, want *SaturatedError", err)
	}
	if sat.RetryAfterSeconds() < 1 {
		t.Errorf("RetryAfterSeconds = %d", sat.RetryAfterSeconds())
	}
	if err := <-first; err != nil {
		t.Errorf("admitted request failed: %v", err)
	}
	snap := e.MetricsSnapshot()
	if snap.Gate == nil || snap.Gate.Shed != 1 || snap.Gate.Admitted != 1 {
		t.Errorf("gate snapshot = %+v, want shed=1 admitted=1", snap.Gate)
	}
	// Shed outcomes are transient: the key must not be negative-cached,
	// so the same request succeeds once load drains.
	fault.Disable()
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "//x[y]//z", View: "//x//z"}); err != nil {
		t.Errorf("retry after shed failed: %v", err)
	}
}

// A panic inside the rewriting pipeline becomes a typed ErrInternal and
// lands in the slow-query log with the panic stack, regardless of the
// latency threshold; the poisoned flight is never cached.
func TestPipelinePanicIsolatedAndLogged(t *testing.T) {
	e := New(Config{})
	defer fault.Disable()
	if err := fault.Enable(&fault.Plan{Seed: 12, Injections: []fault.Injection{
		{Point: "engine.compute", Action: fault.ActPanic},
	}}); err != nil {
		t.Fatal(err)
	}
	_, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "//a[b]//c", View: "//a//c"})
	if !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	slow := e.SlowLog().Snapshot()
	if len(slow.Entries) != 1 {
		t.Fatalf("slow log has %d entries, want the panic record", len(slow.Entries))
	}
	if slow.Entries[0].Stack == "" {
		t.Error("panic entry has no stack")
	}
	if s := e.Stats(); s.CacheEntries != 0 {
		t.Errorf("panicked computation was cached (%d entries)", s.CacheEntries)
	}
	fault.Disable()
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "//a[b]//c", View: "//a//c"}); err != nil {
		t.Errorf("retry after recovered panic failed: %v", err)
	}
}

func TestAnswerStoredView(t *testing.T) {
	e := New(Config{})
	d, err := xmltree.ParseString("<Trials><Trial><Patient>Ann</Patient><Status/></Trial><Trial><Patient>Bob</Patient></Trial></Trials>")
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterView("src1", viewstore.Materialize(tpq.MustParse("//Trials//Trial"), d))
	q := tpq.MustParse("//Trials//Trial/Patient")
	for _, be := range []plan.Backend{plan.Auto, plan.StructJoin, plan.TreeDP, plan.Stream} {
		sa, err := e.AnswerStoredView(context.Background(), q, "src1", be)
		if err != nil {
			t.Fatalf("backend %v: %v", be, err)
		}
		if len(sa.Answers) != 2 || sa.Answers[0].Text != "Ann" || sa.Answers[1].Text != "Bob" {
			t.Fatalf("backend %v: answers = %v", be, sa.Answers)
		}
		if sa.Trees != 2 || sa.Plan == nil || sa.Exec == nil {
			t.Fatalf("backend %v: trees=%d plan=%v exec=%v", be, sa.Trees, sa.Plan, sa.Exec)
		}
		if be != plan.Auto {
			for _, got := range sa.Exec.Backends {
				if got != be {
					t.Fatalf("forced %v but program ran %v", be, got)
				}
			}
		}
	}
	// The plan is a pure function of the CR union: the repeats above
	// must have hit the plan cache, not recompiled.
	st := e.Stats()
	if st.PlanCacheMiss != 1 || st.PlanCacheHits < 3 {
		t.Errorf("plan cache stats = %+v, want 1 miss and >=3 hits", st)
	}
}

func TestAnswerStoredExprBackendValidation(t *testing.T) {
	e := New(Config{})
	d, _ := xmltree.ParseString("<a><b/></a>")
	e.RegisterView("v", viewstore.Materialize(tpq.MustParse("//a"), d))
	if _, err := e.AnswerStoredExpr(context.Background(), "//a/b", "v", "bogus"); err == nil {
		t.Fatal("bogus backend accepted")
	} else {
		var inv *InvalidRequestError
		if !errors.As(err, &inv) || inv.Field != "backend" {
			t.Fatalf("err = %v, want InvalidRequestError{backend}", err)
		}
	}
	if _, err := e.AnswerExpr(context.Background(), AnswerRequest{
		Query: "//a/b", View: "//a", Document: "<a><b/></a>", Backend: "bogus",
	}); err == nil {
		t.Fatal("bogus backend accepted by AnswerExpr")
	}
}

func TestRegisterViewExprAndNames(t *testing.T) {
	e := New(Config{})
	m, err := e.RegisterViewExpr("beta", "//Trials//Trial", "<Trials><Trial><Patient>Ann</Patient></Trial></Trials>")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Forest) != 1 {
		t.Fatalf("forest = %d trees", len(m.Forest))
	}
	if _, err := e.RegisterViewExpr("alpha", "//Trials", "<Trials/>"); err != nil {
		t.Fatal(err)
	}
	names := e.ViewNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("ViewNames = %v", names)
	}
	for _, tc := range []struct{ name, view, doc, field string }{
		{"", "//a", "<a/>", "name"},
		{"x", "((", "<a/>", "view"},
		{"x", "//a", "<not-xml", "document"},
	} {
		_, err := e.RegisterViewExpr(tc.name, tc.view, tc.doc)
		var inv *InvalidRequestError
		if !errors.As(err, &inv) || inv.Field != tc.field {
			t.Errorf("RegisterViewExpr(%q,%q,...): err = %v, want field %q", tc.name, tc.view, err, tc.field)
		}
	}
}

func TestAnswerRecordsPlanStages(t *testing.T) {
	e := New(Config{})
	_, err := e.AnswerExpr(context.Background(), AnswerRequest{
		Query:    "//Trials[//Status]//Trial/Patient",
		View:     "//Trials//Trial",
		Document: "<PharmaLab><Trials><Trial><Patient>John</Patient><Status/></Trial></Trials></PharmaLab>",
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.MetricsSnapshot()
	for _, st := range []string{"plan.compile", "plan.index", "plan.exec"} {
		if snap.Stages[st].Count == 0 {
			t.Errorf("stage %s not recorded: %+v", st, snap.Stages[st])
		}
	}
	if snap.Engine["planCacheMisses"] != 1 {
		t.Errorf("planCacheMisses = %d, want 1", snap.Engine["planCacheMisses"])
	}
}

func TestAnswerSlowLogOp(t *testing.T) {
	e := New(Config{SlowQueryThreshold: time.Nanosecond})
	_, err := e.AnswerExpr(context.Background(), AnswerRequest{
		Query: "//Trials//Trial", View: "//Trials//Trial", Document: "<Trials><Trial/></Trials>",
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.SlowLog().Snapshot()
	found := false
	for _, en := range snap.Entries {
		if en.Op == "answer" {
			found = true
			if en.StageNs == nil {
				t.Error("answer entry has no stage breakdown")
			}
		}
	}
	if !found {
		t.Fatalf("no op=answer slowlog entry: %+v", snap.Entries)
	}
}

func TestAnswerStoredGateSheds(t *testing.T) {
	// A closed gate must shed the answer execution path like any other
	// compute, after the rewriting (cached, pre-gate) path succeeded.
	g := limits.New(limits.Config{MaxInFlight: 1, MaxQueue: 0})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	e := New(Config{Gate: g})
	d, _ := xmltree.ParseString("<a><b/></a>")
	e.RegisterView("v", viewstore.Materialize(tpq.MustParse("//a"), d))
	_, err = e.AnswerStoredView(context.Background(), tpq.MustParse("//a/b"), "v", plan.Auto)
	if !errors.Is(err, limits.ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
}
