package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/tpq"
	"qav/internal/viewstore"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

const auctionSchema = `root Auctions
Auctions -> Auction*
Auction -> open_auction* closed_auction?
open_auction -> item bids?
closed_auction -> item person? buyer?
bids -> person+
buyer -> person
person -> name
item -> name
`

func TestRewriteSchemaless(t *testing.T) {
	e := New(Config{})
	res, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Trials[//Status]//Trial", View: "//Trials//Trial",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Union.Empty() {
		t.Fatal("expected answerable")
	}
	// Must agree with the rewrite package called directly.
	direct, err := rewrite.MCR(tpq.MustParse("//Trials[//Status]//Trial"), tpq.MustParse("//Trials//Trial"), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Union.SameAs(direct.Union) {
		t.Errorf("engine union %s != direct %s", res.Union, direct.Union)
	}
}

func TestRewriteWithSchemaSelectsAlgorithm(t *testing.T) {
	e := New(Config{})
	res, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Auction[//item]//name", View: "//Auction//person", Schema: auctionSchema,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Union.String(); got != "//Auction//person//name" {
		t.Errorf("union = %s", got)
	}
	// A recursive schema must silently select the §5 algorithm.
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//a//b", View: "//a//b", Schema: "root a\na -> a? b\nb -> c?\n",
	}); err != nil {
		t.Fatalf("recursive schema: %v", err)
	}
}

func TestInvalidInputs(t *testing.T) {
	e := New(Config{})
	var inv *InvalidRequestError
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "///", View: "//a"}); !errors.As(err, &inv) || inv.Field != "query" {
		t.Errorf("bad query: %v", err)
	}
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: "//a", View: "//b", Schema: "not a schema"}); !errors.As(err, &inv) || inv.Field != "schema" {
		t.Errorf("bad schema: %v", err)
	}
	if _, err := e.AnswerExpr(context.Background(), AnswerRequest{Query: "//a", View: "//a", Document: "<unclosed"}); !errors.As(err, &inv) || inv.Field != "document" {
		t.Errorf("bad document: %v", err)
	}
}

func TestAnswerExpr(t *testing.T) {
	e := New(Config{})
	ans, err := e.AnswerExpr(context.Background(), AnswerRequest{
		Query:    "//Trials[//Status]//Trial/Patient",
		View:     "//Trials//Trial",
		Document: "<PharmaLab><Trials><Trial><Patient>John</Patient><Status/></Trial><Trial><Patient>Jen</Patient></Trial></Trials></PharmaLab>",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Answers) != 1 || ans.Answers[0].Text != "John" {
		t.Errorf("answers = %v", ans.Answers)
	}
	if len(ans.ViewNodes) != 2 || len(ans.Direct) != 2 {
		t.Errorf("viewNodes = %d, direct = %d", len(ans.ViewNodes), len(ans.Direct))
	}
	// Unanswerable pair.
	if _, err := e.AnswerExpr(context.Background(), AnswerRequest{Query: "/b", View: "/a//c", Document: "<a/>"}); !errors.Is(err, ErrNotAnswerable) {
		t.Errorf("err = %v, want ErrNotAnswerable", err)
	}
}

func TestAnswerStored(t *testing.T) {
	e := New(Config{})
	d, err := xmltree.ParseString("<Trials><Trial><Patient>Ann</Patient><Status/></Trial></Trials>")
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterView("src1", viewstore.Materialize(tpq.MustParse("//Trials//Trial"), d))
	_, answers, err := e.AnswerStored(context.Background(), tpq.MustParse("//Trials//Trial/Patient"), "src1")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Text != "Ann" {
		t.Errorf("answers = %v", answers)
	}
	if _, _, err := e.AnswerStored(context.Background(), tpq.MustParse("//x"), "nope"); !errors.Is(err, ErrUnknownView) {
		t.Errorf("err = %v, want ErrUnknownView", err)
	}
}

func TestContain(t *testing.T) {
	e := New(Config{})
	pInQ, qInP, err := e.ContainExpr(context.Background(), ContainRequest{P: "//a/b", Q: "//a//b"})
	if err != nil || !pInQ || qInP {
		t.Errorf("contain = %v %v %v", pInQ, qInP, err)
	}
	// Schema-relative: the Figure 2 pair holds only under the schema.
	pInQ, _, err = e.ContainExpr(context.Background(), ContainRequest{
		P: "//Auction//person//name", Q: "//Auction[//item]//name", Schema: auctionSchema,
	})
	if err != nil || !pInQ {
		t.Errorf("S-containment = %v %v", pInQ, err)
	}
}

func TestSchemaContextShared(t *testing.T) {
	e := New(Config{})
	g1 := schema.MustParse(auctionSchema)
	g2 := schema.MustParse(auctionSchema)
	if e.SchemaContext(g1) != e.SchemaContext(g2) {
		t.Error("structurally equal schemas must share one inferred context")
	}
	if n := e.Stats().SchemaContexts; n != 1 {
		t.Errorf("SchemaContexts = %d", n)
	}
}

// A context cancelled before the call returns its error immediately.
func TestRewriteCancelledUpfront(t *testing.T) {
	e := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Rewrite(ctx, Request{Query: workload.Fig8Query(4), View: workload.Fig8View()}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// Cancellation mid-enumeration: the Figure 8 family has 2^n useful
// embeddings and a quadratic redundancy-elimination phase on top, so an
// uncancelled run at n=12 takes many seconds. A deadline must stop it
// promptly with the context's error, well before the budget of
// MaxEmbeddings is exhausted.
func TestRewriteDeadlineStopsEnumeration(t *testing.T) {
	e := New(Config{})
	q, v := workload.Fig8Query(12), workload.Fig8View()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.Rewrite(ctx, Request{Query: q, View: v, MaxEmbeddings: 1 << 22})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; the deadline was not honored in the hot loop", elapsed)
	}
	// The cancelled result must not have been cached.
	if s := e.Stats(); s.CacheEntries != 0 {
		t.Errorf("cancelled computation was cached (%d entries)", s.CacheEntries)
	}
}

// The engine timeout config applies when the caller's context has none.
func TestConfigTimeout(t *testing.T) {
	e := New(Config{Timeout: 20 * time.Millisecond})
	_, err := e.Rewrite(context.Background(), Request{Query: workload.Fig8Query(12), View: workload.Fig8View(), MaxEmbeddings: 1 << 22})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// Singleflight: N concurrent identical requests compute once.
// A computed rewrite credits its pipeline stages into the metrics
// registry; a cache hit credits nothing (the hit path must stay a map
// probe).
func TestMetricsSnapshotStages(t *testing.T) {
	e := New(Config{})
	req := RewriteRequest{Query: "//Trials[//Status]//Trial", View: "//Trials//Trial"}
	if _, err := e.RewriteExpr(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	snap := e.MetricsSnapshot()
	for _, st := range []string{"parse", "enumerate", "buildcr", "contain"} {
		if snap.Stages[st].Count == 0 || snap.Stages[st].TotalNs == 0 {
			t.Errorf("stage %s not recorded: %+v", st, snap.Stages[st])
		}
	}
	if snap.Cache == nil || snap.Cache.Misses != 1 || snap.Cache.Hits != 0 {
		t.Fatalf("cache = %+v", snap.Cache)
	}

	// The same request again is a hit: parse runs (expression decoding
	// is outside the cache), the pipeline stages must not.
	enumBefore := snap.Stages["enumerate"].Count
	if _, err := e.RewriteExpr(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	snap = e.MetricsSnapshot()
	if snap.Cache.Hits != 1 {
		t.Errorf("cache = %+v, want one hit", snap.Cache)
	}
	if got := snap.Stages["enumerate"].Count; got != enumBefore {
		t.Errorf("enumerate count grew on a cache hit: %d -> %d", enumBefore, got)
	}
}

// The schema pipeline credits the chase stage too.
func TestMetricsSnapshotSchemaStages(t *testing.T) {
	e := New(Config{})
	_, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Auction[//item]//name", View: "//Auction//person", Schema: auctionSchema,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.MetricsSnapshot()
	if snap.Stages["chase"].Count == 0 {
		t.Errorf("chase stage not recorded: %+v", snap.Stages)
	}
}

func TestSlowQueryLog(t *testing.T) {
	e := New(Config{SlowQueryThreshold: time.Nanosecond})
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Trials[//Status]//Trial", View: "//Trials//Trial",
	}); err != nil {
		t.Fatal(err)
	}
	snap := e.SlowLog().Snapshot()
	if snap.Total != 1 || len(snap.Entries) != 1 {
		t.Fatalf("slowlog = %+v", snap)
	}
	entry := snap.Entries[0]
	if entry.Op != "rewrite" || entry.Query == "" || entry.DurationNs <= 0 {
		t.Errorf("entry = %+v", entry)
	}
	if len(entry.StageNs) == 0 {
		t.Error("entry has no stage breakdown")
	}
	// A repeat of the same request is a cache hit and must not be
	// logged again, no matter how low the threshold.
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Trials[//Status]//Trial", View: "//Trials//Trial",
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.SlowLog().Snapshot().Total; got != 1 {
		t.Errorf("total = %d after cache hit, want 1", got)
	}
}

func TestSlowQueryLogDisabledByDefault(t *testing.T) {
	e := New(Config{})
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//Trials[//Status]//Trial", View: "//Trials//Trial",
	}); err != nil {
		t.Fatal(err)
	}
	if snap := e.SlowLog().Snapshot(); snap.Total != 0 {
		t.Errorf("slowlog recorded %d entries with a zero threshold", snap.Total)
	}
}

func TestConcurrentDuplicatesComputeOnce(t *testing.T) {
	e := New(Config{})
	req := Request{Query: tpq.MustParse("//Trials[//Status]//Trial"), View: tpq.MustParse("//Trials//Trial")}
	const workers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := e.Rewrite(context.Background(), req); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if s := e.Stats(); s.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight dedup)", s.CacheMisses)
	}
}

// Hammer one shared Engine from many goroutines across every entry
// point; run with -race.
func TestEngineConcurrentMixedUse(t *testing.T) {
	e := New(Config{CacheSize: 8})
	queries := []string{"//a[b]", "//a[c]", "//a//b", "//a/b[c]", "//x/y"}
	doc := "<r><a><b>1</b><c/></a><x><y/></x></r>"
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := queries[(w+i)%len(queries)]
				switch i % 4 {
				case 0:
					if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: q, View: "//a"}); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: q, View: "//a", Schema: auctionSchema}); err != nil {
						t.Error(err)
					}
				case 2:
					if _, _, err := e.ContainExpr(context.Background(), ContainRequest{P: q, Q: "//a"}); err != nil {
						t.Error(err)
					}
				case 3:
					ans, err := e.AnswerExpr(context.Background(), AnswerRequest{Query: "//a/b", View: "//a", Document: doc})
					if err != nil {
						t.Error(err)
					} else if len(ans.Answers) != 1 {
						t.Errorf("answers = %d", len(ans.Answers))
					}
				}
				e.Stats()
			}
		}(w)
	}
	// Concurrent view registration and stored answering.
	d, _ := xmltree.ParseString(doc)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("v%d", w)
			e.RegisterView(name, viewstore.Materialize(tpq.MustParse("//a"), d))
			for i := 0; i < 10; i++ {
				if _, _, err := e.AnswerStored(context.Background(), tpq.MustParse("//a/b"), name); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
}
