package engine

import (
	"encoding/json"
	"errors"
	"fmt"

	"qav/internal/rewrite"
	"qav/internal/tpq"
)

// resultCodec serializes complete rewrite results for the persistent
// cache tier. The wire form stores patterns as expressions — Parse of a
// pattern's String reproduces it up to sibling order, which Canonical
// treats as equivalent — so persisted entries survive changes to the
// in-memory pattern representation; only expression-syntax changes
// require a wire version bump. Inducing embeddings are deliberately not
// persisted: they reference live pattern nodes, and the only consumer
// (Explain) tolerates their absence.
type resultCodec struct{}

// wireVersion tags the encoded result format. Decode rejects foreign
// versions, which the persist tier treats like any other dead record.
const wireVersion = 1

type wireCR struct {
	Rewriting    string `json:"r"`
	Compensation string `json:"c"`
}

type wireResult struct {
	Version              int      `json:"v"`
	CRs                  []wireCR `json:"crs"`
	EmbeddingsConsidered int      `json:"emb"`
}

func (resultCodec) Encode(r *rewrite.Result) ([]byte, error) {
	if r == nil {
		return nil, errors.New("engine: refusing to encode a nil result")
	}
	if r.Partial {
		// Defense in depth: the cache's volatile policy already keeps
		// partial results out of both tiers.
		return nil, errors.New("engine: refusing to encode a partial result")
	}
	w := wireResult{
		Version:              wireVersion,
		EmbeddingsConsidered: r.EmbeddingsConsidered,
		CRs:                  make([]wireCR, 0, len(r.CRs)),
	}
	for _, cr := range r.CRs {
		if cr == nil || cr.Rewriting == nil || cr.Compensation == nil {
			return nil, errors.New("engine: refusing to encode an incomplete CR")
		}
		w.CRs = append(w.CRs, wireCR{
			Rewriting:    cr.Rewriting.String(),
			Compensation: cr.Compensation.String(),
		})
	}
	return json.Marshal(w)
}

func (resultCodec) Decode(b []byte) (*rewrite.Result, error) {
	var w wireResult
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("engine: decode persisted result: %w", err)
	}
	if w.Version != wireVersion {
		return nil, fmt.Errorf("engine: persisted result version %d, want %d", w.Version, wireVersion)
	}
	res := &rewrite.Result{
		Union:                &tpq.Union{},
		EmbeddingsConsidered: w.EmbeddingsConsidered,
	}
	for _, c := range w.CRs {
		rw, err := tpq.Parse(c.Rewriting)
		if err != nil {
			return nil, fmt.Errorf("engine: persisted rewriting: %w", err)
		}
		comp, err := tpq.Parse(c.Compensation)
		if err != nil {
			return nil, fmt.Errorf("engine: persisted compensation: %w", err)
		}
		res.Union.Patterns = append(res.Union.Patterns, rw)
		res.CRs = append(res.CRs, &rewrite.ContainedRewriting{
			Rewriting:    rw,
			Compensation: comp,
		})
	}
	return res, nil
}
