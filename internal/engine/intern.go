package engine

import (
	"sync"

	"qav/internal/schema"
	"qav/internal/tpq"
)

// interner collapses request text to shared parsed forms before any
// parse-downstream work runs. Two layers:
//
//   - by expression text: the exact string seen before is returned
//     without reparsing;
//   - by canonical form: syntactically different but canonically
//     identical patterns ("a[b]/c" vs "a[ b ]/c", predicate order,
//     whitespace) collapse onto one shared *tpq.Pattern instance, so
//     the rewrite cache key, the pattern's cached metadata, and the
//     singleflight leader are all computed once per equivalence class.
//
// Sharing parsed patterns across requests is safe: the rewriting
// pipeline treats inputs as immutable (the patmut analyzer enforces
// it), and per-pattern caches (labels, canonical text) are built behind
// atomics. Both maps are bounded by wholesale reset, like the engine's
// schema-context cache: interning is an optimization, losing it costs a
// reparse, never correctness.
type interner struct {
	mu       sync.Mutex
	capacity int

	patByExpr    map[string]*tpq.Pattern  // guarded by mu
	patByCanon   map[string]*tpq.Pattern  // guarded by mu
	schemaByExpr map[string]*schema.Graph // guarded by mu

	hits        int64 // guarded by mu; expression-text hits (no parse)
	misses      int64 // guarded by mu; texts that had to be parsed
	canonDedups int64 // guarded by mu; parses collapsed onto a canonical twin
}

func newInterner(capacity int) *interner {
	if capacity < 16 {
		capacity = 16
	}
	return &interner{
		capacity:     capacity,
		patByExpr:    make(map[string]*tpq.Pattern),
		patByCanon:   make(map[string]*tpq.Pattern),
		schemaByExpr: make(map[string]*schema.Graph),
	}
}

// pattern parses expr, interned: the same text never parses twice, and
// canonically identical texts share one pattern instance. Parse errors
// are returned unwrapped (callers add their field context) and are not
// negatively cached — the rewrite cache already handles that.
func (in *interner) pattern(expr string) (*tpq.Pattern, error) {
	in.mu.Lock()
	if p := in.patByExpr[expr]; p != nil {
		in.hits++
		in.mu.Unlock()
		return p, nil
	}
	in.mu.Unlock()
	p, err := tpq.Parse(expr)
	if err != nil {
		return nil, err
	}
	canon := p.Canonical()
	in.mu.Lock()
	defer in.mu.Unlock()
	in.misses++
	if shared := in.patByCanon[canon]; shared != nil {
		in.canonDedups++
		p = shared
	} else {
		if len(in.patByCanon) >= in.capacity {
			in.patByCanon = make(map[string]*tpq.Pattern)
		}
		in.patByCanon[canon] = p
	}
	if len(in.patByExpr) >= in.capacity {
		in.patByExpr = make(map[string]*tpq.Pattern)
	}
	in.patByExpr[expr] = p
	return p, nil
}

// schemaGraph parses schema DSL text, interned by exact text. Schema
// texts repeat verbatim across requests (clients send the same schema
// with every query), so text identity captures almost all sharing and
// skips the canonical-form layer.
func (in *interner) schemaGraph(expr string) (*schema.Graph, error) {
	in.mu.Lock()
	if g := in.schemaByExpr[expr]; g != nil {
		in.hits++
		in.mu.Unlock()
		return g, nil
	}
	in.mu.Unlock()
	g, err := schema.Parse(expr)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.misses++
	if cached := in.schemaByExpr[expr]; cached != nil {
		return cached, nil
	}
	if len(in.schemaByExpr) >= in.capacity {
		in.schemaByExpr = make(map[string]*schema.Graph)
	}
	in.schemaByExpr[expr] = g
	return g, nil
}

// stats returns the interner's counters: expression-text hits, parses,
// and parses that collapsed onto a canonical twin.
func (in *interner) stats() (hits, misses, canonDedups int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits, in.misses, in.canonDedups
}
