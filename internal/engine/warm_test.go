package engine

import (
	"context"
	"errors"
	"testing"

	"qav/internal/leaktest"
	"qav/internal/rewrite"
	"qav/internal/tpq"
)

// A restarted engine serves a previously computed rewriting as a warm
// hit: no recompute (miss counter stays zero), the result decodes to
// the same union, and the tier counters make the warm hit visible.
func TestWarmBootServesRewriteWithoutRecompute(t *testing.T) {
	defer leaktest.Check(t)()
	dir := t.TempDir()
	req := RewriteRequest{Query: "//Trials[//Status]//Trial", View: "//Trials//Trial"}

	e1 := New(Config{CacheSize: 16, CacheDir: dir})
	if wb := e1.WarmBootInfo(); !wb.Enabled || wb.Err != "" {
		t.Fatalf("warm boot info = %+v, want enabled tier", wb)
	}
	want, err := e1.RewriteExpr(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if st := e1.Stats(); st.Persisted != 1 {
		t.Fatalf("persisted = %d, want 1", st.Persisted)
	}

	e2 := New(Config{CacheSize: 16, CacheDir: dir})
	defer e2.Close()
	if wb := e2.WarmBootInfo(); wb.Replayed != 1 {
		t.Fatalf("second boot replayed = %d, want 1", wb.Replayed)
	}
	got, err := e2.RewriteExpr(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Union.SameAs(want.Union) {
		t.Errorf("warm union %s != original %s", got.Union, want.Union)
	}
	if len(got.CRs) != len(want.CRs) {
		t.Errorf("warm CRs = %d, want %d", len(got.CRs), len(want.CRs))
	}
	for _, cr := range got.CRs {
		if cr.Compensation == nil {
			t.Error("restored CR lost its compensation")
		}
	}
	st := e2.Stats()
	if st.CacheWarmHits != 1 {
		t.Errorf("warm hits = %d, want 1", st.CacheWarmHits)
	}
	if st.CacheMisses != 0 {
		t.Errorf("misses = %d, want 0 (the pipeline must not recompute)", st.CacheMisses)
	}
	// The replay must also be visible in /metrics: stage credit + tier
	// counters in the cache snapshot.
	snap := e2.MetricsSnapshot()
	if snap.Cache == nil || snap.Cache.WarmHits != 1 || snap.Cache.Replayed != 1 {
		t.Errorf("metrics cache snapshot = %+v, want warmHits=1 replayed=1", snap.Cache)
	}
	if _, ok := snap.Stages["cache.replay"]; !ok {
		t.Error("cache.replay stage missing from metrics")
	}
}

// A broken cache directory (a file where the directory should be)
// degrades to a memory-only engine instead of failing construction.
func TestWarmBootOpenFailureIsNonFatal(t *testing.T) {
	e := New(Config{CacheSize: 16, CacheDir: "/dev/null"})
	defer e.Close()
	wb := e.WarmBootInfo()
	if wb.Enabled {
		t.Error("tier must be disabled after an open failure")
	}
	if wb.Err == "" {
		t.Error("open failure not reported")
	}
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{
		Query: "//a[b]", View: "//a",
	}); err != nil {
		t.Errorf("memory-only fallback broken: %v", err)
	}
}

// The codec round-trips complete results and refuses partial ones.
func TestResultCodecRoundTrip(t *testing.T) {
	res, err := rewrite.MCR(tpq.MustParse("//Trials[//Status]//Trial"), tpq.MustParse("//Trials//Trial"), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := resultCodec{}.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := resultCodec{}.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Union.SameAs(res.Union) {
		t.Errorf("decoded union %s != %s", back.Union, res.Union)
	}
	if back.EmbeddingsConsidered != res.EmbeddingsConsidered {
		t.Errorf("embeddings = %d, want %d", back.EmbeddingsConsidered, res.EmbeddingsConsidered)
	}
	if _, err := (resultCodec{}).Encode(&rewrite.Result{Partial: true}); err == nil {
		t.Error("partial result must not encode")
	}
	if _, err := (resultCodec{}).Decode([]byte(`{"v":99}`)); err == nil {
		t.Error("foreign wire version must not decode")
	}
	// A "not answerable" result (empty union) is a complete, cacheable
	// fact and must round-trip too.
	empty := &rewrite.Result{Union: &tpq.Union{}}
	b, err = resultCodec{}.Encode(empty)
	if err != nil {
		t.Fatal(err)
	}
	if back, err = (resultCodec{}).Decode(b); err != nil || !back.Union.Empty() {
		t.Errorf("empty union round-trip: %v, %v", back, err)
	}
}

// Canonically identical but syntactically different requests collapse
// to one parse, one cache key, and therefore one computation.
func TestInternCollapsesCanonicalTwins(t *testing.T) {
	e := New(Config{CacheSize: 16})
	// Same canonical form, different predicate order — distinct text,
	// distinct parses, one equivalence class.
	spellings := []string{
		"//Trials[//Status][//Phase]//Trial",
		"//Trials[//Phase][//Status]//Trial",
	}
	for _, s := range spellings {
		if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: s, View: "//Trials//Trial"}); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1 (two spellings, one computation)", st.CacheMisses)
	}
	if st.CacheHits != 1 {
		t.Errorf("hits = %d, want 1", st.CacheHits)
	}
	if st.InternDedups < 1 {
		t.Errorf("internDedups = %d, want >= 1 (the second spelling collapsed)", st.InternDedups)
	}
	// Exact-text repeats skip the parse entirely.
	if _, err := e.RewriteExpr(context.Background(), RewriteRequest{Query: spellings[0], View: "//Trials//Trial"}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.InternHits < 2 {
		t.Errorf("internHits = %d, want >= 2", st.InternHits)
	}
}

// RewriteBatch: per-item errors stay per-item, canonical duplicates
// share one computation, and outcomes stay index-aligned.
func TestRewriteBatch(t *testing.T) {
	e := New(Config{CacheSize: 16})
	outs := e.RewriteBatch(context.Background(), []RewriteRequest{
		{Query: "//Trials[//Status][//Phase]//Trial", View: "//Trials//Trial"},
		{Query: "//Trials[//Status//", View: "//Trials//Trial"},                // malformed
		{Query: "//Trials[//Phase][//Status]//Trial", View: "//Trials//Trial"}, // canonical twin of item 0
		{Query: "//x[y]", View: "//x"},
	})
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Err != nil || outs[0].Result == nil || outs[0].Shared {
		t.Errorf("item 0 = %+v, want leading success", outs[0])
	}
	var inv *InvalidRequestError
	if outs[1].Err == nil || !errors.As(outs[1].Err, &inv) {
		t.Errorf("item 1 err = %v, want InvalidRequestError", outs[1].Err)
	}
	if outs[2].Err != nil || !outs[2].Shared {
		t.Errorf("item 2 = %+v, want shared success", outs[2])
	}
	if outs[2].Result != outs[0].Result {
		t.Error("canonical twins must share one result")
	}
	if outs[3].Err != nil || outs[3].Shared {
		t.Errorf("item 3 = %+v, want independent success", outs[3])
	}
	if st := e.Stats(); st.CacheMisses != 2 {
		t.Errorf("misses = %d, want 2 (two distinct keys computed)", st.CacheMisses)
	}
}
