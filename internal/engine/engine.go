// Package engine provides the one shared query-answering pipeline of
// the system: parse → (chase) → MCR generation → compensation, behind
// a concurrency-safe, budgeted, context-aware façade.
//
// The paper's mediator setting (§1, §3.2) answers many queries against
// few views, and the MCR can be a union of exponentially many patterns
// — so every entry point (HTTP server, CLI, benchmarks, the public qav
// façade) routes through a single Engine rather than assembling the
// pipeline ad hoc. The Engine owns:
//
//   - the rewrite cache (LRU + singleflight, see internal/cache), so N
//     concurrent identical requests compute once;
//   - the per-schema constraint contexts (inference is O(|S|³),
//     Theorem 5, and query-independent — it runs once per schema, not
//     once per request);
//   - the registered materialized views (internal/viewstore), the
//     artifacts autonomous sources ship to the mediator.
//
// Every method takes a context.Context that is threaded down into the
// enumeration and chase hot loops: a client disconnect or deadline
// stops an exponential enumeration instead of burning the budget.
package engine

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"qav/internal/cache"
	"qav/internal/chase"
	"qav/internal/constraints"
	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/limits"
	"qav/internal/names"
	"qav/internal/obs"
	"qav/internal/plan"
	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/tpq"
	"qav/internal/viewstore"
	"qav/internal/xmltree"
)

// faultCompute fires at the top of every computed (non-cache-hit)
// rewriting (no-op unless a chaos plan arms it; see internal/fault).
var faultCompute = fault.Register(names.FaultEngineCompute)

// ErrNotAnswerable is returned by the Answer methods when the query has
// no contained rewriting using the view.
var ErrNotAnswerable = errors.New("engine: query is not answerable using the view")

// ErrUnknownView is returned by AnswerStored for an unregistered view.
var ErrUnknownView = errors.New("engine: no stored view with that name")

// An InvalidRequestError reports an unparsable request input. Field
// names the offending input: "query", "view", "schema", "document",
// "p", or "q".
type InvalidRequestError struct {
	Field string
	Err   error
}

func (e *InvalidRequestError) Error() string { return e.Field + ": " + e.Err.Error() }
func (e *InvalidRequestError) Unwrap() error { return e.Err }

// Config bounds an Engine.
type Config struct {
	// CacheSize is the rewrite-cache capacity in entries; <= 0 means
	// 1024.
	CacheSize int
	// MaxEmbeddings is the default enumeration budget per request;
	// <= 0 defers to rewrite.DefaultMaxEmbeddings.
	MaxEmbeddings int
	// Timeout, when positive, imposes a per-call deadline on requests
	// whose context does not already carry one.
	Timeout time.Duration
	// MaxSchemaContexts bounds the per-schema constraint-context cache;
	// <= 0 means 64. Mediators see few distinct schemas, so the bound
	// only guards against adversarial schema churn.
	MaxSchemaContexts int
	// Metrics receives the engine's observations (per-stage pipeline
	// timings; the HTTP layer adds per-endpoint metrics to the same
	// registry). nil means a private registry — metrics are always on;
	// the instrumentation is cheap enough for the hot kernels.
	Metrics *obs.Registry
	// SlowQueryThreshold, when positive, records every computed
	// rewriting at or above this duration into the slow-query log with
	// its canonical query/view and stage breakdown. 0 disables.
	SlowQueryThreshold time.Duration
	// SlowLogSize bounds the slow-query ring buffer; <= 0 means 128.
	SlowLogSize int
	// Gate, when non-nil, is the admission-control gate applied to every
	// computed (non-cache-hit, non-follower) rewriting: the leader
	// acquires a slot before running the pipeline and queues or sheds
	// under saturation (*limits.SaturatedError). Cache hits and
	// singleflight followers bypass the gate — they do not add compute
	// load. nil means unlimited admission.
	Gate *limits.Gate
	// TopKViews, when positive, caps every multi-view rewriting
	// (RewriteAllViews) to the K candidate views the catalog's signature
	// index ranks tightest for the query — a recall/latency dial for
	// very large catalogs. 0 considers every view.
	TopKViews int
	// CacheDir, when non-empty, enables the persistent second cache
	// tier: completed rewritings are appended asynchronously to a
	// checksummed segment file under this directory and replayed at
	// construction, so a restarted engine serves previously computed
	// rewritings without recomputing them. Corrupt or partial segment
	// tails are truncated, never fatal; a tier that fails to open
	// disables itself and reports the error through Stats.WarmBootErr
	// rather than failing New. Partial results and errors are never
	// persisted.
	CacheDir string
	// SnapshotInterval, when positive (and CacheDir is set),
	// periodically compacts the segment file down to the live warm
	// entries, dropping superseded duplicates. 0 never compacts.
	SnapshotInterval time.Duration
}

// Engine is the shared rewriting pipeline. It is safe for concurrent
// use by multiple goroutines.
type Engine struct {
	cfg   Config
	cache *cache.Cache[*rewrite.Result]
	// plans caches compiled answer plans keyed by the canonical CR
	// union (plan.KeyOf): plans are pure functions of the rewriting,
	// so every request answering through the same MCR shares one.
	plans   *cache.Cache[*plan.Plan]
	views   *viewstore.Catalog
	metrics *obs.Registry
	slow    *obs.SlowLog
	// intern shares parsed patterns and schemas across requests and
	// collapses canonically identical request text before the cache.
	intern *interner
	// persist is the attached warm tier, retained here so Stats can
	// still report it after Close detaches it from the cache; nil when
	// not configured or when the open failed.
	persist *cache.Persist[*rewrite.Result]
	// warmErr records a persistent-tier open failure (the tier is then
	// disabled); empty when the tier is healthy or not configured.
	warmErr string

	mu sync.RWMutex
	// schemas caches constraint-inference contexts, keyed by canonical
	// schema text.
	// guarded by mu
	schemas map[string]*rewrite.SchemaContext
}

// New creates an Engine with the given bounds.
func New(cfg Config) *Engine {
	size := cfg.CacheSize
	if size <= 0 {
		size = 1024
	}
	if cfg.MaxSchemaContexts <= 0 {
		cfg.MaxSchemaContexts = 64
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = 128
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	e := &Engine{
		cfg: cfg,
		// Partial rewritings describe where one request's budget or
		// deadline landed, not the key — volatile, never stored.
		cache: cache.NewWithPolicy[*rewrite.Result](size, func(r *rewrite.Result) bool {
			return r != nil && r.Partial
		}),
		plans:   cache.New[*plan.Plan](size),
		views:   viewstore.NewCatalog(),
		metrics: metrics,
		slow:    obs.NewSlowLog(cfg.SlowQueryThreshold, cfg.SlowLogSize),
		intern:  newInterner(4 * size),
		schemas: make(map[string]*rewrite.SchemaContext),
	}
	if cfg.CacheDir != "" {
		p, err := cache.OpenPersist[*rewrite.Result](
			filepath.Join(cfg.CacheDir, "rewrites.seg"),
			resultCodec{},
			cache.PersistOptions{
				MaxEntries:      4 * size,
				CompactInterval: cfg.SnapshotInterval,
			},
		)
		if err != nil {
			// A broken cache directory degrades to a memory-only engine;
			// persistence is an optimization, never a startup dependency.
			e.warmErr = err.Error()
		} else {
			e.cache.AttachTier2(p)
			e.persist = p
			metrics.ObserveStage(obs.StageCacheReplay, p.Stats().ReplayDuration)
		}
	}
	return e
}

// Close flushes and closes the persistent cache tier; it is a no-op for
// a memory-only engine, which stays usable afterwards. Call it on
// shutdown so queued cache writes reach the segment.
func (e *Engine) Close() error { return e.cache.Close() }

// WarmBoot describes the persistent tier's boot outcome.
type WarmBoot struct {
	// Enabled reports whether a persistent tier is attached.
	Enabled bool
	// Entries is the current warm-tier entry count; Replayed how many
	// records the boot replay loaded; TruncatedBytes how many trailing
	// segment bytes were discarded as corrupt or torn.
	Entries        int
	Replayed       int64
	TruncatedBytes int64
	// Err is the open failure that disabled the tier, if any.
	Err string
}

// WarmBootInfo returns the persistent tier's boot outcome, for startup
// logs and smoke checks.
func (e *Engine) WarmBootInfo() WarmBoot {
	wb := WarmBoot{Err: e.warmErr}
	if p := e.persist; p != nil {
		ps := p.Stats()
		wb.Enabled = true
		wb.Entries = ps.Entries
		wb.Replayed = ps.Replayed
		wb.TruncatedBytes = ps.TruncatedBytes
	}
	return wb
}

// Metrics returns the engine's observation registry; the HTTP layer
// records its per-endpoint metrics here so GET /metrics is one
// document.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// SlowLog returns the engine's slow-query log.
func (e *Engine) SlowLog() *obs.SlowLog { return e.slow }

// Gate returns the engine's admission gate, or nil when ungated. The
// health endpoint reads its occupancy for load-aware routing; a nil
// Gate is a valid no-op receiver for Stats and Acquire.
func (e *Engine) Gate() *limits.Gate { return e.cfg.Gate }

// withDeadline applies the engine's default timeout when the caller's
// context has no deadline of its own.
func (e *Engine) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.cfg.Timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			return context.WithTimeout(ctx, e.cfg.Timeout)
		}
	}
	return ctx, func() {}
}

// SchemaContext returns the engine's cached constraint-inference
// context for g, inferring the constraint set on first use. Contexts
// are shared across requests: inference is query-independent.
func (e *Engine) SchemaContext(g *schema.Graph) *rewrite.SchemaContext {
	key := g.String()
	e.mu.RLock()
	sc := e.schemas[key]
	e.mu.RUnlock()
	if sc != nil {
		return sc
	}
	sc = rewrite.NewSchemaContext(g)
	e.mu.Lock()
	if cached, ok := e.schemas[key]; ok {
		sc = cached
	} else {
		if len(e.schemas) >= e.cfg.MaxSchemaContexts {
			// Cheap wholesale reset; a mediator sees few schemas, so
			// this only fires under schema churn.
			e.schemas = make(map[string]*rewrite.SchemaContext)
		}
		e.schemas[key] = sc
	}
	e.mu.Unlock()
	return sc
}

// Constraints returns the constraint set the schema implies, via the
// cached SchemaContext.
func (e *Engine) Constraints(g *schema.Graph) *constraints.Set {
	return e.SchemaContext(g).Sigma
}

// Request is a fully parsed rewriting request.
type Request struct {
	Query *tpq.Pattern
	View  *tpq.Pattern
	// Schema is optional; nil selects the schemaless algorithm (§3).
	Schema *schema.Graph
	// Recursive forces the §5 recursive-schema algorithm even when the
	// schema itself is recursion-free. It is implied by a recursive
	// schema.
	Recursive bool
	// MaxEmbeddings overrides the engine's default enumeration budget
	// for this request when positive.
	MaxEmbeddings int
	// NoCache bypasses the rewrite cache (used by benchmarks measuring
	// the raw pipeline, and by callers that will mutate the result).
	NoCache bool
	// PlanBackend forces the answer-plan execution backend for this
	// request; the zero value (plan.Auto) selects per program.
	PlanBackend plan.Backend
}

func (r Request) options(e *Engine, ctx context.Context) rewrite.Options {
	limit := r.MaxEmbeddings
	if limit <= 0 {
		limit = e.cfg.MaxEmbeddings
	}
	return rewrite.Options{MaxEmbeddings: limit, Context: ctx}
}

// Rewrite computes the maximal contained rewriting of the request's
// query using its view, selecting the schemaless (§3), schema (§4) or
// recursive-schema (§5) algorithm, with caching and singleflight
// deduplication. Cached results are shared: callers must not mutate
// them (set NoCache to receive a private copy).
//
// Every computed (non-cache-hit) request runs under a fresh obs.Span:
// the pipeline credits its parse/chase/enumerate/buildcr/contain time,
// the span folds into the engine's metrics registry, and requests at or
// above Config.SlowQueryThreshold land in the slow-query log. Cache
// hits bypass all of it — a hit stays a lock, a map probe and nothing
// else.
func (e *Engine) Rewrite(ctx context.Context, req Request) (*rewrite.Result, error) {
	ctx, cancel := e.withDeadline(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recursive := req.Schema != nil && (req.Recursive || req.Schema.IsRecursive())
	compute := func() (*rewrite.Result, error) {
		// Admission control guards compute, not lookups: only the
		// singleflight leader reaches this closure, so cache hits and
		// deduplicated followers never queue or shed.
		release, err := e.cfg.Gate.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		sp := obs.NewSpan()
		cctx := obs.WithSpan(ctx, sp)
		start := time.Now()
		res, err := e.runPipelineGuarded(cctx, req, recursive)
		e.observeRewrite(req, recursive, sp, time.Since(start), err)
		return res, err
	}
	if req.NoCache {
		return compute()
	}
	key := cache.Key(req.Query, req.View, req.Schema, recursive)
	return e.cache.GetOrCompute(ctx, key, compute)
}

// runPipelineGuarded is runPipeline behind panic isolation: a panic
// anywhere in the rewriting pipeline becomes a typed ErrInternal whose
// stack observeRewrite preserves in the slow-query log, failing one
// request instead of the process.
func (e *Engine) runPipelineGuarded(ctx context.Context, req Request, recursive bool) (res *rewrite.Result, err error) {
	defer guard.Recover(&err, "engine.rewrite")
	if err := faultCompute.Hit(ctx); err != nil {
		return nil, err
	}
	return e.runPipeline(ctx, req, recursive)
}

// runPipeline dispatches to the paper's three rewriting algorithms.
func (e *Engine) runPipeline(ctx context.Context, req Request, recursive bool) (*rewrite.Result, error) {
	opts := req.options(e, ctx)
	if req.Schema == nil {
		return rewrite.MCR(req.Query, req.View, opts)
	}
	sc := e.SchemaContext(req.Schema)
	if recursive {
		return sc.MCRRecursive(req.Query, req.View, opts)
	}
	return sc.MCRWithSchemaCtx(ctx, req.Query, req.View)
}

// observeRewrite folds one computed request into the metrics registry
// and, when it crossed the slow-query threshold, into the slow log.
// Canonicalization is cached on the patterns, so even slow-path entries
// are cheap to build.
func (e *Engine) observeRewrite(req Request, recursive bool, sp *obs.Span, d time.Duration, err error) {
	e.metrics.ObserveSpan(sp)
	// Recovered panics are recorded regardless of the latency threshold:
	// the stack is the only evidence of the crash site, and a request
	// that died early is exactly the one the threshold would drop.
	var ie *guard.InternalError
	internal := errors.As(err, &ie)
	th := e.slow.Threshold()
	if !internal && (th <= 0 || d < th) {
		return
	}
	entry := obs.SlowEntry{
		Time:       time.Now(),
		Op:         names.OpRewrite,
		Query:      req.Query.Canonical(),
		View:       req.View.Canonical(),
		Recursive:  recursive,
		DurationNs: int64(d),
		StageNs:    sp.StageNs(),
	}
	if req.Schema != nil {
		entry.Schema = req.Schema.String()
	}
	if err != nil {
		entry.Err = err.Error()
	}
	if internal {
		entry.Stack = string(ie.Stack)
	}
	e.slow.Record(entry)
}

// RewriteRequest is a rewriting request in textual form, as received by
// the HTTP API and the CLI.
type RewriteRequest struct {
	Query     string
	View      string
	Schema    string // optional schema DSL text
	Recursive bool
}

// RewriteExpr parses the request's expressions and rewrites.
func (e *Engine) RewriteExpr(ctx context.Context, req RewriteRequest) (*rewrite.Result, error) {
	parsed, err := e.parseRewriteRequest(req)
	if err != nil {
		return nil, err
	}
	return e.Rewrite(ctx, parsed)
}

// parseRewriteRequest parses a textual request through the interner:
// repeated expression text skips the parse entirely, and canonically
// identical patterns collapse onto one shared instance — so two
// spellings of the same query produce the same cache key and join the
// same singleflight before any parse-downstream work runs.
func (e *Engine) parseRewriteRequest(req RewriteRequest) (Request, error) {
	start := time.Now()
	defer func() { e.metrics.ObserveStage(obs.StageParse, time.Since(start)) }()
	q, err := e.intern.pattern(req.Query)
	if err != nil {
		return Request{}, &InvalidRequestError{Field: "query", Err: err}
	}
	v, err := e.intern.pattern(req.View)
	if err != nil {
		return Request{}, &InvalidRequestError{Field: "view", Err: err}
	}
	var g *schema.Graph
	if req.Schema != "" {
		if g, err = e.intern.schemaGraph(req.Schema); err != nil {
			return Request{}, &InvalidRequestError{Field: "schema", Err: err}
		}
	}
	return Request{Query: q, View: v, Schema: g, Recursive: req.Recursive}, nil
}

// BatchOutcome is one item's outcome in a RewriteBatch call.
type BatchOutcome struct {
	Result *rewrite.Result
	Err    error
	// Shared marks items whose (query, view, schema) was canonically
	// identical to an earlier item in the same batch: they reuse that
	// item's computation instead of starting their own.
	Shared bool
}

// RewriteBatch rewrites a batch of textual requests, sharing work
// across items: parsing goes through the interner (so repeated or
// canonically identical expressions parse once), items that collapse
// onto the same cache key compute once per batch, and distinct keys
// compute concurrently under the engine's gate, deadline and cache —
// schema contexts and chase results are shared through the usual
// per-schema cache. The returned slice is index-aligned with reqs;
// per-item failures land in their item's Err and never fail the batch.
func (e *Engine) RewriteBatch(ctx context.Context, reqs []RewriteRequest) []BatchOutcome {
	ctx, cancel := e.withDeadline(ctx)
	defer cancel()
	out := make([]BatchOutcome, len(reqs))
	parsed := make([]Request, len(reqs))
	groups := make(map[string][]int) // cache key → item indices
	var order []string
	for i, r := range reqs {
		p, err := e.parseRewriteRequest(r)
		if err != nil {
			out[i].Err = err
			continue
		}
		parsed[i] = p
		recursive := p.Schema != nil && (p.Recursive || p.Schema.IsRecursive())
		k := cache.Key(p.Query, p.View, p.Schema, recursive)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	var wg sync.WaitGroup
	for _, k := range order {
		indices := groups[k]
		wg.Add(1)
		go func(indices []int) {
			defer wg.Done()
			lead := indices[0]
			var res *rewrite.Result
			var err error
			func() {
				// Rewrite isolates pipeline panics itself; this guard
				// covers the batch plumbing so one bad item cannot take
				// down the whole process.
				defer guard.Recover(&err, "engine.batch")
				res, err = e.Rewrite(ctx, parsed[lead])
			}()
			for _, i := range indices {
				out[i] = BatchOutcome{Result: res, Err: err, Shared: i != lead}
			}
		}(indices)
	}
	wg.Wait()
	return out
}

// Answer is the outcome of answering a query through a view over a
// document: the rewriting used, the materialized view nodes, the
// answers obtained by executing the compiled answer plan, and the
// direct evaluation of the query for comparison.
type Answer struct {
	Result    *rewrite.Result
	ViewNodes []*xmltree.Node
	Answers   []*xmltree.Node
	Direct    []*xmltree.Node
	// Plan is the compiled (cached) answer plan the request executed.
	Plan *plan.Plan
	// Exec carries the execution detail (per-program backends).
	Exec *plan.ExecResult
}

// planFor returns the compiled answer plan for the CR set, from the
// plan cache: plans are pure functions of the canonical CR union, so
// concurrent requests answering through the same MCR compile once
// (singleflight) and share the artifact. Compile time is credited to
// the plan.compile stage by the computing leader only — a hit stays a
// lock and a map probe.
func (e *Engine) planFor(ctx context.Context, crs []*rewrite.ContainedRewriting) (*plan.Plan, error) {
	comps := rewrite.Compensations(crs)
	key, err := plan.KeyOf(comps)
	if err != nil {
		return nil, err
	}
	return e.plans.GetOrCompute(ctx, key, func() (*plan.Plan, error) {
		return plan.Compile(ctx, comps)
	})
}

// answerPlan is the shared answer pipeline tail: compile (cached) →
// index (caller-supplied: per-request subtree windows or the stored
// view's cached forest index) → exec, behind the same protections as
// the rewriting pipeline — panic isolation (a panic fails the request,
// not the process) and admission control (indexing and execution scan
// the forest, so they queue or shed under saturation like any other
// compute; plan-cache lookups happen before the gate).
func (e *Engine) answerPlan(ctx context.Context, crs []*rewrite.ContainedRewriting, index func(context.Context) (*plan.Forest, error), backend plan.Backend) (pl *plan.Plan, exec *plan.ExecResult, err error) {
	defer guard.Recover(&err, "engine.answer")
	pl, err = e.planFor(ctx, crs)
	if err != nil {
		return nil, nil, err
	}
	release, err := e.cfg.Gate.Acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	f, err := index(ctx)
	if err != nil {
		return nil, nil, err
	}
	exec, err = pl.Exec(ctx, f, plan.ExecOptions{Backend: backend})
	if err != nil {
		return nil, nil, err
	}
	return pl, exec, nil
}

// observeAnswer folds one answer execution into the metrics registry
// and, when slow (or internally failed), into the slow-query log under
// op "answer" with its plan-stage breakdown.
func (e *Engine) observeAnswer(q, v *tpq.Pattern, sp *obs.Span, d time.Duration, err error) {
	e.metrics.ObserveSpan(sp)
	var ie *guard.InternalError
	internal := errors.As(err, &ie)
	th := e.slow.Threshold()
	if !internal && (th <= 0 || d < th) {
		return
	}
	entry := obs.SlowEntry{
		Time:       time.Now(),
		Op:         names.OpAnswer,
		Query:      q.Canonical(),
		View:       v.Canonical(),
		DurationNs: int64(d),
		StageNs:    sp.StageNs(),
	}
	if err != nil {
		entry.Err = err.Error()
	}
	if internal {
		entry.Stack = string(ie.Stack)
	}
	e.slow.Record(entry)
}

// AnswerDoc answers the request's query over d strictly through the
// view: the view is materialized, the MCR's compensation queries are
// compiled into an answer plan (cached by canonical CR union), and the
// plan executes over the indexed view windows. Returns
// ErrNotAnswerable when no contained rewriting exists.
func (e *Engine) AnswerDoc(ctx context.Context, req Request, d *xmltree.Document) (*Answer, error) {
	ctx, cancel := e.withDeadline(ctx)
	defer cancel()
	res, err := e.Rewrite(ctx, req)
	if err != nil {
		return nil, err
	}
	if res.Union.Empty() {
		return nil, ErrNotAnswerable
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.NewSpan()
	start := time.Now()
	actx := obs.WithSpan(ctx, sp)
	viewNodes := rewrite.MaterializeView(req.View, d)
	pl, exec, err := e.answerPlan(actx, res.CRs, func(c context.Context) (*plan.Forest, error) {
		return plan.IndexSubtrees(c, d, viewNodes)
	}, req.PlanBackend)
	e.observeAnswer(req.Query, req.View, sp, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return &Answer{
		Result:    res,
		ViewNodes: viewNodes,
		Answers:   exec.Nodes(),
		Direct:    req.Query.Evaluate(d),
		Plan:      pl,
		Exec:      exec,
	}, nil
}

// AnswerRequest is an answering request in textual form.
type AnswerRequest struct {
	Query    string
	View     string
	Document string // XML text
	Schema   string // optional schema DSL text
	Backend  string // optional plan backend ("auto", "structjoin", "treedp", "stream")
}

// AnswerExpr parses the request and answers the query through the view
// over the document.
func (e *Engine) AnswerExpr(ctx context.Context, req AnswerRequest) (*Answer, error) {
	parsed, err := e.parseRewriteRequest(RewriteRequest{Query: req.Query, View: req.View, Schema: req.Schema})
	if err != nil {
		return nil, err
	}
	if parsed.PlanBackend, err = parseBackend(req.Backend); err != nil {
		return nil, err
	}
	d, err := xmltree.ParseString(req.Document)
	if err != nil {
		return nil, &InvalidRequestError{Field: "document", Err: err}
	}
	return e.AnswerDoc(ctx, parsed, d)
}

func parseBackend(s string) (plan.Backend, error) {
	if s == "" {
		return plan.Auto, nil
	}
	b, err := plan.ParseBackend(s)
	if err != nil {
		return plan.Auto, &InvalidRequestError{Field: "backend", Err: err}
	}
	return b, nil
}

// RegisterView stores a materialized view under name, replacing any
// previous registration. This is the mediator's catalog of shipped
// views.
func (e *Engine) RegisterView(name string, m *viewstore.Materialized) {
	e.views.Register(name, m)
}

// RegisterViewExpr parses the view expression and document, evaluates
// the view over it, and registers the shipped forest under name — the
// HTTP registration endpoint's engine half.
func (e *Engine) RegisterViewExpr(name, view, document string) (*viewstore.Materialized, error) {
	if name == "" {
		return nil, &InvalidRequestError{Field: "name", Err: errors.New("empty view name")}
	}
	v, err := tpq.Parse(view)
	if err != nil {
		return nil, &InvalidRequestError{Field: "view", Err: err}
	}
	d, err := xmltree.ParseString(document)
	if err != nil {
		return nil, &InvalidRequestError{Field: "document", Err: err}
	}
	m := viewstore.Materialize(v, d)
	e.views.Register(name, m)
	return m, nil
}

// View returns the materialized view registered under name.
func (e *Engine) View(name string) (*viewstore.Materialized, bool) {
	return e.views.Get(name)
}

// ViewNames returns the names of the registered stored views, sorted.
func (e *Engine) ViewNames() []string { return e.views.Names() }

// ViewStats returns the view catalog's statistics (registration count,
// shard count, interned tag dictionary size, mutation generation).
func (e *Engine) ViewStats() viewstore.CatalogStats { return e.views.Stats() }

// ViewCandidates returns the names of the stored views the catalog's
// signature index admits as possible sources of a nonempty rewriting
// of q — a superset of the truly useful views, selected without
// touching the view patterns.
func (e *Engine) ViewCandidates(ctx context.Context, q *tpq.Pattern) ([]string, error) {
	return e.views.Candidates(ctx, q, nil)
}

// SelectViews returns the top k stored views for q ranked by signature
// tightness; k <= 0 returns all candidates, ranked.
func (e *Engine) SelectViews(ctx context.Context, q *tpq.Pattern, k int) ([]viewstore.SelectedView, error) {
	return e.views.SelectViews(ctx, q, k)
}

// MultiView is the outcome of a catalog-wide rewriting: the multi-view
// MCR plus the view sources that were actually considered (the
// signature-selected candidate set, in the order MultiViewResult
// indexes refer to).
type MultiView struct {
	Result *rewrite.MultiViewResult
	Views  []rewrite.ViewSource
}

// RewriteAllViews computes the maximal contained rewriting of q over
// the stored-view catalog. The candidate set is chosen by the
// signature index: with a top-k cap (the argument, else
// Config.TopKViews) the k tightest-ranked candidates; otherwise, for a
// '/'-rooted query, exactly the index's candidate views (the excluded
// views provably contribute nothing); otherwise every view. The
// rewriting itself runs through the batched rewrite.MCRMultiView
// pipeline under the engine's gate, budget and deadline.
func (e *Engine) RewriteAllViews(ctx context.Context, q *tpq.Pattern, topK int) (*MultiView, error) {
	ctx, cancel := e.withDeadline(ctx)
	defer cancel()
	if topK <= 0 {
		topK = e.cfg.TopKViews
	}
	var selected []string
	switch {
	case topK > 0:
		sel, err := e.views.SelectViews(ctx, q, topK)
		if err != nil {
			return nil, err
		}
		for _, s := range sel {
			selected = append(selected, s.Name)
		}
	case q != nil && q.Root != nil && q.Root.Axis == tpq.Child:
		// '/'-rooted: index-excluded views admit neither a nonempty nor
		// the trivial embedding, so the candidate set is lossless.
		var err error
		if selected, err = e.views.Candidates(ctx, q, nil); err != nil {
			return nil, err
		}
		sort.Strings(selected)
	default:
		selected = e.views.Names()
	}
	sources := make([]rewrite.ViewSource, 0, len(selected))
	for _, name := range selected {
		if m, ok := e.views.Get(name); ok && m != nil && m.Expr != nil {
			sources = append(sources, rewrite.ViewSource{Name: name, View: m.Expr})
		}
	}
	release, err := e.cfg.Gate.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	sp := obs.NewSpan()
	cctx := obs.WithSpan(ctx, sp)
	res, err := rewrite.MCRMultiView(q, sources, rewrite.Options{MaxEmbeddings: e.cfg.MaxEmbeddings, Context: cctx})
	e.metrics.ObserveSpan(sp)
	if err != nil {
		return nil, err
	}
	return &MultiView{Result: res, Views: sources}, nil
}

// StoredAnswer is the outcome of answering through a registered stored
// view: the rewriting, the answers (nodes of the stored trees, in
// (tree, preorder) order), and the plan execution detail.
type StoredAnswer struct {
	Result  *rewrite.Result
	Answers []*xmltree.Node
	Trees   int
	Plan    *plan.Plan
	Exec    *plan.ExecResult
}

// AnswerStoredView answers q using only the named stored view: the MCR
// of q using the view's expression is computed (cached), its
// compensations compile to a plan (cached), and the plan executes over
// the view's cached forest index — the source database is never
// touched.
func (e *Engine) AnswerStoredView(ctx context.Context, q *tpq.Pattern, viewName string, backend plan.Backend) (*StoredAnswer, error) {
	ctx, cancel := e.withDeadline(ctx)
	defer cancel()
	m, ok := e.View(viewName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownView, viewName)
	}
	res, err := e.Rewrite(ctx, Request{Query: q, View: m.Expr})
	if err != nil {
		return nil, err
	}
	if res.Union.Empty() {
		return nil, ErrNotAnswerable
	}
	sp := obs.NewSpan()
	start := time.Now()
	actx := obs.WithSpan(ctx, sp)
	pl, exec, err := e.answerPlan(actx, res.CRs, m.ForestIndex, backend)
	e.observeAnswer(q, m.Expr, sp, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return &StoredAnswer{
		Result:  res,
		Answers: exec.Nodes(),
		Trees:   len(m.Forest),
		Plan:    pl,
		Exec:    exec,
	}, nil
}

// AnswerStored is the historical form of AnswerStoredView, returning
// the rewriting and the answers.
func (e *Engine) AnswerStored(ctx context.Context, q *tpq.Pattern, viewName string) (*rewrite.Result, []*xmltree.Node, error) {
	sa, err := e.AnswerStoredView(ctx, q, viewName, plan.Auto)
	if err != nil {
		return nil, nil, err
	}
	return sa.Result, sa.Answers, nil
}

// AnswerStoredExpr parses the query and answers it through the named
// stored view.
func (e *Engine) AnswerStoredExpr(ctx context.Context, query, viewName, backend string) (*StoredAnswer, error) {
	q, err := tpq.Parse(query)
	if err != nil {
		return nil, &InvalidRequestError{Field: "query", Err: err}
	}
	b, err := parseBackend(backend)
	if err != nil {
		return nil, err
	}
	return e.AnswerStoredView(ctx, q, viewName, b)
}

// Contain decides containment both ways between p and q, schema-
// relative when g is non-nil.
func (e *Engine) Contain(ctx context.Context, p, q *tpq.Pattern, g *schema.Graph) (pInQ, qInP bool, err error) {
	ctx, cancel := e.withDeadline(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return false, false, err
	}
	start := time.Now()
	defer func() { e.metrics.ObserveStage(obs.StageContain, time.Since(start)) }()
	if g == nil {
		return tpq.Contained(p, q), tpq.Contained(q, p), nil
	}
	sc := e.SchemaContext(g)
	pInQ = sc.SContained(p, q)
	if err := ctx.Err(); err != nil {
		return false, false, err
	}
	return pInQ, sc.SContained(q, p), nil
}

// ContainRequest is a containment request in textual form.
type ContainRequest struct {
	P      string
	Q      string
	Schema string // optional schema DSL text
}

// ContainExpr parses the request and decides containment both ways.
func (e *Engine) ContainExpr(ctx context.Context, req ContainRequest) (pInQ, qInP bool, err error) {
	p, q, g, err := e.parseContainRequest(req)
	if err != nil {
		return false, false, err
	}
	return e.Contain(ctx, p, q, g)
}

func (e *Engine) parseContainRequest(req ContainRequest) (p, q *tpq.Pattern, g *schema.Graph, err error) {
	start := time.Now()
	defer func() { e.metrics.ObserveStage(obs.StageParse, time.Since(start)) }()
	if p, err = tpq.Parse(req.P); err != nil {
		return nil, nil, nil, &InvalidRequestError{Field: "p", Err: err}
	}
	if q, err = tpq.Parse(req.Q); err != nil {
		return nil, nil, nil, &InvalidRequestError{Field: "q", Err: err}
	}
	if req.Schema != "" {
		if g, err = schema.Parse(req.Schema); err != nil {
			return nil, nil, nil, &InvalidRequestError{Field: "schema", Err: err}
		}
	}
	return p, q, g, nil
}

// Chase exposes the chase procedure as an inspection utility: the
// goal-directed intelligent chase toward q when q is non-nil (Lemma 4),
// the exhaustive fixpoint chase otherwise. The exhaustive chase can be
// exponential, so it honors ctx cancellation.
func (e *Engine) Chase(ctx context.Context, v, q *tpq.Pattern, g *schema.Graph) (*tpq.Pattern, error) {
	ctx, cancel := e.withDeadline(ctx)
	defer cancel()
	start := time.Now()
	defer func() { e.metrics.ObserveStage(obs.StageChase, time.Since(start)) }()
	sigma := e.Constraints(g)
	if q != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return chase.Intelligent(v, q, sigma), nil
	}
	return chase.Exhaustive(ctx, v, sigma, chase.Options{})
}

// Stats is a point-in-time snapshot of the engine's shared state.
// CacheHits, CacheMisses and CacheDedups are disjoint: a lookup is
// exactly one of a completed-entry hit, a leader computation, or a
// follower wait deduplicated onto an in-flight leader.
type Stats struct {
	CacheHits    int64
	CacheMisses  int64
	CacheDedups  int64
	CacheEntries int
	// CacheWarmHits counts lookups served by the persistent warm tier
	// (decoded from disk and promoted, no recompute) — disjoint from
	// hits, misses and dedups.
	CacheWarmHits int64
	// Persistent-tier gauges; all zero for a memory-only engine.
	WarmEntries   int
	WarmReplayed  int64
	Persisted     int64
	PersistDrops  int64
	PersistErrors int64
	SegmentBytes  int64
	// WarmBootErr is the persistent-tier open failure that disabled the
	// tier, if any.
	WarmBootErr string
	// Interner counters: text hits (no parse), parses, and parses that
	// collapsed onto a canonically identical shared pattern.
	InternHits   int64
	InternMisses int64
	InternDedups int64

	PlanCacheHits  int64
	PlanCacheMiss  int64
	PlanCacheDedup int64
	PlanEntries    int
	SchemaContexts int
	StoredViews    int
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	hits, misses, dedups := e.cache.Stats()
	phits, pmisses, pdedups := e.plans.Stats()
	ihits, imisses, idedups := e.intern.stats()
	st := Stats{
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheDedups:    dedups,
		CacheEntries:   e.cache.Len(),
		CacheWarmHits:  e.cache.WarmHits(),
		WarmBootErr:    e.warmErr,
		InternHits:     ihits,
		InternMisses:   imisses,
		InternDedups:   idedups,
		PlanCacheHits:  phits,
		PlanCacheMiss:  pmisses,
		PlanCacheDedup: pdedups,
		PlanEntries:    e.plans.Len(),
		StoredViews:    e.views.Len(),
	}
	if p := e.persist; p != nil {
		ps := p.Stats()
		st.WarmEntries = ps.Entries
		st.WarmReplayed = ps.Replayed
		st.Persisted = ps.Appended
		st.PersistDrops = ps.Dropped
		st.PersistErrors = ps.Errors
		st.SegmentBytes = ps.SegmentBytes
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	st.SchemaContexts = len(e.schemas)
	return st
}

// MetricsSnapshot returns the full observability document: endpoint and
// stage metrics from the registry, the cache counters, engine-level
// gauges, and the slow-query log. GET /metrics serves exactly this
// value, qavd republishes it through expvar, and qavbench -json embeds
// its Stages section — one schema for offline and live reporting.
func (e *Engine) MetricsSnapshot() obs.Snapshot {
	snap := e.metrics.Snapshot()
	st := e.Stats()
	snap.Cache = &obs.CacheSnapshot{
		Hits:          st.CacheHits,
		WarmHits:      st.CacheWarmHits,
		Misses:        st.CacheMisses,
		Dedups:        st.CacheDedups,
		Entries:       st.CacheEntries,
		WarmEntries:   st.WarmEntries,
		Replayed:      st.WarmReplayed,
		Persisted:     st.Persisted,
		PersistDrops:  st.PersistDrops,
		PersistErrors: st.PersistErrors,
		SegmentBytes:  st.SegmentBytes,
	}
	snap.Engine = map[string]int64{
		"schemaContexts":  int64(st.SchemaContexts),
		"storedViews":     int64(st.StoredViews),
		"planCacheHits":   st.PlanCacheHits,
		"planCacheMisses": st.PlanCacheMiss,
		"planCacheDedups": st.PlanCacheDedup,
		"planCacheSize":   int64(st.PlanEntries),
		"internHits":      st.InternHits,
		"internMisses":    st.InternMisses,
		"internDedups":    st.InternDedups,
	}
	if g := e.cfg.Gate; g != nil {
		gs := g.Stats()
		snap.Gate = &obs.GateSnapshot{
			InFlight: gs.InFlight,
			Queued:   gs.Queued,
			Admitted: gs.Admitted,
			Shed:     gs.Shed,
		}
	}
	slow := e.slow.Snapshot()
	snap.SlowLog = &slow
	return snap
}
