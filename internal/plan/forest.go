package plan

import (
	"context"
	"fmt"
	"sync"

	"qav/internal/obs"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// Tree is one member of an indexed forest: the node the compensation
// queries are pinned to, plus the document that backs its storage. For
// a shipped forest (viewstore) every tree is a standalone document and
// Root == Doc.Root; for in-document answering every tree is a window of
// one shared document and Root is a materialized view node.
type Tree struct {
	Doc  *xmltree.Document
	Root *xmltree.Node
}

// item is one occurrence of a tag in the forest. Items are kept in
// (tree, preorder) order; the packed key makes that order — and the
// parent/ancestor membership tests of the structural joins — a single
// uint64 comparison.
type item struct {
	tree int32
	node *xmltree.Node
}

// key packs (tree, preorder index) into one comparable word. Interval
// labels are only meaningful within a tree, and the tree id in the high
// bits keeps every join from ever matching across trees.
func (it item) key() uint64 { return packKey(it.tree, it.node.Index) }

func packKey(tree int32, index int) uint64 {
	return uint64(uint32(tree))<<32 | uint64(uint32(index))
}

// Forest is the execution-side index of a materialized view forest:
// inverted tag lists over every tree, in global (tree, preorder) order,
// built once per forest and immutable afterwards. Programs compiled by
// Compile execute against it; see Plan.Exec.
type Forest struct {
	trees []Tree
	// byTag lists every occurrence of a tag across the forest in
	// (tree, preorder) order. Nodes of a shared document that fall in
	// several (nested) view windows appear once per window, so joins
	// confined to one tree always see the full window contents.
	byTag map[string][]item
	// roots lists the tree roots in tree order — the candidates
	// compensation roots are pinned to.
	roots []item
	// shared marks forests whose trees are windows of one document;
	// answers are then returned in global document order rather than
	// (tree, preorder) order.
	shared bool
	// size is the total number of indexed items; maxTree the largest
	// single tree. Both feed the backend-selection heuristic.
	size    int
	maxTree int

	// all is the lazy concatenation of every indexed item in (tree,
	// preorder) order — the candidate list of Wildcard pattern nodes,
	// built only when a wildcard program actually joins.
	allOnce sync.Once
	all     []item
}

// Trees returns the number of trees in the forest.
func (f *Forest) Trees() int { return len(f.trees) }

// Size returns the total number of indexed nodes (counting a shared
// node once per window containing it).
func (f *Forest) Size() int { return f.size }

// Cardinality returns the number of occurrences of tag in the forest.
func (f *Forest) Cardinality(tag string) int { return len(f.byTag[tag]) }

// Tree returns the i-th tree.
func (f *Forest) Tree(i int) Tree { return f.trees[i] }

// Shared reports whether the forest's trees are windows of one shared
// document (see IndexSubtrees).
func (f *Forest) Shared() bool { return f.shared }

// IndexForest indexes a shipped forest of standalone trees — the
// viewstore.Materialized layout, where each view answer is its own
// document. Indexing walks every node, so the context is polled once
// per tree and a cancelled ctx aborts with its error.
func IndexForest(ctx context.Context, forest []*xmltree.Document) (*Forest, error) {
	trees := make([]Tree, 0, len(forest))
	for _, d := range forest {
		if d == nil || d.Root == nil {
			continue
		}
		trees = append(trees, Tree{Doc: d, Root: d.Root})
	}
	return indexTrees(ctx, trees, false)
}

// IndexSubtrees indexes a view materialization that lives inside one
// document: each view node's subtree window becomes a tree. Windows may
// nest or overlap (a view like //a//a matches along a chain), so a
// document node is indexed once per window containing it — exactly the
// per-view-node visibility the naive evaluator has. The context is
// polled once per window.
func IndexSubtrees(ctx context.Context, d *xmltree.Document, viewNodes []*xmltree.Node) (*Forest, error) {
	trees := make([]Tree, 0, len(viewNodes))
	for _, n := range viewNodes {
		if n == nil {
			continue
		}
		trees = append(trees, Tree{Doc: d, Root: n})
	}
	return indexTrees(ctx, trees, true)
}

// IndexDocument indexes one whole document as a single-tree forest —
// the degenerate case the structjoin façade evaluates general (not
// root-pinned) patterns against.
func IndexDocument(ctx context.Context, d *xmltree.Document) (*Forest, error) {
	if d == nil || d.Root == nil {
		return indexTrees(ctx, nil, true)
	}
	return indexTrees(ctx, []Tree{{Doc: d, Root: d.Root}}, true)
}

func indexTrees(ctx context.Context, trees []Tree, shared bool) (*Forest, error) {
	sp := obs.SpanFrom(ctx)
	start := sp.Start()
	defer sp.Observe(obs.StagePlanIndex, start)
	if len(trees) > 1<<31-1 {
		return nil, fmt.Errorf("plan: forest of %d trees exceeds the tree-id space", len(trees))
	}
	f := &Forest{trees: trees, byTag: make(map[string][]item), shared: shared}
	for ti, t := range trees {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		window := t.Doc.Window(t.Root)
		for _, n := range window {
			f.byTag[n.Tag] = append(f.byTag[n.Tag], item{tree: int32(ti), node: n})
		}
		f.roots = append(f.roots, item{tree: int32(ti), node: t.Root})
		f.size += len(window)
		if len(window) > f.maxTree {
			f.maxTree = len(window)
		}
	}
	return f, nil
}

// rootItems returns the tree roots whose tag matches the compensation
// root — the pinning candidates of a program. Tree order is preserved,
// which is (tree, preorder) order since every root is its tree's first
// node. A Wildcard root matches every tree.
func (f *Forest) rootItems(tag string) []item {
	if tag == tpq.Wildcard {
		return f.roots
	}
	var out []item
	for _, r := range f.roots {
		if r.node.Tag == tag {
			out = append(out, r)
		}
	}
	return out
}

// itemsFor returns the candidate list of a pattern-node tag: the
// inverted list, or every indexed item for the Wildcard tag.
func (f *Forest) itemsFor(tag string) []item {
	if tag != tpq.Wildcard {
		return f.byTag[tag]
	}
	f.allOnce.Do(func() {
		out := make([]item, 0, f.size)
		for ti, t := range f.trees {
			for _, n := range t.Doc.Window(t.Root) {
				out = append(out, item{tree: int32(ti), node: n})
			}
		}
		f.all = out
	})
	return f.all
}

// cardinalityFor is itemsFor's counting companion for the backend
// heuristic: it avoids building the wildcard list just to size it.
func (f *Forest) cardinalityFor(tag string) int {
	if tag == tpq.Wildcard {
		return f.size
	}
	return len(f.byTag[tag])
}
