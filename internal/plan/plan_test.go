package plan

import (
	"context"
	"strings"
	"testing"

	"qav/internal/tpq"
	"qav/internal/xmltree"
)

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCompileEmptyPlan(t *testing.T) {
	ctx := context.Background()
	pl, err := Compile(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Programs() != 0 || pl.Key() != "" {
		t.Fatalf("empty plan: %d programs, key %q", pl.Programs(), pl.Key())
	}
	f, err := IndexDocument(ctx, mustDoc(t, "<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Exec(ctx, f, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || res.Nodes() != nil {
		t.Fatalf("empty plan produced answers: %v", res.Matches)
	}
}

func TestCompileDedupAndKey(t *testing.T) {
	ctx := context.Background()
	a := tpq.MustParse("/a//b")
	a2 := tpq.MustParse("/a//b")
	b := tpq.MustParse("/a/c")
	pl, err := Compile(ctx, []*tpq.Pattern{a, a2, b, a})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Programs() != 2 {
		t.Fatalf("programs = %d, want 2 (duplicates must collapse)", pl.Programs())
	}
	key, err := KeyOf([]*tpq.Pattern{b, a}) // reversed order
	if err != nil {
		t.Fatal(err)
	}
	if key != pl.Key() {
		t.Fatalf("KeyOf order-dependent: %q vs %q", key, pl.Key())
	}
}

func TestKeyIgnoresRootAxis(t *testing.T) {
	// Compensations are pinned at view nodes; EvaluateAt ignores the
	// root axis, so the plan key must too.
	k1, err := KeyOf([]*tpq.Pattern{tpq.MustParse("/a/b")})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyOf([]*tpq.Pattern{tpq.MustParse("//a/b")})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("keys differ on root axis only: %q vs %q", k1, k2)
	}
}

func TestCompileRejectsNil(t *testing.T) {
	if _, err := Compile(context.Background(), []*tpq.Pattern{nil}); err == nil {
		t.Fatal("Compile accepted a nil compensation")
	}
	if _, err := KeyOf([]*tpq.Pattern{nil}); err == nil {
		t.Fatal("KeyOf accepted a nil compensation")
	}
}

func TestParseBackend(t *testing.T) {
	for _, name := range []string{"auto", "structjoin", "treedp", "stream"} {
		b, err := ParseBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.String() != name {
			t.Fatalf("round trip %q -> %v", name, b)
		}
	}
	if _, err := ParseBackend("quantum"); err == nil {
		t.Fatal("ParseBackend accepted an unknown name")
	}
	if Backend(99).String() != "unknown" {
		t.Fatalf("out-of-range backend String = %q", Backend(99).String())
	}
}

func TestForestStats(t *testing.T) {
	ctx := context.Background()
	forest := []*xmltree.Document{
		mustDoc(t, "<a><b/><b/></a>"),
		mustDoc(t, "<a><c/></a>"),
	}
	f, err := IndexForest(ctx, forest)
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees() != 2 || f.Shared() {
		t.Fatalf("Trees=%d Shared=%v", f.Trees(), f.Shared())
	}
	if f.Size() != 5 || f.Cardinality("b") != 2 || f.Cardinality("a") != 2 {
		t.Fatalf("Size=%d card(b)=%d card(a)=%d", f.Size(), f.Cardinality("b"), f.Cardinality("a"))
	}
	if f.maxTree != 3 {
		t.Fatalf("maxTree = %d, want 3", f.maxTree)
	}
}

func TestIndexSubtreesNestedWindows(t *testing.T) {
	// A view like //a//a materializes nested windows; nodes must be
	// indexed once per window so every program sees per-window contents.
	ctx := context.Background()
	d := mustDoc(t, "<a><a><b/></a></a>")
	v := tpq.MustParse("//a")
	f, err := IndexSubtrees(ctx, d, v.Evaluate(d))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Shared() || f.Trees() != 2 {
		t.Fatalf("Shared=%v Trees=%d", f.Shared(), f.Trees())
	}
	if f.Size() != 5 { // outer window 3 nodes + inner window 2
		t.Fatalf("Size = %d, want 5", f.Size())
	}
	// The shared-window answer union must report the inner b once, in
	// global document order.
	pl, err := Compile(ctx, []*tpq.Pattern{tpq.MustParse("/a//b")})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []Backend{StructJoin, TreeDP, Stream, Auto} {
		res, err := pl.Exec(ctx, f, ExecOptions{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		nodes := res.Nodes()
		if len(nodes) != 1 || nodes[0].Tag != "b" {
			t.Fatalf("backend %v: answers %v, want the single b", be, nodes)
		}
	}
}

func TestBackendsRecorded(t *testing.T) {
	ctx := context.Background()
	f, err := IndexDocument(ctx, mustDoc(t, "<a><b/><c/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(ctx, []*tpq.Pattern{tpq.MustParse("/a/b"), tpq.MustParse("/a/c")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Exec(ctx, f, ExecOptions{Backend: TreeDP, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Backends) != 2 || res.Backends[0] != TreeDP || res.Backends[1] != TreeDP {
		t.Fatalf("Backends = %v, want [treedp treedp]", res.Backends)
	}
}

func TestWildcardAllBackendsAgree(t *testing.T) {
	ctx := context.Background()
	d := mustDoc(t, "<a><b><c/></b><d><c/><e/></d></a>")
	f, err := IndexDocument(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(ctx, []*tpq.Pattern{tpq.MustParse("/a/*/c")})
	if err != nil {
		t.Fatal(err)
	}
	var want []*xmltree.Node
	for _, be := range []Backend{TreeDP, StructJoin, Stream, Auto} {
		res, err := pl.Exec(ctx, f, ExecOptions{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Nodes()
		if be == TreeDP {
			want = got
			if len(want) != 2 {
				t.Fatalf("wildcard answers = %d, want 2", len(want))
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("backend %v: %d answers, TreeDP found %d", be, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("backend %v diverges at %d", be, i)
			}
		}
	}
}

func TestExecHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f, err := IndexDocument(ctx, mustDoc(t, "<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(ctx, []*tpq.Pattern{tpq.MustParse("/a/b")})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := pl.Exec(ctx, f, ExecOptions{}); err != context.Canceled {
		t.Fatalf("Exec after cancel: err = %v", err)
	}
	if _, err := Compile(ctx, []*tpq.Pattern{tpq.MustParse("/a")}); err != context.Canceled {
		t.Fatalf("Compile after cancel: err = %v", err)
	}
	if _, err := IndexDocument(ctx, mustDoc(t, "<a/>")); err != context.Canceled {
		t.Fatalf("Index after cancel: err = %v", err)
	}
}

func TestEvaluateIndexedMatchesEvaluate(t *testing.T) {
	ctx := context.Background()
	d := mustDoc(t, "<a><b><c/></b><b/><c><b><c/></b></c></a>")
	f, err := IndexDocument(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, expr := range []string{"/a", "//b", "//b/c", "/a//c", "//c[b]", "//*[c]/c"} {
		p := tpq.MustParse(expr)
		got, err := EvaluateIndexed(ctx, f, p)
		if err != nil {
			t.Fatal(err)
		}
		want := p.Evaluate(d)
		if len(got) != len(want) {
			t.Fatalf("%s: %d answers, Evaluate found %d", expr, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: diverges at %d", expr, i)
			}
		}
	}
}

func TestKeySeparatorUnambiguous(t *testing.T) {
	// Canonical forms never contain NUL, so the joined key cannot
	// collide across different canon multisets.
	k, err := KeyOf([]*tpq.Pattern{tpq.MustParse("/a/b"), tpq.MustParse("/c")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k, "\x00") {
		t.Fatalf("expected NUL-joined key, got %q", k)
	}
}
