// Differential tests: compiled-plan answers must be identical — same
// nodes, same order — to the frozen naive evaluators in
// internal/rewrite/answer_ref.go, over random (query, view, document)
// instances, for every backend, in both forest layouts (shared-document
// windows and shipped standalone trees). External test package: the
// references live in rewrite, which imports plan.
package plan_test

import (
	"context"
	"math/rand"
	"testing"

	"qav/internal/leaktest"
	"qav/internal/plan"
	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/viewstore"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

var allBackends = []plan.Backend{plan.Auto, plan.StructJoin, plan.TreeDP, plan.Stream}

// sameNodes demands pointer-identical answers in identical order.
func sameNodes(got, want []*xmltree.Node) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// diffInstance checks one (CRs, document) instance in both layouts
// against both references, under every backend and both the serial and
// parallel exec paths. Returns the number of backend comparisons made.
func diffInstance(t *testing.T, ctx context.Context, tag string, crs []*rewrite.ContainedRewriting, v *tpq.Pattern, d *xmltree.Document) int {
	t.Helper()
	comps := rewrite.Compensations(crs)
	pl, err := plan.Compile(ctx, comps)
	if err != nil {
		t.Fatalf("%s: compile: %v", tag, err)
	}
	checks := 0

	// Shared layout: windows of the source document.
	viewNodes := rewrite.MaterializeView(v, d)
	wantShared, err := rewrite.NaiveAnswerMaterialized(ctx, crs, d, viewNodes)
	if err != nil {
		t.Fatalf("%s: naive materialized: %v", tag, err)
	}
	fShared, err := plan.IndexSubtrees(ctx, d, viewNodes)
	if err != nil {
		t.Fatalf("%s: index subtrees: %v", tag, err)
	}
	for _, be := range allBackends {
		for _, par := range []int{1, 4} {
			res, err := pl.Exec(ctx, fShared, plan.ExecOptions{Backend: be, Parallel: par})
			if err != nil {
				t.Fatalf("%s: exec %v par=%d: %v", tag, be, par, err)
			}
			if !sameNodes(res.Nodes(), wantShared) {
				t.Fatalf("%s: backend %v par=%d diverges on shared forest:\n got %v\nwant %v",
					tag, be, par, paths(res.Nodes()), paths(wantShared))
			}
			checks++
		}
	}

	// Shipped layout: standalone cloned trees (the viewstore contract).
	m := viewstore.Materialize(v, d)
	wantForest, err := rewrite.NaiveAnswerForest(ctx, crs, m.Forest)
	if err != nil {
		t.Fatalf("%s: naive forest: %v", tag, err)
	}
	fShipped, err := plan.IndexForest(ctx, m.Forest)
	if err != nil {
		t.Fatalf("%s: index forest: %v", tag, err)
	}
	for _, be := range allBackends {
		res, err := pl.Exec(ctx, fShipped, plan.ExecOptions{Backend: be})
		if err != nil {
			t.Fatalf("%s: exec %v shipped: %v", tag, be, err)
		}
		if !sameNodes(res.Nodes(), wantForest) {
			t.Fatalf("%s: backend %v diverges on shipped forest:\n got %v\nwant %v",
				tag, be, paths(res.Nodes()), paths(wantForest))
		}
		checks++
	}
	return checks
}

func paths(ns []*xmltree.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Path()
	}
	return out
}

// TestPlanDiffRandom is the main differential sweep: ≥500 random
// (query, view, document) instances, every backend, both layouts.
func TestPlanDiffRandom(t *testing.T) {
	defer leaktest.Check(t)()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "c"}
	const instances = 520
	answerable := 0
	for i := 0; i < instances; i++ {
		q := workload.RandomPattern(rng, alphabet, 6)
		v := workload.RandomPattern(rng, alphabet, 5)
		res, err := rewrite.MCR(q, v, rewrite.Options{MaxEmbeddings: 1 << 14, Context: ctx})
		if err != nil {
			t.Fatalf("instance %d: MCR(%s, %s): %v", i, q, v, err)
		}
		d := xmltree.Generate(rng, xmltree.GenSpec{
			Tags: alphabet, MaxDepth: 5, MaxFanout: 3, TargetSize: 30,
		})
		if len(res.CRs) > 0 {
			answerable++
		}
		// Unanswerable instances still diff: an empty plan must produce
		// an empty answer set everywhere.
		diffInstance(t, ctx, q.String()+" / "+v.String(), res.CRs, v, d)
	}
	if answerable < instances/10 {
		t.Fatalf("only %d/%d instances answerable: workload too weak to trust", answerable, instances)
	}
	t.Logf("%d instances (%d answerable)", instances, answerable)
}

// TestPlanDiffWildcards covers wildcard compensations, which exercise
// the forest's all-items candidate path in the structural joins. The
// MCR algorithms reject wildcard queries (outside XP{/,//,[]}), so
// these compensations are synthetic — the path still matters because
// the structjoin façade evaluates arbitrary tpq patterns through the
// same join core.
func TestPlanDiffWildcards(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b", tpq.Wildcard}
	docTags := []string{"a", "b", "c"}
	for i := 0; i < 100; i++ {
		v := workload.RandomPattern(rng, docTags, 4) // views stay concrete
		crs := []*rewrite.ContainedRewriting{
			{Compensation: workload.RandomPattern(rng, alphabet, 5)},
			{Compensation: workload.RandomPattern(rng, alphabet, 4)},
		}
		d := xmltree.Generate(rng, xmltree.GenSpec{
			Tags: docTags, MaxDepth: 4, MaxFanout: 3, TargetSize: 25,
		})
		diffInstance(t, ctx, "wildcard "+v.String(), crs, v, d)
	}
}

// TestPlanDiffFixtures pins the paper's running example end to end.
func TestPlanDiffFixtures(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	d, err := workload.ClinicalTrialsDoc(ctx, rng, 20, 6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ q, v string }{
		{"//Trials[//Status]//Trial/Patient", "//Trials//Trial"},
		{"//Trials//Trial", "//Trials//Trial"},
		{"//Trials//Trial[Status]", "//Trials//Trial"},
		{"//Trial/Patient", "//Trials"},
	} {
		q := tpq.MustParse(tc.q)
		v := tpq.MustParse(tc.v)
		res, err := rewrite.MCR(q, v, rewrite.Options{Context: ctx})
		if err != nil {
			t.Fatal(err)
		}
		diffInstance(t, ctx, tc.q+" / "+tc.v, res.CRs, v, d)
	}
}

// TestPlanExecCancelParallel: a cancelled context must abort the
// parallel exec path promptly and leak no goroutines.
func TestPlanExecCancelParallel(t *testing.T) {
	defer leaktest.Check(t)()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	d, err := workload.ClinicalTrialsDoc(ctx, rng, 50, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	v := tpq.MustParse("//Trials")
	viewNodes := v.Evaluate(d)
	f, err := plan.IndexSubtrees(ctx, d, viewNodes)
	if err != nil {
		t.Fatal(err)
	}
	comps := []*tpq.Pattern{
		tpq.MustParse("/Trials//Trial/Patient"),
		tpq.MustParse("/Trials//Trial[Status]"),
		tpq.MustParse("/Trials//Patient"),
		tpq.MustParse("/Trials//Status"),
	}
	pl, err := plan.Compile(ctx, comps)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := pl.Exec(cctx, f, plan.ExecOptions{Parallel: 4}); err != context.Canceled {
		t.Fatalf("parallel exec after cancel: err = %v", err)
	}
}
