// Package plan compiles the output of the rewriting pipeline — a set
// of compensation queries, one per contained rewriting of the MCR —
// into an executable, immutable answer plan.
//
// The paper's mediator answers a query by running every CR's
// compensation query over the materialized view forest (E ∘ V,
// footnote 1 of §2). Evaluating each compensation naively against each
// view subtree repeats work proportional to |CRs| × |forest| × |E|.
// This package splits that into the classic three phases of the
// structural-join literature the paper cites (Al-Khalifa et al.,
// Bruno et al., and the tree-pattern survey):
//
//   - compile: each compensation query is normalized (root pinned, so
//     all backends agree on the pinned-root semantics of EvaluateAt),
//     deduplicated by canonical form, and lowered to a structural-join
//     program over preorder positions. Plans are pure functions of the
//     CR union, so the engine caches them by Key.
//   - index: the view forest is indexed once into inverted tag lists
//     with (pre, end) interval labels (see Forest) — shared by every
//     program and every request against the same materialization.
//   - exec: the programs run against the index (structural joins by
//     default, the per-tree dynamic program or the streaming evaluator
//     when the heuristic prefers them) and their answers are unioned
//     with document-order dedup.
//
// The package deliberately depends only on tpq, xmltree and the
// streaming evaluator: rewrite, viewstore and engine all sit above it.
package plan

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"qav/internal/obs"
	"qav/internal/tpq"
)

// op is one lowered pattern node: its tag, the axis of the edge to its
// parent, and the preorder positions of its children. The positions
// replace pointer chasing in the exec inner loops.
type op struct {
	tag      string
	axis     tpq.Axis
	children []int32
}

// program is one compiled compensation query.
type program struct {
	// canon is the canonical form of the normalized pattern — the
	// dedup and cache-key unit.
	canon string
	// comp is the normalized pattern: a standalone clone with a Child
	// root axis, so the tree-DP and streaming backends evaluate the
	// same pinned-root semantics the structural joins implement.
	comp *tpq.Pattern
	// prep is the compiled form for the tree-DP backend.
	prep *tpq.Prepared
	// ops lists the pattern nodes in preorder; ops[0] is the root.
	ops []op
	// path holds the preorder positions of the distinguished path,
	// root first, output last.
	path []int32
}

// Plan is an immutable compiled answer plan: one program per distinct
// compensation query of the CR union. Safe for concurrent use; the
// engine shares one plan across requests via its plan cache.
type Plan struct {
	key      string
	programs []*program
}

// Key returns the plan's cache key: the sorted canonical forms of its
// normalized compensation queries. Two CR sets with the same
// compensations — regardless of order or duplication — share a key and
// therefore a cached plan.
func (p *Plan) Key() string { return p.key }

// Programs returns the number of distinct compiled programs.
func (p *Plan) Programs() int { return len(p.programs) }

// normalize clones comp into the standalone pinned form every backend
// evaluates: the root axis becomes Child (EvaluateAt ignores the root
// axis; the streaming evaluator honors it, and over a standalone tree
// a Child root is exactly "pinned to the tree root").
func normalize(comp *tpq.Pattern) (*tpq.Pattern, error) {
	if comp == nil || comp.Root == nil {
		return nil, fmt.Errorf("plan: nil compensation pattern")
	}
	if err := comp.Validate(); err != nil {
		return nil, fmt.Errorf("plan: invalid compensation: %w", err)
	}
	pinned := tpq.SubtreePattern(comp.Root, tpq.Child, comp.Output)
	if pinned.Output == nil {
		return nil, fmt.Errorf("plan: compensation %s has no output node", comp)
	}
	return pinned, nil
}

// KeyOf computes the cache key Compile would give a plan for comps,
// without lowering the programs — what the engine's plan cache looks
// up before deciding to compile.
func KeyOf(comps []*tpq.Pattern) (string, error) {
	canons := make([]string, 0, len(comps))
	seen := make(map[string]bool, len(comps))
	for _, c := range comps {
		pinned, err := normalize(c)
		if err != nil {
			return "", err
		}
		canon := pinned.Canonical()
		if !seen[canon] {
			seen[canon] = true
			canons = append(canons, canon)
		}
	}
	sort.Strings(canons)
	return strings.Join(canons, "\x00"), nil
}

// Compile lowers the compensation queries into an executable plan.
// Duplicate compensations (distinct CRs frequently share one, e.g. the
// trivial compensation) compile to a single program. An empty comps
// set compiles to an empty plan whose Exec returns no answers.
func Compile(ctx context.Context, comps []*tpq.Pattern) (*Plan, error) {
	sp := obs.SpanFrom(ctx)
	start := sp.Start()
	defer sp.Observe(obs.StagePlanCompile, start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	byCanon := make(map[string]*program, len(comps))
	for _, c := range comps {
		pinned, err := normalize(c)
		if err != nil {
			return nil, err
		}
		canon := pinned.Canonical()
		if byCanon[canon] != nil {
			continue
		}
		byCanon[canon] = lower(canon, pinned)
	}
	pl := &Plan{programs: make([]*program, 0, len(byCanon))}
	canons := make([]string, 0, len(byCanon))
	for canon := range byCanon {
		canons = append(canons, canon)
	}
	sort.Strings(canons)
	for _, canon := range canons {
		pl.programs = append(pl.programs, byCanon[canon])
	}
	pl.key = strings.Join(canons, "\x00")
	return pl, nil
}

// lower turns a normalized pattern into its structural-join program.
func lower(canon string, pinned *tpq.Pattern) *program {
	nodes := pinned.PreorderNodes()
	pr := &program{
		canon: canon,
		comp:  pinned,
		prep:  pinned.Prepare(),
		ops:   make([]op, len(nodes)),
	}
	for i, n := range nodes {
		o := op{tag: n.Tag, axis: n.Axis}
		for _, c := range n.Children {
			o.children = append(o.children, int32(pinned.Preorder(c)))
		}
		pr.ops[i] = o
	}
	for _, n := range pinned.DistinguishedPath() {
		pr.path = append(pr.path, int32(pinned.Preorder(n)))
	}
	return pr
}
