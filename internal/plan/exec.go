package plan

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/names"
	"qav/internal/obs"
	"qav/internal/stream"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// faultExec fires at the top of every plan execution (no-op unless a
// chaos plan arms it; see internal/fault).
var faultExec = fault.Register(names.FaultPlanExec)

// Backend selects the evaluation strategy of one program.
type Backend int

const (
	// Auto picks per program and forest: structural joins when the
	// candidate lists are selective, the per-tree dynamic program
	// otherwise, and the streaming evaluator when the DP's bitmaps
	// would not fit the resident budget.
	Auto Backend = iota
	// StructJoin joins the forest's inverted tag lists bottom-up, then
	// walks the distinguished path top-down — work proportional to the
	// candidate lists, not the forest.
	StructJoin
	// TreeDP runs the compiled tpq dynamic program per tree — work
	// |E| × |forest| with small constants.
	TreeDP
	// Stream replays each tree through the SAX evaluator — the
	// bounded-memory fallback, O(depth · |E|) resident per tree.
	Stream
)

var backendNames = [...]string{"auto", "structjoin", "treedp", "stream"}

func (b Backend) String() string {
	if b < 0 || int(b) >= len(backendNames) {
		return "unknown"
	}
	return backendNames[b]
}

// ParseBackend parses a backend name as accepted by CLI flags and the
// HTTP API ("auto", "structjoin", "treedp", "stream").
func ParseBackend(s string) (Backend, error) {
	for i, n := range backendNames {
		if s == n {
			return Backend(i), nil
		}
	}
	return Auto, fmt.Errorf("plan: unknown backend %q", s)
}

// dpCellBudget bounds the |E| × |tree| boolean matrices of the TreeDP
// backend; beyond it Auto degrades to the streaming evaluator, whose
// residency is O(depth · |E|) regardless of tree size.
const dpCellBudget = 1 << 26

// ExecOptions tune one plan execution.
type ExecOptions struct {
	// Backend forces one backend for every program; Auto selects per
	// program using the forest's statistics.
	Backend Backend
	// Parallel bounds the number of programs executing concurrently;
	// <= 0 means GOMAXPROCS.
	Parallel int
}

// Match is one answer: the node and the forest tree it was found in.
// For a shared-document forest the same node can match under several
// windows; Exec reports it once, under the first window in tree order.
type Match struct {
	Tree int
	Node *xmltree.Node
}

// ExecResult is the outcome of one plan execution.
type ExecResult struct {
	// Matches holds the deduplicated answer union in document order:
	// global preorder for a shared-document forest, (tree, preorder)
	// for a shipped forest.
	Matches []Match
	// Backends records the backend each program ran with, parallel to
	// the plan's programs.
	Backends []Backend
}

// Nodes flattens the matches to their nodes, preserving order.
func (r *ExecResult) Nodes() []*xmltree.Node {
	if r == nil || len(r.Matches) == 0 {
		return nil
	}
	out := make([]*xmltree.Node, len(r.Matches))
	for i, m := range r.Matches {
		out[i] = m.Node
	}
	return out
}

// Exec runs every program of the plan against the forest and returns
// the deduplicated answer union in document order. Programs run
// concurrently up to ExecOptions.Parallel, each behind panic isolation
// (a panic in one program fails the request with a typed ErrInternal,
// not the process). The context is polled throughout; a cancelled ctx
// aborts with its error.
func (p *Plan) Exec(ctx context.Context, f *Forest, opts ExecOptions) (*ExecResult, error) {
	sp := obs.SpanFrom(ctx)
	start := sp.Start()
	defer sp.Observe(obs.StagePlanExec, start)
	if err := faultExec.Hit(ctx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	backends := make([]Backend, len(p.programs))
	for i, pr := range p.programs {
		backends[i] = chooseBackend(pr, f, opts.Backend)
	}
	per := make([][]Match, len(p.programs))
	errs := make([]error, len(p.programs))
	if par := parallelism(opts.Parallel, len(p.programs)); par <= 1 {
		for i, pr := range p.programs {
			per[i], errs[i] = runProgram(ctx, pr, f, backends[i])
			if errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for i, pr := range p.programs {
			if err := ctx.Err(); err != nil {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, pr *program) {
				defer wg.Done()
				defer func() { <-sem }()
				// A panic in a worker must become this program's error,
				// never a process crash: indices are disjoint, so the
				// write needs no lock.
				defer guard.Rescue("plan.exec", func(err error) { errs[i] = err })
				per[i], errs[i] = runProgram(ctx, pr, f, backends[i])
			}(i, pr)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &ExecResult{Matches: mergeMatches(f, per), Backends: backends}, nil
}

func parallelism(requested, programs int) int {
	par := requested
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > programs {
		par = programs
	}
	return par
}

// chooseBackend implements the selection heuristic (see the DESIGN.md
// "Answer plans" section): structural joins when the candidate lists
// are selective — their total length below |E|·|F|/8 — since join work
// is proportional to the lists; otherwise the per-tree DP, whose
// |E|·|F| scan has better constants on dense tags; and the streaming
// evaluator when the DP's per-tree bitmaps would exceed dpCellBudget.
func chooseBackend(pr *program, f *Forest, forced Backend) Backend {
	if forced != Auto {
		return forced
	}
	sum := 0
	for _, o := range pr.ops {
		sum += f.cardinalityFor(o.tag)
	}
	if sum*8 <= len(pr.ops)*f.size {
		return StructJoin
	}
	if len(pr.ops)*f.maxTree > dpCellBudget {
		return Stream
	}
	return TreeDP
}

func runProgram(ctx context.Context, pr *program, f *Forest, b Backend) ([]Match, error) {
	switch b {
	case TreeDP:
		return runTreeDP(ctx, pr, f)
	case Stream:
		return runStream(ctx, pr, f)
	default:
		return joinForest(ctx, pr, f, true)
	}
}

// runTreeDP evaluates the program by pinning the compiled pattern to
// each tree root in turn — the naive per-tree strategy, compiled once.
func runTreeDP(ctx context.Context, pr *program, f *Forest) ([]Match, error) {
	var out []Match
	for ti, t := range f.trees {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, n := range pr.prep.EvaluateAt(t.Doc, t.Root) {
			out = append(out, Match{Tree: ti, Node: n})
		}
	}
	return out, nil
}

// runStream replays each tree through the SAX evaluator. The answers
// come back as preorder positions within the walked subtree, which map
// straight onto the tree's window.
func runStream(ctx context.Context, pr *program, f *Forest) ([]Match, error) {
	var out []Match
	for ti, t := range f.trees {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		answers, err := stream.EvaluateNode(ctx, t.Root, pr.comp)
		if err != nil {
			return nil, err
		}
		window := t.Doc.Window(t.Root)
		for _, a := range answers {
			out = append(out, Match{Tree: ti, Node: window[a.Index]})
		}
	}
	return out, nil
}

// joinForest is the structural-join backend: bottom-up semi-joins over
// the inverted lists compute, per pattern node, the forest items whose
// subtree embeds the pattern subtree; a top-down pass along the
// distinguished path then selects the output items. pinRoot restricts
// the root candidates to the tree roots (the compensation pinning); the
// general entry point (EvaluateIndexed) passes the pattern's own root
// axis semantics instead.
func joinForest(ctx context.Context, pr *program, f *Forest, pinRoot bool) ([]Match, error) {
	lists := make([][]item, len(pr.ops))
	for i := len(pr.ops) - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cand []item
		if i == 0 && pinRoot {
			cand = f.rootItems(pr.ops[0].tag)
		} else {
			cand = f.itemsFor(pr.ops[i].tag)
		}
		for _, c := range pr.ops[i].children {
			if len(cand) == 0 {
				break
			}
			cand = semiJoinItems(cand, lists[c], pr.ops[c].axis)
		}
		lists[i] = cand
	}
	cur := lists[0]
	for _, pos := range pr.path[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur = downJoinItems(cur, lists[pos], pr.ops[pos].axis)
	}
	out := make([]Match, 0, len(cur))
	for _, it := range cur {
		out = append(out, Match{Tree: int(it.tree), Node: it.node})
	}
	return out, nil
}

// EvaluateIndexed evaluates a general (not root-pinned) pattern over
// the forest with structural joins, honoring the pattern's root axis: a
// Child root must match a tree root, a Descendant root may match
// anywhere. This is the join core the structjoin package delegates to.
func EvaluateIndexed(ctx context.Context, f *Forest, p *tpq.Pattern) ([]*xmltree.Node, error) {
	if p == nil || p.Root == nil {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pr := lower("", tpq.SubtreePattern(p.Root, p.Root.Axis, p.Output))
	var matches []Match
	var err error
	if pr.ops[0].axis == tpq.Child {
		matches, err = joinForest(ctx, pr, f, true)
	} else {
		matches, err = joinForest(ctx, pr, f, false)
	}
	if err != nil {
		return nil, err
	}
	res := &ExecResult{Matches: mergeMatches(f, [][]Match{matches})}
	return res.Nodes(), nil
}

// semiJoinItems keeps the items ∈ upper that have a same-tree witness
// in lower via the given axis. Both lists are in packed-key order;
// output preserves order.
func semiJoinItems(upper, lower []item, axis tpq.Axis) []item {
	if len(lower) == 0 {
		return nil
	}
	var out []item
	switch axis {
	case tpq.Child:
		// Witness iff some lower item's parent is the upper item:
		// binary-search the sorted packed keys of the parents. A lower
		// node whose parent lies outside its window packs to a key
		// below the window, which no upper item carries.
		parents := parentKeys(lower)
		for _, it := range upper {
			if containsKey(parents, it.key()) {
				out = append(out, it)
			}
		}
	case tpq.Descendant:
		// Witness iff some same-tree lower item lies inside
		// (Index, end]: binary search the first lower item after it.
		for _, it := range upper {
			j := sort.Search(len(lower), func(i int) bool {
				return lower[i].key() > it.key()
			})
			if j < len(lower) && lower[j].tree == it.tree && it.node.IsAncestorOf(lower[j].node) {
				out = append(out, it)
			}
		}
	}
	return out
}

// downJoinItems keeps the items ∈ lower that have a same-tree parent
// (Child) or ancestor (Descendant) in upper. Both lists are in
// packed-key order.
func downJoinItems(upper, lower []item, axis tpq.Axis) []item {
	if len(upper) == 0 || len(lower) == 0 {
		return nil
	}
	var out []item
	switch axis {
	case tpq.Child:
		ups := make([]uint64, len(upper))
		for i, it := range upper {
			ups[i] = it.key()
		}
		for _, m := range lower {
			if m.node.Parent != nil && containsKey(ups, packKey(m.tree, m.node.Parent.Index)) {
				out = append(out, m)
			}
		}
	case tpq.Descendant:
		// Merge the upper intervals (Index, end] into disjoint covered
		// key ranges. Intervals of one tree nest or are disjoint, so
		// they collapse; ranges are never merged across trees, the
		// tree id in the high bits notwithstanding.
		type span struct{ lo, hi uint64 }
		spans := make([]span, 0, len(upper))
		for _, it := range upper { // already key-sorted
			end := it.node.SubtreeEnd()
			if end <= it.node.Index {
				continue
			}
			s := span{packKey(it.tree, it.node.Index+1), packKey(it.tree, end)}
			if len(spans) > 0 {
				prev := &spans[len(spans)-1]
				if s.lo>>32 == prev.hi>>32 && s.lo <= prev.hi+1 {
					if s.hi > prev.hi {
						prev.hi = s.hi
					}
					continue
				}
			}
			spans = append(spans, s)
		}
		for _, m := range lower {
			k := m.key()
			j := sort.Search(len(spans), func(i int) bool {
				return spans[i].hi >= k
			})
			if j < len(spans) && spans[j].lo <= k {
				out = append(out, m)
			}
		}
	}
	return out
}

// parentKeys returns the sorted distinct packed keys of the items'
// parents (within the same tree).
func parentKeys(items []item) []uint64 {
	out := make([]uint64, 0, len(items))
	for _, it := range items {
		if it.node.Parent != nil {
			out = append(out, packKey(it.tree, it.node.Parent.Index))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// containsKey reports membership in a sorted key slice.
func containsKey(sorted []uint64, k uint64) bool {
	i := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= k })
	return i < len(sorted) && sorted[i] == k
}

// mergeMatches unions the per-program matches with document-order
// dedup: global preorder for a shared-document forest (where one node
// may match under several windows and across programs), (tree,
// preorder) order for a shipped forest.
func mergeMatches(f *Forest, per [][]Match) []Match {
	total := 0
	for _, ms := range per {
		total += len(ms)
	}
	if total == 0 {
		return nil
	}
	all := make([]Match, 0, total)
	for _, ms := range per {
		all = append(all, ms...)
	}
	if f.shared {
		sort.Slice(all, func(i, j int) bool {
			if all[i].Node.Index != all[j].Node.Index {
				return all[i].Node.Index < all[j].Node.Index
			}
			return all[i].Tree < all[j].Tree
		})
	} else {
		sort.Slice(all, func(i, j int) bool {
			ki := packKey(int32(all[i].Tree), all[i].Node.Index)
			kj := packKey(int32(all[j].Tree), all[j].Node.Index)
			return ki < kj
		})
	}
	seen := make(map[*xmltree.Node]bool, len(all))
	out := all[:0]
	for _, m := range all {
		if !seen[m.Node] {
			seen[m.Node] = true
			out = append(out, m)
		}
	}
	return out
}
