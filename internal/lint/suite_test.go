package lint_test

import (
	"testing"

	"qav/internal/lint"
	"qav/internal/lint/linttest"
)

// Each testdata module is a self-contained Go module with passing and
// failing cases for one analyzer; linttest matches the diagnostics
// against its // want comments.

func TestCtxPoll(t *testing.T) {
	linttest.Run(t, lint.CtxPoll, "testdata/ctxpoll")
}

func TestLockGuard(t *testing.T) {
	linttest.Run(t, lint.LockGuard, "testdata/lockguard")
}

func TestPatMut(t *testing.T) {
	linttest.Run(t, lint.PatMut, "testdata/patmut")
}

func TestErrWrap(t *testing.T) {
	linttest.Run(t, lint.ErrWrap, "testdata/errwrap")
}

func TestPanicGuard(t *testing.T) {
	linttest.Run(t, lint.PanicGuard, "testdata/panicguard")
}

func TestPlanFreeze(t *testing.T) {
	linttest.Run(t, lint.PlanFreeze, "testdata/planfreeze")
}

func TestStageReg(t *testing.T) {
	linttest.Run(t, lint.StageReg, "testdata/stagereg")
}

func TestExhaustive(t *testing.T) {
	linttest.Run(t, lint.Exhaustive, "testdata/exhaustive")
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "testdata/lockorder")
}

// TestSuiteNames pins the analyzer names: //qavlint:ignore directives
// and CI reporting key off them.
func TestSuiteNames(t *testing.T) {
	want := map[string]bool{
		"ctxpoll": true, "lockguard": true, "patmut": true, "errwrap": true, "panicguard": true,
		"planfreeze": true, "stagereg": true, "exhaustive": true, "lockorder": true,
	}
	if len(lint.Suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(lint.Suite), len(want))
	}
	for _, a := range lint.Suite {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks doc or run", a.Name)
		}
	}
}
