package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the error-chaining contract at package boundaries:
// when fmt.Errorf is given an error argument, the format must wrap it
// with %w (or the code should use a sentinel), never flatten it with
// %v/%s. Flattened errors break errors.Is/As, which the HTTP layer
// relies on to map pipeline failures (parse errors, deadline overruns,
// unsatisfiable schemas) to the right statuses.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "errors passed to fmt.Errorf must be wrapped with %w, not flattened with %v\n" +
		"Flattening severs the error chain, so errors.Is/errors.As stop seeing the\n" +
		"sentinels the server and CLI branch on.",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			format, ok := literalString(call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := pass.Info.TypeOf(arg)
				if t == nil || !types.AssignableTo(t, errType) {
					continue
				}
				if isNilExpr(pass, arg) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"error flattened by fmt.Errorf without %%w; wrap it so errors.Is/As keep working (errwrap)")
			}
			return true
		})
	}
	return nil
}

// literalString evaluates expr when it is a compile-time string
// constant (a literal or a concatenation of literals).
func literalString(expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		l, okl := literalString(e.X)
		r, okr := literalString(e.Y)
		return l + r, okl && okr
	}
	return "", false
}

func isNilExpr(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	return ok && tv.IsNil()
}
