// Consumer switches over another package's enum: members come from
// the declaring package's scope.
package consumer

import "lintexample/internal/plan"

// pick silently ignores Stream.
func pick(b plan.Backend) string {
	switch b { // want "missing cases Stream"
	case plan.Auto, plan.StructJoin, plan.TreeDP:
		return "known"
	}
	return ""
}

// pickDefaulted is fine.
func pickDefaulted(b plan.Backend) string {
	switch b {
	case plan.Stream:
		return "stream"
	default:
		return "other"
	}
}

//qavlint:ignore exhaustive
func pickSuppressed(b plan.Backend) string {
	switch b {
	case plan.Auto:
		return "auto"
	}
	return ""
}
