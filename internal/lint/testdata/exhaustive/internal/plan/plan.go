// Stub enum declarations for the exhaustive analyzer.
package plan

// Backend selects an execution strategy.
type Backend int

const (
	Auto Backend = iota
	StructJoin
	TreeDP
	Stream
	// NumBackends bounds the enum; sentinels are not values.
	NumBackends
)

// Reason is a string-based enum.
type Reason string

const (
	ReasonBudget   Reason = "budget"
	ReasonDeadline Reason = "deadline"
)

// covered handles every value: ok.
func covered(b Backend) string {
	switch b {
	case Auto:
		return "auto"
	case StructJoin:
		return "sj"
	case TreeDP:
		return "dp"
	case Stream:
		return "stream"
	}
	return ""
}

// defaulted declares its subset with default: ok.
func defaulted(b Backend) bool {
	switch b {
	case StructJoin:
		return true
	default:
		return false
	}
}

// missing silently ignores TreeDP and Stream.
func missing(b Backend) string {
	switch b { // want "missing cases Stream, TreeDP"
	case Auto:
		return "auto"
	case StructJoin:
		return "sj"
	}
	return ""
}

// missingString silently ignores a string enum value.
func missingString(r Reason) bool {
	switch r { // want "missing cases ReasonDeadline"
	case ReasonBudget:
		return true
	}
	return false
}

// multiValueCase covers values in grouped cases: ok.
func multiValueCase(b Backend) bool {
	switch b {
	case Auto, StructJoin:
		return false
	case TreeDP, Stream:
		return true
	}
	return false
}

// nonConstantCase compares against a variable; coverage is not
// statically decidable, so the switch is left alone.
func nonConstantCase(b, other Backend) bool {
	switch b {
	case other:
		return true
	case Auto:
		return false
	}
	return false
}

// notAnEnum switches over a plain int: ok.
func notAnEnum(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
