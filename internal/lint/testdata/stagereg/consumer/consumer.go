// Consumer exercises the stagereg rules at registration and logging
// call sites.
package consumer

import (
	"context"

	"lintexample/internal/fault"
	"lintexample/internal/names"
	"lintexample/internal/obs"
)

// localName is a constant, but not one from the central registry.
const localName = "local.point"

var (
	faultGood  = fault.Register(names.FaultGood)
	faultRaw   = fault.Register("raw.point")      // want "must be a constant from internal/names"
	faultLocal = fault.Register(localName)        // want "must be a constant from internal/names"
	faultQuiet = fault.Register(names.FaultQuiet) // want "registered but never Hit"
)

// serve hits the good point and logs with a registry op.
func serve(ctx context.Context) error {
	if err := faultGood.Hit(ctx); err != nil {
		return err
	}
	if err := faultRaw.Hit(ctx); err != nil {
		return err
	}
	if err := faultLocal.Hit(ctx); err != nil {
		return err
	}
	record(obs.SlowEntry{Op: names.OpRewrite, Query: "q"}) // ok
	record(obs.SlowEntry{Op: "answer", Query: "q"})        // want "SlowEntry.Op must be a constant from internal/names"
	var e obs.SlowEntry
	e.Op = names.OpRewrite // ok
	e.Op = "panic"         // want "SlowEntry.Op must be a constant from internal/names"
	record(e)
	return nil
}

func record(obs.SlowEntry) {}
