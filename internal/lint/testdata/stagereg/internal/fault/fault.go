// Stub of the real internal/fault registry.
package fault

import "context"

// Point is one injection site.
type Point struct{ name string }

// Register returns the point named name.
func Register(name string) *Point { return &Point{name: name} }

// Hit is the probe.
func (p *Point) Hit(ctx context.Context) error { return nil }
