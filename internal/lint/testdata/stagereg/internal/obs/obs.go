// Stub of the real internal/obs: the stage-name table must be built
// from names constants.
package obs

import "lintexample/internal/names"

// SlowEntry is one slow-query-log record.
type SlowEntry struct {
	Op    string
	Query string
}

var stageNames = [2]string{
	names.StageParse,
	"chase", // want "stage name table entries must be constants from internal/names"
}

// StageName returns the metric key of stage i.
func StageName(i int) string { return stageNames[i] }
