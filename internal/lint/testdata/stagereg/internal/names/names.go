// Stub of the real internal/names registry.
package names

const (
	StageParse = "parse"
	StageChase = "chase"

	FaultGood   = "good.point"
	FaultQuiet  = "quiet.point"
	FaultHelper = "helper.point"

	OpRewrite = "rewrite"
)
