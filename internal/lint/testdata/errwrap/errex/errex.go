// Package errex exercises the errwrap chaining check on fmt.Errorf.
package errex

import (
	"errors"
	"fmt"
)

// ErrBad is a sentinel callers branch on with errors.Is.
var ErrBad = errors.New("bad")

// Flatten severs the chain with %v.
func Flatten(err error) error {
	return fmt.Errorf("loading config: %v", err) // want "error flattened"
}

// FlattenString is just as broken with %s.
func FlattenString(err error) error {
	return fmt.Errorf("saving state: %s", err) // want "error flattened"
}

// Wrap keeps the chain.
func Wrap(err error) error {
	return fmt.Errorf("loading config: %w", err)
}

// WrapBoth chains a sentinel and a cause; multiple %w verbs are fine.
func WrapBoth(err error) error {
	return fmt.Errorf("%w: %w", ErrBad, err)
}

// Message formats no error values at all.
func Message(path string) error {
	return fmt.Errorf("no such profile %q", path)
}

// Split flattens one error while wrapping another. The check is
// format-level — any %w in the format satisfies it — so this passes;
// the deliberate approximation keeps sentinel-plus-cause chains like
// WrapBoth quiet.
func Split(cause, detail error) error {
	return fmt.Errorf("%w (detail: %v)", cause, detail)
}
