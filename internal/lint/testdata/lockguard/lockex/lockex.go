// Package lockex exercises the lockguard annotation check: fields
// carrying a `guarded by <mu>` comment must only be touched with the
// named mutex of the same struct value held.
package lockex

import "sync"

// Counter is a mutex-guarded counter.
type Counter struct {
	mu sync.Mutex
	// n is the current count.
	// guarded by mu
	n int
}

// Add increments under the lock.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads n with no locking at all.
func (c *Counter) Peek() int {
	return c.n // want "accessed without a preceding"
}

// bumpLocked relies on the caller holding mu — the naming convention
// exempts it.
func (c *Counter) bumpLocked() {
	c.n++
}

// Transfer locks one counter but reads the other: holding a's lock
// says nothing about b's fields.
func Transfer(a, b *Counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += b.n // want "accessed without a preceding"
}

// Stats shows the read-lock variant on an RWMutex guard.
type Stats struct {
	mu sync.RWMutex
	// hits counts cache hits.
	// guarded by mu
	hits int
}

// Hits reads under the read lock.
func (s *Stats) Hits() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits
}

// Reset writes hits with no lock.
func (s *Stats) Reset() {
	s.hits = 0 // want "accessed without a preceding"
}

// Broken names a guard field that does not exist, which would
// silently check nothing; the annotation itself is the finding.
type Broken struct {
	// v is shared state.
	// guarded by lock
	v int // want "no sync.Mutex/RWMutex field"
}

// Touch is unchecked: v never made it into the guard table.
func (b *Broken) Touch() { b.v++ }
