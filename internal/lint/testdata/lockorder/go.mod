module lintexample

go 1.22
