// Stub cache package: its mutex participates in cross-package
// heuristic edges (a module method is assumed to take its receiver's
// mutexes).
package cachex

import "sync"

// Cache is a locked store.
type Cache struct {
	mu sync.Mutex
	n  int
}

// Len takes the cache lock.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// LenLocked follows the *Locked convention: the caller holds the lock.
func (c *Cache) LenLocked() int { return c.n }
