// Engine-side lock ordering cases: consistent order, a cycle, a
// re-acquire, intervals, defers, and the *Locked exemption.
package enginex

import (
	"sync"

	"lintexample/internal/cachex"
)

// Engine owns a mutex and a cache.
type Engine struct {
	mu    sync.RWMutex
	cache *cachex.Cache
	stats int
}

// Store is a second locked structure for the in-package cycle.
type Store struct {
	mu   sync.Mutex
	data int
}

// statsThenStore and storeThenStats acquire the two in-package locks
// in opposite orders: a deadlock waiting to happen.
func statsThenStore(e *Engine, s *Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s.mu.Lock() // want "lock order cycle"
	s.data++
	s.mu.Unlock()
}

func storeThenStats(e *Engine, s *Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.mu.Lock()
	e.stats++
	e.mu.Unlock()
}

// reacquire takes a lock it already holds.
func reacquire(s *Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want "acquired while already held"
	s.data++
	s.mu.Unlock()
}

// rlockTwice is the tolerated read-read pair: no report.
func rlockTwice(e *Engine) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// intervalReleased drops its lock before taking the other order: the
// intervals never overlap, so no cycle edge.
func intervalReleased(e *Engine, s *Store) {
	s.mu.Lock()
	s.data++
	s.mu.Unlock()
	e.mu.Lock()
	e.stats++
	e.mu.Unlock()
}

// crossPackageCall holds the engine lock and calls a cache method: a
// heuristic edge Engine.mu -> Cache.mu. One direction only, so no
// cycle — but calling a same-package helper that locks the engine
// again is caught through the transitive closure.
func crossPackageCall(e *Engine) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cache.Len()
}

// lockedHelperCall calls a *Locked method while holding the lock: the
// convention says the callee acquires nothing.
func lockedHelperCall(e *Engine) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.LenLocked()
}

// lockStats is a same-package helper that write-locks the engine.
func lockStats(e *Engine) {
	e.mu.Lock()
	e.stats++
	e.mu.Unlock()
}

// indirectReacquire holds the engine lock and calls the helper that
// takes it again: caught via the same-package transitive closure.
func indirectReacquire(e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lockStats(e) // want "call may acquire enginex.Engine.mu, which is already held"
}
