// Package helper provides first-party cancellable callees for the
// cancellable-callee obligation: calling one of these from a loop in a
// target package demands that the caller's context reaches it.
package helper

import "context"

// Expand is a cancellable first-party API (context parameter).
func Expand(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n * 2
}

// Options is the carrier struct variant: cancellation threads through
// a field instead of a parameter.
type Options struct {
	Ctx context.Context
}

// Run is cancellable through its Options carrier.
func Run(opts Options) error {
	if opts.Ctx != nil {
		return opts.Ctx.Err()
	}
	return nil
}
