// Package rewrite exercises every ctxpoll obligation: the package
// path ends in internal/rewrite, one of the suffixes the discipline
// applies to.
package rewrite

import (
	"context"

	"lintexample/internal/helper"
	"lintexample/internal/xmltree"
)

// SpinForever blocks on an unbounded loop and offers callers no way
// to cancel it.
func SpinForever(done chan struct{}) { // want "cannot receive a context.Context"
	for {
		select {
		case <-done:
			return
		default:
		}
	}
}

// SpinPolled is the fixed shape: a context parameter polled inside
// the unbounded loop.
func SpinPolled(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if step() {
			return nil
		}
	}
}

// Converge iterates to a fixpoint with no syntactic bound and no
// context.
func Converge(eps float64) float64 { // want "cannot receive a context.Context"
	x := 1.0
	for x > eps {
		x /= 2
	}
	return x
}

// Drain accepts a context but never consults it while ranging over an
// unbounded channel.
func Drain(ctx context.Context, ch chan int) int { // want "never polls its context"
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Walk sweeps document-scale xmltree data (nested loop over the node
// set) without accepting a context.
func Walk(d *xmltree.Document) int { // want "cannot receive a context.Context"
	n := 0
	for _, node := range d.Nodes {
		for _, c := range node.Children {
			_ = c
			n++
		}
	}
	return n
}

// WalkCtx is Walk with the obligation discharged.
func WalkCtx(ctx context.Context, d *xmltree.Document) (int, error) {
	n := 0
	for _, node := range d.Nodes {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, c := range node.Children {
			_ = c
			n++
		}
	}
	return n, nil
}

// Enumerate calls a cancellable first-party callee from its loop but
// hands it a fresh root context, severing the caller's cancellation.
func Enumerate(ctx context.Context, xs []int) int { // want "never polls its context"
	total := 0
	for _, x := range xs {
		total += helper.Expand(context.Background(), x)
	}
	return total
}

// EnumerateCtx forwards the live context each iteration.
func EnumerateCtx(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += helper.Expand(ctx, x)
	}
	return total
}

// RunAll threads cancellation through the Options carrier — both the
// signature (carrier parameter) and the in-loop poll (carrier
// composite literal propagating the field) come from the struct.
func RunAll(opts helper.Options, xs []int) error {
	for range xs {
		if err := helper.Run(helper.Options{Ctx: opts.Ctx}); err != nil {
			return err
		}
	}
	return nil
}

// Search delegates to an unexported helper whose loop polls; the
// obligation and its discharge are both transitive.
func Search(ctx context.Context, limit int) int {
	return scan(ctx, limit)
}

// Bounded loops to a fixpoint the analyzer cannot see a bound for,
// but the iteration count is bounded by limit; the directive records
// the argument.
//
//qavlint:ignore ctxpoll each round strictly increases n toward limit
func Bounded(limit int) int {
	n := 0
	changed := true
	for changed {
		changed = false
		if n < limit {
			n++
			changed = true
		}
	}
	return n
}

type inner struct{ n int }

// Spin is exported but hangs off an unexported receiver, so it is not
// part of the package's exported surface.
func (in *inner) Spin() {
	for {
		if in.n > 0 {
			return
		}
	}
}

// scan is unexported: the polling obligation rests with its exported
// callers.
func scan(ctx context.Context, limit int) int {
	i := 0
	for {
		if ctx.Err() != nil || i >= limit {
			return i
		}
		i++
	}
}

func step() bool { return true }
