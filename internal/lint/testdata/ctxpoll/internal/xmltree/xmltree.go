// Package xmltree is a minimal stand-in for the real document tree:
// the ctxpoll analyzer matches on the package-path suffix, so the
// fixture only needs the names, not the behavior.
package xmltree

// Node is one element of a document tree.
type Node struct {
	Tag      string
	Children []*Node
}

// Document is a rooted labeled tree.
type Document struct {
	Nodes []*Node
}

// Size reports the node count.
func (d *Document) Size() int { return len(d.Nodes) }
