// Package consumer exercises the patmut immutability check from
// outside internal/tpq.
package consumer

import "lintexample/internal/tpq"

// Retarget writes the output field directly instead of using
// SetOutput.
func Retarget(p *tpq.Pattern, n *tpq.Node) {
	p.Output = n // want "assignment to tpq.Pattern.Output"
}

// Relabel rewrites a node tag in place.
func Relabel(n *tpq.Node) {
	n.Tag = "renamed" // want "assignment to tpq.Node.Tag"
}

// Detach clears a child slot through the slice — still a write into
// the pattern's structure.
func Detach(n *tpq.Node) {
	n.Children[0] = nil // want "assignment to tpq.Node.Children"
}

// Build constructs a fresh pattern; composite literals are
// construction, not mutation, and stay allowed.
func Build() *tpq.Pattern {
	root := &tpq.Node{Tag: "a", Axis: tpq.Descendant}
	return &tpq.Pattern{Root: root, Output: root}
}

// Move goes through the sanctioned mutation API.
func Move(p *tpq.Pattern, n *tpq.Node) {
	p.SetOutput(n)
}
