// Package tpq is a minimal stand-in for the real pattern package; the
// patmut analyzer matches on the path suffix. Field assignments in
// this file are the sanctioned mutation API and must not be reported.
package tpq

// Axis is a pattern edge type.
type Axis int

// Pattern edge types.
const (
	Child Axis = iota
	Descendant
)

// Node is one pattern node.
type Node struct {
	Tag      string
	Axis     Axis
	Children []*Node
}

// Pattern is a tree pattern with a distinguished output node.
type Pattern struct {
	Root   *Node
	Output *Node
}

// SetOutput moves the distinguished node — an in-package write, which
// is exactly where the invariant allows it.
func (p *Pattern) SetOutput(n *Node) { p.Output = n }
