// Consumer exercises planfreeze across package boundaries.
package consumer

import (
	"lintexample/internal/plan"
	"lintexample/internal/rewrite"
	"lintexample/internal/tpq"
)

// mutatePattern writes a shared pattern's field outside tpq.
func mutatePattern(p *tpq.Pattern) {
	p.Output = p.Root // want "external origin.*planfreeze"
}

// buildPattern constructs a fresh pattern: allowed.
func buildPattern(tag string) *tpq.Pattern {
	root := &tpq.Node{Tag: tag}
	p := &tpq.Pattern{Root: root}
	p.Output = root // fresh: ok
	return p
}

// suppressed shows the escape hatch for a reviewed exception.
func suppressed(res *rewrite.Result) {
	//qavlint:ignore planfreeze
	res.Partial = false
}

// useThenMutate mixes reads (fine) with a late write (not fine).
func useThenMutate(pl *plan.Plan) int {
	n := len(pl.Programs)
	pl.Key = "" // want "external origin.*planfreeze"
	return n
}
