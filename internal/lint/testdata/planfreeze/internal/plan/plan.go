// Stub of the real internal/plan: the planfreeze analyzer matches the
// type names Plan/program by package-path suffix.
package plan

// Plan is the frozen compiled plan.
type Plan struct {
	Key      string
	Programs []*Program
	programs []*program
}

// Program is a public per-CR program (not frozen; the real repo's
// frozen one is the unexported program).
type Program struct{ Steps []int }

type program struct {
	steps []int
	out   int
}

var shared *Plan

// Compile is the allowed pattern: every write happens while the value
// is a fresh, private allocation.
func Compile(n int) *Plan {
	pl := &Plan{}
	for i := 0; i < n; i++ {
		pr := &program{}
		pr.steps = append(pr.steps, i) // fresh program, fresh plan: ok
		pr.out = i
		pl.programs = append(pl.programs, pr)
	}
	pl.Key = "k" // still private: ok
	return pl
}

// mutateParam writes through a parameter: the caller still holds the
// value, so it is shared by construction.
func mutateParam(pl *Plan) {
	pl.Key = "x" // want "may be shared .external origin.*planfreeze"
}

// mutateAfterPublish stores the fresh plan into a package variable and
// keeps writing: the write races with every other reader of shared.
func mutateAfterPublish() {
	pl := &Plan{}
	pl.Key = "a" // private: ok
	shared = pl
	pl.Key = "b" // want "after the value escaped.*planfreeze"
}

// mutateGlobal writes through the package variable directly.
func mutateGlobal() {
	shared.Key = "c" // want "may be shared.*planfreeze"
}

// mutateInLoopAfterSend escapes the plan on the first iteration and
// writes on the next: the escape hoists to the loop head.
func mutateInLoopAfterSend(ch chan *Plan, n int) {
	pl := &Plan{}
	for i := 0; i < n; i++ {
		ch <- pl
		pl.Key = "d" // want "after the value escaped.*planfreeze"
	}
}

// freshPerIteration allocates inside the loop: each iteration's writes
// precede its own escape, so this is fine.
func freshPerIteration(ch chan *Plan, n int) {
	for i := 0; i < n; i++ {
		pl := &Plan{}
		pl.Key = "e" // fresh every iteration: ok
		ch <- pl
	}
}

// nestedWriteAfterOwnerEscape: the program was linked into the plan,
// so the plan's escape freezes the program too.
func nestedWriteAfterOwnerEscape() {
	pl := &Plan{}
	pr := &program{}
	pl.programs = append(pl.programs, pr)
	pr.out = 1 // owner still private: ok
	shared = pl
	pr.out = 2 // want "after the value escaped.*planfreeze"
}

// goroutineCapture: launching a goroutine that can reach the plan
// shares it from the launch on.
func goroutineCapture(done chan struct{}) {
	pl := &Plan{}
	go func() {
		_ = pl.Key
		close(done)
	}()
	pl.Key = "f" // want "after the value escaped.*planfreeze"
}
