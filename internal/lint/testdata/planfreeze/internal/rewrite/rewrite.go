// Stub of the real internal/rewrite for the planfreeze analyzer.
package rewrite

// CR stands in for ContainedRewriting (not itself frozen).
type CR struct{ Name string }

// Result is frozen after construction.
type Result struct {
	CRs     []*CR
	Partial bool
}

// Assemble is the allowed constructor pattern.
func Assemble(names []string) *Result {
	res := &Result{}
	for _, n := range names {
		res.CRs = append(res.CRs, &CR{Name: n}) // fresh: ok
	}
	res.Partial = len(res.CRs) == 0 // still private: ok
	return res
}

// stomp mutates a shared result.
func stomp(res *Result) {
	res.Partial = true // want "external origin.*planfreeze"
}

// aliasWrite is the returned-slice aliasing bug: crs shares its
// backing array with the shared Result.
func aliasWrite(res *Result) {
	crs := res.CRs
	crs[0] = nil // want "storage read from a shared rewrite.Result.*planfreeze"
}

// aliasReslice re-slices first; the backing array is still shared.
func aliasReslice(res *Result) {
	tail := res.CRs[1:]
	tail[0] = nil // want "storage read from a shared rewrite.Result.*planfreeze"
}

// copyIsFine copies the CRs into a fresh slice before editing: the
// shared backing array is never written.
func copyIsFine(res *Result) []*CR {
	out := make([]*CR, len(res.CRs))
	copy(out, res.CRs)
	out[0] = &CR{Name: "mine"} // fresh backing array: ok
	return out
}

// readOnly never writes; reads through shared results are always fine.
func readOnly(res *Result) int {
	total := 0
	for _, cr := range res.CRs {
		if cr != nil && cr.Name != "" {
			total++
		}
	}
	return total
}
