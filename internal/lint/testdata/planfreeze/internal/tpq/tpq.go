// Stub of the real internal/tpq. planfreeze skips this package
// entirely: it owns the structured mutation API, so in-package writes
// to escaped patterns are its business (and patmut governs everyone
// else).
package tpq

// Node is one pattern node.
type Node struct {
	Tag      string
	Children []*Node
}

// Pattern is a tree pattern.
type Pattern struct {
	Root   *Node
	Output *Node
}

// SetOutput is the sanctioned mutation API: no diagnostics in this
// package even though p is external.
func (p *Pattern) SetOutput(n *Node) {
	p.Output = n // in internal/tpq: ok
}
