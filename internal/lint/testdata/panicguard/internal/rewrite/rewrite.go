// Package rewrite exercises the panicguard invariant: the package
// path ends in internal/rewrite, one of the suffixes the invariant
// applies to. Every goroutine spawned here must defer a recovery
// helper from internal/guard at the top level of its body.
package rewrite

import (
	"sync"

	"lintexample/internal/guard"
)

// Bare spawns a naked goroutine with no recovery at all.
func Bare() {
	go func() { // want "does not route panics through internal/guard"
		work()
	}()
}

// Guarded is the canonical fixed shape: the literal defers
// guard.Rescue before any work runs.
func Guarded(fail func(error)) {
	go func() {
		defer guard.Rescue("rewrite.guarded", fail)
		work()
	}()
}

// GuardedAfterDone mirrors the production worker pool: the guard defer
// is the second top-level defer, after the WaitGroup bookkeeping.
func GuardedAfterDone(wg *sync.WaitGroup, fail func(error)) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer guard.Rescue("rewrite.pool", fail)
		work()
	}()
}

// ClosureWorker resolves the `go worker()` shape: the spawned
// identifier is a local closure carrying the guard defer.
func ClosureWorker(fail func(error)) {
	worker := func() {
		defer guard.Rescue("rewrite.worker", fail)
		work()
	}
	go worker()
}

// ClosureBare is the same shape without the defer; the diagnostic
// lands on the go statement, not the closure definition.
func ClosureBare() {
	worker := func() {
		work()
	}
	go worker() // want "does not route panics through internal/guard"
}

// VarSpecWorker resolves closures bound through a var declaration.
func VarSpecWorker(fail func(error)) {
	var worker = func() {
		defer guard.Rescue("rewrite.var", fail)
		work()
	}
	go worker()
}

// DeclWorker spawns a same-package declared function; the analyzer
// follows the declaration across the package.
func DeclWorker() {
	go declaredGuarded()
}

// DeclBare spawns a declared function lacking the defer.
func DeclBare() {
	go declaredBare() // want "does not route panics through internal/guard"
}

// RawRecover satisfies the invariant with the raw-recover idiom: a
// deferred literal whose body calls the recover builtin.
func RawRecover() {
	go func() {
		defer func() {
			if v := recover(); v != nil {
				_ = v
			}
		}()
		work()
	}()
}

// NestedDeferOnly buries the recovery inside a conditional; a defer
// that is not a top-level statement of the body does not guarantee it
// runs before the first panic-prone statement.
func NestedDeferOnly(fail func(error)) {
	go func() { // want "does not route panics through internal/guard"
		if work() {
			defer guard.Rescue("rewrite.nested", fail)
		}
		work()
	}()
}

// Dynamic spawns a function value the analyzer cannot resolve: the
// callee arrives as a parameter, so the body is out of reach.
func Dynamic(f func()) {
	go f() // want "not statically resolvable"
}

// Ignored demonstrates the escape hatch for a goroutine whose panics
// are provably impossible.
func Ignored() {
	//qavlint:ignore panicguard body is a single channel send
	go func() {
		work()
	}()
}

// declaredGuarded carries the guard defer at top level.
func declaredGuarded() {
	defer guard.Recover(nil, "rewrite.decl")
	work()
}

// declaredBare has no recovery.
func declaredBare() {
	work()
}

func work() bool { return true }
