// Package guard stubs the repository's panic-recovery helpers; the
// analyzer matches callees by the internal/guard path suffix.
package guard

// Rescue is the goroutine-boundary recovery helper.
func Rescue(op string, fail func(error)) {
	if v := recover(); v != nil {
		fail(nil)
		_ = op
	}
}

// Recover converts a panic into an error via a named return.
func Recover(err *error, op string) {
	if v := recover(); v != nil {
		_ = op
		_ = v
	}
}
