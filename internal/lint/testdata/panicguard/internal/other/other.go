// Package other is outside the panicguard target set: its path ends
// in neither internal/rewrite nor internal/server, so bare goroutines
// here draw no diagnostic.
package other

// Spawn launches an unguarded goroutine, legally.
func Spawn() {
	go func() {
		_ = 1 + 1
	}()
}
