package lint

// This file is the suite's shared dataflow core: an intra-procedural
// reaching-definitions / escape-of-reference analysis over go/types.
// Analyzers (planfreeze today) use it to answer, at any use of a
// variable, "where did this value come from, and may it already be
// shared with code outside this function?".
//
// The model is deliberately small and positional:
//
//   - Every allocation expression (&T{...}, T{...}, new, make) is an
//     allocSite. A variable's value is described by a set of origins,
//     each either one site or external (parameters, globals, call
//     results, anything unknown).
//   - A site escapes at the first program position where its value may
//     become reachable from outside the function: a store into memory
//     that is itself external or escaped, an assignment to a package
//     variable, a channel send, or a goroutine launch. Plain call
//     arguments and return statements are deliberately NOT escapes:
//     returns run no code afterwards on their path, and treating call
//     arguments as escapes drowns constructors in false positives.
//     Cross-function sharing is instead covered by the other side:
//     a callee sees its parameters as external from the start.
//   - The walk is in source order, a flow-insensitive approximation of
//     control flow. Loops get one correction: an escape inside a loop
//     of a value allocated outside the loop is hoisted to the loop
//     head, because the escape of iteration N precedes the writes of
//     iteration N+1.
//   - Reads through a selector/index/slice propagate the base's
//     origins (the interior of a fresh object is still that object's
//     memory). When the base is a *tracked* type (the analyzer's
//     predicate) and is external or already escaped, the result is
//     marked sharedFrom that type: writes through such a value mutate
//     storage aliased with the tracked object — the returned-slice
//     aliasing planfreeze exists to catch.
//
// FuncLit bodies are walked inline with the enclosing flow (a closure
// invoked in place, the common case for sort.Slice etc., sees the real
// origins); launching a FuncLit with `go` escapes every site the
// closure captures.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// allocSite is one allocation expression in the analyzed function.
type allocSite struct {
	pos    token.Pos    // position of the allocation expression
	escape token.Pos    // first position where the value may be shared; NoPos = never
	owned  []*allocSite // sites whose values this site's value holds references to
}

// escapedAt reports whether the site's value may be shared with the
// outside at pos.
func (s *allocSite) escapedAt(pos token.Pos) bool {
	return s.escape != token.NoPos && s.escape <= pos
}

// origin describes one possible source of a variable's value.
type origin struct {
	// site is the allocation the value came from; nil means external
	// (parameter, global, call result, unknown).
	site *allocSite
	// sharedFrom, when non-empty, names the tracked type whose interior
	// this value was read out of while that object was external or
	// escaped. Writes through the value mutate the tracked object.
	sharedFrom string
}

func externalOrigin() []origin { return []origin{{}} }

// loopSpan records one for/range statement for back-edge hoisting.
type loopSpan struct{ pos, end token.Pos }

// funcFlow holds the per-function analysis result.
type funcFlow struct {
	info    *types.Info
	tracked func(types.Type) string // non-empty name when t is tracked

	origins map[types.Object][]origin
	atUse   map[*ast.Ident][]origin
	sites   []*allocSite
	loops   []loopSpan
}

// analyzeFunc runs the dataflow over one function. tracked classifies
// types whose interior counts as shared storage (may be nil).
func analyzeFunc(info *types.Info, tracked func(types.Type) string, fn *ast.FuncDecl) *funcFlow {
	f := &funcFlow{
		info:    info,
		tracked: tracked,
		origins: make(map[types.Object][]origin),
		atUse:   make(map[*ast.Ident][]origin),
	}
	if f.tracked == nil {
		f.tracked = func(types.Type) string { return "" }
	}
	// Parameters, receivers and named results are external by
	// construction: whoever passed them in still holds a reference.
	for _, fl := range []*ast.FieldList{fn.Recv, fn.Type.Params, fn.Type.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					f.origins[obj] = externalOrigin()
				}
			}
		}
	}
	if fn.Body != nil {
		f.walkStmt(fn.Body)
	}
	f.hoistLoopEscapes()
	return f
}

// originsAt returns the origins the variable used at id had at that
// point of the walk, or external when the identifier was not tracked
// (package-level vars, identifiers outside the analyzed function).
func (f *funcFlow) originsAt(id *ast.Ident) []origin {
	if o, ok := f.atUse[id]; ok {
		return o
	}
	return externalOrigin()
}

// hoistLoopEscapes moves an escape that happens inside a loop to the
// loop head when the site was allocated outside the loop: the escape
// of one iteration precedes the writes of the next.
func (f *funcFlow) hoistLoopEscapes() {
	sort.Slice(f.loops, func(i, j int) bool { // innermost (smallest) first
		return f.loops[i].end-f.loops[i].pos < f.loops[j].end-f.loops[j].pos
	})
	for _, s := range f.sites {
		if s.escape == token.NoPos {
			continue
		}
		for _, lp := range f.loops {
			inLoop := lp.pos <= s.escape && s.escape <= lp.end
			defInLoop := lp.pos <= s.pos && s.pos <= lp.end
			if inLoop && !defInLoop {
				s.escape = lp.pos
			}
		}
	}
}

func (f *funcFlow) newSite(pos token.Pos) *allocSite {
	s := &allocSite{pos: pos, escape: token.NoPos}
	f.sites = append(f.sites, s)
	return s
}

// escapeOrigins marks every site among orgs as escaped at pos,
// cascading to owned sites.
func (f *funcFlow) escapeOrigins(orgs []origin, pos token.Pos) {
	for _, o := range orgs {
		if o.site != nil {
			f.escapeSite(o.site, pos)
		}
	}
}

func (f *funcFlow) escapeSite(s *allocSite, pos token.Pos) {
	if s.escape != token.NoPos && s.escape <= pos {
		return // already escaped at or before pos; cycle-safe
	}
	s.escape = pos
	for _, o := range s.owned {
		f.escapeSite(o, pos)
	}
}

// externalOrEscaped reports whether any origin is external or already
// escaped at pos.
func externalOrEscaped(orgs []origin, pos token.Pos) bool {
	for _, o := range orgs {
		if o.site == nil || o.site.escapedAt(pos) {
			return true
		}
	}
	return len(orgs) == 0
}

// own records that base's values hold references to the values of
// child sites (composite-literal elements, appends, field stores). If
// the base is external or escaped, the children escape immediately.
func (f *funcFlow) own(base, children []origin, pos token.Pos) {
	if externalOrEscaped(base, pos) {
		f.escapeOrigins(children, pos)
		return
	}
	for _, b := range base {
		if b.site == nil {
			continue
		}
		for _, c := range children {
			if c.site != nil && c.site != b.site {
				b.site.owned = append(b.site.owned, c.site)
			}
		}
	}
}

// ---- statement walk ----

func (f *funcFlow) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			f.walkStmt(st)
		}
	case *ast.AssignStmt:
		f.walkAssign(s)
	case *ast.IncDecStmt:
		f.evalExpr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var orgs []origin
					if i < len(vs.Values) {
						orgs = f.evalExpr(vs.Values[i])
					} else {
						// Zero value: a fresh, unshared value.
						orgs = []origin{{site: f.newSite(name.Pos())}}
					}
					if obj := f.info.Defs[name]; obj != nil {
						f.origins[obj] = orgs
					}
				}
			}
		}
	case *ast.ExprStmt:
		f.evalExpr(s.X)
	case *ast.SendStmt:
		f.evalExpr(s.Chan)
		f.escapeOrigins(f.evalExpr(s.Value), s.Pos())
	case *ast.GoStmt:
		// The goroutine runs concurrently: everything it can reach is
		// shared from the launch on — arguments and captured sites.
		for _, arg := range s.Call.Args {
			f.escapeOrigins(f.evalExpr(arg), s.Pos())
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			f.escapeCaptured(fl, s.Pos())
		} else {
			f.evalExpr(s.Call.Fun)
		}
	case *ast.DeferStmt:
		f.evalExpr(s.Call.Fun)
		for _, arg := range s.Call.Args {
			f.evalExpr(arg)
		}
	case *ast.ReturnStmt:
		// Not an escape: nothing executes after a return on its path.
		for _, r := range s.Results {
			f.evalExpr(r)
		}
	case *ast.IfStmt:
		f.walkStmt(s.Init)
		f.evalExpr(s.Cond)
		f.walkStmt(s.Body)
		f.walkStmt(s.Else)
	case *ast.ForStmt:
		f.loops = append(f.loops, loopSpan{s.Pos(), s.End()})
		f.walkStmt(s.Init)
		if s.Cond != nil {
			f.evalExpr(s.Cond)
		}
		f.walkStmt(s.Body)
		f.walkStmt(s.Post)
	case *ast.RangeStmt:
		f.loops = append(f.loops, loopSpan{s.Pos(), s.End()})
		rangeOrgs := f.evalExpr(s.X)
		for _, kv := range []ast.Expr{s.Key, s.Value} {
			if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
				obj := f.info.Defs[id]
				if obj == nil {
					obj = f.info.Uses[id]
				}
				if obj != nil {
					// Range elements alias the ranged value's interior.
					f.origins[obj] = f.derive(rangeOrgs, s.X, s.Pos())
				}
			}
		}
		f.walkStmt(s.Body)
	case *ast.SwitchStmt:
		f.walkStmt(s.Init)
		if s.Tag != nil {
			f.evalExpr(s.Tag)
		}
		f.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		f.walkStmt(s.Init)
		f.walkStmt(s.Assign)
		f.walkStmt(s.Body)
	case *ast.SelectStmt:
		f.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			f.evalExpr(e)
		}
		for _, st := range s.Body {
			f.walkStmt(st)
		}
	case *ast.CommClause:
		f.walkStmt(s.Comm)
		for _, st := range s.Body {
			f.walkStmt(st)
		}
	case *ast.LabeledStmt:
		f.walkStmt(s.Stmt)
	}
}

func (f *funcFlow) walkAssign(s *ast.AssignStmt) {
	// Evaluate all RHS first (Go's evaluation order), then bind.
	rhs := make([][]origin, len(s.Rhs))
	for i, r := range s.Rhs {
		rhs[i] = f.evalExpr(r)
	}
	multi := len(s.Lhs) > 1 && len(s.Rhs) == 1 // x, y := f()
	for i, l := range s.Lhs {
		var orgs []origin
		switch {
		case multi:
			orgs = externalOrigin()
		case i < len(rhs):
			orgs = rhs[i]
		default:
			orgs = externalOrigin()
		}
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// +=, |=, ...: value derived from the old one; for
			// reference tracking treat as a use plus external result,
			// except that the variable keeps its origins (x += y does
			// not change what x's memory is).
			f.evalExpr(l)
			continue
		}
		f.bind(l, orgs)
	}
}

// bind assigns origins to an lvalue: a plain identifier rebinds the
// variable; anything else is a store into memory.
func (f *funcFlow) bind(l ast.Expr, orgs []origin) {
	l = ast.Unparen(l)
	if id, ok := l.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := f.info.Defs[id]
		if obj == nil {
			obj = f.info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, known := f.origins[obj]; !known && f.info.Defs[id] == nil {
			// Assignment to something we never bound (package-level
			// var): the stored values escape.
			f.escapeOrigins(orgs, l.Pos())
			return
		}
		f.origins[obj] = orgs
		return
	}
	// Store through a selector/index/star chain: the stored values
	// become reachable from the base; escape when the base is shared.
	base := f.chainBase(l)
	if base == nil {
		f.escapeOrigins(orgs, l.Pos())
		return
	}
	baseOrgs := f.evalExpr(base)
	f.own(baseOrgs, orgs, l.Pos())
}

// chainBase walks a selector/index/slice/star/paren chain to its base
// expression, returning nil when the chain bottoms out in something
// other than an identifier (a call result, a literal).
func (f *funcFlow) chainBase(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			if _, ok := f.info.Selections[x]; !ok {
				return x // qualified identifier pkg.X: base is the var itself
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// escapeCaptured escapes every site reachable from variables the
// function literal references.
func (f *funcFlow) escapeCaptured(fl *ast.FuncLit, pos token.Pos) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := f.info.Uses[id]
		if obj == nil {
			return true
		}
		if orgs, ok := f.origins[obj]; ok {
			f.escapeOrigins(orgs, pos)
		}
		return true
	})
	f.walkStmt(fl.Body)
}

// ---- expression evaluation ----

// evalExpr computes the origin set of e, recording snapshots for every
// identifier use it visits.
func (f *funcFlow) evalExpr(e ast.Expr) []origin {
	switch e := e.(type) {
	case nil:
		return externalOrigin()
	case *ast.Ident:
		obj := f.info.Uses[e]
		if obj == nil {
			obj = f.info.Defs[e]
		}
		if obj == nil {
			return externalOrigin()
		}
		orgs, ok := f.origins[obj]
		if !ok {
			orgs = externalOrigin()
		}
		f.atUse[e] = orgs
		return orgs
	case *ast.ParenExpr:
		return f.evalExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return f.evalComposite(cl, e.Pos())
			}
			// &x: the address of a local aliases that local's memory.
			return f.evalExpr(e.X)
		}
		f.evalExpr(e.X)
		return externalOrigin()
	case *ast.CompositeLit:
		return f.evalComposite(e, e.Pos())
	case *ast.SelectorExpr:
		if _, ok := f.info.Selections[e]; !ok {
			// Qualified identifier (pkg.Var, pkg.Const): external.
			f.evalExpr(e.X)
			return externalOrigin()
		}
		return f.derive(f.evalExpr(e.X), e.X, e.Pos())
	case *ast.IndexExpr:
		f.evalExpr(e.Index)
		return f.derive(f.evalExpr(e.X), e.X, e.Pos())
	case *ast.SliceExpr:
		// Re-slicing shares the backing array: same origins.
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				f.evalExpr(idx)
			}
		}
		return f.derive(f.evalExpr(e.X), e.X, e.Pos())
	case *ast.StarExpr:
		return f.derive(f.evalExpr(e.X), e.X, e.Pos())
	case *ast.CallExpr:
		return f.evalCall(e)
	case *ast.TypeAssertExpr:
		return f.evalExpr(e.X)
	case *ast.BinaryExpr:
		f.evalExpr(e.X)
		f.evalExpr(e.Y)
		return externalOrigin()
	case *ast.FuncLit:
		// Walk the body inline: closures invoked in place (sort.Slice
		// comparators etc.) see the enclosing origins.
		f.walkStmt(e.Body)
		return externalOrigin()
	case *ast.KeyValueExpr:
		f.evalExpr(e.Key)
		return f.evalExpr(e.Value)
	default:
		return externalOrigin()
	}
}

// derive propagates origins through a read of base's interior
// (selector, index, slice, deref). Fresh bases pass their sites
// through — the interior of a fresh object is that object's memory.
// Shared bases of a tracked type taint the result with sharedFrom.
func (f *funcFlow) derive(baseOrgs []origin, base ast.Expr, pos token.Pos) []origin {
	name := ""
	if t := f.info.TypeOf(base); t != nil {
		name = f.tracked(derefType(t))
	}
	out := make([]origin, 0, len(baseOrgs))
	for _, o := range baseOrgs {
		switch {
		case o.site != nil && !o.site.escapedAt(pos):
			out = append(out, o)
		case name != "":
			out = append(out, origin{sharedFrom: name})
		default:
			out = append(out, origin{sharedFrom: o.sharedFrom})
		}
	}
	if len(out) == 0 {
		return externalOrigin()
	}
	return out
}

func (f *funcFlow) evalComposite(cl *ast.CompositeLit, pos token.Pos) []origin {
	site := f.newSite(pos)
	self := []origin{{site: site}}
	for _, elt := range cl.Elts {
		f.own(self, f.evalExpr(elt), elt.Pos())
	}
	return self
}

func (f *funcFlow) evalCall(call *ast.CallExpr) []origin {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		switch f.info.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "append":
				return f.evalAppend(call)
			case "new", "make":
				for _, a := range call.Args[1:] {
					f.evalExpr(a)
				}
				return []origin{{site: f.newSite(call.Pos())}}
			case "len", "cap", "copy", "delete", "min", "max", "clear", "print", "println", "panic", "recover", "close":
				for _, a := range call.Args {
					f.evalExpr(a)
				}
				return externalOrigin()
			}
		case *types.TypeName:
			// Conversion T(x): same value, same origins.
			if len(call.Args) == 1 {
				return f.evalExpr(call.Args[0])
			}
		}
	}
	f.evalExpr(call.Fun)
	for _, a := range call.Args {
		f.evalExpr(a)
	}
	return externalOrigin()
}

// evalAppend models append: the result shares the first argument's
// backing (or is fresh growth of it), and the appended elements become
// reachable from it.
func (f *funcFlow) evalAppend(call *ast.CallExpr) []origin {
	if len(call.Args) == 0 {
		return externalOrigin()
	}
	base := f.evalExpr(call.Args[0])
	for _, a := range call.Args[1:] {
		f.own(base, f.evalExpr(a), a.Pos())
	}
	return base
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
