package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Main is the qavlint entry point, shared by `cmd/qavlint`. It serves
// three calling conventions:
//
//   - `qavlint -V=full` and `qavlint -flags`: the handshake `go vet`
//     performs with a -vettool before dispatching work;
//   - `qavlint <file>.cfg`: one unit of `go vet` work (the unitchecker
//     protocol);
//   - `qavlint [packages]`: standalone mode, loading the packages via
//     `go list` (defaulting to ./...).
//
// The exit code is 0 when clean, 1 on operational errors, 2 when the
// suite found violations.
func Main(args []string, analyzers []*Analyzer) int {
	return run(args, analyzers, os.Stdout, os.Stderr)
}

func run(args []string, analyzers []*Analyzer, stdout, stderr io.Writer) int {
	// The go command probes `-V=full` (and `go version` probes `-V`)
	// before trusting a vettool; the reply must be a single line whose
	// second field is "version".
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Fprintf(stdout, "qavlint version %s\n", Version)
		return 0
	}
	// `go vet` asks for the tool's flags as a JSON array to merge them
	// into its own flag set. The suite is deliberately knob-free.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnitchecker(args[0], analyzers, stderr)
	}

	fs := flag.NewFlagSet("qavlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: qavlint [-list] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the qav analyzer suite on the packages (default ./...).\n")
		fmt.Fprintf(stderr, "Also usable as a vet tool: go vet -vettool=$(which qavlint) ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	pkgs, err := Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "qavlint: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "qavlint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s\n", d)
			exit = 2
		}
	}
	return exit
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
