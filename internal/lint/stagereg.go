package lint

import (
	"go/ast"
	"go/types"
)

// StageReg enforces the central name registry (internal/names) for
// observability and chaos identifiers:
//
//   - every fault.Register call site must pass a constant declared in
//     internal/names, never a raw string literal — renames must be
//     atomic across the registry, the chaos suite and the probes;
//   - the Op label of an obs.SlowEntry must be a names constant, so
//     slow-log consumers can rely on a closed vocabulary;
//   - inside internal/obs, the stage-name table (the composite literal
//     assigned to stageNames) must be built from names constants, tying
//     the Stage enum's String values to the registry;
//   - a package-level fault point (var x = fault.Register(...)) must
//     have a corresponding x.Hit call in its package: a registered but
//     never-fired point gives the chaos suite false confidence that a
//     stage is exercised.
var StageReg = &Analyzer{
	Name: "stagereg",
	Doc: "obs stage names, slow-log ops and fault point names come from internal/names\n" +
		"Raw string literals at registration sites drift; declare the constant in the\n" +
		"central registry and reference it. Registered fault points must also be Hit.",
	Run: runStageReg,
}

func runStageReg(pass *Pass) error {
	if PathHasSuffix(pass.Pkg.Path(), "internal/names") {
		return nil
	}
	type pointDecl struct {
		obj  types.Object
		pos  ast.Node
		name string // constant value when resolvable, else source text
	}
	var points []pointDecl
	hit := make(map[types.Object]bool)

	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isFaultRegister(pass.Info, n) && len(n.Args) == 1 {
					if !isNamesConst(pass.Info, n.Args[0]) {
						pass.Reportf(n.Args[0].Pos(),
							"fault.Register argument must be a constant from internal/names, not a raw value (stagereg)")
					}
				}
				// x.Hit(...) marks the point as fired.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Hit" {
					if obj := baseIdentObj(pass.Info, sel.X); obj != nil {
						hit[obj] = true
					}
				}
			case *ast.CompositeLit:
				checkSlowEntryLit(pass, n)
			case *ast.AssignStmt:
				checkSlowEntryAssign(pass, n)
			}
			return true
		})

		// Package-level fault points and the obs stage-name table.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					val := ast.Unparen(vs.Values[i])
					if call, ok := val.(*ast.CallExpr); ok && isFaultRegister(pass.Info, call) {
						if obj := pass.Info.Defs[name]; obj != nil {
							points = append(points, pointDecl{obj: obj, pos: name, name: name.Name})
						}
					}
					if name.Name == "stageNames" && PathHasSuffix(pass.Pkg.Path(), "internal/obs") {
						if cl, ok := val.(*ast.CompositeLit); ok {
							for _, elt := range cl.Elts {
								if !isNamesConst(pass.Info, elt) {
									pass.Reportf(elt.Pos(),
										"stage name table entries must be constants from internal/names (stagereg)")
								}
							}
						}
					}
				}
			}
		}
	}

	for _, p := range points {
		if !hit[p.obj] {
			pass.Reportf(p.pos.Pos(),
				"fault point %s is registered but never Hit in this package; an unexercised probe gives the chaos suite false coverage (stagereg)", p.name)
		}
	}
	return nil
}

// isFaultRegister reports whether call is fault.Register(...).
func isFaultRegister(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "Register" && fn.Pkg() != nil &&
		PathHasSuffix(fn.Pkg().Path(), "internal/fault")
}

// isNamesConst reports whether e resolves to a constant declared in
// internal/names.
func isNamesConst(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && PathHasSuffix(c.Pkg().Path(), "internal/names")
}

// isSlowEntryType reports whether t is obs.SlowEntry.
func isSlowEntryType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SlowEntry" && obj.Pkg() != nil &&
		PathHasSuffix(obj.Pkg().Path(), "internal/obs")
}

// checkSlowEntryLit checks Op fields of obs.SlowEntry composite
// literals.
func checkSlowEntryLit(pass *Pass, cl *ast.CompositeLit) {
	if t := pass.Info.TypeOf(cl); t == nil || !isSlowEntryType(t) {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Op" {
			continue
		}
		if !isNamesConst(pass.Info, kv.Value) {
			pass.Reportf(kv.Value.Pos(),
				"SlowEntry.Op must be a constant from internal/names (stagereg)")
		}
	}
}

// checkSlowEntryAssign checks assignments to a SlowEntry's Op field.
func checkSlowEntryAssign(pass *Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Op" || i >= len(as.Rhs) {
			continue
		}
		if t := pass.Info.TypeOf(sel.X); t == nil || !isSlowEntryType(t) {
			continue
		}
		if !isNamesConst(pass.Info, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(),
				"SlowEntry.Op must be a constant from internal/names (stagereg)")
		}
	}
}
