// Package lint is a small static-analysis framework plus the qavlint
// analyzer suite that enforces this repository's concurrency and
// immutability invariants (see DESIGN.md, "The lint layer").
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer with a Run(*Pass) hook reporting position-anchored
// diagnostics — but is built on the standard library only (go/ast,
// go/types, go/importer), because the module's runtime packages are
// stdlib-only and the build environment must not fetch dependencies.
// The driver understands both a standalone mode (load packages via
// `go list -export`) and the `go vet -vettool=` unitchecker protocol,
// so `go vet -vettool=$(which qavlint) ./...` works exactly like an
// x/tools-based tool would. If x/tools ever becomes available, the
// analyzers port over mechanically.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer is one named check over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //qavlint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Message)
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	ModulePath string
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModulePath is the module containing the package under analysis;
	// analyzers use it to tell first-party callees from stdlib ones.
	ModulePath string

	diags    *[]Diagnostic
	ignores  map[ignoreKey]bool
	funcDocs []ignoreSpan
}

// Reportf records a diagnostic at pos unless an ignore directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(pos, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// IsTestFile reports whether f is a _test.go file. The suite's
// analyzers enforce invariants on production code; tests may build
// fixtures in ways the invariants forbid.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// PathHasSuffix reports whether the import path ends in the given
// slash-separated suffix (e.g. "qav/internal/tpq" has suffix
// "internal/tpq"). Suffix matching keeps the analyzers testable from
// stub modules whose paths only share the tail.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// ignoreKey addresses one //qavlint:ignore directive by file, line and
// analyzer name.
type ignoreKey struct {
	file string
	line int
	name string
}

// ignoreSpan is a declaration-level directive: any diagnostic of the
// named analyzer inside [start, end] is suppressed.
type ignoreSpan struct {
	start, end token.Pos
	name       string
}

var ignoreRe = regexp.MustCompile(`^//qavlint:ignore\s+([a-z]+)`)

// collectIgnores scans the package once for //qavlint:ignore
// directives. A directive suppresses the named analyzer on its own
// line and the next line; placed in a declaration's doc comment it
// covers the whole declaration.
func collectIgnores(fset *token.FileSet, files []*ast.File) (map[ignoreKey]bool, []ignoreSpan) {
	ignores := make(map[ignoreKey]bool)
	var spans []ignoreSpan
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				ignores[ignoreKey{pos.Filename, pos.Line, m[1]}] = true
				ignores[ignoreKey{pos.Filename, pos.Line + 1, m[1]}] = true
			}
		}
		for _, decl := range f.Decls {
			doc := declDoc(decl)
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				if m := ignoreRe.FindStringSubmatch(c.Text); m != nil {
					spans = append(spans, ignoreSpan{decl.Pos(), decl.End(), m[1]})
				}
			}
		}
	}
	return ignores, spans
}

func declDoc(decl ast.Decl) *ast.CommentGroup {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return d.Doc
	case *ast.GenDecl:
		return d.Doc
	}
	return nil
}

func (p *Pass) suppressed(pos token.Pos, position token.Position) bool {
	if p.ignores[ignoreKey{position.Filename, position.Line, p.Analyzer.Name}] {
		return true
	}
	for _, s := range p.funcDocs {
		if s.name == p.Analyzer.Name && s.start <= pos && pos <= s.end {
			return true
		}
	}
	return false
}

// RunAnalyzers applies the analyzers to one package and returns the
// surviving diagnostics in source order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores, spans := collectIgnores(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ModulePath: pkg.ModulePath,
			diags:      &diags,
			ignores:    ignores,
			funcDocs:   spans,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	return diags, nil
}

// Suite is the full qavlint analyzer suite, in reporting order. The
// first five are syntactic; planfreeze, stagereg, exhaustive and
// lockorder are the invariant analyzers built on the dataflow core
// (dataflow.go) and the cross-package type information.
var Suite = []*Analyzer{
	CtxPoll, LockGuard, PatMut, ErrWrap, PanicGuard,
	PlanFreeze, StageReg, Exhaustive, LockOrder,
}
