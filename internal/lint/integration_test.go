package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"qav/internal/lint"
)

// moduleRoot walks up from the test's working directory to the qav
// module root.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && strings.HasPrefix(strings.TrimSpace(string(data)), "module qav") {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("qav module root not found")
		}
		dir = parent
	}
}

// TestSuiteCleanOnRepo runs the full suite over the repository in
// standalone mode: the invariants the analyzers enforce must hold on
// the codebase that defines them.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root := moduleRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.Suite)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestVettool builds the qavlint binary and drives it through go vet's
// -vettool protocol over the whole repository — the exact CI
// invocation.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole module")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "qavlint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/qavlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qavlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=qavlint: %v\n%s", err, out)
	}
}
