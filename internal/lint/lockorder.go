package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder extends lockguard from "is the lock held" to "are locks
// acquired in a consistent order". It builds a mutex acquisition graph
// for the package under analysis: nodes are lock identities (a mutex
// field keyed by its owning named type, a package-level mutex var, or
// a local mutex), and an edge A -> B records that somewhere B is
// acquired while A is held. A cycle in that graph is a potential
// deadlock (engine holds its mu and takes the cache's while another
// path holds the cache's and takes the engine's), reported once per
// cycle.
//
// Held intervals are tracked per function in source order: Lock/RLock
// opens an interval, the matching Unlock/RUnlock closes it, and a
// deferred unlock holds to the end of the function. While a lock is
// held, two kinds of acquisitions add edges:
//
//   - direct Lock/RLock calls in the same function;
//   - calls to other functions: for same-package callees the analyzer
//     uses their actual (transitively closed) acquisition sets; for
//     other module packages, where only export data is visible, it
//     assumes a method may take any mutex field of its receiver type —
//     unless the method follows the *Locked naming convention, whose
//     contract is "caller already holds the lock".
//
// Acquiring a lock that is already held is reported directly (Go
// mutexes are not reentrant); a pair of RLocks is exempt, and keying
// field mutexes by owning type means two instances of one type
// collapse into a node — a deliberate over-approximation, since
// lock-ordering discipline is per-type in this codebase.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisition order is acyclic and no lock is re-acquired while held\n" +
		"An edge A -> B means B is taken while A is held; a cycle is a potential\n" +
		"deadlock. Same-package callees contribute their real acquisition sets,\n" +
		"cross-package methods are assumed to take their receiver's mutexes.",
	Run: runLockOrder,
}

// lockKey identifies one mutex node in the acquisition graph.
type lockKey string

// lockEdge is one "B taken while A held" observation.
type lockEdge struct {
	from, to lockKey
	pos      token.Pos
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrder{
		pass:      pass,
		funcLocks: make(map[*types.Func]map[lockKey]bool),
		callees:   make(map[*types.Func][]*types.Func),
		edges:     make(map[lockKey]map[lockKey]token.Pos),
	}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Pass 1: per-function direct acquisition sets and the
	// same-package call graph, then transitive closure.
	for _, fd := range decls {
		lo.collectFuncLocks(fd)
	}
	lo.close()
	// Pass 2: held-interval tracking, edge collection, double-acquire.
	for _, fd := range decls {
		lo.checkFunc(fd)
	}
	lo.reportCycles()
	return nil
}

type lockOrder struct {
	pass      *Pass
	funcLocks map[*types.Func]map[lockKey]bool
	callees   map[*types.Func][]*types.Func
	edges     map[lockKey]map[lockKey]token.Pos
}

// lockCall classifies one sync.Mutex/RWMutex method call.
type lockCall struct {
	key    lockKey
	method string // Lock, RLock, Unlock, RUnlock
}

// classifyLockCall returns the lock identity and method when call is a
// mutex Lock/RLock/Unlock/RUnlock, handling both explicit fields
// (x.mu.Lock) and embedded mutexes (x.Lock via promotion).
func (lo *lockOrder) classifyLockCall(call *ast.CallExpr) (lockCall, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	m := sel.Sel.Name
	if m != "Lock" && m != "RLock" && m != "Unlock" && m != "RUnlock" {
		return lockCall{}, false
	}
	fn := calleeFunc(lo.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	if selection, ok := lo.pass.Info.Selections[sel]; ok {
		// Promoted method: x.Lock() with an embedded Mutex. The field
		// path (all but the final method index) names the mutex field.
		if recv := derefType(selection.Recv()); !isSyncMutex(recv) {
			if key, ok := embeddedMutexKey(recv, selection.Index()); ok {
				return lockCall{key: key, method: m}, true
			}
		}
	}
	key, ok := lo.mutexExprKey(sel.X)
	if !ok {
		return lockCall{}, false
	}
	return lockCall{key: key, method: m}, true
}

// mutexExprKey derives the lock identity of a mutex-valued expression:
// a field selector keys by owning named type, identifiers by package
// var or local object.
func (lo *lockOrder) mutexExprKey(e ast.Expr) (lockKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if selection, ok := lo.pass.Info.Selections[e]; ok && selection.Kind() == types.FieldVal {
			owner := derefType(selection.Recv())
			if named, ok := owner.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lockKey(named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name), true
			}
			return "", false
		}
		// Qualified package var: pkg.mu.
		if v, ok := lo.pass.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return lockKey(v.Pkg().Name() + "." + v.Name()), true
		}
	case *ast.Ident:
		obj := lo.pass.Info.Uses[e]
		if obj == nil {
			obj = lo.pass.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return lockKey(v.Pkg().Name() + "." + v.Name()), true
			}
			return lockKey(fmt.Sprintf("local.%s@%d", v.Name(), v.Pos())), true
		}
	case *ast.StarExpr:
		return lo.mutexExprKey(e.X)
	}
	return "", false
}

// embeddedMutexKey resolves a promoted Lock call's mutex field along
// the selection index path.
func embeddedMutexKey(recv types.Type, index []int) (lockKey, bool) {
	t := recv
	ownerName := ""
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		ownerName = named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	for _, idx := range index[:len(index)-1] {
		st, ok := derefType(t).Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return "", false
		}
		field := st.Field(idx)
		if isSyncMutex(field.Type()) {
			if ownerName == "" {
				return "", false
			}
			return lockKey(ownerName + "." + field.Name()), true
		}
		t = field.Type()
		if named, ok := derefType(t).(*types.Named); ok && named.Obj().Pkg() != nil {
			ownerName = named.Obj().Pkg().Name() + "." + named.Obj().Name()
		}
	}
	return "", false
}

func isSyncMutex(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// collectFuncLocks records fd's direct acquisitions and same-package
// callees for the transitive closure.
func (lo *lockOrder) collectFuncLocks(fd *ast.FuncDecl) {
	fn, _ := lo.pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	locks := make(map[lockKey]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lc, ok := lo.classifyLockCall(call); ok {
			if lc.method == "Lock" || lc.method == "RLock" {
				locks[lc.key] = true
			}
			return true
		}
		if callee := calleeFunc(lo.pass.Info, call); callee != nil && callee.Pkg() == lo.pass.Pkg {
			lo.callees[fn] = append(lo.callees[fn], callee)
		}
		return true
	})
	lo.funcLocks[fn] = locks
}

// close computes the transitive acquisition sets over the same-package
// call graph.
func (lo *lockOrder) close() {
	for changed := true; changed; {
		changed = false
		for fn, cs := range lo.callees {
			for _, callee := range cs {
				for k := range lo.funcLocks[callee] {
					if !lo.funcLocks[fn][k] {
						lo.funcLocks[fn][k] = true
						changed = true
					}
				}
			}
		}
	}
}

// lockEvent is one ordered observation inside a function body.
type loEvent struct {
	pos      token.Pos
	lock     *lockCall // non-nil for mutex method calls
	deferred bool
	call     *ast.CallExpr // non-nil for other calls
}

func (lo *lockOrder) checkFunc(fd *ast.FuncDecl) {
	var events []loEvent
	inDefer := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closure bodies run at other times; their intervals are
			// not this function's. (Their acquisitions still count in
			// funcLocks for callers of this function.)
			return false
		case *ast.DeferStmt:
			inDefer[n.Call] = true
		case *ast.CallExpr:
			if lc, ok := lo.classifyLockCall(n); ok {
				events = append(events, loEvent{pos: n.Pos(), lock: &lc, deferred: inDefer[n]})
			} else {
				events = append(events, loEvent{pos: n.Pos(), call: n})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	type heldInfo struct {
		read bool
		pos  token.Pos
	}
	held := make(map[lockKey]heldInfo)
	for _, ev := range events {
		switch {
		case ev.lock != nil && (ev.lock.method == "Lock" || ev.lock.method == "RLock"):
			isRead := ev.lock.method == "RLock"
			if h, ok := held[ev.lock.key]; ok && !(h.read && isRead) {
				lo.pass.Reportf(ev.pos,
					"%s acquired while already held (since %s); Go mutexes are not reentrant (lockorder)",
					ev.lock.key, lo.pass.Fset.Position(h.pos))
			}
			for k := range held {
				if k != ev.lock.key {
					lo.addEdge(k, ev.lock.key, ev.pos)
				}
			}
			held[ev.lock.key] = heldInfo{read: isRead, pos: ev.pos}
		case ev.lock != nil:
			// Unlock/RUnlock: a deferred unlock runs at return, so the
			// lock stays held for the rest of the function.
			if !ev.deferred {
				delete(held, ev.lock.key)
			}
		case ev.call != nil && len(held) > 0:
			for _, acq := range lo.calleeAcquires(ev.call) {
				if h, ok := held[acq]; ok && !h.read {
					lo.pass.Reportf(ev.pos,
						"call may acquire %s, which is already held (since %s) (lockorder)",
						acq, lo.pass.Fset.Position(h.pos))
					continue
				}
				for k := range held {
					if k != acq {
						lo.addEdge(k, acq, ev.pos)
					}
				}
			}
		}
	}
}

// calleeAcquires estimates which locks a call may take: the real
// transitive set for same-package callees, the receiver's mutex fields
// for other module methods (except *Locked helpers), nothing for
// stdlib and dynamic calls.
func (lo *lockOrder) calleeAcquires(call *ast.CallExpr) []lockKey {
	fn := calleeFunc(lo.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg() == lo.pass.Pkg {
		set := lo.funcLocks[fn]
		keys := make([]lockKey, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return keys
	}
	if !inModule(lo.pass.ModulePath, fn.Pkg()) || strings.HasSuffix(fn.Name(), "Locked") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	owner := named.Obj().Pkg().Name() + "." + named.Obj().Name()
	var keys []lockKey
	for i := 0; i < st.NumFields(); i++ {
		if isSyncMutex(st.Field(i).Type()) {
			keys = append(keys, lockKey(owner+"."+st.Field(i).Name()))
		}
	}
	return keys
}

func (lo *lockOrder) addEdge(from, to lockKey, pos token.Pos) {
	m := lo.edges[from]
	if m == nil {
		m = make(map[lockKey]token.Pos)
		lo.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// reportCycles finds cycles in the acquisition graph by DFS and
// reports each once, at the source position of its first edge.
func (lo *lockOrder) reportCycles() {
	nodes := make([]lockKey, 0, len(lo.edges))
	for k := range lo.edges {
		nodes = append(nodes, k)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	reported := make(map[string]bool)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[lockKey]int)
	var stack []lockKey
	var visit func(k lockKey)
	visit = func(k lockKey) {
		color[k] = gray
		stack = append(stack, k)
		succs := make([]lockKey, 0, len(lo.edges[k]))
		for s := range lo.edges[k] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, s := range succs {
			switch color[s] {
			case white:
				visit(s)
			case gray:
				// Back edge: the cycle is the stack from s to k plus
				// the edge k -> s.
				start := 0
				for i, n := range stack {
					if n == s {
						start = i
						break
					}
				}
				cyc := append(append([]lockKey{}, stack[start:]...), s)
				lo.reportCycle(cyc, reported)
			}
		}
		stack = stack[:len(stack)-1]
		color[k] = black
	}
	for _, k := range nodes {
		if color[k] == white {
			visit(k)
		}
	}
}

func (lo *lockOrder) reportCycle(cyc []lockKey, reported map[string]bool) {
	// Normalize by the sorted member set so each cycle reports once.
	members := make([]string, 0, len(cyc)-1)
	for _, k := range cyc[:len(cyc)-1] {
		members = append(members, string(k))
	}
	sort.Strings(members)
	sig := strings.Join(members, "|")
	if reported[sig] {
		return
	}
	reported[sig] = true

	parts := make([]string, len(cyc))
	pos := token.NoPos
	for i, k := range cyc {
		parts[i] = string(k)
		if i+1 < len(cyc) {
			if p, ok := lo.edges[k][cyc[i+1]]; ok && (pos == token.NoPos || p < pos) {
				pos = p
			}
		}
	}
	lo.pass.Reportf(pos, "lock order cycle: %s; acquire these mutexes in one consistent order (lockorder)",
		strings.Join(parts, " -> "))
}
