package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive checks that a switch over one of the module's enum-like
// named types — plan.Backend, rewrite.PartialReason, tpq.Axis,
// fault.Action, constraints.Kind, obs.Stage, ... — either covers every
// declared value of the type or carries an explicit default clause. A
// type is enum-like when it is a named type declared in this module
// with an integer or string underlying type and at least two
// package-level constants of exactly that type in its declaring
// package. Bound sentinels (constants named Num*, e.g. obs.NumStages)
// are not values and are exempt.
//
// The point is growth safety: when the view-intersection work adds a
// Backend or a PartialReason, every switch that silently ignores the
// new value is a latent bug; this turns each into a diagnostic. A
// switch that intentionally handles a subset says so with `default:`.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches over module enum types cover all values or have an explicit default\n" +
		"A new enum value must not be silently ignored; subset handling is fine but\n" +
		"must be declared with a default clause.",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	t := pass.Info.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModule(pass.ModulePath, obj.Pkg()) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: subset handling is declared
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				// Non-constant case expression: coverage is not
				// decidable statically; leave the switch alone.
				return
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.Val().ExactString()] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s.%s is missing cases %s and has no default; handle them or declare the subset with default (exhaustive)",
		obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
}

// enumMembers returns the package-level constants of exactly the named
// type, excluding Num* bound sentinels. Two constants sharing a value
// (aliases) both appear, but coverage is by value, so either satisfies
// the check.
func enumMembers(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var members []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || strings.HasPrefix(name, "Num") {
			continue
		}
		if types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	return members
}
