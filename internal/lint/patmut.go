package lint

import (
	"go/ast"
	"go/types"
)

// PatMut enforces the immutability contract on tree patterns: outside
// internal/tpq, no code assigns to the fields of tpq.Pattern or
// tpq.Node. Patterns flow through the engine's cache and are shared
// between concurrent requests, so in-place edits corrupt other
// readers; callers must Clone and use tpq's structured mutation API
// (SetOutput, SetAxis, SpliceAbove, ...), which maintains the
// parent/child invariants Validate checks. Composite literals remain
// allowed — construction of a fresh pattern is not mutation.
var PatMut = &Analyzer{
	Name: "patmut",
	Doc: "no assignment to tpq.Pattern/tpq.Node fields outside internal/tpq\n" +
		"Clone first, then use the tpq mutation API; direct field writes bypass the\n" +
		"invariants and race with the engine's shared, cached patterns.",
	Run: runPatMut,
}

func runPatMut(pass *Pass) error {
	if PathHasSuffix(pass.Pkg.Path(), "internal/tpq") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkPatternWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkPatternWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

// checkPatternWrite reports lhs when it is a selector writing a field
// of a tpq.Pattern or tpq.Node.
func checkPatternWrite(pass *Pass, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		default:
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return
			}
			recv := selection.Recv()
			if ptr, ok := recv.Underlying().(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				return
			}
			obj := named.Obj()
			if obj.Pkg() == nil || !PathHasSuffix(obj.Pkg().Path(), "internal/tpq") {
				return
			}
			if obj.Name() != "Pattern" && obj.Name() != "Node" {
				return
			}
			pass.Reportf(sel.Sel.Pos(),
				"assignment to tpq.%s.%s outside internal/tpq; clone the pattern and use the tpq mutation API (patmut)",
				obj.Name(), sel.Sel.Name)
			return
		}
	}
}
