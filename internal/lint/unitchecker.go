package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Version is reported to `go vet`, which requires a stamped version
// string from vettools to key its action cache.
const Version = "v0.1.0"

// vetConfig is the JSON configuration `go vet` writes for each package
// and hands to the -vettool as its single argument. Only the fields
// the checker needs are decoded; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	ModulePath                string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker executes one `go vet` unit of work: parse the
// package described by the config file, type-check it against the
// export data the go command already built, run the analyzers, and
// print findings to stderr in file:line:col form. Exit status follows
// the vet convention: 0 clean, 1 operational error, 2 findings.
func runUnitchecker(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "qavlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "qavlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Dependency packages are visited only so a facts-exchanging tool
	// could export them; this suite keeps no cross-package facts, so
	// an empty facts file satisfies the protocol.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		return 0
	}

	pkg, err := typecheck(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ModulePath, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			return 0
		}
		fmt.Fprintf(stderr, "qavlint: %v\n", err)
		return 1
	}

	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "qavlint: %v\n", err)
		return 1
	}
	writeVetx(cfg.VetxOutput)
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	return 2
}

func writeVetx(path string) {
	if path != "" {
		// Best effort: the go command only caches the run when the
		// facts file exists.
		_ = os.WriteFile(path, []byte{}, 0o666)
	}
}
