package lint

import (
	"go/ast"
	"go/types"
)

// PlanFreeze enforces the freeze-after-construction contract on the
// serving path's shared result values: compiled plans (plan.Plan and
// its per-CR programs), rewriting results (rewrite.Result), and tree
// patterns (tpq.Pattern/Node). These values are cached and shared
// between concurrent requests, so they may only be written while they
// are provably private: inside the constructor, before the value
// escapes. The analyzer runs the dataflow core (dataflow.go) per
// function and reports
//
//   - field/slice/map/pointer writes into a frozen-typed value whose
//     origin is external (a parameter, a global, a call result) or a
//     local allocation that already escaped (stored into shared
//     memory, sent on a channel, captured by a goroutine);
//   - writes through values read out of a shared frozen value's
//     interior (returned-slice aliasing: `crs := res.CRs; crs[0] = x`
//     mutates the Result every other request sees).
//
// Constructors stay clean by construction: writes to a fresh
// allocation before its escape are exactly the allowed pattern.
// internal/tpq is skipped entirely — it owns the structured mutation
// API whose job is editing patterns (patmut governs everyone else).
var PlanFreeze = &Analyzer{
	Name: "planfreeze",
	Doc: "no writes to plan.Plan/program, rewrite.Result or tpq.Pattern/Node after escape\n" +
		"These values are cached and shared across requests; mutate only fresh, private\n" +
		"values inside constructors, and never write through slices read out of them.",
	Run: runPlanFreeze,
}

// frozenTypes lists the governed types by package-path suffix.
var frozenTypes = []struct{ pathSuffix, typeName string }{
	{"internal/plan", "Plan"},
	{"internal/plan", "program"},
	{"internal/rewrite", "Result"},
	{"internal/tpq", "Pattern"},
	{"internal/tpq", "Node"},
}

// frozenTypeName returns the display name ("plan.Plan") when t is a
// frozen named type, else "".
func frozenTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	for _, ft := range frozenTypes {
		if obj.Name() == ft.typeName && PathHasSuffix(obj.Pkg().Path(), ft.pathSuffix) {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

func runPlanFreeze(pass *Pass) error {
	if PathHasSuffix(pass.Pkg.Path(), "internal/tpq") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			flow := analyzeFunc(pass.Info, frozenTypeName, fd)
			checkFrozenWrites(pass, flow, fd)
		}
	}
	return nil
}

func checkFrozenWrites(pass *Pass, flow *funcFlow, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkFrozenWrite(pass, flow, lhs)
			}
		case *ast.IncDecStmt:
			checkFrozenWrite(pass, flow, n.X)
		}
		return true
	})
}

// checkFrozenWrite inspects one lvalue. Plain identifier rebinds are
// never mutation; everything else is a store into memory, reported
// when that memory belongs to a shared frozen value.
func checkFrozenWrite(pass *Pass, flow *funcFlow, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if _, ok := lhs.(*ast.Ident); ok {
		return
	}
	frozen := writeChainFrozen(pass.Info, lhs)
	base := flow.chainBase(lhs)
	baseID, _ := base.(*ast.Ident)

	if frozen != "" {
		if baseID == nil {
			pass.Reportf(lhs.Pos(),
				"write into %s value not rooted in a local variable; frozen values are immutable after construction (planfreeze)", frozen)
			return
		}
		orgs := flow.originsAt(baseID)
		for _, o := range orgs {
			switch {
			case o.site == nil:
				pass.Reportf(lhs.Pos(),
					"write to %s reached through %s, which may be shared (external origin); frozen values are immutable after construction (planfreeze)",
					frozen, baseID.Name)
				return
			case o.site.escapedAt(lhs.Pos()):
				pass.Reportf(lhs.Pos(),
					"write to %s through %s after the value escaped at %s; frozen values are immutable once shared (planfreeze)",
					frozen, baseID.Name, pass.Fset.Position(o.site.escape))
				return
			}
		}
		return
	}

	// Not a frozen-typed chain: still a finding when the storage was
	// read out of a shared frozen value (slice/map aliasing).
	if baseID == nil {
		return
	}
	for _, o := range flow.originsAt(baseID) {
		if o.sharedFrom != "" {
			pass.Reportf(lhs.Pos(),
				"write through %s into storage read from a shared %s; this aliases the frozen value other requests see (planfreeze)",
				baseID.Name, o.sharedFrom)
			return
		}
	}
}

// writeChainFrozen reports the frozen type whose memory the write
// chain mutates, or "". A chain like pl.programs[i].steps touches
// plan.Plan at its root and plan.program in the middle; the outermost
// frozen type found is reported.
func writeChainFrozen(info *types.Info, e ast.Expr) string {
	found := ""
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if name := frozenTypeName(derefType(sel.Recv())); name != "" {
					found = name
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			if t := info.TypeOf(x.X); t != nil {
				if name := frozenTypeName(derefType(t)); name != "" {
					found = name
				}
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return found
		}
	}
}
