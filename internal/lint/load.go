package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the loader needs.
// Export data comes from `-export`: the compiler writes each package's
// export archive into the build cache, which works fully offline.
type listPkg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists the patterns in dir with the go tool, then parses and
// type-checks every matched (non-dependency) package from source,
// resolving imports through the export data `go list -export` placed
// in the build cache. Test files are not loaded: the suite's
// invariants target production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,GoFiles,Export,Standard,DepOnly,Module,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, &p)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		modPath := ""
		if t.Module != nil {
			modPath = t.Module.Path
		}
		pkg, err := typecheck(t.ImportPath, t.Dir, t.GoFiles, modPath, func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses the given files (relative names are resolved
// against dir) and type-checks them as one package, importing
// dependencies via lookup.
func typecheck(importPath, dir string, goFiles []string, modPath string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		ModulePath: modPath,
	}, nil
}
