package lint

// Table-driven tests for the dataflow core (dataflow.go), independent
// of any analyzer: each case typechecks a small source snippet in
// memory, runs analyzeFunc on one function, and classifies the origins
// of chosen identifier uses. The type named Tracked plays the role of
// a frozen type for sharedFrom propagation.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// classify reduces an origin set at a use position to one label.
func classify(orgs []origin, pos token.Pos) string {
	shared, external, escaped := false, false, false
	for _, o := range orgs {
		switch {
		case o.sharedFrom != "":
			shared = true
		case o.site == nil:
			external = true
		case o.site.escapedAt(pos):
			escaped = true
		}
	}
	switch {
	case shared:
		return "shared"
	case external:
		return "external"
	case escaped:
		return "escaped"
	default:
		return "fresh"
	}
}

// use addresses the n-th (1-based) use of identifier name inside the
// analyzed function, in source order.
type use struct {
	name string
	n    int
	want string // fresh | escaped | external | shared
}

func TestDataflow(t *testing.T) {
	const prelude = `package p

type Tracked struct {
	Items []*Item
	Name  string
}

type Item struct{ N int }

type Outer struct {
	Tracked
	Extra int
}

var sink *Tracked
var itemSink *Item

`
	cases := []struct {
		name string
		src  string
		fn   string
		uses []use
	}{
		{
			name: "fresh allocation stays fresh until published",
			src: `func f() {
	t := &Tracked{}
	t.Name = "a"
	sink = t
	t.Name = "b"
}`,
			fn: "f",
			uses: []use{
				{name: "t", n: 2, want: "fresh"},   // t.Name = "a"
				{name: "t", n: 4, want: "escaped"}, // t.Name = "b"
			},
		},
		{
			name: "parameters are external",
			src: `func f(t *Tracked) {
	t.Name = "a"
}`,
			fn:   "f",
			uses: []use{{name: "t", n: 1, want: "external"}},
		},
		{
			name: "return is not an escape",
			src: `func f() *Tracked {
	t := &Tracked{}
	t.Name = "a"
	return t
}`,
			fn:   "f",
			uses: []use{{name: "t", n: 3, want: "fresh"}},
		},
		{
			name: "closure capture escapes on goroutine launch",
			src: `func f(done chan struct{}) {
	t := &Tracked{}
	t.Name = "a"
	go func() {
		_ = t.Name
		close(done)
	}()
	t.Name = "b"
}`,
			fn: "f",
			uses: []use{
				{name: "t", n: 2, want: "fresh"},
				{name: "t", n: 4, want: "escaped"}, // after the go stmt
			},
		},
		{
			name: "inline closure sees fresh origins",
			src: `func apply(g func()) { g() }

func f() *Tracked {
	t := &Tracked{}
	apply(func() {
		t.Name = "a"
	})
	return t
}`,
			fn:   "f",
			uses: []use{{name: "t", n: 2, want: "fresh"}},
		},
		{
			name: "method value leaves receiver origins alone",
			src: `func (t *Tracked) Reset() {}

func f() *Tracked {
	t := &Tracked{}
	r := t.Reset
	r()
	t.Name = "a"
	return t
}`,
			fn:   "f",
			uses: []use{{name: "t", n: 3, want: "fresh"}},
		},
		{
			name: "slice read from shared tracked value is shared",
			src: `func f(t *Tracked) {
	items := t.Items
	items[0] = nil
}`,
			fn:   "f",
			uses: []use{{name: "items", n: 2, want: "shared"}},
		},
		{
			name: "re-slicing preserves sharing",
			src: `func f(t *Tracked) {
	tail := t.Items[1:]
	tail[0] = nil
}`,
			fn:   "f",
			uses: []use{{name: "tail", n: 2, want: "shared"}},
		},
		{
			name: "slice read from fresh tracked value keeps the site",
			src: `func f() {
	t := &Tracked{Items: []*Item{{N: 1}}}
	items := t.Items
	items[0] = nil
	_ = t
}`,
			fn:   "f",
			uses: []use{{name: "items", n: 2, want: "fresh"}},
		},
		{
			name: "fresh copy of shared slice is fresh",
			src: `func f(t *Tracked) []*Item {
	out := make([]*Item, len(t.Items))
	copy(out, t.Items)
	out[0] = &Item{N: 2}
	return out
}`,
			fn:   "f",
			uses: []use{{name: "out", n: 3, want: "fresh"}},
		},
		{
			name: "append preserves the base origins",
			src: `func f() *Tracked {
	t := &Tracked{}
	t.Items = append(t.Items, &Item{N: 1})
	t.Name = "a"
	return t
}`,
			fn:   "f",
			uses: []use{{name: "t", n: 4, want: "fresh"}},
		},
		{
			name: "owned site escapes with its owner",
			src: `func f() {
	t := &Tracked{}
	it := &Item{}
	t.Items = append(t.Items, it)
	it.N = 1
	sink = t
	it.N = 2
}`,
			fn: "f",
			uses: []use{
				{name: "it", n: 3, want: "fresh"},   // before sink = t
				{name: "it", n: 4, want: "escaped"}, // after sink = t
			},
		},
		{
			name: "escape inside a loop hoists to the loop head",
			src: `func f(ch chan *Tracked, n int) {
	t := &Tracked{}
	for i := 0; i < n; i++ {
		t.Name = "a"
		ch <- t
	}
}`,
			fn: "f",
			uses: []use{
				{name: "t", n: 2, want: "escaped"}, // t.Name inside the loop
			},
		},
		{
			name: "per-iteration allocation does not hoist",
			src: `func f(ch chan *Tracked, n int) {
	for i := 0; i < n; i++ {
		t := &Tracked{}
		t.Name = "a"
		ch <- t
	}
}`,
			fn: "f",
			uses: []use{
				{name: "t", n: 2, want: "fresh"}, // t.Name: fresh each iteration
			},
		},
		{
			name: "promoted read through embedding propagates origins",
			src: `func f(o *Outer) {
	items := o.Items
	items[0] = nil
}`,
			fn: "f",
			// o is *Outer, not Tracked itself: the read is external but
			// not classified as tracked sharing (the base type decides).
			uses: []use{{name: "items", n: 2, want: "external"}},
		},
		{
			name: "embedded field chain through tracked part is shared",
			src: `func f(o *Outer) {
	items := o.Tracked.Items
	items[0] = nil
}`,
			fn:   "f",
			uses: []use{{name: "items", n: 2, want: "shared"}},
		},
		{
			name: "channel send escapes",
			src: `func f(ch chan *Item) {
	it := &Item{}
	it.N = 1
	ch <- it
	it.N = 2
}`,
			fn: "f",
			uses: []use{
				{name: "it", n: 2, want: "fresh"},
				{name: "it", n: 4, want: "escaped"},
			},
		},
		{
			name: "call arguments are optimistically private",
			src: `func observe(it *Item) {}

func f() {
	it := &Item{}
	observe(it)
	it.N = 1
}`,
			fn:   "f",
			uses: []use{{name: "it", n: 3, want: "fresh"}},
		},
		{
			name: "store into external memory escapes",
			src: `func f(t *Tracked) {
	it := &Item{}
	t.Items[0] = it
	it.N = 1
}`,
			fn: "f",
			uses: []use{
				{name: "it", n: 3, want: "escaped"},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flow, fd, info := analyzeSnippet(t, prelude+tc.src, tc.fn)
			for _, u := range tc.uses {
				id := nthUse(fd, u.name, u.n)
				if id == nil {
					t.Fatalf("no use #%d of %q in %s", u.n, u.name, tc.fn)
				}
				orgs := flow.originsAt(id)
				if got := classify(orgs, id.Pos()); got != u.want {
					t.Errorf("use #%d of %q: classified %s, want %s (origins %v)",
						u.n, u.name, got, u.want, describeOrigins(orgs, id.Pos()))
				}
			}
			_ = info
		})
	}
}

// analyzeSnippet typechecks src and runs the dataflow over function fn
// with the Tracked type marked as tracked.
func analyzeSnippet(t *testing.T, src, fn string) (*funcFlow, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	tracked := func(tp types.Type) string {
		named, ok := tp.(*types.Named)
		if ok && named.Obj().Name() == "Tracked" {
			return "p.Tracked"
		}
		return ""
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn || fd.Recv != nil {
			continue
		}
		return analyzeFunc(info, tracked, fd), fd, info
	}
	t.Fatalf("function %q not found", fn)
	return nil, nil, nil
}

// nthUse returns the n-th (1-based) identifier named name in fd's
// body, in source order.
func nthUse(fd *ast.FuncDecl, name string, n int) *ast.Ident {
	var ids []*ast.Ident
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && id.Name == name {
			ids = append(ids, id)
		}
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i].Pos() < ids[j].Pos() })
	if n <= 0 || n > len(ids) {
		return nil
	}
	return ids[n-1]
}

func describeOrigins(orgs []origin, pos token.Pos) string {
	var parts []string
	for _, o := range orgs {
		switch {
		case o.sharedFrom != "":
			parts = append(parts, "shared:"+o.sharedFrom)
		case o.site == nil:
			parts = append(parts, "external")
		case o.site.escapedAt(pos):
			parts = append(parts, "escaped")
		default:
			parts = append(parts, "fresh")
		}
	}
	return strings.Join(parts, ",")
}
