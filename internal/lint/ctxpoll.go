package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CtxPoll enforces the cancellation discipline PR 1 introduced: the
// MCR enumeration is worst-case exponential (§3.2 of the paper), so
// every entry point of the rewriting and evaluation packages that can
// iterate without a syntactic bound — or that sweeps document-scale
// data — must be reachable by a context.Context and must poll it from
// inside a loop. Exported functions carry the obligation; unexported
// helpers inherit their callers' polling.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "exported functions with unbounded or document-scale loops must accept and poll a context.Context\n" +
		"Loops counted: `for {}`/condition-only loops and channel ranges (unbounded);\n" +
		"ranges over internal/xmltree data and loops calling into internal/xmltree\n" +
		"(document-scale); loops invoking a first-party cancellable callee. The\n" +
		"obligation is satisfied by a ctx (or Options-with-Context) parameter plus a\n" +
		"ctx.Err()/ctx.Done() check — or a forwarded ctx — inside a loop.",
	Run: runCtxPoll,
}

// ctxpollTargets are the package-path suffixes the discipline applies
// to: the packages that do per-request algorithmic work. Parsers,
// printers and in-memory tree utilities stay exempt.
var ctxpollTargets = []string{
	"internal/rewrite",
	"internal/chase",
	"internal/engine",
	"internal/viewselect",
	"internal/structjoin",
	"internal/stream",
	"internal/workload",
	"internal/plan",
}

// obligation is one loop that demands a reachable, polled context.
type obligation struct {
	pos    token.Pos
	reason string
}

// ctxFuncInfo summarizes one function declaration for the
// whole-package obligation analysis.
type ctxFuncInfo struct {
	decl *ast.FuncDecl

	obligations []obligation
	// hasInLoopPoll: a poll expression appears directly inside some
	// loop body of this function.
	hasInLoopPoll bool
	// hasPollAnywhere: a poll expression appears anywhere in the body.
	hasPollAnywhere bool
	// callees / loopCallees: same-package functions called anywhere /
	// from inside a loop body.
	callees     []*types.Func
	loopCallees []*types.Func
}

func runCtxPoll(pass *Pass) error {
	target := false
	for _, suffix := range ctxpollTargets {
		if PathHasSuffix(pass.Pkg.Path(), suffix) {
			target = true
			break
		}
	}
	if !target {
		return nil
	}

	infos := make(map[*types.Func]*ctxFuncInfo)
	var order []*types.Func
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[fn] = summarizeFunc(pass, fd)
			order = append(order, fn)
		}
	}

	pollTrans := make(map[*types.Func]int) // 0 unknown, 1 computing, 2 no, 3 yes
	var pollAnywhere func(fn *types.Func) bool
	pollAnywhere = func(fn *types.Func) bool {
		switch pollTrans[fn] {
		case 1, 2:
			return false
		case 3:
			return true
		}
		info := infos[fn]
		if info == nil {
			return false
		}
		pollTrans[fn] = 1
		ok := info.hasPollAnywhere
		for _, c := range info.callees {
			if pollAnywhere(c) {
				ok = true
				break
			}
		}
		if ok {
			pollTrans[fn] = 3
		} else {
			pollTrans[fn] = 2
		}
		return ok
	}

	for _, fn := range order {
		info := infos[fn]
		if !exportedAPI(info.decl) {
			continue
		}
		reach := reachable(fn, infos)
		var firstOb *obligation
		firstObOwn := false // prefer citing a loop in fn's own body
		inLoopPoll := false
		for _, g := range reach {
			gi := infos[g]
			for i := range gi.obligations {
				ob := gi.obligations[i]
				own := g == fn
				if firstOb == nil || (own && !firstObOwn) || (own == firstObOwn && ob.pos < firstOb.pos) {
					firstOb, firstObOwn = &ob, own
				}
			}
			if gi.hasInLoopPoll {
				inLoopPoll = true
			}
			for _, h := range gi.loopCallees {
				if pollAnywhere(h) {
					inLoopPoll = true
				}
			}
		}
		if firstOb == nil {
			continue
		}
		sig := fn.Type().(*types.Signature)
		switch {
		case !signatureIsCancellable(sig):
			pass.Reportf(info.decl.Name.Pos(),
				"%s has %s (%s) but cannot receive a context.Context; accept a ctx (or an Options carrying one) and poll ctx.Err() inside the loop (ctxpoll)",
				fn.Name(), firstOb.reason, pass.Fset.Position(firstOb.pos))
		case !inLoopPoll:
			pass.Reportf(info.decl.Name.Pos(),
				"%s has %s (%s) and never polls its context inside a loop; check ctx.Err() or forward the ctx in the loop body (ctxpoll)",
				fn.Name(), firstOb.reason, pass.Fset.Position(firstOb.pos))
		}
	}
	return nil
}

// exportedAPI reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported
// receiver type.
func exportedAPI(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr:
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true
		}
	}
}

// reachable returns fn plus every same-package function reachable from
// it through static calls.
func reachable(fn *types.Func, infos map[*types.Func]*ctxFuncInfo) []*types.Func {
	seen := map[*types.Func]bool{fn: true}
	stack := []*types.Func{fn}
	var out []*types.Func
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		info := infos[cur]
		if info == nil {
			continue
		}
		out = append(out, cur)
		for _, c := range info.callees {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return out
}

// summarizeFunc computes the per-function facts: the loops that create
// polling obligations, the polls present, and the same-package call
// edges.
func summarizeFunc(pass *Pass, fd *ast.FuncDecl) *ctxFuncInfo {
	info := &ctxFuncInfo{decl: fd}
	seenCallee := make(map[*types.Func]bool)
	seenLoopCallee := make(map[*types.Func]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			info.classifyLoop(pass, n, n.Body)
			if pollsIn(pass, n.Body) {
				info.hasInLoopPoll = true
			}
			walkLoopBody(pass, n.Body, info, seenLoopCallee)
		case *ast.RangeStmt:
			info.classifyLoop(pass, n, n.Body)
			if pollsIn(pass, n.Body) {
				info.hasInLoopPoll = true
			}
			walkLoopBody(pass, n.Body, info, seenLoopCallee)
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() == pass.Pkg && !seenCallee[fn] {
				seenCallee[fn] = true
				info.callees = append(info.callees, fn)
			}
		}
		return true
	})
	info.hasPollAnywhere = pollsIn(pass, fd.Body)
	return info
}

// walkLoopBody records the same-package callees invoked from inside a
// loop body (used for transitive in-loop polling).
func walkLoopBody(pass *Pass, body *ast.BlockStmt, info *ctxFuncInfo, seen map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() == pass.Pkg && !seen[fn] {
				seen[fn] = true
				info.loopCallees = append(info.loopCallees, fn)
			}
		}
		return true
	})
}

// classifyLoop records the obligations loop creates, if any.
func (info *ctxFuncInfo) classifyLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt) {
	add := func(reason string) {
		info.obligations = append(info.obligations, obligation{pos: loop.Pos(), reason: reason})
	}
	switch l := loop.(type) {
	case *ast.ForStmt:
		if l.Cond == nil {
			add("an unbounded `for {}` loop")
			return
		}
		if l.Init == nil && l.Post == nil {
			add("a condition-only `for` loop with no syntactic bound")
			return
		}
	case *ast.RangeStmt:
		if t := pass.Info.TypeOf(l.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				add("an unbounded range over a channel")
				return
			}
			if typeInvolvesXmltree(t) && (bodyHasNestedLoop(body) || bodyCallsModule(pass, body)) {
				add("a document-scale range over xmltree data")
			}
		}
	}
	if callee := bodyCallsXmltree(pass, body); callee != "" {
		add(fmt.Sprintf("a document-scale loop (calls xmltree's %s)", callee))
	}
	if callee := bodyCallsCancellable(pass, body); callee != "" {
		add(fmt.Sprintf("a loop invoking the cancellable %s", callee))
	}
}

// typeInvolvesXmltree unwraps pointers, slices, arrays and map values
// and reports whether a named internal/xmltree type is the element.
func typeInvolvesXmltree(t types.Type) bool {
	for i := 0; i < 4; i++ {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			if typeInvolvesXmltree(u.Key()) {
				return true
			}
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return false
			}
			return PathHasSuffix(named.Obj().Pkg().Path(), "internal/xmltree")
		}
	}
	return false
}

func bodyHasNestedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

func bodyCallsModule(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil && inModule(pass.ModulePath, fn.Pkg()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func bodyCallsXmltree(pass *Pass, body *ast.BlockStmt) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fn := calleeFunc(pass.Info, call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg() != pass.Pkg &&
				PathHasSuffix(fn.Pkg().Path(), "internal/xmltree") {
				name = fn.Name()
			}
		}
		return name == ""
	})
	return name
}

func bodyCallsCancellable(pass *Pass, body *ast.BlockStmt) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fn := calleeFunc(pass.Info, call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg() != pass.Pkg &&
				inModule(pass.ModulePath, fn.Pkg()) {
				if sig, ok := fn.Type().(*types.Signature); ok && signatureIsCancellable(sig) {
					name = fn.Pkg().Name() + "." + fn.Name()
				}
			}
		}
		return name == ""
	})
	return name
}

// pollsIn reports whether the subtree contains a poll expression: a
// ctx.Err()/ctx.Done() call, a context-typed argument forwarded to a
// callee, or a composite literal propagating a context field — each
// with context.Background()/TODO() excluded, since a fresh root
// context transports no cancellation.
func pollsIn(pass *Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") {
				if t := pass.Info.TypeOf(sel.X); t != nil && isContextType(t) {
					found = true
				}
			}
			for _, arg := range n.Args {
				if forwardsContext(pass, arg) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok && forwardsContext(pass, kv.Value) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// forwardsContext reports whether expr is a live context value — its
// static type is context.Context and it is not a fresh Background/TODO
// root.
func forwardsContext(pass *Pass, expr ast.Expr) bool {
	t := pass.Info.TypeOf(expr)
	if t == nil || !isContextType(t) {
		return false
	}
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			return false
		}
	}
	return true
}
