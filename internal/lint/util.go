package lint

import (
	"go/ast"
	"go/types"
)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// structHasContextField reports whether t (after pointer unwrapping)
// is a struct with a context.Context field — the Options-style carrier
// this codebase uses to thread cancellation through variadic-free
// APIs.
func structHasContextField(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// signatureIsCancellable reports whether sig can receive a
// cancellation signal: a context.Context parameter or an Options-style
// struct parameter carrying one.
func signatureIsCancellable(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) || structHasContextField(t) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the static callee of call, or nil for builtins,
// function-typed variables and other dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// inModule reports whether pkg belongs to the module being analyzed.
func inModule(modPath string, pkg *types.Package) bool {
	if pkg == nil || modPath == "" {
		return false
	}
	p := pkg.Path()
	return p == modPath || len(p) > len(modPath) && p[:len(modPath)] == modPath && p[len(modPath)] == '/'
}

// baseIdentObj walks a selector/index/deref chain (e.g. `(*e.cfg).x`,
// `c.byKey[k]`) to its base identifier and returns that identifier's
// object, or nil when the chain is rooted in something else (a call,
// a literal, ...).
func baseIdentObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
