// Package linttest runs one analyzer over a self-contained testdata
// module and checks its diagnostics against the module's // want
// comments, in the style of x/tools' analysistest: a comment
//
//	total += v // want "never polls its context"
//
// demands a diagnostic on that line whose message matches the quoted
// regular expression, and every diagnostic must be demanded by some
// want comment. Each testdata module carries its own go.mod so the
// loader sees realistic package paths (the analyzers match on path
// suffixes like internal/tpq) without the fixtures joining the real
// build.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"qav/internal/lint"
)

// expectation is one parsed want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads every package under dir (a module root relative to the
// test's working directory), applies the analyzer, and matches the
// diagnostics against the module's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	var diags []lint.Diagnostic
	var wants []*expectation
	for _, pkg := range pkgs {
		ds, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
		ws, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe matches one Go-quoted or backquoted string; a want comment
// may carry several, each demanding its own diagnostic on the line.
var quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants scans the package's comments (the loader parses with
// comments retained) for want expectations.
func collectWants(pkg *lint.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRe.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: want pattern %s: %w", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: q,
					})
				}
			}
		}
	}
	return wants, nil
}
