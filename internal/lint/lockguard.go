package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockGuard checks the `// guarded by mu` annotations on struct
// fields: every read or write of an annotated field must happen while
// the named mutex of the same struct value is held. The check is a
// pragmatic flow-free approximation — within the enclosing function, a
// Lock/RLock call on the same base object's named mutex must precede
// the access in source order, or the function's name must end in
// "Locked" (the repository's convention for helpers whose contract is
// "caller holds the lock"). It will not catch a Lock on one branch and
// an access on another, but it reliably catches the common regression:
// a new method touching guarded state with no locking at all.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by mu` are only accessed with the named mutex held\n" +
		"Satisfied by a preceding x.mu.Lock()/RLock() on the same receiver in the\n" +
		"enclosing function, or by the *Locked naming convention.",
	Run: runLockGuard,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass) // guarded field object -> guard field name
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards finds annotated struct fields and resolves both the
// field objects and their guards. An annotation naming a non-existent
// or non-mutex guard is itself reported — a misspelled guard silently
// checks nothing.
func collectGuards(pass *Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				name := guardAnnotation(field)
				if name == "" {
					continue
				}
				if !structHasMutexField(pass, st, name) {
					pass.Reportf(field.Pos(),
						"field is annotated `guarded by %s` but the struct has no sync.Mutex/RWMutex field %q (lockguard)",
						name, name)
					continue
				}
				for _, id := range field.Names {
					if obj := pass.Info.Defs[id]; obj != nil {
						guards[obj] = name
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func structHasMutexField(pass *Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name != name {
				continue
			}
			if t := pass.Info.TypeOf(field.Type); t != nil && isMutexType(t) {
				return true
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockEvent is one x.<guard>.Lock()/RLock() call inside a function.
type lockEvent struct {
	base  types.Object // object of x
	guard string
	pos   token.Pos
}

func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guards map[types.Object]string) {
	const lockedSuffix = "Locked"
	name := fd.Name.Name
	if len(name) >= len(lockedSuffix) && name[len(name)-len(lockedSuffix):] == lockedSuffix {
		return
	}

	var locks []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		guardSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base := baseIdentObj(pass.Info, guardSel.X); base != nil {
			locks = append(locks, lockEvent{base: base, guard: guardSel.Sel.Name, pos: call.Pos()})
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		guard, ok := guards[selection.Obj()]
		if !ok {
			return true
		}
		base := baseIdentObj(pass.Info, sel.X)
		held := false
		for _, l := range locks {
			if l.guard == guard && l.pos < sel.Pos() && (base != nil && l.base == base) {
				held = true
				break
			}
		}
		if !held {
			pass.Reportf(sel.Sel.Pos(),
				"%s is guarded by %q but accessed without a preceding %s.Lock/RLock in %s (lockguard)",
				selection.Obj().Name(), guard, guard, fd.Name.Name)
		}
		return true
	})
}
