package lint

import (
	"go/ast"
	"go/types"
)

// PanicGuard enforces the panic-isolation invariant on the serving
// path: every goroutine started in internal/rewrite or internal/server
// must route panics through the internal/guard recovery helpers. A
// panic that escapes a bare goroutine kills the whole process — there
// is no handler-level recover between a worker goroutine and
// os.Exit(2) — so the spawned function's body must carry a top-level
//
//	defer guard.Rescue("op", fail)   // or guard.Recover(&err, "op")
//
// before any work runs. The analyzer resolves the spawned function
// through three shapes: a function literal (`go func() {...}()`), a
// local closure variable (`go worker()` where `worker := func() {...}`
// in the same function), and a same-package function declaration. A
// deferred function literal whose body calls the recover builtin also
// satisfies the invariant (the raw-recover idiom used where the
// guard package itself cannot be imported).
var PanicGuard = &Analyzer{
	Name: "panicguard",
	Doc: "goroutines in the serving-path packages (panicguardTargets) " +
		"must defer a recovery helper from internal/guard (or a " +
		"recover-calling function literal) at the top level of their body",
	Run: runPanicGuard,
}

// panicguardTargets lists the package-path suffixes the invariant
// covers: the packages whose goroutines run on behalf of HTTP requests.
var panicguardTargets = []string{
	"internal/rewrite",
	"internal/server",
	"internal/plan",
	"internal/router",
}

func runPanicGuard(pass *Pass) error {
	target := false
	for _, suffix := range panicguardTargets {
		if PathHasSuffix(pass.Pkg.Path(), suffix) {
			target = true
			break
		}
	}
	if !target {
		return nil
	}

	// Package-wide maps so `go helper()` resolves across files:
	// declared functions by object, and local closures (name := func…)
	// by the name's object.
	decls := make(map[types.Object]*ast.FuncDecl)
	closures := make(map[types.Object]*ast.FuncLit)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(s.Lhs) {
						continue
					}
					if id, ok := s.Lhs[i].(*ast.Ident); ok {
						if obj := identObj(pass.Info, id); obj != nil {
							closures[obj] = lit
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range s.Values {
					lit, ok := v.(*ast.FuncLit)
					if !ok || i >= len(s.Names) {
						continue
					}
					if obj := identObj(pass.Info, s.Names[i]); obj != nil {
						closures[obj] = lit
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goStmtBody(pass.Info, g, decls, closures)
			if body == nil {
				pass.Reportf(g.Pos(), "goroutine target is not statically resolvable; spawn a function literal or same-package function deferring a recovery helper from internal/guard")
				return true
			}
			if !hasGuardDefer(pass.Info, body) {
				pass.Reportf(g.Pos(), "goroutine does not route panics through internal/guard; add a top-level `defer guard.Rescue(...)` (or guard.Recover) to its body")
			}
			return true
		})
	}
	return nil
}

// goStmtBody resolves the body of the function a go statement spawns,
// or nil when the callee is dynamic (a parameter, a field, a value
// returned from a call, ...).
func goStmtBody(info *types.Info, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl, closures map[types.Object]*ast.FuncLit) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		obj := info.Uses[fun]
		if obj == nil {
			return nil
		}
		if lit := closures[obj]; lit != nil {
			return lit.Body
		}
		if fd := decls[obj]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fn := calleeFunc(info, g.Call); fn != nil {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasGuardDefer reports whether body contains a top-level defer that
// either calls into a package ending in internal/guard or defers a
// function literal that calls the recover builtin.
func hasGuardDefer(info *types.Info, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if fn := calleeFunc(info, ds.Call); fn != nil {
			if pkg := fn.Pkg(); pkg != nil && PathHasSuffix(pkg.Path(), "internal/guard") {
				return true
			}
		}
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok && callsRecover(info, lit.Body) {
			return true
		}
	}
	return false
}

// callsRecover reports whether body calls the recover builtin.
func callsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
			found = true
			return false
		}
		return true
	})
	return found
}

// identObj returns the object an identifier defines or uses.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
