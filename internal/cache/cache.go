// Package cache provides a concurrency-safe bounded LRU cache with
// singleflight deduplication, keyed by canonical request forms. The
// engine keeps two: rewriting results keyed by (query, view, schema)
// — mediators answer many queries against few views, and rewriting is
// pure, so caching it is free speedup (the semantic-caching direction
// the paper cites as [7]) — and compiled answer plans keyed by the
// canonical CR union, which are pure functions of the rewriting.
//
// An optional second tier (Persist) makes the rewrite cache survive
// restarts: cacheable successful values are appended asynchronously to
// a checksummed on-disk segment and replayed into a warm map on boot,
// so a restarted replica serves previously computed rewritings without
// recomputing them. See persist.go for the record format and the
// crash-recovery semantics.
package cache

import (
	"container/list"
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"

	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/names"
	"qav/internal/schema"
	"qav/internal/tpq"
)

// faultFlight fires in the singleflight leader just before it runs the
// computation (no-op unless a chaos plan arms it; see internal/fault).
var faultFlight = fault.Register(names.FaultCacheFlight)

// Cache is a bounded LRU of computation results with singleflight
// deduplication of in-flight computations. The zero value is not
// usable; call New or NewWithPolicy.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used; values are *entry[V]; guarded by mu
	byKey    map[string]*list.Element // guarded by mu
	inflight map[string]*flight[V]    // guarded by mu

	// volatile, when non-nil, marks successful values that must not be
	// cached — results that describe where a budget or deadline
	// happened to land rather than the key (e.g. partial rewritings).
	volatile func(V) bool

	// tier2, when non-nil, is the persistent warm tier: lookups that
	// miss the LRU consult it before computing, and cacheable
	// successful values are appended to it asynchronously. Attached
	// once before first use (AttachTier2) and detached by Close.
	tier2 *Persist[V] // guarded by mu

	// Disjoint lookup-outcome counters: a lookup is exactly one of a
	// completed-entry hit, a warm hit (served by the persistent tier,
	// decoded and promoted into the LRU), a miss (the caller becomes
	// the computing leader), or a dedup (a follower wait collapsed onto
	// an in-flight leader). Keeping dedups out of hits keeps the hit
	// rate honest: followers wait for a computation, they do not avoid
	// one.
	hits, warmHits, misses, dedups int64 // guarded by mu
}

type entry[V any] struct {
	key string
	res V
	err error
}

// flight is one in-progress computation; followers wait on done.
type flight[V any] struct {
	done chan struct{}
	res  V
	err  error
}

// New creates a cache holding up to capacity results (minimum 1).
func New[V any](capacity int) *Cache[V] {
	return NewWithPolicy[V](capacity, nil)
}

// NewWithPolicy creates a cache whose successful values are additionally
// filtered by volatile: values it reports true for are returned to the
// caller but never stored (see Cache.volatile). A nil volatile stores
// every successful value.
func NewWithPolicy[V any](capacity int, volatile func(V) bool) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight[V]),
		volatile: volatile,
	}
}

// keyVersion tags the cache-key encoding. Keys now outlive the process
// (the persistent tier stores them verbatim in its segment file), so
// the encoding carries an explicit version: bumping it makes keys from
// an older format unreachable instead of silently aliased.
const keyVersion = "k1"

// Key derives the cache key for a rewriting request. The schema graph
// may be nil (schemaless); recursive selects the §5 algorithm.
//
// The encoding is injective: two fixed-width flag bytes (recursive,
// schema presence — nil schema and empty-string schema text must not
// collide) followed by each variable-length field prefixed with its
// decimal length. The previous separator-based encoding was not — a
// nil-schema recursive request keyed identically to a non-recursive
// request over a schema whose String() was "R".
func Key(q, v *tpq.Pattern, g *schema.Graph, recursive bool) string {
	qs, vs := q.Canonical(), v.Canonical()
	gs, schemaFlag := "", "-"
	if g != nil {
		gs, schemaFlag = g.String(), "S"
	}
	recFlag := "-"
	if recursive {
		recFlag = "R"
	}
	var b strings.Builder
	b.Grow(len(keyVersion) + 2 + len(qs) + len(vs) + len(gs) + 24)
	b.WriteString(keyVersion)
	b.WriteString(recFlag)
	b.WriteString(schemaFlag)
	for _, field := range [...]string{qs, vs, gs} {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(field)))
		b.WriteByte(':')
		b.WriteString(field)
	}
	return b.String()
}

// Get returns the cached result for key, if present in either tier.
// The error is the stored computation error and is meaningful only when
// ok is true. A value found only in the persistent warm tier is decoded
// outside the cache lock and promoted into the LRU.
func (c *Cache[V]) Get(key string) (res V, ok bool, err error) {
	c.mu.Lock()
	if el, found := c.byKey[key]; found {
		c.hits++
		c.order.MoveToFront(el)
		e := el.Value.(*entry[V])
		c.mu.Unlock()
		return e.res, true, e.err
	}
	t2 := c.tier2
	c.mu.Unlock()
	if t2 != nil {
		if v, found := t2.lookup(key); found {
			c.mu.Lock()
			c.warmHits++
			c.putLocked(key, v, nil)
			c.mu.Unlock()
			return v, true, nil
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	var zero V
	return zero, false, nil
}

// Put stores a result (or the error computing it produced) under key.
// Storing an error is deliberate negative caching: the computations
// cached here are pure functions of the key, so a deterministic
// failure (parse rejection, enumeration budget overrun) would fail
// identically on every retry. Error entries occupy ordinary LRU slots
// and age out like results; they are never pinned.
//
// Put enforces the same cacheable policy as GetOrCompute: context
// cancellation errors, transient errors, and volatile values (per the
// constructor policy) are silently dropped rather than stored — a
// direct Put must not smuggle in an entry the computing path would
// refuse. Successful values are also handed to the persistent tier,
// when one is attached.
func (c *Cache[V]) Put(key string, res V, err error) {
	if !c.cacheable(res, err) {
		return
	}
	c.mu.Lock()
	c.putLocked(key, res, err)
	t2 := c.tier2
	c.mu.Unlock()
	if t2 != nil && err == nil {
		t2.enqueue(key, res)
	}
}

func (c *Cache[V]) putLocked(key string, res V, err error) {
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry[V]).res = res
		el.Value.(*entry[V]).err = err
		return
	}
	c.byKey[key] = c.order.PushFront(&entry[V]{key: key, res: res, err: err})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*entry[V]).key)
	}
}

// GetOrCompute returns the cached result for key or computes, stores
// and returns it. Concurrent callers for the same key are deduplicated
// singleflight-style: one leader runs compute, the others wait for its
// result (or their own ctx). Context cancellation errors are never
// cached, and followers whose leader was cancelled retry with their
// own context rather than inheriting the leader's failure.
//
// Deterministic computation errors are cached (see Put): the stored
// error is returned on subsequent hits until the entry ages out of the
// LRU. Counter policy: the leader's computation is a miss, a follower
// wait is a dedup (not a hit — no computation was avoided, only
// duplicated work), and only completed-entry lookups are hits. A
// follower that retries after a cancelled leader counts one dedup per
// wait it joins.
func (c *Cache[V]) GetOrCompute(ctx context.Context, key string, compute func() (V, error)) (V, error) {
	warmChecked := false
	for {
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok {
			c.hits++
			c.order.MoveToFront(el)
			e := el.Value.(*entry[V])
			c.mu.Unlock()
			return e.res, e.err
		}
		if f, ok := c.inflight[key]; ok {
			c.dedups++ // deduplicated follower: no second computation started
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				var zero V
				return zero, ctx.Err()
			case <-f.done:
			}
			if isContextErr(f.err) {
				continue // the leader was cancelled, not us: retry
			}
			return f.res, f.err
		}
		if t2 := c.tier2; t2 != nil && !warmChecked {
			c.mu.Unlock()
			warmChecked = true
			if v, found := t2.lookup(key); found {
				c.mu.Lock()
				c.warmHits++
				// A leader started concurrently may finish and store the
				// same value; both stores are of the same pure function
				// of the key, so last-write-wins is harmless.
				c.putLocked(key, v, nil)
				c.mu.Unlock()
				return v, nil
			}
			continue
		}
		c.misses++
		f := &flight[V]{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		c.runLeader(ctx, key, f, compute)
		return f.res, f.err
	}
}

// runLeader executes the singleflight computation with panic isolation:
// a panic inside compute becomes a typed ErrInternal for the leader AND
// every follower, and the deferred cleanup guarantees the flight is
// removed and its done channel closed on every path — a panicking
// leader must never strand followers on a channel nobody will close.
func (c *Cache[V]) runLeader(ctx context.Context, key string, f *flight[V], compute func() (V, error)) {
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		store := c.cacheable(f.res, f.err)
		if store {
			c.putLocked(key, f.res, f.err)
		}
		t2 := c.tier2
		c.mu.Unlock()
		if store && f.err == nil && t2 != nil {
			// Only successful values reach the persistent tier: error
			// entries (even the deterministic ones negative-cached in
			// memory) and volatile values are never written to disk.
			t2.enqueue(key, f.res)
		}
		close(f.done)
	}()
	defer guard.Recover(&f.err, "cache.singleflight")
	if err := faultFlight.Hit(ctx); err != nil {
		f.err = err
		return
	}
	f.res, f.err = compute()
}

// transient matches errors that mark themselves as one-off conditions
// (recovered panics, injected faults, load shedding). Declared locally
// so the cache needs no import of the packages producing them.
type transient interface{ Transient() bool }

// cacheable decides whether a flight's outcome may be stored. Context
// errors describe the request, transient errors describe a momentary
// condition, and volatile values (per the constructor policy) describe
// where one deadline happened to land — none are properties of the
// key, so caching any of them would serve a degraded answer to callers
// with healthy budgets.
func (c *Cache[V]) cacheable(res V, err error) bool {
	if err != nil {
		if isContextErr(err) {
			return false
		}
		var t transient
		if errors.As(err, &t) && t.Transient() {
			return false
		}
		return true
	}
	return c.volatile == nil || !c.volatile(res)
}

// isContextErr reports whether err stems from cancellation or a missed
// deadline — failures of the request, not of the computation, which
// must not poison the cache.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// AttachTier2 attaches the persistent warm tier. Call it once, after
// construction and before the cache is shared; the cache takes
// ownership and Close closes the tier.
func (c *Cache[V]) AttachTier2(p *Persist[V]) {
	c.mu.Lock()
	c.tier2 = p
	c.mu.Unlock()
}

// Tier2 returns the attached persistent tier, or nil.
func (c *Cache[V]) Tier2() *Persist[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tier2
}

// Close detaches and closes the persistent tier, flushing queued
// writes. A memory-only cache Closes as a no-op. The cache itself
// remains usable (memory-only) afterwards.
func (c *Cache[V]) Close() error {
	c.mu.Lock()
	t2 := c.tier2
	c.tier2 = nil
	c.mu.Unlock()
	if t2 == nil {
		return nil
	}
	return t2.Close()
}

// Stats returns the disjoint lookup-outcome counters: completed-entry
// hits, leader computations (misses), and follower waits deduplicated
// onto an in-flight leader. hits+misses+dedups+WarmHits equals the
// number of lookups.
func (c *Cache[V]) Stats() (hits, misses, dedups int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.dedups
}

// WarmHits returns the number of lookups served by the persistent warm
// tier (disjoint from the Stats counters).
func (c *Cache[V]) WarmHits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.warmHits
}

// Len returns the number of cached results.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
