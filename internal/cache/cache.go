// Package cache provides a concurrency-safe bounded LRU cache for
// rewriting results, keyed by the canonical forms of the query, the
// view, and the schema. Mediators answer many queries against few
// views; rewriting is pure, so caching it is free speedup (the
// semantic-caching direction the paper cites as [7]).
package cache

import (
	"container/list"
	"sync"

	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/tpq"
)

// Cache is a bounded LRU of rewriting results. The zero value is not
// usable; call New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *entry
	byKey    map[string]*list.Element

	hits, misses int64
}

type entry struct {
	key string
	res *rewrite.Result
	err error
}

// New creates a cache holding up to capacity results (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// Key derives the cache key for a rewriting request. The schema graph
// may be nil (schemaless); recursive selects the §5 algorithm.
func Key(q, v *tpq.Pattern, g *schema.Graph, recursive bool) string {
	k := q.Canonical() + "\x00" + v.Canonical()
	if g != nil {
		k += "\x00" + g.String()
	}
	if recursive {
		k += "\x00R"
	}
	return k
}

// Get returns the cached result for key, if present.
func (c *Cache) Get(key string) (*rewrite.Result, error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*entry)
	return e.res, e.err, true
}

// Put stores a result (or the error computing it produced) under key.
func (c *Cache) Put(key string, res *rewrite.Result, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry).res = res
		el.Value.(*entry).err = err
		return
	}
	c.byKey[key] = c.order.PushFront(&entry{key: key, res: res, err: err})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*entry).key)
	}
}

// GetOrCompute returns the cached result for key or computes, stores
// and returns it. Concurrent callers may compute the same key
// redundantly; the result is pure, so last-write-wins is harmless.
func (c *Cache) GetOrCompute(key string, compute func() (*rewrite.Result, error)) (*rewrite.Result, error) {
	if res, err, ok := c.Get(key); ok {
		return res, err
	}
	res, err := compute()
	c.Put(key, res, err)
	return res, err
}

// Stats returns the hit and miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
