package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"qav/internal/fault"
)

// stringCodec is the trivial test codec: the value bytes themselves.
// Decode rejects a poison marker so decode-failure handling is testable.
type stringCodec struct{}

func (stringCodec) Encode(s string) ([]byte, error) {
	if strings.HasPrefix(s, "unencodable") {
		return nil, errors.New("unencodable value")
	}
	return []byte(s), nil
}

func (stringCodec) Decode(b []byte) (string, error) {
	if strings.HasPrefix(string(b), "poison") {
		return "", errors.New("poisoned record")
	}
	return string(b), nil
}

func openTestPersist(t *testing.T, dir string, opts PersistOptions) *Persist[string] {
	t.Helper()
	p, err := OpenPersist[string](filepath.Join(dir, "test.seg"), stringCodec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// A value stored before shutdown is served by the warm tier after a
// restart — as a warm hit, without recomputing.
func TestPersistWarmBootServesHit(t *testing.T) {
	dir := t.TempDir()
	c1 := New[string](8)
	c1.AttachTier2(openTestPersist(t, dir, PersistOptions{}))
	got, err := c1.GetOrCompute(context.Background(), "key-a", func() (string, error) {
		return "value-a", nil
	})
	if err != nil || got != "value-a" {
		t.Fatalf("prime: %q, %v", got, err)
	}
	if err := c1.Close(); err != nil { // drains the async writer
		t.Fatal(err)
	}

	c2 := New[string](8)
	p2 := openTestPersist(t, dir, PersistOptions{})
	if st := p2.Stats(); st.Replayed != 1 || st.Entries != 1 {
		t.Fatalf("replay stats = %+v, want 1 replayed entry", st)
	}
	c2.AttachTier2(p2)
	defer c2.Close()
	got, err = c2.GetOrCompute(context.Background(), "key-a", func() (string, error) {
		t.Error("warm entry must not recompute")
		return "", nil
	})
	if err != nil || got != "value-a" {
		t.Fatalf("warm lookup: %q, %v", got, err)
	}
	if wh := c2.WarmHits(); wh != 1 {
		t.Errorf("warmHits = %d, want 1", wh)
	}
	hits, misses, dedups := c2.Stats()
	if hits != 0 || misses != 0 || dedups != 0 {
		t.Errorf("stats = %d/%d/%d, want 0/0/0 (warm hit is its own outcome)", hits, misses, dedups)
	}
	// Promoted: the second lookup is an ordinary tier-1 hit.
	if got, err = c2.GetOrCompute(context.Background(), "key-a", nil); err != nil || got != "value-a" {
		t.Fatalf("promoted lookup: %q, %v", got, err)
	}
	if hits, _, _ := c2.Stats(); hits != 1 {
		t.Errorf("post-promotion hits = %d, want 1", hits)
	}
}

// A torn final write (partial record at the tail) is truncated on
// replay; every intact record survives.
func TestPersistTruncatedTailRecovers(t *testing.T) {
	dir := t.TempDir()
	p := openTestPersist(t, dir, PersistOptions{})
	for i := 0; i < 5; i++ {
		if err := p.append(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := p.Stats().SegmentBytes
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record at the tail.
	path := filepath.Join(dir, "test.seg")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 9, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2 := openTestPersist(t, dir, PersistOptions{})
	defer p2.Close()
	st := p2.Stats()
	if st.Replayed != 5 {
		t.Errorf("replayed = %d, want 5", st.Replayed)
	}
	if st.TruncatedBytes != 6 {
		t.Errorf("truncatedBytes = %d, want 6", st.TruncatedBytes)
	}
	if st.SegmentBytes != goodSize {
		t.Errorf("segment size = %d, want %d (tail truncated)", st.SegmentBytes, goodSize)
	}
	for i := 0; i < 5; i++ {
		if v, ok := p2.lookup(fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Errorf("k%d: got %q, %v", i, v, ok)
		}
	}
}

// A bit flip in a record body fails that record's checksum; replay
// keeps everything before it and truncates from the damaged record on.
func TestPersistBitFlipTruncates(t *testing.T) {
	dir := t.TempDir()
	p := openTestPersist(t, dir, PersistOptions{})
	if err := p.append("first", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	firstEnd := p.Stats().SegmentBytes
	if err := p.append("second", []byte("damaged")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // flip a bit in the second record's value
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	p2 := openTestPersist(t, dir, PersistOptions{})
	defer p2.Close()
	st := p2.Stats()
	if st.Replayed != 1 {
		t.Errorf("replayed = %d, want 1 (only the intact record)", st.Replayed)
	}
	if st.TruncatedBytes == 0 {
		t.Error("damaged record was not counted as truncated")
	}
	if st.SegmentBytes != firstEnd {
		t.Errorf("segment size = %d, want %d", st.SegmentBytes, firstEnd)
	}
	if v, ok := p2.lookup("first"); !ok || v != "intact" {
		t.Errorf("first: got %q, %v", v, ok)
	}
	if _, ok := p2.lookup("second"); ok {
		t.Error("damaged record must not be served")
	}
}

// A segment with a foreign magic (older or corrupted format) is reset
// to empty — never misread, never fatal.
func TestPersistVersionMismatchResets(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.seg")
	if err := os.WriteFile(path, []byte("QAVSEG00old-format-payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := openTestPersist(t, dir, PersistOptions{})
	st := p.Stats()
	if !st.VersionReset {
		t.Error("versionReset not reported")
	}
	if st.Replayed != 0 || st.Entries != 0 {
		t.Errorf("stats = %+v, want empty warm tier", st)
	}
	// The reset segment is immediately usable and replayable.
	if err := p.append("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := openTestPersist(t, dir, PersistOptions{})
	defer p2.Close()
	if st := p2.Stats(); st.Replayed != 1 || st.VersionReset {
		t.Errorf("post-reset reopen stats = %+v, want 1 replayed, no reset", st)
	}
}

// Concurrent Puts racing a compaction keep the warm tier consistent:
// every value written before Close is either in the reopened tier with
// its correct bytes or was dropped outright — never corrupted.
func TestPersistConcurrentPutDuringCompact(t *testing.T) {
	dir := t.TempDir()
	c := New[string](256)
	p := openTestPersist(t, dir, PersistOptions{MaxEntries: 1024, QueueSize: 1024})
	c.AttachTier2(p)

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				c.Put(k, "val-"+k, nil)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := p.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := openTestPersist(t, dir, PersistOptions{MaxEntries: 1024})
	defer p2.Close()
	st := p2.Stats()
	if st.TruncatedBytes != 0 || st.VersionReset {
		t.Errorf("compacted segment replayed dirty: %+v", st)
	}
	found := 0
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := fmt.Sprintf("w%d-k%d", w, i)
			if v, ok := p2.lookup(k); ok {
				found++
				if v != "val-"+k {
					t.Errorf("%s: got %q, want %q", k, v, "val-"+k)
				}
			}
		}
	}
	if found == 0 {
		t.Error("no records survived the compaction race")
	}
}

// Compaction drops superseded duplicate records: N overwrites of one
// key compact down to one live record.
func TestPersistCompactDropsDuplicates(t *testing.T) {
	dir := t.TempDir()
	p := openTestPersist(t, dir, PersistOptions{})
	for i := 0; i < 10; i++ {
		if err := p.append("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := p.Stats().SegmentBytes
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.SegmentBytes >= before {
		t.Errorf("compact did not shrink the segment: %d -> %d", before, st.SegmentBytes)
	}
	if v, ok := p.lookup("k"); !ok || v != "v9" {
		t.Errorf("after compact: got %q, %v, want latest value", v, ok)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := openTestPersist(t, dir, PersistOptions{})
	defer p2.Close()
	if v, ok := p2.lookup("k"); !ok || v != "v9" {
		t.Errorf("replayed compacted segment: got %q, %v", v, ok)
	}
}

// The cache.persist fault point makes the async writer fail (or panic)
// on selected records without killing the writer goroutine or
// corrupting the segment — persistence is best-effort.
func TestPersistFaultPoint(t *testing.T) {
	for _, act := range []fault.Action{fault.ActError, fault.ActPanic} {
		t.Run(act.String(), func(t *testing.T) {
			defer fault.Disable()
			dir := t.TempDir()
			c := New[string](8)
			p := openTestPersist(t, dir, PersistOptions{})
			c.AttachTier2(p)
			if err := fault.Enable(&fault.Plan{Seed: 11, Injections: []fault.Injection{
				{Point: "cache.persist", Action: act},
			}}); err != nil {
				t.Fatal(err)
			}
			c.Put("lost", "value", nil)
			waitFor(t, "injected persist failure", func() bool {
				return p.Stats().Errors >= 1
			})
			fault.Disable()
			// The writer survived: the next record persists normally.
			c.Put("kept", "value", nil)
			waitFor(t, "post-fault append", func() bool {
				return p.Stats().Appended >= 1
			})
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			p2 := openTestPersist(t, dir, PersistOptions{})
			defer p2.Close()
			if _, ok := p2.lookup("lost"); ok {
				t.Error("faulted record must not be on disk")
			}
			if v, ok := p2.lookup("kept"); !ok || v != "value" {
				t.Errorf("post-fault record: got %q, %v", v, ok)
			}
		})
	}
}

// Error entries and volatile values never reach the segment, even
// though error entries are negative-cached in memory.
func TestPersistNeverStoresErrorsOrVolatile(t *testing.T) {
	dir := t.TempDir()
	c := NewWithPolicy[string](8, func(s string) bool {
		return strings.HasPrefix(s, "volatile")
	})
	c.AttachTier2(openTestPersist(t, dir, PersistOptions{}))
	boom := errors.New("deterministic failure")
	if _, err := c.GetOrCompute(context.Background(), "err-key", func() (string, error) {
		return "", boom
	}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if _, _, err := c.Get("err-key"); !errors.Is(err, boom) {
		t.Error("deterministic error must stay negative-cached in memory")
	}
	if v, err := c.GetOrCompute(context.Background(), "vol-key", func() (string, error) {
		return "volatile-value", nil
	}); err != nil || v != "volatile-value" {
		t.Fatal(v, err)
	}
	c.Put("vol-put", "volatile-too", nil)
	c.Put("good", "stable", nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := openTestPersist(t, dir, PersistOptions{})
	defer p2.Close()
	if st := p2.Stats(); st.Replayed != 1 {
		t.Errorf("replayed = %d, want only the stable record", st.Replayed)
	}
	for _, k := range []string{"err-key", "vol-key", "vol-put"} {
		if _, ok := p2.lookup(k); ok {
			t.Errorf("%s must not be persisted", k)
		}
	}
	if v, ok := p2.lookup("good"); !ok || v != "stable" {
		t.Errorf("good: got %q, %v", v, ok)
	}
}

// A record whose stored bytes no longer decode is dropped on first
// lookup (not retried forever) and never fails the caller.
func TestPersistDecodeFailureDropsRecord(t *testing.T) {
	dir := t.TempDir()
	p := openTestPersist(t, dir, PersistOptions{})
	defer p.Close()
	if err := p.append("bad", []byte("poison-pill")); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.lookup("bad"); ok {
		t.Fatal("undecodable record served")
	}
	st := p.Stats()
	if st.Errors != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want the record dropped and counted", st)
	}
}
