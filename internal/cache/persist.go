// Persistent warm tier for the rewrite cache: an append-only segment
// file with a versioned, checksummed record format, written
// asynchronously behind Put/GetOrCompute and replayed on boot.
//
// Segment layout:
//
//	[8-byte magic "QAVSEG01"] [record]*
//	record := [u32 keyLen] [u32 valLen] [u32 crc32(key||val)] [key] [val]
//
// All integers are little-endian; the checksum is IEEE CRC-32 over the
// concatenated key and value bytes. The format version lives in the
// magic: a segment written by an incompatible build fails the magic
// check and is reset (truncated to empty), never misread. A corrupt or
// partial tail — a torn write from a crash, a bit flip caught by the
// checksum, an impossible length — truncates the segment back to the
// last intact record; replay is never fatal for content reasons, only
// for I/O errors on the file itself.
//
// What is never persisted: error entries (including the deterministic
// errors the in-memory tier negative-caches) and volatile values — the
// cacheable policy plus an err == nil check gate every append, so the
// segment only ever holds completed, stable results.
package cache

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/names"
)

// faultPersist fires in the async persister just before a record is
// encoded and appended (no-op unless a chaos plan arms it). An injected
// error or panic loses that one record — the durability contract is
// best-effort — but must never corrupt the segment or kill the writer.
var faultPersist = fault.Register(names.FaultCachePersist)

const (
	segmentMagic = "QAVSEG01"
	headerLen    = 12 // keyLen + valLen + crc32
	// maxRecordLen bounds each of key and value. Lengths beyond it in a
	// replayed header are treated as corruption (truncate point), and
	// appends beyond it are refused; it keeps a flipped length bit from
	// provoking a multi-gigabyte allocation.
	maxRecordLen = 16 << 20
)

// A Codec translates cached values to and from the byte form stored in
// the segment. Encode may reject values that cannot or should not be
// serialized; Decode must reject bytes it did not produce (a decode
// failure drops the warm entry, it never fails a lookup).
type Codec[V any] interface {
	Encode(V) ([]byte, error)
	Decode([]byte) (V, error)
}

// PersistOptions tune the warm tier. The zero value is usable.
type PersistOptions struct {
	// MaxEntries bounds the in-memory warm map (and therefore what a
	// Compact rewrites). Replayed or appended keys beyond the bound are
	// dropped, oldest-blind. <= 0 means 4096.
	MaxEntries int
	// QueueSize bounds the async writer's queue; enqueues beyond it are
	// dropped (counted, never blocking the serving path). <= 0 means 256.
	QueueSize int
	// CompactInterval, when positive, periodically rewrites the segment
	// to exactly the live warm map — dropping superseded duplicates —
	// via a temp file and atomic rename.
	CompactInterval time.Duration
}

// PersistStats is a point-in-time view of the warm tier.
type PersistStats struct {
	Entries        int   // live warm-map entries
	Replayed       int64 // records loaded from the segment at boot
	TruncatedBytes int64 // corrupt/partial tail bytes discarded at boot
	VersionReset   bool  // segment had a foreign magic and was reset
	Appended       int64 // records appended since boot
	Dropped        int64 // enqueue drops (queue full) + bound drops
	Errors         int64 // encode/write/decode failures and persist faults
	Compactions    int64
	SegmentBytes   int64 // current segment size
	ReplayDuration time.Duration
}

type persistReq[V any] struct {
	key string
	val V
}

// Persist is the on-disk warm tier. Construct with OpenPersist, attach
// with Cache.AttachTier2; all methods are safe for concurrent use.
type Persist[V any] struct {
	codec      Codec[V]
	path       string
	maxEntries int

	queue chan persistReq[V]
	done  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	f      *os.File          // guarded by mu; nil after Close
	warm   map[string][]byte // guarded by mu; encoded values
	size   int64             // guarded by mu; current segment size in bytes
	closed bool              // guarded by mu

	replayed       int64         // guarded by mu
	truncatedBytes int64         // guarded by mu
	versionReset   bool          // guarded by mu
	appended       int64         // guarded by mu
	dropped        int64         // guarded by mu
	errs           int64         // guarded by mu
	compactions    int64         // guarded by mu
	replayDur      time.Duration // guarded by mu
}

// OpenPersist opens (creating if needed) the segment file at path and
// replays it into the warm map. Content-level damage — torn tails, bad
// checksums, a version-mismatched header — is repaired by truncation
// and reported in Stats, never returned as an error; only I/O failures
// on the file itself are fatal. The returned tier owns a background
// writer goroutine until Close.
func OpenPersist[V any](path string, codec Codec[V], opts PersistOptions) (*Persist[V], error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 256
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: create segment dir: %w", err)
		}
	}
	// O_APPEND keeps every record write at the end of the file even
	// after a replay-time Truncate repaired a torn tail.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cache: open segment: %w", err)
	}
	p := &Persist[V]{
		codec:      codec,
		path:       path,
		maxEntries: opts.MaxEntries,
		queue:      make(chan persistReq[V], opts.QueueSize),
		done:       make(chan struct{}),
		f:          f,
		warm:       make(map[string][]byte),
	}
	// No other goroutine exists yet, but replay writes mu-guarded
	// fields, so hold the lock for the analyzer's (and reader's) sake.
	start := time.Now()
	p.mu.Lock()
	err = p.replayLocked()
	p.replayDur = time.Since(start)
	p.mu.Unlock()
	if err != nil {
		f.Close()
		return nil, err
	}
	p.wg.Add(1)
	go p.run()
	if opts.CompactInterval > 0 {
		p.wg.Add(1)
		go p.compactLoop(opts.CompactInterval)
	}
	return p, nil
}

// replayLocked loads the segment into the warm map, truncating any
// corrupt or partial tail back to the last intact record. Later
// records win over earlier ones for the same key (the segment is
// append-only, so later means newer).
func (p *Persist[V]) replayLocked() error {
	data, err := io.ReadAll(p.f)
	if err != nil {
		return fmt.Errorf("cache: read segment: %w", err)
	}
	if len(data) == 0 {
		if _, err := p.f.Write([]byte(segmentMagic)); err != nil {
			return fmt.Errorf("cache: write segment magic: %w", err)
		}
		p.size = int64(len(segmentMagic))
		return nil
	}
	if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
		// Foreign or older format: reset rather than misread. The warm
		// tier starts cold, which is the same outcome as no segment.
		p.versionReset = true
		p.truncatedBytes = int64(len(data))
		if err := p.f.Truncate(0); err != nil {
			return fmt.Errorf("cache: reset segment: %w", err)
		}
		if _, err := p.f.Write([]byte(segmentMagic)); err != nil {
			return fmt.Errorf("cache: write segment magic: %w", err)
		}
		p.size = int64(len(segmentMagic))
		return nil
	}
	off := len(segmentMagic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < headerLen {
			break // partial header: torn final write
		}
		keyLen := binary.LittleEndian.Uint32(rest[0:4])
		valLen := binary.LittleEndian.Uint32(rest[4:8])
		sum := binary.LittleEndian.Uint32(rest[8:12])
		if keyLen == 0 || keyLen > maxRecordLen || valLen > maxRecordLen {
			break // impossible lengths: corruption
		}
		end := headerLen + int(keyLen) + int(valLen)
		if len(rest) < end {
			break // partial body: torn final write
		}
		body := rest[headerLen:end]
		if crc32.ChecksumIEEE(body) != sum {
			break // checksum mismatch: bit rot or torn overwrite
		}
		key := string(body[:keyLen])
		val := append([]byte(nil), body[keyLen:]...)
		if _, exists := p.warm[key]; exists || len(p.warm) < p.maxEntries {
			p.warm[key] = val
			p.replayed++
		} else {
			p.dropped++
		}
		off += end
	}
	if off < len(data) {
		p.truncatedBytes = int64(len(data) - off)
		if err := p.f.Truncate(int64(off)); err != nil {
			return fmt.Errorf("cache: truncate corrupt tail: %w", err)
		}
	}
	p.size = int64(off)
	return nil
}

// enqueue hands a value to the async writer; it never blocks the
// serving path (a full queue drops the record and counts the drop).
func (p *Persist[V]) enqueue(key string, val V) {
	select {
	case p.queue <- persistReq[V]{key: key, val: val}:
	default:
		p.mu.Lock()
		p.dropped++
		p.mu.Unlock()
	}
}

// run is the writer goroutine: it drains the queue until Close, then
// drains whatever is still queued and exits.
func (p *Persist[V]) run() {
	defer p.wg.Done()
	for {
		select {
		case r := <-p.queue:
			p.handle(r)
		case <-p.done:
			for {
				select {
				case r := <-p.queue:
					p.handle(r)
				default:
					return
				}
			}
		}
	}
}

func (p *Persist[V]) handle(r persistReq[V]) {
	if err := p.persistOne(r); err != nil {
		p.mu.Lock()
		p.errs++
		p.mu.Unlock()
	}
}

// persistOne encodes and appends one record. Panics (from a chaos plan
// or a misbehaving codec) are confined to this record: the guard turns
// them into an error so the writer goroutine — and the process —
// survives.
func (p *Persist[V]) persistOne(r persistReq[V]) (err error) {
	defer guard.Recover(&err, names.FaultCachePersist)
	if err := faultPersist.Hit(context.Background()); err != nil {
		return err
	}
	val, err := p.codec.Encode(r.val)
	if err != nil {
		return err
	}
	return p.append(r.key, val)
}

// append writes one framed record and mirrors it into the warm map.
func (p *Persist[V]) append(key string, val []byte) error {
	if len(key) == 0 || len(key) > maxRecordLen || len(val) > maxRecordLen {
		return fmt.Errorf("cache: record out of bounds (%d-byte key, %d-byte value)", len(key), len(val))
	}
	rec := appendRecord(nil, key, val)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return errors.New("cache: persist tier closed")
	}
	if _, err := p.f.Write(rec); err != nil {
		return fmt.Errorf("cache: append record: %w", err)
	}
	p.size += int64(len(rec))
	p.appended++
	if _, exists := p.warm[key]; exists || len(p.warm) < p.maxEntries {
		p.warm[key] = append([]byte(nil), val...)
	} else {
		p.dropped++
	}
	return nil
}

// appendRecord appends the framed form of one record to dst.
func appendRecord(dst []byte, key string, val []byte) []byte {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(val)))
	h := crc32.NewIEEE()
	h.Write([]byte(key))
	h.Write(val)
	binary.LittleEndian.PutUint32(hdr[8:12], h.Sum32())
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	return append(dst, val...)
}

// lookup returns the decoded warm value for key, if present. Decoding
// happens per lookup (callers promote the result into the LRU, so each
// key decodes at most once per process in the common case); a record
// that fails to decode is dropped so it is not retried on every miss.
func (p *Persist[V]) lookup(key string) (V, bool) {
	p.mu.Lock()
	buf, ok := p.warm[key]
	p.mu.Unlock()
	var zero V
	if !ok {
		return zero, false
	}
	v, err := p.codec.Decode(buf)
	if err != nil {
		p.mu.Lock()
		delete(p.warm, key)
		p.errs++
		p.mu.Unlock()
		return zero, false
	}
	return v, true
}

// Compact rewrites the segment to exactly the live warm map — dropping
// superseded duplicate records — by writing a temp file, fsyncing it,
// and renaming it over the segment. Concurrent appends queue behind
// the lock and land in the new segment.
func (p *Persist[V]) Compact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return errors.New("cache: persist tier closed")
	}
	tmpPath := p.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cache: compact: %w", err)
	}
	buf := []byte(segmentMagic)
	for key, val := range p.warm {
		buf = appendRecord(buf, key, val)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("cache: compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("cache: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("cache: compact close: %w", err)
	}
	if err := os.Rename(tmpPath, p.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("cache: compact rename: %w", err)
	}
	f, err := os.OpenFile(p.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted segment is on disk but we lost our handle;
		// future appends fail until reopen. Close the old handle and
		// surface the error.
		p.f.Close()
		p.f = nil
		return fmt.Errorf("cache: reopen after compact: %w", err)
	}
	p.f.Close()
	p.f = f
	p.size = int64(len(buf))
	p.compactions++
	return nil
}

func (p *Persist[V]) compactLoop(interval time.Duration) {
	defer p.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := p.Compact(); err != nil {
				p.mu.Lock()
				p.errs++
				p.mu.Unlock()
			}
		case <-p.done:
			return
		}
	}
}

// Close stops the background goroutines, drains queued writes, fsyncs
// and closes the segment. Safe to call more than once.
func (p *Persist[V]) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return nil
	}
	err := p.f.Sync()
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	p.f = nil
	return err
}

// Stats returns a point-in-time view of the tier.
func (p *Persist[V]) Stats() PersistStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PersistStats{
		Entries:        len(p.warm),
		Replayed:       p.replayed,
		TruncatedBytes: p.truncatedBytes,
		VersionReset:   p.versionReset,
		Appended:       p.appended,
		Dropped:        p.dropped,
		Errors:         p.errs,
		Compactions:    p.compactions,
		SegmentBytes:   p.size,
		ReplayDuration: p.replayDur,
	}
}

// Path returns the segment file path.
func (p *Persist[V]) Path() string { return p.path }
