package cache

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/tpq"
)

func TestGetPutEvict(t *testing.T) {
	c := New[*rewrite.Result](2)
	r1 := &rewrite.Result{}
	r2 := &rewrite.Result{}
	r3 := &rewrite.Result{}
	c.Put("a", r1, nil)
	c.Put("b", r2, nil)
	if got, ok, _ := c.Get("a"); !ok || got != r1 {
		t.Fatal("a missing")
	}
	// a is now most recent; inserting c evicts b.
	c.Put("c", r3, nil)
	if _, ok, _ := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok, _ := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	hits, misses, dedups := c.Stats()
	if hits != 2 || misses != 1 || dedups != 0 {
		t.Errorf("stats = %d/%d/%d", hits, misses, dedups)
	}
}

func TestPutOverwrites(t *testing.T) {
	c := New[*rewrite.Result](2)
	r1, r2 := &rewrite.Result{}, &rewrite.Result{}
	c.Put("k", r1, nil)
	c.Put("k", r2, nil)
	if got, _, _ := c.Get("k"); got != r2 {
		t.Error("overwrite lost")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestKeyDistinguishes(t *testing.T) {
	q1 := tpq.MustParse("//a[b]")
	q2 := tpq.MustParse("//a[c]")
	v := tpq.MustParse("//a")
	g := schema.MustParse("root a\na -> b? c?")
	keys := map[string]bool{}
	for _, k := range []string{
		Key(q1, v, nil, false),
		Key(q2, v, nil, false),
		Key(q1, v, g, false),
		Key(q1, v, g, true),
		Key(v, q1, nil, false), // argument order matters
	} {
		if keys[k] {
			t.Fatalf("key collision: %q", k)
		}
		keys[k] = true
	}
	// Structurally equal patterns share keys.
	if Key(tpq.MustParse("//a[b][c]"), v, nil, false) != Key(tpq.MustParse("//a[c][b]"), v, nil, false) {
		t.Error("sibling order changed the key")
	}
}

// Regression: the pre-k1 separator-based key encoding was not
// injective — a nil-schema recursive request keyed as q+"\x00"+v+"\x00R",
// colliding with a non-recursive request over any schema whose String()
// was "R". The length-prefixed encoding is decodable, hence injective:
// this test decodes keys back to their fields and verifies the
// round-trip across every flag combination, which no separator scheme
// with unconstrained field contents can pass.
func TestKeyInjectiveEncoding(t *testing.T) {
	decodeField := func(t *testing.T, key string) (field, rest string) {
		t.Helper()
		if key == "" || key[0] != '|' {
			t.Fatalf("field does not start with '|': %q", key)
		}
		key = key[1:]
		colon := strings.IndexByte(key, ':')
		if colon < 0 {
			t.Fatalf("field has no length prefix: %q", key)
		}
		n, err := strconv.Atoi(key[:colon])
		if err != nil || n < 0 || colon+1+n > len(key) {
			t.Fatalf("bad field length %q: %v", key[:colon], err)
		}
		return key[colon+1 : colon+1+n], key[colon+1+n:]
	}
	q := tpq.MustParse("//a[b]")
	v := tpq.MustParse("//a")
	g := schema.MustParse("root a\na -> b?")
	for _, tc := range []struct {
		g         *schema.Graph
		recursive bool
	}{
		{nil, false}, {nil, true}, {g, false}, {g, true},
	} {
		key := Key(q, v, tc.g, tc.recursive)
		if !strings.HasPrefix(key, keyVersion) {
			t.Fatalf("key %q lacks version prefix %q", key, keyVersion)
		}
		rest := key[len(keyVersion):]
		if len(rest) < 2 {
			t.Fatalf("key %q too short for flags", key)
		}
		wantRec, wantSchema := "-", "-"
		if tc.recursive {
			wantRec = "R"
		}
		if tc.g != nil {
			wantSchema = "S"
		}
		if string(rest[0]) != wantRec || string(rest[1]) != wantSchema {
			t.Fatalf("flags = %q, want %s%s", rest[:2], wantRec, wantSchema)
		}
		qf, rest2 := decodeField(t, rest[2:])
		vf, rest3 := decodeField(t, rest2)
		gf, tail := decodeField(t, rest3)
		if tail != "" {
			t.Fatalf("trailing bytes after fields: %q", tail)
		}
		if qf != q.Canonical() || vf != v.Canonical() {
			t.Fatalf("q/v fields did not round-trip: %q, %q", qf, vf)
		}
		wantG := ""
		if tc.g != nil {
			wantG = tc.g.String()
		}
		if gf != wantG {
			t.Fatalf("schema field %q, want %q", gf, wantG)
		}
	}
	// The historical collision shape: recursive flag vs schema content
	// must be distinguishable even when the schema text is adversarial.
	if Key(q, v, nil, true) == Key(q, v, g, false) {
		t.Fatal("nil-schema recursive collides with schema non-recursive")
	}
}

// Regression: a direct Put used to bypass the volatile policy that
// GetOrCompute enforces, letting callers store partial results the
// constructor policy forbids. Put now routes through cacheable.
func TestPutRespectsVolatilePolicy(t *testing.T) {
	c := NewWithPolicy[*rewrite.Result](4, func(r *rewrite.Result) bool {
		return r != nil && r.Partial
	})
	c.Put("partial", &rewrite.Result{Partial: true, PartialReason: rewrite.PartialBudget}, nil)
	if _, ok, _ := c.Get("partial"); ok {
		t.Error("Put stored a volatile (partial) result")
	}
	// Context and transient errors are equally refused.
	c.Put("ctx", nil, context.Canceled)
	if _, ok, _ := c.Get("ctx"); ok {
		t.Error("Put stored a context cancellation error")
	}
	c.Put("transient", nil, &guard.InternalError{Op: "test", Value: "boom"})
	if _, ok, _ := c.Get("transient"); ok {
		t.Error("Put stored a transient error")
	}
	// Complete results and deterministic errors still store.
	full := &rewrite.Result{}
	c.Put("full", full, nil)
	if got, ok, _ := c.Get("full"); !ok || got != full {
		t.Error("Put refused a complete result")
	}
	boom := errors.New("deterministic")
	c.Put("err", nil, boom)
	if _, ok, err := c.Get("err"); !ok || !errors.Is(err, boom) {
		t.Error("Put refused a deterministic error (negative caching broken)")
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[*rewrite.Result](4)
	calls := 0
	compute := func() (*rewrite.Result, error) {
		calls++
		return rewrite.MCR(tpq.MustParse("//a[b]"), tpq.MustParse("//a"), rewrite.Options{})
	}
	key := "k"
	r1, err := c.GetOrCompute(context.Background(), key, compute)
	if err != nil || r1 == nil {
		t.Fatal(err)
	}
	r2, _ := c.GetOrCompute(context.Background(), key, compute)
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
	if r1 != r2 {
		t.Error("cache returned a different result")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[*rewrite.Result](16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%24)
				c.GetOrCompute(context.Background(), key, func() (*rewrite.Result, error) {
					return &rewrite.Result{}, nil
				})
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
}

// Singleflight: concurrent callers for one key run compute exactly once
// — the leader computes, followers wait and share the result.
func TestSingleflightDedup(t *testing.T) {
	c := New[*rewrite.Result](4)
	var calls atomic.Int64
	release := make(chan struct{})
	want := &rewrite.Result{}
	compute := func() (*rewrite.Result, error) {
		calls.Add(1)
		<-release // hold the flight open so every goroutine joins it
		return want, nil
	}
	const workers = 12
	results := make([]*rewrite.Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r, err := c.GetOrCompute(context.Background(), "k", compute)
			if err != nil {
				t.Error(err)
			}
			results[w] = r
		}(w)
	}
	// The leader is parked on release, so every other worker must join
	// the flight as a dedup before we let the computation finish.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if _, _, dedups := c.Stats(); dedups == workers-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("followers never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for w, r := range results {
		if r != want {
			t.Errorf("worker %d got %p, want shared result", w, r)
		}
	}
	hits, misses, dedups := c.Stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (one leader)", misses)
	}
	if hits != 0 {
		t.Errorf("hits = %d, want 0 (follower waits are dedups, not hits)", hits)
	}
	if dedups != workers-1 {
		t.Errorf("dedups = %d, want %d (every follower joined the flight)", dedups, workers-1)
	}
}

// A follower whose own context is cancelled stops waiting immediately
// instead of blocking on the leader.
func TestFollowerHonorsOwnContext(t *testing.T) {
	c := New[*rewrite.Result](4)
	release := make(chan struct{})
	defer close(release)
	go c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
		<-release
		return &rewrite.Result{}, nil
	})
	time.Sleep(10 * time.Millisecond) // leader is now in flight
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.GetOrCompute(ctx, "k", func() (*rewrite.Result, error) {
		t.Error("follower must not compute")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// Cancellation errors are never cached: the next caller recomputes.
func TestCancellationNotCached(t *testing.T) {
	c := New[*rewrite.Result](4)
	calls := 0
	_, err := c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
		calls++
		return nil, context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	want := &rewrite.Result{}
	got, err := c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
		calls++
		return want, nil
	})
	if err != nil || got != want {
		t.Fatalf("got %p, %v", got, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (cancellation must not be cached)", calls)
	}
	if got, ok, _ := c.Get("k"); !ok || got != want {
		t.Error("successful recompute was not cached")
	}
}

// A follower whose leader is cancelled retries with its own (live)
// context and becomes the new leader; the counters record exactly one
// dedup (the wait that failed) and two misses (two computations led).
func TestFollowerRetryAfterLeaderCancelStats(t *testing.T) {
	c := New[*rewrite.Result](4)
	joined := make(chan struct{})
	want := &rewrite.Result{}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
			<-joined // hold the flight until the follower has piled on
			return nil, context.Canceled
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want context.Canceled", err)
		}
	}()
	// Wait for the leader to take the flight.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if _, misses, _ := c.Stats(); misses == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		defer wg.Done()
		got, err := c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
			return want, nil
		})
		if err != nil || got != want {
			t.Errorf("follower got %p, %v; want retried result", got, err)
		}
	}()
	// Wait for the follower to join the flight, then let the leader fail.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if _, _, dedups := c.Stats(); dedups == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(joined)
	wg.Wait()

	hits, misses, dedups := c.Stats()
	if hits != 0 || misses != 2 || dedups != 1 {
		t.Errorf("stats = %d/%d/%d, want 0/2/1 (hits/misses/dedups)", hits, misses, dedups)
	}
	if got, ok, _ := c.Get("k"); !ok || got != want {
		t.Error("retried result was not cached")
	}
}

// Deterministic computation errors are negative-cached in ordinary LRU
// slots: repeated lookups return the stored error without recomputing,
// and eviction clears the way for a retry like any other entry.
func TestDeterministicErrorsCached(t *testing.T) {
	c := New[*rewrite.Result](1)
	boom := errors.New("boom")
	calls := 0
	compute := func() (*rewrite.Result, error) {
		calls++
		return nil, boom
	}
	for i := 0; i < 3; i++ {
		if _, err := c.GetOrCompute(context.Background(), "k", compute); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1 (error entry must be cached)", calls)
	}
	// The error entry lives in a normal LRU slot: filling the cache
	// evicts it, and the next lookup recomputes.
	c.Put("other", &rewrite.Result{}, nil)
	if _, err := c.GetOrCompute(context.Background(), "k", compute); !errors.Is(err, boom) {
		t.Fatalf("post-evict err = %v, want boom", err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times after eviction, want 2", calls)
	}
}

// A panic in the singleflight leader must not strand followers: the
// flight fails with a typed internal error, every follower observes it,
// and nothing is cached (the condition is transient).
func TestLeaderPanicReleasesFollowers(t *testing.T) {
	c := New[*rewrite.Result](4)
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
			close(started)
			<-release
			panic("leader exploded")
		})
		leaderDone <- err
	}()
	<-started

	const followers = 8
	var wg sync.WaitGroup
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
				t.Error("follower must not compute while the leader's flight is resolving")
				return nil, nil
			})
		}(i)
	}
	// Give followers time to join the flight, then let the leader blow up.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if err := <-leaderDone; !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("leader err = %v, want ErrInternal", err)
	}
	for i, err := range errs {
		if !errors.Is(err, guard.ErrInternal) {
			t.Errorf("follower %d err = %v, want ErrInternal", i, err)
		}
	}
	// The recovered panic is transient: nothing may be cached, and the
	// next computation runs afresh.
	if _, ok, _ := c.Get("k"); ok {
		t.Error("panicked flight was cached")
	}
	want := &rewrite.Result{}
	got, err := c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
		return want, nil
	})
	if err != nil || got != want {
		t.Errorf("retry after panic: got %v, %v", got, err)
	}
}

// Partial results are never cached under the engine's volatile policy:
// a deadline landing mid-computation is a property of that request, and
// the next caller with a healthy budget must get a chance at the full
// answer.
func TestPartialResultsNotCached(t *testing.T) {
	c := NewWithPolicy[*rewrite.Result](4, func(r *rewrite.Result) bool {
		return r != nil && r.Partial
	})
	calls := 0
	partial := &rewrite.Result{Partial: true, PartialReason: rewrite.PartialDeadline}
	full := &rewrite.Result{}
	compute := func() (*rewrite.Result, error) {
		calls++
		if calls == 1 {
			return partial, nil
		}
		return full, nil
	}
	got, err := c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || got != partial {
		t.Fatalf("first call: got %v, %v", got, err)
	}
	got, err = c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || got != full {
		t.Fatalf("second call: got %v, %v (partial must not be served from cache)", got, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2", calls)
	}
	// The full result, by contrast, is cached.
	if _, err := c.GetOrCompute(context.Background(), "k", compute); err != nil || calls != 2 {
		t.Errorf("full result was not cached (calls = %d)", calls)
	}
}

// Transient errors (load shedding, injected faults) age out immediately:
// they are returned to the waiters of the flight but never stored.
func TestTransientErrorsNotCached(t *testing.T) {
	c := New[*rewrite.Result](4)
	calls := 0
	compute := func() (*rewrite.Result, error) {
		calls++
		if calls == 1 {
			return nil, &guard.InternalError{Op: "test", Value: "transient"}
		}
		return &rewrite.Result{}, nil
	}
	if _, err := c.GetOrCompute(context.Background(), "k", compute); !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("first call err = %v, want ErrInternal", err)
	}
	if _, ok, _ := c.Get("k"); ok {
		t.Fatal("transient error was cached")
	}
	if _, err := c.GetOrCompute(context.Background(), "k", compute); err != nil {
		t.Fatalf("retry err = %v", err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2", calls)
	}
}

// The cache.singleflight fault point injects failures into the leader
// path; they surface as transient errors and are never cached.
func TestSingleflightFaultPoint(t *testing.T) {
	defer fault.Disable()
	if err := fault.Enable(&fault.Plan{Seed: 7, Injections: []fault.Injection{
		{Point: "cache.singleflight", Action: fault.ActError},
	}}); err != nil {
		t.Fatal(err)
	}
	c := New[*rewrite.Result](4)
	_, err := c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
		t.Error("compute must not run when the flight fault fires first")
		return nil, nil
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	fault.Disable()
	if _, ok, _ := c.Get("k"); ok {
		t.Fatal("injected failure was cached")
	}
	want := &rewrite.Result{}
	got, err := c.GetOrCompute(context.Background(), "k", func() (*rewrite.Result, error) {
		return want, nil
	})
	if err != nil || got != want {
		t.Errorf("after disabling faults: got %v, %v", got, err)
	}
}
