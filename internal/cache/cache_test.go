package cache

import (
	"fmt"
	"sync"
	"testing"

	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/tpq"
)

func TestGetPutEvict(t *testing.T) {
	c := New(2)
	r1 := &rewrite.Result{}
	r2 := &rewrite.Result{}
	r3 := &rewrite.Result{}
	c.Put("a", r1, nil)
	c.Put("b", r2, nil)
	if got, _, ok := c.Get("a"); !ok || got != r1 {
		t.Fatal("a missing")
	}
	// a is now most recent; inserting c evicts b.
	c.Put("c", r3, nil)
	if _, _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestPutOverwrites(t *testing.T) {
	c := New(2)
	r1, r2 := &rewrite.Result{}, &rewrite.Result{}
	c.Put("k", r1, nil)
	c.Put("k", r2, nil)
	if got, _, _ := c.Get("k"); got != r2 {
		t.Error("overwrite lost")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestKeyDistinguishes(t *testing.T) {
	q1 := tpq.MustParse("//a[b]")
	q2 := tpq.MustParse("//a[c]")
	v := tpq.MustParse("//a")
	g := schema.MustParse("root a\na -> b? c?")
	keys := map[string]bool{}
	for _, k := range []string{
		Key(q1, v, nil, false),
		Key(q2, v, nil, false),
		Key(q1, v, g, false),
		Key(q1, v, g, true),
		Key(v, q1, nil, false), // argument order matters
	} {
		if keys[k] {
			t.Fatalf("key collision: %q", k)
		}
		keys[k] = true
	}
	// Structurally equal patterns share keys.
	if Key(tpq.MustParse("//a[b][c]"), v, nil, false) != Key(tpq.MustParse("//a[c][b]"), v, nil, false) {
		t.Error("sibling order changed the key")
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New(4)
	calls := 0
	compute := func() (*rewrite.Result, error) {
		calls++
		return rewrite.MCR(tpq.MustParse("//a[b]"), tpq.MustParse("//a"), rewrite.Options{})
	}
	key := "k"
	r1, err := c.GetOrCompute(key, compute)
	if err != nil || r1 == nil {
		t.Fatal(err)
	}
	r2, _ := c.GetOrCompute(key, compute)
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
	if r1 != r2 {
		t.Error("cache returned a different result")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%24)
				c.GetOrCompute(key, func() (*rewrite.Result, error) {
					return &rewrite.Result{}, nil
				})
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
}
