package leaktest

import (
	"testing"
	"time"
)

// recorder captures Errorf calls so the detector itself can be tested
// for both verdicts.
type recorder struct {
	failed bool
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failed = true
}

func TestCheckPassesWhenBalanced(t *testing.T) {
	r := &recorder{}
	done := Check(r)
	ch := make(chan struct{})
	go func() { <-ch }()
	close(ch)
	done()
	if r.failed {
		t.Fatal("balanced goroutine reported as leak")
	}
}

func TestCheckCatchesLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the settle deadline")
	}
	r := &recorder{}
	done := Check(r)
	stop := make(chan struct{})
	go func() { <-stop }()
	done() // the goroutine is still parked: must report
	close(stop)
	if !r.failed {
		t.Fatal("parked goroutine not reported as leak")
	}
	time.Sleep(20 * time.Millisecond) // let it exit before other tests snapshot
}
