// Package leaktest is a minimal goroutine-leak detector for tests.
// Check snapshots the goroutine count when called and returns a
// function that, deferred, verifies the count has returned to (at
// most) the starting level before the test ends.
//
// The comparison retries with backoff because goroutine teardown is
// asynchronous: a worker that has observed cancellation may not have
// returned by the time the test body does. Only a count that stays
// elevated after the retry budget is a leak. The helper deliberately
// compares counts rather than stack snapshots — it is stdlib-only —
// so tests using it should not run in parallel with tests that start
// long-lived goroutines of their own.
package leaktest

import (
	"runtime"
	"time"
)

// tb is the subset of testing.TB the helper needs; taking the
// interface keeps the package importable from non-test code (the
// chaos harness) without dragging testing into package APIs.
type tb interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check snapshots the current goroutine count and returns a function
// to defer:
//
//	defer leaktest.Check(t)()
//
// The returned function polls for up to ~2s for the count to drop
// back to the snapshot, then reports a test error naming the excess.
func Check(t tb) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		if n, ok := settle(before); !ok {
			t.Errorf("goroutine leak: %d before, %d after wait", before, n)
		}
	}
}

// settle waits for the goroutine count to return to at most before,
// reporting the last observed count and whether it settled.
func settle(before int) (int, bool) {
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > before {
		if time.Now().After(deadline) {
			return n, false
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n, true
}
