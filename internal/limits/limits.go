// Package limits provides admission control for the serving path: a
// bounded concurrency gate with a bounded, deadline-limited queue in
// front of the engine's compute path.
//
// The MCR of a query using a view can be an exponentially large union
// (VLDB 2006 §3.3), so a single request can legitimately occupy a core
// for its whole deadline. Without admission control a traffic spike
// queues unbounded goroutines behind the compute path and the process
// dies by memory or by timeout collapse; with it, excess requests are
// shed honestly (HTTP 429 + Retry-After) while admitted requests keep
// their latency. Cache hits and singleflight followers bypass the gate
// entirely — only leaders that will actually burn CPU pay for a slot.
package limits

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrSaturated is the errors.Is target for admission rejections.
var ErrSaturated = errors.New("limits: saturated")

// SaturatedError reports an admission rejection with the gate state
// observed at rejection time and the client's suggested retry delay.
type SaturatedError struct {
	// InFlight and Queued are the gate occupancy when the request was
	// shed.
	InFlight, Queued int64
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("limits: saturated (%d in flight, %d queued); retry after %s",
		e.InFlight, e.Queued, e.RetryAfter)
}

// Is makes errors.Is(err, ErrSaturated) true for admission rejections.
func (e *SaturatedError) Is(target error) bool { return target == ErrSaturated }

// Transient marks shed errors as never-cacheable: saturation describes
// the moment, not the request.
func (e *SaturatedError) Transient() bool { return true }

// RetryAfterSeconds returns the Retry-After header value: the
// suggested delay rounded up to a whole second, minimum 1.
func (e *SaturatedError) RetryAfterSeconds() int {
	s := int((e.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Config bounds a Gate.
type Config struct {
	// MaxInFlight is the number of concurrently admitted requests;
	// values < 1 are raised to 1.
	MaxInFlight int
	// MaxQueue is how many requests may wait for a slot beyond
	// MaxInFlight; 0 means no queue (immediate shed when full).
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits before being
	// shed; 0 means it waits until its own context expires.
	QueueTimeout time.Duration
}

// A Gate is a bounded concurrency limiter with a bounded queue. The
// zero value is not usable; call New. A nil *Gate is a valid no-op
// gate that admits everything, so callers need no branches.
type Gate struct {
	sem          chan struct{}
	maxQueue     int64
	queueTimeout time.Duration

	queued   atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// New creates a gate with the given bounds.
func New(cfg Config) *Gate {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1
	}
	return &Gate{
		sem:          make(chan struct{}, cfg.MaxInFlight),
		maxQueue:     int64(cfg.MaxQueue),
		queueTimeout: cfg.QueueTimeout,
	}
}

// Acquire admits the request or sheds it. On admission it returns a
// release function the caller must invoke exactly once when the work
// completes. On saturation it returns a *SaturatedError; when the
// caller's own context expires while queued, it returns the context's
// error instead (the client is gone — that is not a shed).
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	default:
	}
	// No free slot: try to queue.
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return nil, g.saturated()
	}
	defer g.queued.Add(-1)
	var timeout <-chan time.Time
	if g.queueTimeout > 0 {
		t := time.NewTimer(g.queueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return g.release, nil
	case <-timeout:
		return nil, g.saturated()
	case <-done:
		return nil, ctx.Err()
	}
}

func (g *Gate) release() { <-g.sem }

func (g *Gate) saturated() *SaturatedError {
	g.shed.Add(1)
	retry := g.queueTimeout
	if retry <= 0 {
		retry = time.Second
	}
	return &SaturatedError{
		InFlight:   int64(len(g.sem)),
		Queued:     g.queued.Load(),
		RetryAfter: retry,
	}
}

// Stats is a point-in-time snapshot of the gate.
type Stats struct {
	// Capacity and QueueCapacity are the configured bounds.
	Capacity, QueueCapacity int64
	// InFlight and Queued are current occupancy.
	InFlight, Queued int64
	// Admitted and Shed are lifetime counters.
	Admitted, Shed int64
}

// Stats returns the gate's counters; a nil gate returns zeros.
func (g *Gate) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		Capacity:      int64(cap(g.sem)),
		QueueCapacity: g.maxQueue,
		InFlight:      int64(len(g.sem)),
		Queued:        g.queued.Load(),
		Admitted:      g.admitted.Load(),
		Shed:          g.shed.Load(),
	}
}
