package limits

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilGateAdmits(t *testing.T) {
	var g *Gate
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	if s := g.Stats(); s != (Stats{}) {
		t.Errorf("nil gate stats = %+v", s)
	}
}

func TestAdmitAndRelease(t *testing.T) {
	g := New(Config{MaxInFlight: 2})
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s := g.Stats(); s.InFlight != 2 || s.Admitted != 2 {
		t.Errorf("stats = %+v", s)
	}
	r1()
	r2()
	if s := g.Stats(); s.InFlight != 0 {
		t.Errorf("in-flight after release = %d", s.InFlight)
	}
}

func TestShedWhenQueueFull(t *testing.T) {
	g := New(Config{MaxInFlight: 1, MaxQueue: 0})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = g.Acquire(context.Background())
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("err = %#v, want *SaturatedError", err)
	}
	if sat.RetryAfterSeconds() < 1 {
		t.Errorf("RetryAfterSeconds = %d, want >= 1", sat.RetryAfterSeconds())
	}
	if !sat.Transient() {
		t.Error("shed errors must be Transient")
	}
	if s := g.Stats(); s.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", s.Shed)
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	g := New(Config{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = g.Acquire(context.Background())
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("shed after %v, before the queue timeout", d)
	}
}

func TestQueuedRequestGetsFreedSlot(t *testing.T) {
	g := New(Config{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
}

func TestQueuedRequestHonorsContext(t *testing.T) {
	g := New(Config{MaxInFlight: 1, MaxQueue: 4, QueueTimeout: time.Minute})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err = g.Acquire(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A client disconnect while queued is not a shed.
	if s := g.Stats(); s.Shed != 0 {
		t.Errorf("shed counter = %d, want 0", s.Shed)
	}
}

// Hammer the gate from many goroutines: admissions never exceed the
// bound, every admit is released, and the counters add up.
func TestConcurrentAdmissionBound(t *testing.T) {
	const workers = 32
	g := New(Config{MaxInFlight: 4, MaxQueue: 8, QueueTimeout: 50 * time.Millisecond})
	var inFlight, peak, admitted, shed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				release, err := g.Acquire(context.Background())
				if err != nil {
					mu.Lock()
					shed++
					mu.Unlock()
					continue
				}
				mu.Lock()
				admitted++
				inFlight++
				if inFlight > peak {
					peak = inFlight
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				inFlight--
				mu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	if peak > 4 {
		t.Errorf("observed %d concurrent admissions, bound is 4", peak)
	}
	s := g.Stats()
	if s.Admitted != admitted || s.Shed != shed {
		t.Errorf("gate counters admitted=%d shed=%d, observed %d/%d", s.Admitted, s.Shed, admitted, shed)
	}
	if s.InFlight != 0 || s.Queued != 0 {
		t.Errorf("gate not drained: %+v", s)
	}
}

// Regression: RetryAfterSeconds must clamp to at least 1 — a zero or
// negative RetryAfter would emit "Retry-After: 0" and invite an
// immediate retry stampede — and must round sub-second delays up, not
// down to zero.
func TestRetryAfterSecondsClampsToOne(t *testing.T) {
	for _, tc := range []struct {
		in   time.Duration
		want int
	}{
		{0, 1},
		{-5 * time.Second, 1},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
	} {
		e := &SaturatedError{RetryAfter: tc.in}
		if got := e.RetryAfterSeconds(); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
