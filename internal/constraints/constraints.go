// Package constraints implements the five classes of schema constraints
// the paper uses to capture the essence of a schema (§4.1):
//
//	SC  sibling constraint        a : b ↓ c   (b-child implies c-child)
//	FC  functional constraint     a → b       (at most one b child)
//	CC  cousin constraint         a : b ⇓ c   (b-descendant implies c-descendant)
//	PC  parent-child constraint   a ⇓1 b      (b-descendant is necessarily a child)
//	IC  intermediate node         a -c-> b    (every a⇝b path passes through c)
//
// SC and CC premises may be empty (written a : {} ↓ c), meaning every
// a node has the child/descendant unconditionally. The package also
// implements inference of all constraints implied by a schema graph
// (§4.2, Theorem 5, O(|S|³)).
package constraints

import (
	"fmt"
	"sort"
	"strings"

	"qav/internal/schema"
)

// Kind identifies one of the five constraint classes.
type Kind uint8

const (
	// SC is a sibling constraint a : b ↓ c.
	SC Kind = iota
	// FC is a functional constraint a → b.
	FC
	// CC is a cousin constraint a : b ⇓ c.
	CC
	// PC is a parent-child constraint a ⇓1 b.
	PC
	// IC is an intermediate-node constraint a -c-> b.
	IC
)

func (k Kind) String() string {
	switch k {
	case SC:
		return "SC"
	case FC:
		return "FC"
	case CC:
		return "CC"
	case PC:
		return "PC"
	default:
		return "IC"
	}
}

// Constraint is a single schema constraint. Field use by kind:
//
//	SC: A : B ↓ C  (B == "" for an unconditional constraint)
//	FC: A → B
//	CC: A : B ⇓ C  (B == "" for an unconditional constraint)
//	PC: A ⇓1 B
//	IC: A -C-> B
type Constraint struct {
	Kind    Kind
	A, B, C string
}

func (c Constraint) String() string {
	prem := c.B
	if prem == "" {
		prem = "{}"
	}
	switch c.Kind {
	case SC:
		return fmt.Sprintf("%s:%s↓%s", c.A, prem, c.C)
	case FC:
		return fmt.Sprintf("%s→%s", c.A, c.B)
	case CC:
		return fmt.Sprintf("%s:%s⇓%s", c.A, prem, c.C)
	case PC:
		return fmt.Sprintf("%s⇓1%s", c.A, c.B)
	default:
		return fmt.Sprintf("%s-%s->%s", c.A, c.C, c.B)
	}
}

// Set is a collection of constraints with lookup indexes used by the
// chase.
type Set struct {
	All []Constraint

	byKind map[Kind][]Constraint
	// byConsequent indexes SC/CC by the added tag C and IC by the
	// inserted tag C: the tags a chase step can introduce.
	byConsequent map[string][]Constraint
	member       map[Constraint]bool
}

// NewSet builds a Set over the given constraints, deduplicated.
func NewSet(cs []Constraint) *Set {
	s := &Set{
		byKind:       make(map[Kind][]Constraint),
		byConsequent: make(map[string][]Constraint),
		member:       make(map[Constraint]bool),
	}
	for _, c := range cs {
		s.add(c)
	}
	return s
}

func (s *Set) add(c Constraint) {
	if s.member[c] {
		return
	}
	s.member[c] = true
	s.All = append(s.All, c)
	s.byKind[c.Kind] = append(s.byKind[c.Kind], c)
	switch c.Kind {
	case SC, CC, IC:
		s.byConsequent[c.C] = append(s.byConsequent[c.C], c)
	default:
		// FC and PC constrain existing structure without introducing a
		// tag, so they have no consequent index entry.
	}
}

// Len returns the number of constraints.
func (s *Set) Len() int { return len(s.All) }

// OfKind returns the constraints of one kind.
func (s *Set) OfKind(k Kind) []Constraint { return s.byKind[k] }

// Introducing returns the SC/CC/IC constraints whose application can
// introduce the tag c into a pattern.
func (s *Set) Introducing(c string) []Constraint { return s.byConsequent[c] }

// Has reports membership.
func (s *Set) Has(c Constraint) bool { return s.member[c] }

// String lists the constraints sorted, one per line.
func (s *Set) String() string {
	lines := make([]string, len(s.All))
	for i, c := range s.All {
		lines[i] = c.Kind.String() + " " + c.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Infer computes all SC, FC, CC, PC and IC constraints implied by the
// schema (Algorithm extractConstraints, Fig 11, plus Wood-style SC/FC
// inference). It runs in O(|S|³) time as stated by Theorem 5.
//
// Notes on the realization of the Fig 11 Datalog programs:
//
//   - In the `avoid` test for cousin constraints, a path node x
//     certifies the constraint if x == c or x has a guaranteed path to
//     c; the endpoint a certifies only via a guaranteed path (an
//     element is not its own descendant). This matches the prose
//     semantics of §4.1.
//   - Unconditional constraints (a : {} ↓ c, a : {} ⇓ c) are emitted
//     where implied; conditional ones subsumed by an unconditional one
//     are omitted, keeping the set small without losing chase power.
//   - Conditional SCs (a : b ↓ c with b ≠ "") cannot arise
//     non-vacuously in these schema graphs because child quantifiers
//     are independent (no sequence/union groups), so all emitted SCs
//     are unconditional. CCs do arise conditionally (Fig 2(a)'s
//     Auction : person ⇓ item).
//   - Inference works unchanged on recursive schemas except for PC,
//     whose §5 side conditions are subsumed by the path test used here.
func Infer(g *schema.Graph) *Set {
	tags := g.Tags()
	n := len(tags)
	idx := make(map[string]int, n)
	for i, t := range tags {
		idx[t] = i
	}

	// adj and reach: plain reachability; gp: guaranteed-path closure.
	adj := make([][]int, n)
	for i, t := range tags {
		for _, e := range g.Edges(t) {
			adj[i] = append(adj[i], idx[e.Child])
		}
	}
	reach := closure(n, func(i int, visit func(int)) {
		for _, j := range adj[i] {
			visit(j)
		}
	})
	gp := closure(n, func(i int, visit func(int)) {
		for _, e := range g.Edges(tags[i]) {
			if e.Quant.Guaranteed() {
				visit(idx[e.Child])
			}
		}
	})

	var out []Constraint

	// SC (unconditional) and FC from direct edges.
	for _, t := range tags {
		for _, e := range g.Edges(t) {
			if e.Quant.Guaranteed() {
				out = append(out, Constraint{Kind: SC, A: t, C: e.Child})
			}
			if e.Quant.AtMostOne() {
				out = append(out, Constraint{Kind: FC, A: t, B: e.Child})
			}
		}
	}

	// Unconditional CC: a has a guaranteed path (length ≥ 1) to c.
	for a := 0; a < n; a++ {
		for c := 0; c < n; c++ {
			if gp[a][c] {
				out = append(out, Constraint{Kind: CC, A: tags[a], C: tags[c]})
			}
		}
	}

	// PC: edge(a,b) exists and there is no multi-step path a→x⇝b.
	// The ∃x test also rules out cycles through a or b, so it covers
	// the §5 recursive-schema inference rule.
	for a, t := range tags {
		for _, e := range g.Edges(t) {
			b := idx[e.Child]
			detour := false
			for _, x := range adj[a] {
				if (x == b && reach[b][b]) || (x != b && reach[x][b]) {
					detour = true
					break
				}
			}
			if !detour {
				out = append(out, Constraint{Kind: PC, A: t, B: e.Child})
			}
		}
	}

	// IC and conditional CC need per-excluded-node reachability.
	for c := 0; c < n; c++ {
		// bypassReach[a] = set of b reachable from a via paths whose
		// intermediate nodes are all ≠ c (endpoints unrestricted except
		// a ≠ c, b ≠ c checked at emission).
		bypass := avoidClosure(n, adj, func(x int) bool { return x == c })
		// unsafe(x): x does not certify a c-descendant.
		unsafeAvoid := avoidClosure(n, adj, func(x int) bool { return x == c || gp[x][c] })
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !reach[a][b] {
					continue
				}
				// IC: every path a⇝b goes through c (c strictly inside).
				if a != c && b != c && !bypass[a][b] {
					out = append(out, Constraint{Kind: IC, A: tags[a], B: tags[b], C: tags[c]})
				}
				// Conditional CC: skip trivia and cases subsumed by the
				// unconditional a : {} ⇓ c.
				if b == c || gp[a][c] {
					continue
				}
				// avoid(a,b,c) holds iff some path a⇝b consists solely of
				// unsafe nodes: intermediates via unsafeAvoid, endpoint a
				// via ¬gp(a,c) (checked above), endpoint b via
				// ¬(b == c ∨ gp(b,c)). b == c was skipped above.
				avoid := !gp[b][c] && unsafeAvoid[a][b]
				if b != a && !avoid {
					out = append(out, Constraint{Kind: CC, A: tags[a], B: tags[b], C: tags[c]})
				}
			}
		}
	}

	return NewSet(out)
}

// closure computes the transitive closure (proper, length ≥ 1) of the
// neighbor relation given by next.
func closure(n int, next func(i int, visit func(int))) [][]bool {
	out := make([][]bool, n)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		next(i, func(j int) { adj[i] = append(adj[i], j) })
	}
	for i := 0; i < n; i++ {
		out[i] = make([]bool, n)
		// BFS from i.
		stack := append([]int(nil), adj[i]...)
		for len(stack) > 0 {
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if out[i][j] {
				continue
			}
			out[i][j] = true
			stack = append(stack, adj[j]...)
		}
	}
	return out
}

// avoidClosure computes, for every a, the set of b reachable by a
// non-empty path whose strictly-intermediate nodes all fail blocked.
// Endpoints are not tested here.
func avoidClosure(n int, adj [][]int, blocked func(int) bool) [][]bool {
	out := make([][]bool, n)
	for a := 0; a < n; a++ {
		out[a] = make([]bool, n)
		stack := append([]int(nil), adj[a]...)
		for _, j := range adj[a] {
			out[a][j] = true
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if blocked(x) {
				continue // cannot pass through x
			}
			for _, j := range adj[x] {
				if !out[a][j] {
					out[a][j] = true
					stack = append(stack, j)
				}
			}
		}
	}
	return out
}
