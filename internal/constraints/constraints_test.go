package constraints

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/schema"
	"qav/internal/xmltree"
)

// auctionDSL is the schema of Figure 2(a).
const auctionDSL = `
root Auctions
Auctions -> Auction*
Auction  -> open_auction* closed_auction?
open_auction -> item bids?
closed_auction -> item person? buyer?
bids  -> person+
buyer -> person
person -> name
item  -> name
`

func TestConstraintStrings(t *testing.T) {
	cases := []struct {
		c    Constraint
		want string
	}{
		{Constraint{Kind: SC, A: "a", B: "b", C: "c"}, "a:b↓c"},
		{Constraint{Kind: SC, A: "a", C: "c"}, "a:{}↓c"},
		{Constraint{Kind: FC, A: "a", B: "b"}, "a→b"},
		{Constraint{Kind: CC, A: "a", B: "b", C: "c"}, "a:b⇓c"},
		{Constraint{Kind: PC, A: "a", B: "b"}, "a⇓1b"},
		{Constraint{Kind: IC, A: "a", B: "b", C: "c"}, "a-c->b"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestInferAuctionExamples checks each constraint example from §4.1 of
// the paper against the Figure 2(a) schema.
func TestInferAuctionExamples(t *testing.T) {
	g := schema.MustParse(auctionDSL)
	sigma := Infer(g)

	want := []Constraint{
		// (1) Every bids has at least one person child.
		{Kind: SC, A: "bids", C: "person"},
		// (2) buyer below closed_auction is necessarily a child.
		{Kind: PC, A: "closed_auction", B: "buyer"},
		// (3) Every Auction has at most one closed_auction child.
		{Kind: FC, A: "Auction", B: "closed_auction"},
		// (4) Every Auction with a person descendant has an item
		// descendant (the paper's flagship cousin constraint).
		{Kind: CC, A: "Auction", B: "person", C: "item"},
		// Example 2 constraints: person:{}↓name, item:{}↓name,
		// closed_auction:{}⇓name, open_auction:{}⇓name.
		{Kind: SC, A: "person", C: "name"},
		{Kind: SC, A: "item", C: "name"},
		{Kind: CC, A: "closed_auction", C: "name"},
		{Kind: CC, A: "open_auction", C: "name"},
	}
	for _, c := range want {
		if !sigma.Has(c) {
			t.Errorf("missing constraint %s %s", c.Kind, c)
		}
	}

	dontWant := []Constraint{
		// open_auction may repeat under Auction.
		{Kind: FC, A: "Auction", B: "open_auction"},
		// bids is optional under open_auction, so no guaranteed person.
		{Kind: CC, A: "open_auction", C: "person"},
		// A person descendant does not imply a buyer (open_auction path).
		{Kind: CC, A: "Auction", B: "person", C: "buyer"},
		// person can be a grandchild of Auction? No — it's deeper; but
		// person under bids is a child only; person under Auction goes
		// through intermediaries, so no PC(Auction, person) — it is not
		// even an edge.
		{Kind: PC, A: "Auction", B: "person"},
		// item appears under both open_auction and closed_auction, so
		// no IC forcing one of them between Auction and item.
		{Kind: IC, A: "Auction", B: "item", C: "open_auction"},
	}
	for _, c := range dontWant {
		if sigma.Has(c) {
			t.Errorf("spurious constraint %s %s", c.Kind, c)
		}
	}
}

// §4.1 example (5): with the item→name edge absent, every path from
// closed_auction to name passes through person.
func TestInferICExample(t *testing.T) {
	g := schema.MustParse(`
root Auctions
Auctions -> Auction*
Auction  -> open_auction* closed_auction?
open_auction -> item bids?
closed_auction -> item person? buyer?
bids  -> person+
buyer -> person
person -> name
item  ->
`)
	sigma := Infer(g)
	if !sigma.Has(Constraint{Kind: IC, A: "closed_auction", B: "name", C: "person"}) {
		t.Errorf("expected closed_auction-person->name; got:\n%s", sigma)
	}
	// With item→name present (original schema) the IC must not hold.
	sigma2 := Infer(schema.MustParse(auctionDSL))
	if sigma2.Has(Constraint{Kind: IC, A: "closed_auction", B: "name", C: "person"}) {
		t.Error("IC should not hold when item→name provides a bypass")
	}
}

func TestInferPC(t *testing.T) {
	g := schema.MustParse("root a\na -> b c\nb -> c\nc ->")
	sigma := Infer(g)
	// c can be a child of a or a grandchild via b: no PC(a,c).
	if sigma.Has(Constraint{Kind: PC, A: "a", B: "c"}) {
		t.Error("PC(a,c) must not hold with the a->b->c detour")
	}
	if !sigma.Has(Constraint{Kind: PC, A: "a", B: "b"}) {
		t.Error("PC(a,b) must hold")
	}
	if !sigma.Has(Constraint{Kind: PC, A: "b", B: "c"}) {
		t.Error("PC(b,c) must hold")
	}
}

func TestInferPCRecursive(t *testing.T) {
	// §5: nodes on cycles never yield PCs.
	g := schema.MustParse("root a\na -> b?\nb -> a? c\nc ->")
	sigma := Infer(g)
	if sigma.Has(Constraint{Kind: PC, A: "a", B: "b"}) {
		t.Error("PC(a,b) must not hold: b can appear at depth 3 via a->b->a->b")
	}
	if sigma.Has(Constraint{Kind: PC, A: "b", B: "c"}) {
		t.Error("PC(b,c) must not hold: c below a nested b is a deep descendant of the outer b")
	}
}

func TestInferUnconditionalCCTransitive(t *testing.T) {
	g := schema.MustParse("root a\na -> b\nb -> c+\nc ->")
	sigma := Infer(g)
	if !sigma.Has(Constraint{Kind: CC, A: "a", C: "c"}) {
		t.Error("a:{}⇓c must hold via guaranteed path a->b->c")
	}
	if !sigma.Has(Constraint{Kind: CC, A: "a", C: "b"}) {
		t.Error("a:{}⇓b must hold")
	}
	g2 := schema.MustParse("root a\na -> b?\nb -> c+\nc ->")
	sigma2 := Infer(g2)
	if sigma2.Has(Constraint{Kind: CC, A: "a", C: "c"}) {
		t.Error("a:{}⇓c must not hold when b is optional")
	}
	// But the conditional one must: an a with a c descendant... trivial.
	// More interesting: a : b ⇓ c (b child implies c descendant).
	if !sigma2.Has(Constraint{Kind: CC, A: "a", B: "b", C: "c"}) {
		t.Error("a:b⇓c must hold: any b has a mandatory c")
	}
}

func TestSetIndexes(t *testing.T) {
	g := schema.MustParse(auctionDSL)
	sigma := Infer(g)
	if sigma.Len() != len(sigma.All) {
		t.Error("Len mismatch")
	}
	for _, c := range sigma.Introducing("item") {
		if c.C != "item" {
			t.Errorf("Introducing(item) returned %s", c)
		}
	}
	// Deduplication.
	s := NewSet([]Constraint{
		{Kind: FC, A: "a", B: "b"},
		{Kind: FC, A: "a", B: "b"},
	})
	if s.Len() != 1 {
		t.Errorf("duplicate constraints kept: %d", s.Len())
	}
	if len(s.OfKind(FC)) != 1 {
		t.Error("OfKind broken")
	}
}

// randomDAGSchema builds a random DAG schema over n tags t0..t{n-1}
// with edges only from lower to higher indices.
func randomDAGSchema(rng *rand.Rand, n int) *schema.Graph {
	tags := make([]string, n)
	for i := range tags {
		tags[i] = string(rune('a' + i))
	}
	g := schema.New(tags[0])
	quants := []schema.Quantifier{schema.One, schema.Plus, schema.Opt, schema.Star}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				g.MustAddEdge(tags[i], tags[j], quants[rng.Intn(len(quants))])
			}
		}
	}
	return g
}

// Soundness: every inferred constraint holds on every random instance.
func TestQuickInferenceSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAGSchema(rng, 2+rng.Intn(6))
		sigma := Infer(g)
		for i := 0; i < 5; i++ {
			d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 3})
			if err != nil {
				return true // ungeneratable schema; nothing to check
			}
			for _, c := range sigma.All {
				if !Satisfies(d, c) {
					t.Logf("schema:\n%s\nconstraint %s %s violated by:\n%s", g, c.Kind, c, d.XMLString())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Soundness on the auction schema with many instances.
func TestInferenceSoundAuction(t *testing.T) {
	g := schema.MustParse(auctionDSL)
	sigma := Infer(g)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range sigma.All {
			if !Satisfies(d, c) {
				t.Fatalf("constraint %s %s violated by instance:\n%s", c.Kind, c, d.XMLString())
			}
		}
	}
}

// Probabilistic completeness: candidate constraints NOT inferred should
// be violated by some instance (unless vacuous on all sampled ones).
func TestInferenceCompleteOnSamples(t *testing.T) {
	g := schema.MustParse(auctionDSL)
	sigma := Infer(g)
	rng := rand.New(rand.NewSource(11))
	var instances []*xmltree.Document
	for i := 0; i < 200; i++ {
		d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 3, OptProb: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, d)
	}
	tags := g.Tags()
	// implied mirrors the deliberate omissions of Infer: trivial
	// constraints (premise equals conclusion) and conditional SC/CC
	// subsumed by an unconditional constraint on the same (A, C).
	implied := func(c Constraint) bool {
		if sigma.Has(c) {
			return true
		}
		switch c.Kind {
		case SC:
			return c.B == c.C || sigma.Has(Constraint{Kind: SC, A: c.A, C: c.C})
		case CC:
			if c.B == c.C {
				return true
			}
			return sigma.Has(Constraint{Kind: CC, A: c.A, C: c.C}) ||
				sigma.Has(Constraint{Kind: SC, A: c.A, C: c.C})
		}
		return false
	}
	check := func(c Constraint) {
		if implied(c) {
			return
		}
		violated, applicable := false, false
		for _, d := range instances {
			if !Satisfies(d, c) {
				violated = true
				break
			}
			if applies(d, c) {
				applicable = true
			}
		}
		if applicable && !violated {
			t.Errorf("constraint %s %s holds on all 200 samples but was not inferred", c.Kind, c)
		}
	}
	// FC and PC candidates (pairs).
	for _, a := range tags {
		for _, b := range tags {
			check(Constraint{Kind: FC, A: a, B: b})
			check(Constraint{Kind: PC, A: a, B: b})
			check(Constraint{Kind: SC, A: a, C: b})
			check(Constraint{Kind: CC, A: a, C: b})
		}
	}
	// A few interesting CC/IC triples rather than the full cube.
	for _, a := range tags {
		for _, b := range tags {
			for _, c := range []string{"item", "person", "name"} {
				check(Constraint{Kind: CC, A: a, B: b, C: c})
				check(Constraint{Kind: IC, A: a, B: b, C: c})
			}
		}
	}
}

// applies reports whether the constraint's premise is triggered
// somewhere in the document (so that holding is not vacuous).
func applies(d *xmltree.Document, c Constraint) bool {
	switch c.Kind {
	case SC, FC, PC:
		for _, n := range d.Nodes {
			if n.Tag == c.A {
				if c.Kind == SC && c.B != "" {
					if hasChild(n, c.B) {
						return true
					}
					continue
				}
				if c.Kind == FC {
					// FC is vacuous unless some a node actually has a
					// b child.
					if hasChild(n, c.B) {
						return true
					}
					continue
				}
				if c.Kind == PC {
					if hasDescendant(n, c.B) {
						return true
					}
					continue
				}
				return true
			}
		}
	case CC:
		for _, n := range d.Nodes {
			if n.Tag == c.A {
				if c.B == "" || hasDescendant(n, c.B) {
					return true
				}
			}
		}
	case IC:
		for _, n := range d.Nodes {
			if n.Tag == c.A && hasDescendant(n, c.B) {
				return true
			}
		}
	}
	return false
}
