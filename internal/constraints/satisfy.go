package constraints

import "qav/internal/xmltree"

// Satisfies reports whether the document satisfies the constraint.
// Used by tests to validate inference (every constraint inferred from a
// schema must hold on every conforming instance) and exposed for
// diagnostics.
func Satisfies(d *xmltree.Document, c Constraint) bool {
	switch c.Kind {
	case SC:
		for _, n := range d.Nodes {
			if n.Tag != c.A {
				continue
			}
			if c.B != "" && !hasChild(n, c.B) {
				continue
			}
			if !hasChild(n, c.C) {
				return false
			}
		}
	case FC:
		for _, n := range d.Nodes {
			if n.Tag != c.A {
				continue
			}
			count := 0
			for _, k := range n.Children {
				if k.Tag == c.B {
					count++
				}
			}
			if count > 1 {
				return false
			}
		}
	case CC:
		for _, n := range d.Nodes {
			if n.Tag != c.A {
				continue
			}
			if c.B != "" && !hasDescendant(n, c.B) {
				continue
			}
			if !hasDescendant(n, c.C) {
				return false
			}
		}
	case PC:
		for _, n := range d.Nodes {
			if n.Tag != c.A {
				continue
			}
			for _, m := range n.Subtree()[1:] {
				if m.Tag == c.B && m.Parent != n {
					return false
				}
			}
		}
	case IC:
		for _, n := range d.Nodes {
			if n.Tag != c.A {
				continue
			}
			// Every path from n down to a c.B node must contain a c.C
			// node strictly between them.
			if descendantAvoiding(n, c.B, c.C) {
				return false
			}
		}
	}
	return true
}

func hasChild(n *xmltree.Node, tag string) bool {
	for _, k := range n.Children {
		if k.Tag == tag {
			return true
		}
	}
	return false
}

func hasDescendant(n *xmltree.Node, tag string) bool {
	for _, m := range n.Subtree()[1:] {
		if m.Tag == tag {
			return true
		}
	}
	return false
}

// descendantAvoiding reports whether some proper descendant of n tagged
// target is reachable from n without passing through a node tagged via
// (the endpoints do not count as intermediate).
func descendantAvoiding(n *xmltree.Node, target, via string) bool {
	var walk func(m *xmltree.Node) bool
	walk = func(m *xmltree.Node) bool {
		if m.Tag == target {
			return true
		}
		if m.Tag == via {
			return false
		}
		for _, k := range m.Children {
			if walk(k) {
				return true
			}
		}
		return false
	}
	for _, k := range n.Children {
		if walk(k) {
			return true
		}
	}
	return false
}
