package chase

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/constraints"
	"qav/internal/schema"
	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

func TestPCRuleConvertsEdges(t *testing.T) {
	g := schema.MustParse("root a\na -> b\nb -> c")
	sigma := constraints.Infer(g)
	v := tpq.MustParse("//a//b")
	out, err := Exhaustive(context.Background(), v, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// b below a is necessarily a child, so the ad-edge becomes pc.
	b := findChild(out.Root, "b")
	if b == nil || b.Axis != tpq.Child {
		t.Errorf("chase did not convert //b to /b: %s", out)
	}
}

func TestSCRuleAddsMandatoryChildren(t *testing.T) {
	g := schema.MustParse("root a\na -> b c?\nb -> d+")
	sigma := constraints.Infer(g)
	out, err := Exhaustive(context.Background(), tpq.MustParse("/a"), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := findChild(out.Root, "b")
	if b == nil {
		t.Fatalf("mandatory b child not added: %s", out)
	}
	if findChild(out.Root, "c") != nil {
		t.Errorf("optional c child must not be added: %s", out)
	}
	if findChild(b, "d") == nil {
		t.Errorf("mandatory d under b not added: %s", out)
	}
}

func TestFCRuleMergesDuplicates(t *testing.T) {
	g := schema.MustParse("root a\na -> b?\nb -> c* d*")
	sigma := constraints.Infer(g)
	// Hand-build //a[b/c][b/d]: with FC a→b the two b children merge.
	v := tpq.New(tpq.Descendant, "a")
	b1 := v.Root.AddChild(tpq.Child, "b")
	b1.AddChild(tpq.Child, "c")
	b2 := v.Root.AddChild(tpq.Child, "b")
	b2.AddChild(tpq.Child, "d")
	out, err := Exhaustive(context.Background(), v, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var bs []*tpq.Node
	for _, c := range out.Root.Children {
		if c.Tag == "b" {
			bs = append(bs, c)
		}
	}
	if len(bs) != 1 {
		t.Fatalf("FC did not merge b children: %s", out)
	}
	if findChild(bs[0], "c") == nil || findChild(bs[0], "d") == nil {
		t.Errorf("merge lost children: %s", out)
	}
}

func TestFCRuleMovesOutputMarker(t *testing.T) {
	g := schema.MustParse("root a\na -> b?\nb -> c*")
	sigma := constraints.Infer(g)
	v := tpq.New(tpq.Descendant, "a")
	b1 := v.Root.AddChild(tpq.Child, "b")
	b2 := v.Root.AddChild(tpq.Child, "b")
	v.Output = b2
	_ = b1
	out, err := Exhaustive(context.Background(), v, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("output marker lost in merge: %v", err)
	}
	if out.Output.Tag != "b" {
		t.Errorf("output = %q", out.Output.Tag)
	}
}

func TestICRuleInsertsIntermediate(t *testing.T) {
	g := schema.MustParse("root a\na -> person?\nperson -> name?")
	sigma := constraints.Infer(g)
	out, err := Exhaustive(context.Background(), tpq.MustParse("//a//name"), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	person := findChild(out.Root, "person")
	if person == nil {
		t.Fatalf("IC did not insert person: %s", out)
	}
	if findChild(person, "name") == nil {
		t.Errorf("name not re-attached below person: %s", out)
	}
}

// Figure 2: chasing V = //Auction//person with the auction-schema
// constraints adds an item descendant to Auction (the cousin
// constraint), which is what licenses the MCR.
func TestChaseFigure2(t *testing.T) {
	sigma := constraints.Infer(workload.AuctionSchema())
	q := tpq.MustParse("//Auction[//item]//name")
	v := tpq.MustParse("//Auction//person")
	out := Intelligent(v, q, sigma)
	item := findChild(out.Root, "item")
	if item == nil {
		t.Fatalf("intelligent chase did not add item under Auction: %s", out)
	}
	if out.Output.Tag != "person" {
		t.Errorf("output moved: %q", out.Output.Tag)
	}
}

// Figure 12: exhaustive chase of /a against the diamond schema yields
// the 13-node chased view when driven by the sibling constraints alone.
func TestChaseFigure12ThirteenNodes(t *testing.T) {
	g := workload.Figure12Schema()
	sigma := constraints.Infer(g)
	scOnly := constraints.NewSet(sigma.OfKind(constraints.SC))
	out, err := Exhaustive(context.Background(), tpq.MustParse("/a"), scOnly, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 13 {
		t.Errorf("chased view has %d nodes, the paper's figure shows 13:\n%s", out.Size(), out)
	}
	// With the full (redundant) constraint set the chase is at least as
	// large — the paper notes the figure "does not even show all
	// possible nodes that would be added by chasing with redundant
	// constraints".
	full, err := Exhaustive(context.Background(), tpq.MustParse("/a"), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Size() < 13 {
		t.Errorf("full chase smaller than SC-only chase: %d", full.Size())
	}
}

// Exhaustive chase grows exponentially with stacked diamonds while the
// intelligent chase stays linear in the query.
func TestChaseDiamondExplosionVsIntelligent(t *testing.T) {
	sizes := make([]int, 0, 4)
	for levels := 1; levels <= 4; levels++ {
		g := workload.DiamondSchema(levels)
		sigma := constraints.NewSet(constraints.Infer(g).OfKind(constraints.SC))
		out, err := Exhaustive(context.Background(), tpq.MustParse("/x0"), sigma, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, out.Size())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < 2*sizes[i-1] {
			t.Errorf("chase sizes %v do not double per diamond level", sizes)
			break
		}
	}
	// Intelligent chase for a tiny query touches only the needed tags.
	g := workload.DiamondSchema(4)
	sigma := constraints.Infer(g)
	q := tpq.MustParse("/x0[b0]")
	out := Intelligent(tpq.MustParse("/x0"), q, sigma)
	if out.Size() > 3 {
		t.Errorf("intelligent chase added %d nodes for a 2-node query: %s", out.Size(), out)
	}
}

// Theorem 6 (soundness half): the chased view is equivalent to the view
// on every instance of the schema.
func TestQuickChasePreservesEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := workload.RandomDAGSchema(rng, 2+rng.Intn(6), 0.4)
		sigma := constraints.Infer(g)
		v := workload.RandomSchemaPattern(rng, g, 5)
		chased, err := Exhaustive(context.Background(), v, sigma, Options{MaxSteps: 20000})
		if err != nil {
			return true // blown budget is acceptable for this property
		}
		intel := Intelligent(v, workload.RandomSchemaPattern(rng, g, 5), sigma)
		for i := 0; i < 4; i++ {
			d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 3})
			if err != nil {
				return true
			}
			want := v.Evaluate(d)
			got := chased.Evaluate(d)
			if !sameNodes(want, got) {
				t.Logf("exhaustive chase changed semantics\nschema:\n%s\nV: %s\nchased: %s", g, v, chased)
				return false
			}
			got = intel.Evaluate(d)
			if !sameNodes(want, got) {
				t.Logf("intelligent chase changed semantics\nschema:\n%s\nV: %s\nchased: %s", g, v, intel)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// The chase never touches its input pattern.
func TestChaseDoesNotMutateInput(t *testing.T) {
	sigma := constraints.Infer(workload.AuctionSchema())
	v := tpq.MustParse("//Auction//person")
	before := v.Canonical()
	if _, err := Exhaustive(context.Background(), v, sigma, Options{}); err != nil {
		t.Fatal(err)
	}
	Intelligent(v, tpq.MustParse("//Auction[//item]//name"), sigma)
	if v.Canonical() != before {
		t.Error("chase mutated its input")
	}
}

func TestExhaustiveStepLimit(t *testing.T) {
	// A recursive schema with a guaranteed cycle would chase forever;
	// the step limit must turn that into an error. SC b:{}↓a and
	// SC a:{}↓b alternate indefinitely.
	sigma := constraints.NewSet([]constraints.Constraint{
		{Kind: constraints.SC, A: "a", C: "b"},
		{Kind: constraints.SC, A: "b", C: "a"},
	})
	if _, err := Exhaustive(context.Background(), tpq.MustParse("/a"), sigma, Options{MaxSteps: 500}); err == nil {
		t.Error("divergent chase did not error out")
	}
}

func sameNodes(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[*xmltree.Node]bool, len(a))
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		if !set[n] {
			return false
		}
	}
	return true
}

func findChild(n *tpq.Node, tag string) *tpq.Node {
	for _, c := range n.Children {
		if c.Tag == tag {
			return c
		}
	}
	return nil
}

// Conditional SC and CC rules (a : b ↓ c with a premise) are supported
// by the chase even though schema-graph inference only produces
// unconditional SCs; exercise them with hand-built constraint sets.
func TestConditionalRules(t *testing.T) {
	sigma := constraints.NewSet([]constraints.Constraint{
		{Kind: constraints.SC, A: "a", B: "b", C: "c"},
		{Kind: constraints.CC, A: "a", B: "x", C: "y"},
	})
	// SC premise not met: no pc-child b.
	out, err := Exhaustive(context.Background(), tpq.MustParse("//a[//b]"), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if findChild(out.Root, "c") != nil {
		t.Errorf("conditional SC fired without its premise: %s", out)
	}
	// SC premise met.
	out, err = Exhaustive(context.Background(), tpq.MustParse("//a[b]"), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if findChild(out.Root, "c") == nil {
		t.Errorf("conditional SC did not fire: %s", out)
	}
	// CC premise met through a deep descendant.
	out, err = Exhaustive(context.Background(), tpq.MustParse("//a[b/x]"), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := findChild(out.Root, "y")
	if y == nil || y.Axis != tpq.Descendant {
		t.Errorf("conditional CC did not add //y: %s", out)
	}
}

// The chase must never relocate the output node or break validity.
func TestChasePreservesValidity(t *testing.T) {
	sigma := constraints.Infer(workload.AuctionSchema())
	for _, expr := range []string{
		"//Auction//person", "//bids/person", "/Auctions//name",
		"//closed_auction[buyer]//name",
	} {
		v := tpq.MustParse(expr)
		out, err := Exhaustive(context.Background(), v, sigma, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Validate(); err != nil {
			t.Errorf("chase of %s produced invalid pattern: %v", expr, err)
		}
		if out.Output.Tag != v.Output.Tag {
			t.Errorf("chase of %s moved output to %s", expr, out.Output.Tag)
		}
	}
}
