// Package chase implements the paper's chase procedure (§4.3): rewriting
// a tree pattern view with the constraints implied by a schema so that
// schema-relative containment reduces to plain containment (Theorem 6),
// and the goal-directed "intelligent chase" (Lemma 4) that keeps the
// chased view polynomial by only introducing tags the query mentions.
package chase

import (
	"context"
	"fmt"

	"qav/internal/constraints"
	"qav/internal/fault"
	"qav/internal/names"
	"qav/internal/tpq"
)

// faultStep fires once per fixpoint round of the exhaustive chase
// (no-op unless a chaos plan arms it; see internal/fault).
var faultStep = fault.Register(names.FaultChaseStep)

// Options configures Exhaustive.
type Options struct {
	// MaxSteps bounds the number of rule applications; 0 means a
	// generous default. Exhaustive chase is exponential on DAG schemas
	// (Fig 12) and may diverge on recursive ones, so the bound turns
	// runaway chases into errors.
	MaxSteps int
}

// Exhaustive applies the five chase rules until fixpoint and returns the
// chased pattern (the input is not modified). It fails if MaxSteps rule
// applications do not reach a fixpoint. The fixpoint loop polls ctx, so
// a cancelled context aborts a diverging or exponential chase promptly
// with the context's error.
func Exhaustive(ctx context.Context, v *tpq.Pattern, sigma *constraints.Set, opt Options) (*tpq.Pattern, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	out, _ := v.Clone()
	steps := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultStep.Hit(ctx); err != nil {
			return nil, err
		}
		changed := false
		for _, apply := range []func(*tpq.Pattern, *constraints.Set) int{
			applyPC, applyFC, applySC, applyIC, applyCC,
		} {
			n := apply(out, sigma)
			steps += n
			if n > 0 {
				changed = true
			}
			if steps > maxSteps {
				return nil, fmt.Errorf("chase: no fixpoint after %d steps (recursive schema or pathological constraint set)", steps)
			}
		}
		if !changed {
			return out, nil
		}
	}
}

// Intelligent performs the goal-directed chase of Lemma 4: it applies
// the cheap edge rules (PC, FC) exhaustively, but introduces new nodes
// only for tags that occur in the query q and not (yet) in the view.
// Because the inferred constraint set is transitively closed, any tag
// that the full chase could introduce is introduced here by a single
// constraint application (Lemma 4), so the loop runs at most |q - v|
// times and the result grows by at most |q| nodes: total time
// O(|Q-V| · |V|²).
//
//qavlint:ignore ctxpoll the fixpoint loops are bounded: each round either introduces a query tag absent from the view (at most |q| rounds, Lemma 4) or merges/contracts nodes, so no ctx is threaded through the SContained call chain
func Intelligent(v, q *tpq.Pattern, sigma *constraints.Set) *tpq.Pattern {
	out, _ := v.Clone()
	applyPC(out, sigma)
	applyFC(out, sigma)

	// Tags the query needs.
	want := make(map[string]bool)
	for _, n := range q.Nodes() {
		want[n.Tag] = true
	}
	for {
		have := make(map[string]bool)
		for _, n := range out.Nodes() {
			have[n.Tag] = true
		}
		added := 0
		for tag := range want {
			if have[tag] {
				continue
			}
			for _, c := range sigma.Introducing(tag) {
				n := applyOne(out, c)
				added += n
				if n > 0 {
					break
				}
			}
		}
		if added == 0 {
			break
		}
		applyPC(out, sigma)
		applyFC(out, sigma)
	}
	// A final pass of the node-adding rules restricted to wanted tags,
	// so that every *occurrence* the query can use is materialized (the
	// loop above stops as soon as each tag exists somewhere; embeddings
	// may need it under several parents, cf. Fig 14's two bids nodes).
	for {
		n := applyRestricted(out, sigma, want)
		applyPC(out, sigma)
		applyFC(out, sigma)
		if n == 0 {
			break
		}
	}
	return out
}

// applyOne applies a single constraint at the first applicable place,
// returning the number of applications (0 or 1).
func applyOne(p *tpq.Pattern, c constraints.Constraint) int {
	switch c.Kind {
	case constraints.SC:
		return applySCAt(p, c, true)
	case constraints.CC:
		return applyCCAt(p, c, true)
	case constraints.IC:
		return applyICAt(p, c, true)
	default:
		// FC and PC are not node-adding rules; the exhaustive chase
		// applies them separately (applyFC/applyPC) because they edit
		// edges in place rather than introducing tags.
		return 0
	}
}

// applyRestricted runs the node-adding rules (SC, CC, IC) everywhere,
// but only for constraints whose introduced tag is in want.
func applyRestricted(p *tpq.Pattern, sigma *constraints.Set, want map[string]bool) int {
	total := 0
	for _, c := range sigma.OfKind(constraints.SC) {
		if want[c.C] {
			total += applySCAt(p, c, false)
		}
	}
	for _, c := range sigma.OfKind(constraints.IC) {
		if want[c.C] {
			total += applyICAt(p, c, false)
		}
	}
	for _, c := range sigma.OfKind(constraints.CC) {
		if want[c.C] {
			total += applyCCAt(p, c, false)
		}
	}
	return total
}

// ---- individual chase rules ----

// applyPC converts ad-edges to pc-edges wherever a PC constraint a ⇓1 b
// applies. Returns the number of conversions.
func applyPC(p *tpq.Pattern, sigma *constraints.Set) int {
	count := 0
	for _, n := range p.Nodes() {
		for _, c := range n.Children {
			if c.Axis != tpq.Descendant {
				continue
			}
			if sigma.Has(constraints.Constraint{Kind: constraints.PC, A: n.Tag, B: c.Tag}) {
				c.SetAxis(tpq.Child)
				count++
			}
		}
	}
	return count
}

// applyFC merges duplicate pc-children wherever an FC constraint a → b
// applies. Returns the number of merges.
func applyFC(p *tpq.Pattern, sigma *constraints.Set) int {
	count := 0
	for {
		merged := false
		for _, n := range p.Nodes() {
			byTag := make(map[string]*tpq.Node)
			for i := 0; i < len(n.Children); i++ {
				c := n.Children[i]
				if c.Axis != tpq.Child {
					continue
				}
				first, ok := byTag[c.Tag]
				if !ok {
					byTag[c.Tag] = c
					continue
				}
				if !sigma.Has(constraints.Constraint{Kind: constraints.FC, A: n.Tag, B: c.Tag}) {
					continue
				}
				// Merge c into first: move children, fix output marker,
				// remove c from n.
				first.AdoptChildren(c)
				if p.Output == c {
					p.SetOutput(first)
				}
				n.RemoveChildAt(i)
				i--
				count++
				merged = true
			}
		}
		if !merged {
			return count
		}
	}
}

func applySC(p *tpq.Pattern, sigma *constraints.Set) int {
	total := 0
	for _, c := range sigma.OfKind(constraints.SC) {
		total += applySCAt(p, c, false)
	}
	return total
}

// applySCAt adds the pc-child required by an SC constraint at every
// applicable node (or just the first, if once is set).
func applySCAt(p *tpq.Pattern, c constraints.Constraint, once bool) int {
	count := 0
	for _, n := range p.Nodes() {
		if n.Tag != c.A {
			continue
		}
		if c.B != "" && !hasChildTag(n, c.B, tpq.Child) {
			continue
		}
		if hasChildTag(n, c.C, tpq.Child) {
			continue
		}
		n.AddChild(tpq.Child, c.C)
		count++
		if once {
			return count
		}
	}
	return count
}

func applyCC(p *tpq.Pattern, sigma *constraints.Set) int {
	total := 0
	for _, c := range sigma.OfKind(constraints.CC) {
		total += applyCCAt(p, c, false)
	}
	return total
}

// applyCCAt adds the ad-child required by a CC constraint. The premise
// "b-descendant" is checked against the whole subtree of the a node (a
// sound strengthening of the paper's edge-local rule: a pc- or deeper
// descendant tagged b also guarantees a b descendant in every match).
// Symmetrically, the conclusion counts as already present if a c node
// occurs ANYWHERE in the subtree — every subtree node maps to a
// descendant, and a direct-child-only check would let CC re-fire
// forever after IC splits the edge it just added.
func applyCCAt(p *tpq.Pattern, c constraints.Constraint, once bool) int {
	count := 0
	for _, n := range p.Nodes() {
		if n.Tag != c.A {
			continue
		}
		if c.B != "" && !hasDescendantTag(n, c.B) {
			continue
		}
		if hasDescendantTag(n, c.C) {
			continue
		}
		n.AddChild(tpq.Descendant, c.C)
		count++
		if once {
			return count
		}
	}
	return count
}

func applyIC(p *tpq.Pattern, sigma *constraints.Set) int {
	total := 0
	for _, c := range sigma.OfKind(constraints.IC) {
		total += applyICAt(p, c, false)
	}
	return total
}

// applyICAt splits ad-edges a⇝b into a⇝c⇝b wherever an IC constraint
// a -c-> b applies.
func applyICAt(p *tpq.Pattern, c constraints.Constraint, once bool) int {
	count := 0
	for _, n := range p.Nodes() {
		for i, ch := range n.Children {
			if ch.Axis != tpq.Descendant || n.Tag != c.A || ch.Tag != c.B {
				continue
			}
			n.SpliceAbove(i, tpq.Descendant, c.C)
			count++
			if once {
				return count
			}
		}
	}
	return count
}

func hasChildTag(n *tpq.Node, tag string, axis tpq.Axis) bool {
	for _, c := range n.Children {
		if c.Tag == tag && c.Axis == axis {
			return true
		}
	}
	return false
}

func hasDescendantTag(n *tpq.Node, tag string) bool {
	var walk func(*tpq.Node) bool
	walk = func(x *tpq.Node) bool {
		for _, c := range x.Children {
			if c.Tag == tag || walk(c) {
				return true
			}
		}
		return false
	}
	return walk(n)
}
