// Package rewrite implements the paper's core contribution: maximal
// contained rewritings (MCRs) of tree pattern queries using tree
// pattern views, in the absence (§3) and presence (§4, §5) of a schema.
//
// The central notion is the useful embedding (Definition 1): a partial,
// upward-closed matching f : Q ⇝ V whose unfulfilled obligations (the
// clip-away tree, CAT) can be grafted below the view's distinguished
// node to form a compensation query E with E ∘ V contained in Q.
//
// Definition 1's anchor conditions are realized operationally (see
// DESIGN.md): mapped distinguished-path nodes must land on the view's
// distinguished path, a mapped query output must land exactly on the
// view output, and a node may be left unmapped under a mapped parent x
// only if its edge is an ad-edge with f(x) on the distinguished path,
// or a pc-edge with f(x) = dV. Every rewriting the package produces is
// additionally verified contained in Q by homomorphism, so these
// conditions are load-bearing for completeness only — soundness is
// checked independently.
package rewrite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qav/internal/tpq"
)

// Embedding is a partial matching from query nodes to view nodes.
type Embedding struct {
	Q, V *tpq.Pattern
	// M maps query nodes to view nodes; absent keys are unmapped.
	M map[*tpq.Node]*tpq.Node
}

// Defined reports whether the embedding maps x.
func (e *Embedding) Defined(x *tpq.Node) bool {
	_, ok := e.M[x]
	return ok
}

// Empty reports whether no node is mapped.
func (e *Embedding) Empty() bool { return len(e.M) == 0 }

// Terminals returns the mapped nodes that have at least one unmapped
// child (the paper's terminal nodes), in preorder.
func (e *Embedding) Terminals() []*tpq.Node {
	var out []*tpq.Node
	for _, x := range e.Q.PreorderNodes() {
		if !e.Defined(x) {
			continue
		}
		for _, y := range x.Children {
			if !e.Defined(y) {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

// Signature returns a canonical string identifying the embedding's
// mapping, used to deduplicate enumerations. View images are identified
// by their O(1) preorder positions (interval labels), so no index map
// is built.
func (e *Embedding) Signature() string {
	qn := e.Q.PreorderNodes()
	sig := make([]byte, 0, 4*len(qn))
	for i, x := range qn {
		if i > 0 {
			sig = append(sig, ',')
		}
		if img, ok := e.M[x]; ok {
			sig = strconv.AppendInt(sig, int64(e.V.Preorder(img)), 10)
		} else {
			sig = append(sig, '_')
		}
	}
	return string(sig)
}

// String renders the embedding as query-node paths mapped to view-node
// paths.
func (e *Embedding) String() string {
	var parts []string
	for _, x := range e.Q.PreorderNodes() {
		if img, ok := e.M[x]; ok {
			parts = append(parts, nodePath(x)+"->"+nodePath(img))
		}
	}
	if len(parts) == 0 {
		return "{empty}"
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

func nodePath(n *tpq.Node) string {
	var tags []string
	for x := n; x != nil; x = x.Parent {
		tags = append(tags, x.Tag)
	}
	for i, j := 0, len(tags)-1; i < j; i, j = i+1, j-1 {
		tags[i], tags[j] = tags[j], tags[i]
	}
	return strings.Join(tags, "/")
}

// Validate checks that the embedding is a structurally valid partial
// matching AND useful in the operational sense described in the package
// comment. It returns nil for useful embeddings and a descriptive error
// otherwise.
func (e *Embedding) Validate() error {
	if e.Empty() {
		if e.Q.Root.Axis != tpq.Descendant {
			return fmt.Errorf("rewrite: empty embedding requires a '//' query root")
		}
		return nil
	}
	dV := e.V.Output
	for _, x := range e.Q.PreorderNodes() {
		img, ok := e.M[x]
		if !ok {
			continue
		}
		if x.Tag != img.Tag {
			return fmt.Errorf("rewrite: %s mapped to %s: tag mismatch", nodePath(x), nodePath(img))
		}
		if x.Parent == nil {
			// Root-axis compatibility with the virtual document root.
			if x.Axis == tpq.Child {
				if img != e.V.Root || e.V.Root.Axis != tpq.Child {
					return fmt.Errorf("rewrite: '/%s' query root must map to a '/' view root", x.Tag)
				}
			}
		} else {
			pimg, ok := e.M[x.Parent]
			if !ok {
				return fmt.Errorf("rewrite: not upward closed at %s", nodePath(x))
			}
			switch x.Axis {
			case tpq.Child:
				if img.Parent != pimg || img.Axis != tpq.Child {
					return fmt.Errorf("rewrite: pc-edge to %s not preserved", nodePath(x))
				}
			case tpq.Descendant:
				if !pimg.IsAncestorOf(img) {
					return fmt.Errorf("rewrite: ad-edge to %s not preserved", nodePath(x))
				}
			}
		}
		// Distinguished-path discipline (Def 1 (ii)(a), strengthened at
		// the output).
		if x == e.Q.Output && img != dV {
			return fmt.Errorf("rewrite: query output mapped to %s, not the view output", nodePath(img))
		}
		if e.Q.OnDistinguishedPath(x) && !e.V.OnDistinguishedPath(img) {
			return fmt.Errorf("rewrite: distinguished-path node %s mapped off the view's distinguished path", nodePath(x))
		}
	}
	// Terminal conditions (Def 1 (ii)(b)).
	for _, x := range e.Terminals() {
		img := e.M[x]
		for _, y := range x.Children {
			if e.Defined(y) {
				continue
			}
			switch y.Axis {
			case tpq.Child:
				if img != dV {
					return fmt.Errorf("rewrite: pc-child %s cut below %s which is not the view output", nodePath(y), nodePath(x))
				}
			case tpq.Descendant:
				if !e.V.OnDistinguishedPath(img) {
					return fmt.Errorf("rewrite: ad-child %s cut below %s which is off the distinguished path", nodePath(y), nodePath(x))
				}
			}
		}
	}
	return nil
}
