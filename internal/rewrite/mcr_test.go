package rewrite

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

func mustMCR(t *testing.T, q, v *tpq.Pattern) *Result {
	t.Helper()
	res, err := MCR(q, v, Options{})
	if err != nil {
		t.Fatalf("MCR(%s, %s): %v", q, v, err)
	}
	return res
}

// Figure 1 / §1: Q = //Trials[//Status]//Trial, V = //Trials//Trial.
// The rewriting //Trials//Trial[//Status] is a contained rewriting; on
// the sample database it returns exactly the first Trial (node 3).
func TestFigure1(t *testing.T) {
	q := tpq.MustParse("//Trials[//Status]//Trial")
	v := tpq.MustParse("//Trials//Trial")
	if !Answerable(q, v) {
		t.Fatal("Q must be answerable using V")
	}
	res := mustMCR(t, q, v)
	want := tpq.MustParse("//Trials//Trial[//Status]")
	found := false
	for _, p := range res.Union.Patterns {
		if tpq.Equivalent(p, want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("MCR %s does not include %s", res.Union, want)
	}
	// The MCR is contained in Q.
	if !res.Union.ContainedIn(q) {
		t.Errorf("MCR %s not contained in Q", res.Union)
	}
	// On the Figure 1 database the MCR returns exactly node 3 (the
	// Trial with a Status), a strict subset of Q's answers {3, 11}.
	d := xmltree.NewDocument(xmltree.Build("PharmaLab",
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient"), xmltree.Build("Status")),
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
	))
	got := res.Union.Evaluate(d)
	if len(got) != 1 || got[0] != d.Root.Children[0].Children[0] {
		t.Errorf("MCR on Fig 1 database returned %d answers, want the single Status-bearing Trial", len(got))
	}
	if qa := q.Evaluate(d); len(qa) != 2 {
		t.Errorf("Q on Fig 1 database returned %d answers, want 2", len(qa))
	}
}

// Figure 3: neither Q1 = /b/d nor Q2 = /a/b/d is answerable using
// V = /a/b//c (distinguished node c): Q1 expects a different document
// root, and Q2's pc-edge b/d cannot be preserved by attaching d under
// the c that V materializes.
func TestFigure3(t *testing.T) {
	v := tpq.MustParse("/a/b//c")
	q1 := tpq.MustParse("/b/d")
	if Answerable(q1, v) {
		t.Error("Q1 = /b/d must not be answerable (mismatched document roots)")
	}
	q2 := tpq.MustParse("/a/b/d")
	if Answerable(q2, v) {
		t.Error("Q2 = /a/b/d must not be answerable (pc-edge below a non-dV anchor)")
	}
	// §3.1: if dV is changed to b, Q2 becomes answerable via the
	// compensation .[/d] ∘ /a/b[//c] (the paper's example, with d as
	// the rewriting's answer node).
	v2 := tpq.MustParse("/a/b[//c]")
	if !Answerable(q2, v2) {
		t.Error("Q2 must be answerable once b is the distinguished node")
	}
	res := mustMCR(t, q2, v2)
	want := tpq.MustParse("/a/b[//c]/d")
	if len(res.Union.Patterns) != 1 || !tpq.Equivalent(res.Union.Patterns[0], want) {
		t.Errorf("MCR = %s, want %s", res.Union, want)
	}
}

// §6 example: Q = //a, V = //b are incomparable, yet //b//a is a
// contained rewriting of Q using V (contained rewriting differs
// fundamentally from equivalent rewriting here).
func TestSection6Example(t *testing.T) {
	q := tpq.MustParse("//a")
	v := tpq.MustParse("//b")
	if !Answerable(q, v) {
		t.Fatal("//a must be answerable using //b")
	}
	res := mustMCR(t, q, v)
	want := tpq.MustParse("//b//a")
	if len(res.Union.Patterns) != 1 || !tpq.Equivalent(res.Union.Patterns[0], want) {
		t.Errorf("MCR = %s, want %s", res.Union, want)
	}
}

// Figure 7(a): V1 = //a/b, Q1 = //a//b[c][d] (pc-children, output b).
// Two irredundant CRs: R11 = //a/b[c][d] and R12 = //a/b//b[c][d].
func TestFigure7a(t *testing.T) {
	v := tpq.MustParse("//a/b")
	q := tpq.MustParse("//a//b[c][d]")
	res := mustMCR(t, q, v)
	wantUnion := tpq.NewUnion(
		tpq.MustParse("//a/b[c][d]"),
		tpq.MustParse("//a/b//b[c][d]"),
	)
	if !res.Union.SameAs(wantUnion) {
		t.Errorf("MCR = %s, want %s", res.Union, wantUnion)
	}
	if len(res.Union.Patterns) != 2 {
		t.Errorf("MCR has %d disjuncts, want 2", len(res.Union.Patterns))
	}
}

// Figure 9: Q = //a[//b[c]][//b[d]] with output the b over c; V = //a//b.
// MCR = //a//b[c][d] U //a//b[//b/d][c] U //a//b[d]//b[c] U
// //a//b[//b/d]//b[c] (outputs on the b over c).
func TestFigure9(t *testing.T) {
	q := workload.Fig9Query()
	v := workload.Fig9View()
	res := mustMCR(t, q, v)
	want := tpq.NewUnion(
		fig9CR(t, "map", "map"),
		fig9CR(t, "map", "cut"),
		fig9CR(t, "cut", "map"),
		fig9CR(t, "cut", "cut"),
	)
	if !res.Union.SameAs(want) {
		t.Errorf("MCR =\n  %s\nwant\n  %s", res.Union, want)
	}
	if len(res.Union.Patterns) != 4 {
		t.Errorf("MCR has %d disjuncts, want 4", len(res.Union.Patterns))
	}
}

// fig9CR hand-builds the four Figure 9 CRs: left branch (b over c,
// which carries the output) and right branch (b over d) each either
// mapped onto the view's b or clipped below it.
func fig9CR(t *testing.T, left, right string) *tpq.Pattern {
	t.Helper()
	p := tpq.New(tpq.Descendant, "a")
	b := p.Root.AddChild(tpq.Descendant, "b")
	switch {
	case left == "map" && right == "map":
		b.AddChild(tpq.Child, "c")
		b.AddChild(tpq.Child, "d")
		p.Output = b
	case left == "map" && right == "cut":
		b.AddChild(tpq.Child, "c")
		b2 := b.AddChild(tpq.Descendant, "b")
		b2.AddChild(tpq.Child, "d")
		p.Output = b
	case left == "cut" && right == "map":
		b.AddChild(tpq.Child, "d")
		b2 := b.AddChild(tpq.Descendant, "b")
		b2.AddChild(tpq.Child, "c")
		p.Output = b2
	default:
		b2 := b.AddChild(tpq.Descendant, "b")
		b2.AddChild(tpq.Child, "c")
		b3 := b.AddChild(tpq.Descendant, "b")
		b3.AddChild(tpq.Child, "d")
		p.Output = b2
	}
	return p
}

// Figure 8 / Example 1: the n-branch family has an MCR of exactly 2^n
// irredundant CRs for n ≥ 2 (the paper's figure is the n = 2 instance
// with branches d, e). At n = 1 the clipped variant is contained in the
// mapped one, so the MCR degenerates to a single CR.
func TestFigure8ExponentialMCR(t *testing.T) {
	v := workload.Fig8View()
	if res := mustMCR(t, workload.Fig8Query(1), v); len(res.Union.Patterns) != 1 {
		t.Errorf("n=1: MCR has %d CRs, want 1:\n%s", len(res.Union.Patterns), res.Union)
	}
	for n := 2; n <= 5; n++ {
		q := workload.Fig8Query(n)
		res := mustMCR(t, q, v)
		if got, want := len(res.Union.Patterns), 1<<n; got != want {
			t.Errorf("n=%d: MCR has %d irredundant CRs, want %d\n%s", n, got, want, res.Union)
		}
		if !res.Union.ContainedIn(q) {
			t.Errorf("n=%d: MCR not contained in Q", n)
		}
	}
}

func TestUnanswerableGivesEmptyResult(t *testing.T) {
	res := mustMCR(t, tpq.MustParse("/b//d"), tpq.MustParse("/a//b//c"))
	if !res.Union.Empty() || len(res.CRs) != 0 {
		t.Errorf("expected empty MCR, got %s", res.Union)
	}
}

func TestAnswerableDistinguishedPathDiscipline(t *testing.T) {
	// The query output must be reachable: V = //a[b] with output a; the
	// compensation can navigate below a freely, so //a/c is answerable.
	if !Answerable(tpq.MustParse("//a/c"), tpq.MustParse("//a[b]")) {
		t.Error("//a/c should be answerable using //a[b]")
	}
	// With V = //a/b (output b), //a/c is still answerable — but only
	// through the empty embedding, which nests the whole query below b
	// (the same mechanism as the paper's §6 //b//a example).
	res := mustMCR(t, tpq.MustParse("//a/c"), tpq.MustParse("//a/b"))
	want := tpq.MustParse("//a/b//a/c")
	if len(res.Union.Patterns) != 1 || !tpq.Equivalent(res.Union.Patterns[0], want) {
		t.Errorf("MCR = %s, want %s", res.Union, want)
	}
	// With a '/'-rooted query the empty embedding is unavailable and no
	// mapping satisfies the pc-cut condition: unanswerable.
	if Answerable(tpq.MustParse("/a/c"), tpq.MustParse("/a/b")) {
		t.Error("/a/c must not be answerable using /a/b")
	}
}

// Every CR's rewriting equals its compensation composed with the view:
// same answers via direct evaluation and via view materialization.
func TestCompensationComposition(t *testing.T) {
	cases := []struct{ q, v string }{
		{"//Trials[//Status]//Trial", "//Trials//Trial"},
		{"//a//b[c][d]", "//a/b"},
		{"//a", "//b"},
		{"//a//c", "//a/b"},
	}
	rng := rand.New(rand.NewSource(4))
	for _, tc := range cases {
		q, v := tpq.MustParse(tc.q), tpq.MustParse(tc.v)
		res := mustMCR(t, q, v)
		for i := 0; i < 10; i++ {
			d := xmltree.Generate(rng, xmltree.GenSpec{
				Tags:     []string{"a", "b", "c", "d", "Trials", "Trial", "Status"},
				MaxDepth: 6, MaxFanout: 3, TargetSize: 40,
			})
			direct := res.Union.Evaluate(d)
			viaView, err := AnswerUsingView(context.Background(), res.CRs, v, d)
			if err != nil {
				t.Fatal(err)
			}
			if !sameNodeSet(direct, viaView) {
				t.Fatalf("q=%s v=%s: direct answers != view-based answers", tc.q, tc.v)
			}
		}
	}
}

// The flagship property: the paper's algorithm agrees with the
// brute-force ground truth on random inputs — same union, i.e. the MCR
// is both sound and maximal.
func TestQuickMCRMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		q := workload.RandomPattern(rng, alphabet, 4)
		v := workload.RandomPattern(rng, alphabet, 4)
		res, err := MCR(q, v, Options{MaxEmbeddings: 1 << 16})
		if err != nil {
			return true
		}
		naive, err := NaiveMCR(context.Background(), q, v)
		if err != nil {
			return true
		}
		if !res.Union.SameAs(naive.Union) {
			t.Logf("q=%s v=%s\n mcr=%s\n naive=%s", q, v, res.Union, naive.Union)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Soundness against evaluation: every MCR answer is a query answer on
// random documents.
func TestQuickMCRSoundOnDocuments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		q := workload.RandomPattern(rng, alphabet, 5)
		v := workload.RandomPattern(rng, alphabet, 4)
		res, err := MCR(q, v, Options{MaxEmbeddings: 1 << 16})
		if err != nil {
			return true
		}
		for i := 0; i < 3; i++ {
			d := xmltree.Generate(rng, xmltree.GenSpec{
				Tags: alphabet, MaxDepth: 5, MaxFanout: 3, TargetSize: 25,
			})
			inQ := make(map[*xmltree.Node]bool)
			for _, n := range q.Evaluate(d) {
				inQ[n] = true
			}
			for _, n := range res.Union.Evaluate(d) {
				if !inQ[n] {
					t.Logf("q=%s v=%s unsound answer on %s", q, v, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func sameNodeSet(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[*xmltree.Node]bool, len(a))
	for _, n := range a {
		m[n] = true
	}
	for _, n := range b {
		if !m[n] {
			return false
		}
	}
	return true
}

// markRedundant's parallel path must agree with the sequential path.
func TestMarkRedundantParallelAgreesWithSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(13))
	var crs []*ContainedRewriting
	for len(crs) < 48 {
		q := workload.RandomPattern(rng, []string{"a", "b"}, 4)
		v := workload.RandomPattern(rng, []string{"a", "b"}, 4)
		res, err := MCR(q, v, Options{MaxEmbeddings: 1 << 12})
		if err != nil {
			continue
		}
		crs = append(crs, res.CRs...)
	}
	crs = crs[:48]
	sortCRs(crs)
	contains := func(i, j int) bool {
		return tpq.Contained(crs[i].Rewriting, crs[j].Rewriting)
	}
	parallel, err := markRedundant(context.Background(), len(crs), contains)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference.
	seq := make([]bool, len(crs))
	for i := range crs {
		for j := range crs {
			if i == j || !contains(i, j) {
				continue
			}
			if !contains(j, i) || j < i {
				seq[i] = true
				break
			}
		}
	}
	for i := range seq {
		if seq[i] != parallel[i] {
			t.Fatalf("divergence at %d: seq=%v parallel=%v", i, seq[i], parallel[i])
		}
	}
}
