package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/tpq"
	"qav/internal/workload"
)

func TestEquivalentRewritingExists(t *testing.T) {
	cases := []struct {
		q, v string
		want bool
	}{
		// The compensation [b] restores Q exactly.
		{"//a[b]", "//a", true},
		// V is Q itself: identity compensation.
		{"//a[b]//c", "//a[b]//c", true},
		// Fig 1: contained but not equivalent (the [//Status] moves).
		{"//Trials[//Status]//Trial", "//Trials//Trial", false},
		// §6: //a using //b has only the nested CR, never equivalent.
		{"//a", "//b", false},
		// View is strictly more selective than Q: information lost.
		{"//a", "//a[b]", false},
		// A pc-step can be recovered below the view output.
		{"//a/b", "//a", true},
	}
	for _, tc := range cases {
		q, v := tpq.MustParse(tc.q), tpq.MustParse(tc.v)
		cr, ok, err := EquivalentRewriting(q, v, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.want {
			t.Errorf("EquivalentRewriting(%s, %s) = %v, want %v", tc.q, tc.v, ok, tc.want)
			continue
		}
		if ok && !tpq.Equivalent(cr.Rewriting, q) {
			t.Errorf("returned rewriting %s not equivalent to %s", cr.Rewriting, q)
		}
	}
}

// §6 cites Xu & Özsoyoglu: for queries and views whose roots are the
// distinguished nodes, a rewriting exists iff Q ⊆ V. In the contained-
// rewriting framework the criterion carries over for ABSOLUTE patterns
// ('/'-rooted with root output) — with a '//' view root the view
// cannot pin the document root, and Q ⊆ V no longer suffices (e.g.
// Q = /a[..], V = //a). Check the absolute case property-style.
func TestQuickRootDistinguishedCriterion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b"}
		q := workload.RandomPattern(rng, alphabet, 4)
		v := workload.RandomPattern(rng, alphabet, 4)
		q.Output = q.Root
		v.Output = v.Root
		q.Root.Axis = tpq.Child
		v.Root.Axis = tpq.Child
		_, ok, err := EquivalentRewriting(q, v, Options{MaxEmbeddings: 1 << 14})
		if err != nil {
			return true
		}
		want := tpq.Contained(q, v)
		if ok != want {
			t.Logf("q=%s v=%s: equivalent-exists=%v, Q⊆V=%v", q, v, ok, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEquivalentRewritingWithSchema(t *testing.T) {
	sc := NewSchemaContext(workload.AuctionSchema())
	// Fig 2's rewriting is contained, not equivalent: Q also returns
	// item names.
	q := tpq.MustParse("//Auction[//item]//name")
	v := tpq.MustParse("//Auction//person")
	if _, ok, err := sc.EquivalentRewriting(q, v, Options{}); err != nil || ok {
		t.Errorf("Fig 2 rewriting must not be equivalent (ok=%v err=%v)", ok, err)
	}
	// But a person-rooted query is answered exactly.
	q2 := tpq.MustParse("//Auction//person/name")
	cr, ok, err := sc.EquivalentRewriting(q2, v, Options{})
	if err != nil || !ok {
		t.Fatalf("expected an equivalent rewriting (ok=%v err=%v)", ok, err)
	}
	if !sc.SEquivalent(cr.Rewriting, q2) {
		t.Errorf("rewriting %s not S-equivalent to %s", cr.Rewriting, q2)
	}
}
