package rewrite

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"qav/internal/tpq"
)

// Answerable reports whether the query is answerable using the view in
// the absence of a schema — i.e. whether a maximal contained rewriting
// exists (Theorem 1). It runs the polynomial labeling test of Theorem 2
// only; no rewriting is materialized.
// Wildcard patterns (XP{/,//,[],*}) are outside the algorithm's
// fragment and always report false.
func Answerable(q, v *tpq.Pattern) bool {
	if q.HasWildcard() || v.HasWildcard() {
		return false
	}
	return ComputeLabels(q, v, nil).Exists()
}

// Options bounds MCR generation. The MCR can be a union of
// exponentially many tree patterns (§3.2, Example 1), so generation is
// explicitly budgeted.
type Options struct {
	// MaxEmbeddings bounds the number of useful embeddings enumerated;
	// 0 means a generous default (1 << 20).
	MaxEmbeddings int
	// Context carries cancellation and deadlines into the exponential
	// hot loops (embedding enumeration, CR construction, redundancy
	// elimination): when it is cancelled, generation stops promptly and
	// the context's error is returned. nil means context.Background().
	Context context.Context
}

// ctx returns the configured context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}

// Result is the output of MCR generation.
type Result struct {
	// Union is the maximal contained rewriting as a union of tree
	// patterns, irredundant (no disjunct contains another).
	Union *tpq.Union
	// CRs carries the rewritings with their compensation queries and
	// inducing embeddings, aligned with Union.Patterns.
	CRs []*ContainedRewriting
	// EmbeddingsConsidered is the number of distinct useful embeddings
	// enumerated before redundancy elimination.
	EmbeddingsConsidered int
}

// MCR computes the maximal contained rewriting of q using v without a
// schema (Algorithm MCRGen, Fig 10). It returns an empty-union result
// when q is not answerable using v. Every returned CR is verified
// contained in q by homomorphism.
func MCR(q, v *tpq.Pattern, opts Options) (*Result, error) {
	if q.HasWildcard() || v.HasWildcard() {
		return nil, fmt.Errorf("rewrite: wildcard patterns are outside XP{/,//,[]}; the MCR algorithms do not support them")
	}
	limit := opts.MaxEmbeddings
	if limit <= 0 {
		limit = 1 << 20
	}
	ctx := opts.ctx()
	labels := ComputeLabels(q, v, nil)
	if !labels.Exists() {
		return &Result{Union: &tpq.Union{}}, nil
	}
	embeddings, err := labels.Enumerate(ctx, limit)
	if err != nil {
		return nil, err
	}
	crs := make([]*ContainedRewriting, 0, len(embeddings))
	for i, f := range embeddings {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cr, err := BuildCR(f, v)
		if err != nil {
			return nil, fmt.Errorf("rewrite: embedding %s: %w", f, err)
		}
		if !cr.VerifyContained(q) {
			// Useful embeddings induce contained rewritings by
			// construction; reaching this indicates a bug upstream.
			return nil, fmt.Errorf("rewrite: internal error: CR %s not contained in %s (embedding %s)", cr.Rewriting, q, f)
		}
		crs = append(crs, cr)
	}
	return assembleResult(ctx, crs, len(embeddings))
}

// assembleResult deduplicates CRs structurally, removes redundant ones
// (contained in another CR), and packages the union. Redundancy
// elimination is quadratic in the number of CRs — the dominating cost
// when the MCR is exponential — so it honors ctx cancellation.
func assembleResult(ctx context.Context, crs []*ContainedRewriting, considered int) (*Result, error) {
	// Structural dedup first: different embeddings frequently induce
	// identical rewritings after grafting.
	seen := make(map[string]*ContainedRewriting)
	var uniq []*ContainedRewriting
	for _, cr := range crs {
		key := cr.Rewriting.Canonical()
		if seen[key] == nil {
			seen[key] = cr
			uniq = append(uniq, cr)
		}
	}
	// Order smallest-first so that equivalence classes keep their most
	// compact representative.
	sortCRs(uniq)
	// Redundancy elimination: drop CRs strictly contained in another,
	// and keep one representative per equivalence class.
	kept := make([]*ContainedRewriting, 0, len(uniq))
	redundant, err := markRedundant(ctx, len(uniq), func(i, j int) bool {
		return tpq.Contained(uniq[i].Rewriting, uniq[j].Rewriting)
	})
	if err != nil {
		return nil, err
	}
	u := &tpq.Union{}
	for i, cr := range uniq {
		if !redundant[i] {
			kept = append(kept, cr)
			u.Patterns = append(u.Patterns, cr.Rewriting)
		}
	}
	return &Result{Union: u, CRs: kept, EmbeddingsConsidered: considered}, nil
}

// NaiveMCR is the brute-force baseline used as ground truth in tests
// and as the ablation baseline in the benchmarks: it enumerates EVERY
// structurally valid partial matching f : Q ⇝ V (upward closed, no
// usefulness conditions), builds the graft-at-dV rewriting for each,
// keeps exactly those contained in q, and removes redundant ones.
// Exponential in |Q| and |V|; use only on small inputs. The context is
// checked periodically inside the matching recursion, so a cancelled
// ctx stops the enumeration promptly.
func NaiveMCR(ctx context.Context, q, v *tpq.Pattern) (*Result, error) {
	qn := q.Nodes()
	vn := v.Nodes()
	var crs []*ContainedRewriting
	considered := 0
	steps := 0

	cur := make(map[*tpq.Node]*tpq.Node)
	var rec func(i int) error
	rec = func(i int) error {
		steps++
		if steps&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if i == len(qn) {
			f := &Embedding{Q: q, V: v, M: copyMap(cur)}
			// Expressibility: a mapped query output must be the view
			// output, else E ∘ V cannot return it.
			if img, ok := f.M[q.Output]; ok && img != v.Output {
				return nil
			}
			if f.Empty() && q.Root.Axis != tpq.Descendant {
				return nil
			}
			considered++
			cr, err := buildUnchecked(f, v)
			if err != nil {
				return nil
			}
			if tpq.Contained(cr.Rewriting, q) {
				crs = append(crs, cr)
			}
			return nil
		}
		x := qn[i]
		// Option 1: leave x (and transitively its subtree) unmapped.
		if err := rec(i + 1); err != nil {
			return err
		}
		// Option 2: map x to every structurally consistent view node.
		if x.Parent != nil {
			pimg, ok := cur[x.Parent]
			if !ok {
				return nil // upward closure: parent unmapped
			}
			for _, img := range vn {
				if img.Tag != x.Tag {
					continue
				}
				valid := false
				switch x.Axis {
				case tpq.Child:
					valid = img.Parent == pimg && img.Axis == tpq.Child
				case tpq.Descendant:
					valid = pimg.IsAncestorOf(img)
				}
				if !valid {
					continue
				}
				cur[x] = img
				err := rec(i + 1)
				delete(cur, x)
				if err != nil {
					return err
				}
			}
			return nil
		}
		for _, img := range vn {
			if img.Tag != x.Tag {
				continue
			}
			if x.Axis == tpq.Child && (img != v.Root || v.Root.Axis != tpq.Child) {
				continue
			}
			cur[x] = img
			err := rec(i + 1)
			delete(cur, x)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return assembleResult(ctx, crs, considered)
}

// markRedundant computes, for each CR index, whether it is strictly
// contained in another CR or equivalent to an earlier one. The
// criterion is order-independent (containment is transitive, so a
// witness that is itself redundant always leads to an irredundant one),
// which lets the quadratic containment matrix run in parallel — the
// dominating cost when the MCR is exponential (§3.2). Workers poll ctx
// between rows, so cancellation aborts the matrix promptly.
func markRedundant(ctx context.Context, n int, contains func(i, j int) bool) ([]bool, error) {
	redundant := make([]bool, n)
	mark := func(i int) {
		for j := 0; j < n; j++ {
			if i == j || !contains(i, j) {
				continue
			}
			if !contains(j, i) {
				redundant[i] = true // strictly contained in j
				return
			}
			if j < i {
				redundant[i] = true // equivalent; keep the earlier one
				return
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if n < 32 || workers <= 1 {
		for i := 0; i < n; i++ {
			if i&31 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			mark(i)
		}
		return redundant, nil
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				mark(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return redundant, nil
}

// sortCRs orders rewritings by size then canonical form, so redundancy
// elimination deterministically keeps the most compact representative
// of each equivalence class.
func sortCRs(crs []*ContainedRewriting) {
	sort.Slice(crs, func(i, j int) bool {
		si, sj := crs[i].Rewriting.Size(), crs[j].Rewriting.Size()
		if si != sj {
			return si < sj
		}
		return crs[i].Rewriting.Canonical() < crs[j].Rewriting.Canonical()
	})
}

func copyMap(m map[*tpq.Node]*tpq.Node) map[*tpq.Node]*tpq.Node {
	cp := make(map[*tpq.Node]*tpq.Node, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// buildUnchecked constructs the graft-at-dV rewriting for any partial
// matching without requiring usefulness; the caller filters by
// containment.
func buildUnchecked(f *Embedding, base *tpq.Pattern) (*ContainedRewriting, error) {
	r, baseMap := base.Clone()
	dVc := baseMap[base.Output]
	grafts := make(map[*tpq.Node]*tpq.Node)
	graft := func(y *tpq.Node) {
		cp := tpq.CloneSubtree(y)
		recordClones(y, cp, grafts)
		dVc.Attach(y.Axis, cp)
	}
	if f.Empty() {
		graft(f.Q.Root)
	} else {
		for _, x := range f.Terminals() {
			for _, y := range x.Children {
				if !f.Defined(y) {
					graft(y)
				}
			}
		}
	}
	if f.Defined(f.Q.Output) {
		r.SetOutput(dVc)
	} else {
		out, ok := grafts[f.Q.Output]
		if !ok {
			return nil, fmt.Errorf("rewrite: query output neither mapped nor grafted")
		}
		r.SetOutput(out)
	}
	return &ContainedRewriting{Rewriting: r, Compensation: extractCompensation(r, dVc), Embedding: f}, nil
}
