package rewrite

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/names"
	"qav/internal/obs"
	"qav/internal/tpq"
)

// Fault-injection points of the MCR pipeline (no-ops unless a chaos
// plan arms them; see internal/fault).
var (
	faultBuildCR = fault.Register(names.FaultRewriteBuildCR)
	faultContain = fault.Register(names.FaultRewriteContain)
	faultWorker  = fault.Register(names.FaultRewriteWorker)
)

// Answerable reports whether the query is answerable using the view in
// the absence of a schema — i.e. whether a maximal contained rewriting
// exists (Theorem 1). It runs the polynomial labeling test of Theorem 2
// only; no rewriting is materialized.
// Wildcard patterns (XP{/,//,[],*}) are outside the algorithm's
// fragment and always report false.
func Answerable(q, v *tpq.Pattern) bool {
	if q.HasWildcard() || v.HasWildcard() {
		return false
	}
	return ComputeLabels(q, v, nil).Exists()
}

// DefaultMaxEmbeddings is the embedding-enumeration budget applied when
// Options.MaxEmbeddings is zero. The MCR can be a union of exponentially
// many tree patterns (§3.2, Example 1), so every entry point bounds the
// enumeration; this is the shared generous default.
const DefaultMaxEmbeddings = 1 << 20

// Options bounds MCR generation. The MCR can be a union of
// exponentially many tree patterns (§3.2, Example 1), so generation is
// explicitly budgeted.
type Options struct {
	// MaxEmbeddings bounds the number of useful embeddings enumerated;
	// 0 means DefaultMaxEmbeddings.
	MaxEmbeddings int
	// Context carries cancellation and deadlines into the exponential
	// hot loops (embedding enumeration, CR construction, redundancy
	// elimination): when it is cancelled, generation stops promptly and
	// the context's error is returned. nil means context.Background().
	Context context.Context
}

// ctx returns the configured context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}

// Result is the output of MCR generation.
type Result struct {
	// Union is the maximal contained rewriting as a union of tree
	// patterns, irredundant (no disjunct contains another).
	Union *tpq.Union
	// CRs carries the rewritings with their compensation queries and
	// inducing embeddings, aligned with Union.Patterns.
	CRs []*ContainedRewriting
	// EmbeddingsConsidered is the number of distinct useful embeddings
	// enumerated before redundancy elimination.
	EmbeddingsConsidered int
	// Partial reports that generation stopped early — the embedding
	// budget was exhausted or the context deadline expired mid-stream —
	// and Union is the sound subset found up to that point. A partial
	// union is still a contained rewriting of the query (every CR is
	// individually verified), it just may not be maximal. Partial
	// results skip redundancy elimination (its quadratic containment
	// matrix is exactly the work the budget is protecting against), so
	// disjuncts may overlap. Partial results are never cached.
	Partial bool
	// PartialReason is PartialBudget or PartialDeadline when Partial.
	PartialReason PartialReason
}

// PartialReason classifies why a Result is Partial. The zero value
// (empty string) means the result is complete; the named type keeps
// switches over it checkable by the exhaustive analyzer.
type PartialReason string

// Reasons a Result can be Partial.
const (
	PartialBudget   PartialReason = "budget"
	PartialDeadline PartialReason = "deadline"
)

// partialReason classifies an in-flight pipeline error: budget and
// deadline overruns degrade into partial results, everything else —
// including client cancellation, where nobody is left to read a
// partial answer — stays an error.
func partialReason(err error) PartialReason {
	switch {
	case errors.Is(err, ErrEmbeddingBudget):
		return PartialBudget
	case errors.Is(err, context.DeadlineExceeded):
		return PartialDeadline
	}
	return ""
}

// MCR computes the maximal contained rewriting of q using v without a
// schema (Algorithm MCRGen, Fig 10). It returns an empty-union result
// when q is not answerable using v. Every returned CR is verified
// contained in q by homomorphism.
//
// Internally the Enumerate → BuildCR → verify chain runs as a streaming
// pipeline (generateCRs): embeddings are consumed as the enumeration
// produces them, so the embedding set is never fully materialized and,
// on large enumerations, CR construction overlaps enumeration across a
// bounded worker pool. Results are identical to the serial order.
func MCR(q, v *tpq.Pattern, opts Options) (*Result, error) {
	if q.HasWildcard() || v.HasWildcard() {
		return nil, fmt.Errorf("rewrite: wildcard patterns are outside XP{/,//,[]}; the MCR algorithms do not support them")
	}
	limit := opts.MaxEmbeddings
	if limit <= 0 {
		limit = DefaultMaxEmbeddings
	}
	ctx := opts.ctx()
	sp := obs.SpanFrom(ctx)
	t := sp.Start()
	labels := ComputeLabels(q, v, nil)
	sp.Observe(obs.StageEnumerate, t)
	if !labels.Exists() {
		return &Result{Union: &tpq.Union{}}, nil
	}
	crs, considered, err := generateCRs(ctx, labels, q, v, limit)
	if err != nil {
		if reason := partialReason(err); reason != "" {
			// Graceful degradation: the CRs built before the wall are
			// each verified contained in q, so their union is a sound
			// (possibly non-maximal) rewriting — return it instead of
			// failing the request.
			return assemblePartial(crs, considered, reason), nil
		}
		return nil, err
	}
	res, err := assembleResult(ctx, crs, considered)
	if err != nil {
		if reason := partialReason(err); reason != "" {
			// The deadline fired inside redundancy elimination: fall
			// back to the dedup-only partial union.
			return assemblePartial(crs, considered, reason), nil
		}
		return nil, err
	}
	return res, nil
}

// crPipelineBatch is the streaming pipeline's serial threshold: an
// enumeration that finishes within this many embeddings is processed
// inline (no goroutines, no channels); anything larger spills into the
// bounded worker pool.
const crPipelineBatch = 16

// seqEmb tags an embedding with its enumeration sequence number so the
// pipeline can restore deterministic order.
type seqEmb struct {
	seq int
	f   *Embedding
}

type seqCR struct {
	seq int
	cr  *ContainedRewriting
}

// generateCRs fuses embedding enumeration with CR construction and
// containment verification. The first crPipelineBatch embeddings are
// buffered: a short stream is then handled serially, while a longer one
// starts GOMAXPROCS workers that build and verify CRs concurrently with
// the ongoing enumeration, over a bounded channel. Output order (and
// thus every downstream result, including which embedding represents a
// structurally duplicated CR) matches the serial enumeration order.
//
// Partial contract: when the returned error is an embedding-budget
// overrun or context.DeadlineExceeded, the returned CRs are the sound
// subset completed before the wall (each verified contained in q) and
// the caller may degrade into a Partial result. On any other error the
// CR slice is nil.
func generateCRs(ctx context.Context, labels *Labeling, q, v *tpq.Pattern, limit int) ([]*ContainedRewriting, int, error) {
	// Stage accounting: a nil span costs a nil check per credit and no
	// clock reads. Span credits are atomic, so the parallel workers
	// below record into it directly.
	sp := obs.SpanFrom(ctx)
	// buildVerify is panic-isolated: a pattern tripping an invariant in
	// CR construction must fail that request, not the process (the
	// named-return defer converts the panic into a typed ErrInternal
	// with its stack, which the engine routes into the slow log).
	buildVerify := func(f *Embedding) (cr *ContainedRewriting, err error) {
		defer guard.Recover(&err, "rewrite.buildVerify")
		if err := faultBuildCR.Hit(ctx); err != nil {
			return nil, err
		}
		t := sp.Start()
		cr, err = BuildCR(f, v)
		sp.Observe(obs.StageBuildCR, t)
		if err != nil {
			return nil, fmt.Errorf("rewrite: embedding %s: %w", f, err)
		}
		t = sp.Start()
		contained := cr.VerifyContained(q)
		sp.Observe(obs.StageContain, t)
		if !contained {
			// Useful embeddings induce contained rewritings by
			// construction; reaching this indicates a bug upstream.
			return nil, fmt.Errorf("rewrite: internal error: CR %s not contained in %s (embedding %s)", cr.Rewriting, q, f)
		}
		return cr, nil
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		head []*Embedding // buffered prefix; stays serial if the stream ends early
		in   chan seqEmb
		wg   sync.WaitGroup
		mu   sync.Mutex
		out  []seqCR
		werr error
	)
	fail := func(err error) {
		mu.Lock()
		if werr == nil {
			werr = err
		}
		mu.Unlock()
		cancel()
	}
	worker := func() {
		defer wg.Done()
		// Last-resort isolation: buildVerify recovers its own panics,
		// so this fires only for bugs in the worker loop itself; the
		// flight fails and the pipeline unblocks via the cancel in
		// fail, rather than the process dying.
		defer guard.Rescue("rewrite.mcrWorker", fail)
		for e := range in {
			if pctx.Err() != nil {
				continue // drain after cancellation
			}
			if err := faultWorker.Hit(pctx); err != nil {
				fail(err)
				continue
			}
			cr, err := buildVerify(e.f)
			if err != nil {
				fail(err)
				continue
			}
			mu.Lock()
			out = append(out, seqCR{e.seq, cr})
			mu.Unlock()
		}
	}
	seq := 0
	send := func(f *Embedding) error {
		select {
		case in <- seqEmb{seq, f}:
			seq++
			return nil
		case <-pctx.Done():
			return pctx.Err()
		}
	}
	emit := func(f *Embedding) error {
		if in == nil {
			head = append(head, f)
			if len(head) < crPipelineBatch {
				return nil
			}
			// The enumeration is large enough to amortize the pipeline:
			// start the workers and spill the buffered prefix.
			workers := runtime.GOMAXPROCS(0)
			in = make(chan seqEmb, 2*workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go worker()
			}
			for _, h := range head {
				if err := send(h); err != nil {
					return err
				}
			}
			head = nil
			return nil
		}
		return send(f)
	}

	// The Stream call is the enumeration driver; in pipeline mode its
	// wall time overlaps the workers' buildcr/contain time, so stage
	// totals may sum past the request's duration.
	t := sp.Start()
	streamErr := labels.Stream(ctx, limit, emit)
	sp.Observe(obs.StageEnumerate, t)

	if in == nil {
		// Serial path: the whole enumeration fit in the head buffer.
		if streamErr != nil && partialReason(streamErr) == "" {
			return nil, 0, streamErr
		}
		crs := make([]*ContainedRewriting, 0, len(head))
		for _, f := range head {
			// On a budget/deadline overrun, still finish the buffered
			// prefix (bounded: at most crPipelineBatch items) so the
			// partial union is as large as the enumeration allowed; a
			// live stream keeps honoring ctx per item.
			if streamErr == nil {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			cr, err := buildVerify(f)
			if err != nil {
				return nil, 0, err
			}
			crs = append(crs, cr)
		}
		return crs, len(head), streamErr
	}

	close(in)
	wg.Wait()
	mu.Lock()
	err := werr
	mu.Unlock()
	collect := func() []*ContainedRewriting {
		sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
		crs := make([]*ContainedRewriting, len(out))
		for i, s := range out {
			crs[i] = s.cr
		}
		return crs
	}
	switch {
	case err != nil:
		// A worker failure wins over the stream error: the stream aborts
		// with pctx's cancellation, which is a symptom, not the cause.
		return nil, 0, err
	case streamErr != nil:
		if partialReason(streamErr) != "" {
			// Workers drained whatever was already in flight; their
			// completed CRs are the sound subset.
			return collect(), seq, streamErr
		}
		return nil, 0, streamErr
	}
	if err := ctx.Err(); err != nil {
		if partialReason(err) != "" {
			return collect(), seq, err
		}
		return nil, 0, err
	}
	return collect(), seq, nil
}

// assemblePartial packages the CRs completed before a budget or
// deadline wall into a Partial result: structural dedup and the
// deterministic smallest-first order only, skipping the quadratic
// redundancy-elimination matrix — exactly the work the wall is
// protecting against. Every CR was individually verified contained in
// the query, so the union is sound; it just may not be maximal and may
// contain overlapping disjuncts.
func assemblePartial(crs []*ContainedRewriting, considered int, reason PartialReason) *Result {
	seen := make(map[string]bool, len(crs))
	kept := make([]*ContainedRewriting, 0, len(crs))
	for _, cr := range crs {
		key := cr.Rewriting.Canonical()
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, cr)
	}
	sortCRs(kept)
	u := &tpq.Union{}
	for _, cr := range kept {
		cr.ensureCompensation()
		u.Patterns = append(u.Patterns, cr.Rewriting)
	}
	return &Result{
		Union:                u,
		CRs:                  kept,
		EmbeddingsConsidered: considered,
		Partial:              true,
		PartialReason:        reason,
	}
}

// assembleResult deduplicates CRs structurally, removes redundant ones
// (contained in another CR), and packages the union. Redundancy
// elimination is quadratic in the number of CRs — the dominating cost
// when the MCR is exponential — so it honors ctx cancellation.
func assembleResult(ctx context.Context, crs []*ContainedRewriting, considered int) (*Result, error) {
	// Structural dedup first: different embeddings frequently induce
	// identical rewritings after grafting.
	seen := make(map[string]*ContainedRewriting)
	var uniq []*ContainedRewriting
	for _, cr := range crs {
		key := cr.Rewriting.Canonical()
		if seen[key] == nil {
			seen[key] = cr
			uniq = append(uniq, cr)
		}
	}
	// Order smallest-first so that equivalence classes keep their most
	// compact representative.
	sortCRs(uniq)
	// Redundancy elimination: drop CRs strictly contained in another,
	// and keep one representative per equivalence class. This quadratic
	// containment matrix is the dominating phase on exponential MCRs, so
	// it is credited to the contain stage.
	sp := obs.SpanFrom(ctx)
	t := sp.Start()
	kept := make([]*ContainedRewriting, 0, len(uniq))
	redundant, err := markRedundant(ctx, len(uniq), func(i, j int) bool {
		return tpq.Contained(uniq[i].Rewriting, uniq[j].Rewriting)
	})
	sp.Observe(obs.StageContain, t)
	if err != nil {
		return nil, err
	}
	u := &tpq.Union{}
	for i, cr := range uniq {
		if !redundant[i] {
			cr.ensureCompensation()
			kept = append(kept, cr)
			u.Patterns = append(u.Patterns, cr.Rewriting)
		}
	}
	return &Result{Union: u, CRs: kept, EmbeddingsConsidered: considered}, nil
}

// NaiveMCR is the brute-force baseline used as ground truth in tests
// and as the ablation baseline in the benchmarks: it enumerates EVERY
// structurally valid partial matching f : Q ⇝ V (upward closed, no
// usefulness conditions), builds the graft-at-dV rewriting for each,
// keeps exactly those contained in q, and removes redundant ones.
// Exponential in |Q| and |V|; use only on small inputs. The context is
// checked periodically inside the matching recursion, so a cancelled
// ctx stops the enumeration promptly.
func NaiveMCR(ctx context.Context, q, v *tpq.Pattern) (*Result, error) {
	qn := q.PreorderNodes()
	vn := v.PreorderNodes()
	// Candidate images per tag, in view preorder: same iteration order
	// as scanning vn with a tag filter, without the scan.
	vByTag := make(map[string][]*tpq.Node)
	for _, img := range vn {
		vByTag[img.Tag] = append(vByTag[img.Tag], img)
	}
	// The partial matching is a slice indexed by query preorder position
	// (nil = unmapped): assignment, undo and the upward-closure lookup
	// are plain array stores, no hashing. Only accepted matchings are
	// converted to an Embedding map.
	cur := make([]*tpq.Node, len(qn))
	mapped := 0
	parentIdx := make([]int, len(qn))
	for i, x := range qn {
		parentIdx[i] = q.Preorder(x.Parent) // -1 for the root
	}
	outIdx := q.Preorder(q.Output)

	var crs []*ContainedRewriting
	considered := 0
	steps := 0

	var rec func(i int) error
	rec = func(i int) error {
		steps++
		if steps&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if i == len(qn) {
			// Expressibility: a mapped query output must be the view
			// output, else E ∘ V cannot return it. Checked before any
			// allocation so rejected matchings cost nothing.
			if img := cur[outIdx]; img != nil && img != v.Output {
				return nil
			}
			if mapped == 0 && q.Root.Axis != tpq.Descendant {
				return nil
			}
			m := make(map[*tpq.Node]*tpq.Node, mapped)
			for j, img := range cur {
				if img != nil {
					m[qn[j]] = img
				}
			}
			f := &Embedding{Q: q, V: v, M: m}
			considered++
			cr, err := buildUnchecked(f, v)
			if err != nil {
				return nil
			}
			if tpq.Contained(cr.Rewriting, q) {
				crs = append(crs, cr)
			}
			return nil
		}
		x := qn[i]
		// Option 1: leave x (and transitively its subtree) unmapped.
		if err := rec(i + 1); err != nil {
			return err
		}
		// Option 2: map x to every structurally consistent view node.
		if pi := parentIdx[i]; pi >= 0 {
			pimg := cur[pi]
			if pimg == nil {
				return nil // upward closure: parent unmapped
			}
			for _, img := range vByTag[x.Tag] {
				valid := false
				switch x.Axis {
				case tpq.Child:
					valid = img.Parent == pimg && img.Axis == tpq.Child
				case tpq.Descendant:
					valid = pimg.IsAncestorOf(img)
				}
				if !valid {
					continue
				}
				cur[i] = img
				mapped++
				err := rec(i + 1)
				cur[i] = nil
				mapped--
				if err != nil {
					return err
				}
			}
			return nil
		}
		for _, img := range vByTag[x.Tag] {
			if x.Axis == tpq.Child && (img != v.Root || v.Root.Axis != tpq.Child) {
				continue
			}
			cur[i] = img
			mapped++
			err := rec(i + 1)
			cur[i] = nil
			mapped--
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return assembleResult(ctx, crs, considered)
}

// markRedundant computes, for each CR index, whether it is strictly
// contained in another CR or equivalent to an earlier one. The
// criterion is order-independent (containment is transitive, so a
// witness that is itself redundant always leads to an irredundant one),
// which lets the quadratic containment matrix run in parallel — the
// dominating cost when the MCR is exponential (§3.2). Workers poll ctx
// between rows, so cancellation aborts the matrix promptly.
func markRedundant(ctx context.Context, n int, contains func(i, j int) bool) ([]bool, error) {
	redundant := make([]bool, n)
	mark := func(i int) {
		for j := 0; j < n; j++ {
			if i == j || !contains(i, j) {
				continue
			}
			if !contains(j, i) {
				redundant[i] = true // strictly contained in j
				return
			}
			if j < i {
				redundant[i] = true // equivalent; keep the earlier one
				return
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if n < 32 || workers <= 1 {
		for i := 0; i < n; i++ {
			if i&31 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				if err := faultContain.Hit(ctx); err != nil {
					return nil, err
				}
			}
			mark(i)
		}
		return redundant, nil
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		mu   sync.Mutex
		werr error
	)
	fail := func(err error) {
		mu.Lock()
		if werr == nil {
			werr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic in a containment check must fail the request, not
			// kill the process; remaining workers notice werr and stop.
			defer guard.Rescue("rewrite.markRedundant", fail)
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				mu.Lock()
				stop := werr != nil
				mu.Unlock()
				if stop {
					return
				}
				if i&31 == 0 {
					if err := faultContain.Hit(ctx); err != nil {
						fail(err)
						return
					}
				}
				mark(i)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := werr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return redundant, nil
}

// sortCRs orders rewritings by size then canonical form, so redundancy
// elimination deterministically keeps the most compact representative
// of each equivalence class.
func sortCRs(crs []*ContainedRewriting) {
	sort.Slice(crs, func(i, j int) bool {
		si, sj := crs[i].Rewriting.Size(), crs[j].Rewriting.Size()
		if si != sj {
			return si < sj
		}
		return crs[i].Rewriting.Canonical() < crs[j].Rewriting.Canonical()
	})
}

func copyMap(m map[*tpq.Node]*tpq.Node) map[*tpq.Node]*tpq.Node {
	cp := make(map[*tpq.Node]*tpq.Node, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// buildUnchecked constructs the graft-at-dV rewriting for any partial
// matching without requiring usefulness; the caller filters by
// containment.
func buildUnchecked(f *Embedding, base *tpq.Pattern) (*ContainedRewriting, error) {
	r, dVc := base.CloneTrack(base.Output)
	var outClone *tpq.Node
	graft := func(y *tpq.Node) {
		cp, oc := tpq.CloneSubtreeTrack(y, f.Q.Output)
		if oc != nil {
			outClone = oc
		}
		dVc.Attach(y.Axis, cp)
	}
	if f.Empty() {
		graft(f.Q.Root)
	} else {
		for _, x := range f.Terminals() {
			for _, y := range x.Children {
				if !f.Defined(y) {
					graft(y)
				}
			}
		}
	}
	if f.Defined(f.Q.Output) {
		r.SetOutput(dVc)
	} else {
		if outClone == nil {
			return nil, fmt.Errorf("rewrite: query output neither mapped nor grafted")
		}
		r.SetOutput(outClone)
	}
	// Index the finished rewriting before it escapes: CRs flow into
	// parallel redundancy elimination, where concurrent readers must
	// never trigger a lazy relabel.
	r.Reindex()
	// The compensation is extracted on demand (ensureCompensation):
	// candidate CRs rejected by the containment filter never pay for it.
	return &ContainedRewriting{Rewriting: r, Embedding: f, dVc: dVc}, nil
}
