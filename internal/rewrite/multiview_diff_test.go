package rewrite

import (
	"fmt"
	"math/rand"
	"testing"

	"qav/internal/tpq"
	"qav/internal/workload"
)

// TestMCRMultiViewMatchesRef pins the batched pipeline to the frozen
// flat-scan baseline: over many random (query, view-set) instances the
// two implementations must produce identical unions, identical
// contribution attribution, and the same per-view zero/non-zero
// classification. This is the ground-truth guarantee behind the
// signature-index pruning: skipping labeling for filtered views and
// eliminating redundancy once globally changes nothing observable.
func TestMCRMultiViewMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	alphabet := []string{"a", "b", "c", "d"}
	instances := 300
	if testing.Short() {
		instances = 60
	}
	for i := 0; i < instances; i++ {
		q := workload.RandomPattern(rng, alphabet, 5)
		nViews := 1 + rng.Intn(5)
		views := make([]ViewSource, nViews)
		for j := range views {
			views[j] = ViewSource{
				Name: fmt.Sprintf("v%d", j),
				View: workload.RandomPattern(rng, alphabet, 4),
			}
		}
		ref, refErr := MCRMultiViewRef(q, views, Options{})
		got, gotErr := MCRMultiView(q, views, Options{})
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("instance %d: q=%s: error mismatch: ref=%v batch=%v", i, q, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		if got.Partial || ref.Partial {
			t.Fatalf("instance %d: unexpected partial result", i)
		}
		if gu, ru := got.Union.String(), ref.Union.String(); gu != ru {
			t.Fatalf("instance %d: q=%s\nbatch union: %s\nref union:   %s", i, q, gu, ru)
		}
		if len(got.Contributions) != len(ref.Contributions) {
			t.Fatalf("instance %d: contributions length %d != %d", i, len(got.Contributions), len(ref.Contributions))
		}
		for k := range got.Contributions {
			if got.Contributions[k] != ref.Contributions[k] {
				t.Fatalf("instance %d: contribution[%d] = view %d, ref view %d",
					i, k, got.Contributions[k], ref.Contributions[k])
			}
			if got.CRs[k].Rewriting.Canonical() != ref.CRs[k].Rewriting.Canonical() {
				t.Fatalf("instance %d: CR[%d] mismatch", i, k)
			}
			if got.CRs[k].Compensation.Canonical() != ref.CRs[k].Compensation.Canonical() {
				t.Fatalf("instance %d: compensation[%d] mismatch", i, k)
			}
		}
		// PerView semantics differ (pre- vs post-elimination counts) but
		// zero/non-zero classification — "did this view contribute any
		// rewriting at all" — must agree.
		for j := range views {
			if (got.PerView[j] == 0) != (ref.PerView[j] == 0) {
				t.Fatalf("instance %d: view %d: perView zero-ness batch=%d ref=%d",
					i, j, got.PerView[j], ref.PerView[j])
			}
		}
		if got.Labeled > len(views) {
			t.Fatalf("instance %d: labeled %d > %d views", i, got.Labeled, len(views))
		}
	}
}

// TestMCRMultiViewPrunesAnchoredQueries checks the batch pipeline's
// economics: for a '/'-rooted query only the views sharing the root
// partition are labeled, yet the result still matches the baseline.
func TestMCRMultiViewPrunesAnchoredQueries(t *testing.T) {
	q := tpq.MustParse("/a/b[c]")
	views := []ViewSource{
		{Name: "match", View: tpq.MustParse("/a/b")},
		{Name: "otherRoot", View: tpq.MustParse("/z//b")},
		{Name: "descRoot", View: tpq.MustParse("//a/b")},
		{Name: "unrelated", View: tpq.MustParse("/x/y")},
	}
	got, err := MCRMultiView(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Labeled != 1 {
		t.Fatalf("labeled = %d, want 1 (only the '/a'-rooted view)", got.Labeled)
	}
	ref, err := MCRMultiViewRef(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Union.String() != ref.Union.String() {
		t.Fatalf("union %s != ref %s", got.Union, ref.Union)
	}
	for _, j := range []int{1, 2, 3} {
		if got.PerView[j] != 0 {
			t.Errorf("view %d (%s): perView = %d, want 0", j, views[j].Name, got.PerView[j])
		}
	}
}

// TestMCRMultiViewTrivialOnly checks the '//' query-root case: a view
// failing the candidate filter still yields exactly the trivial
// rewriting (whole query grafted below the view output), as in the
// baseline.
func TestMCRMultiViewTrivialOnly(t *testing.T) {
	q := tpq.MustParse("//a/b")
	views := []ViewSource{{Name: "far", View: tpq.MustParse("/z/w")}}
	got, err := MCRMultiView(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Labeled != 0 {
		t.Fatalf("labeled = %d, want 0", got.Labeled)
	}
	if got.PerView[0] != 1 {
		t.Fatalf("perView[0] = %d, want 1 (trivial CR)", got.PerView[0])
	}
	ref, err := MCRMultiViewRef(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Union.String() != ref.Union.String() {
		t.Fatalf("union %s != ref %s", got.Union, ref.Union)
	}
}
