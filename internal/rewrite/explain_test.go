package rewrite

import (
	"strings"
	"testing"

	"qav/internal/tpq"
)

func TestExplainFigure1(t *testing.T) {
	q := tpq.MustParse("//Trials[//Status]//Trial")
	v := tpq.MustParse("//Trials//Trial")
	res, err := MCR(q, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(q, v, res)
	for _, want := range []string{
		"query: //Trials[//Status]//Trial",
		"irredundant CR(s):",
		"compensation:",
		"-> Trials",
		"clipped below the view output",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainUnanswerable(t *testing.T) {
	q := tpq.MustParse("/b/d")
	v := tpq.MustParse("/a/b//c")
	res, err := MCR(q, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(q, v, res)
	if !strings.Contains(out, "not answerable") {
		t.Errorf("Explain output:\n%s", out)
	}
}

func TestLabelingDump(t *testing.T) {
	q := tpq.MustParse("//Trials[//Status]//Trial")
	v := tpq.MustParse("//Trials//Trial")
	out := ComputeLabels(q, v, nil).Dump()
	for _, want := range []string{
		"//Trials",
		"empty embedding is useful",
		"no image: must be clipped", // Status has none
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
}
