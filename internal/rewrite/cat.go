package rewrite

import "qav/internal/tpq"

// ContainedRewriting is one contained rewriting (CR) of a query using a
// view: the rewriting query R ≡ E ∘ V together with the compensation
// query E (the clip-away tree grafted onto the view output) that is
// applied to the materialized view at answering time.
type ContainedRewriting struct {
	// Rewriting is R = E ∘ V, a pattern over the base documents.
	Rewriting *tpq.Pattern
	// Compensation is E, a pattern rooted at a node carrying the view
	// output's tag; it is evaluated with its root pinned to each node of
	// the materialized view result.
	Compensation *tpq.Pattern
	// Embedding is the useful embedding the CR was induced by.
	Embedding *Embedding

	// dVc is the clone of the view output inside Rewriting, kept so the
	// compensation can be extracted lazily (see ensureCompensation).
	dVc *tpq.Node
}

// ensureCompensation fills Compensation for a CR built by
// buildUnchecked. CR producers call it once a candidate has passed the
// containment filter, so rejected candidates never pay for the
// extraction; every CR that reaches a Result carries its compensation.
func (cr *ContainedRewriting) ensureCompensation() {
	if cr.Compensation == nil && cr.dVc != nil {
		cr.Compensation = extractCompensation(cr.Rewriting, cr.dVc)
	}
}

// BuildCR materializes the contained rewriting induced by a useful
// embedding f against the view base (normally f.V; for the schema case,
// the CAT computed against the chased view is composed with the
// original view, per the paper's Example 3).
//
// Construction (paper §3.1, Fig 4): clone the base view; for every
// unmapped child y of a terminal node, graft a copy of y's subtree
// under the clone of the view output dV, preserving y's edge type; for
// the empty embedding the whole query is grafted. The rewriting's
// output is the dV clone if f maps the query output, else the grafted
// copy of the query output.
func BuildCR(f *Embedding, base *tpq.Pattern) (*ContainedRewriting, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	cr, err := buildUnchecked(f, base)
	if err != nil {
		return nil, err
	}
	cr.ensureCompensation()
	return cr, nil
}

// extractCompensation copies the subtree of R rooted at the dV clone
// into a standalone pattern E. R's output is inside that subtree by
// construction. The copy is indexed on construction — compensations are
// shared read-only with answer evaluation — and its root axis is '//'
// because the compensation root is a context node.
func extractCompensation(r *tpq.Pattern, dVc *tpq.Node) *tpq.Pattern {
	return tpq.SubtreePattern(dVc, tpq.Descendant, r.Output)
}

// VerifyContained reports whether the CR's rewriting is contained in
// the query — the soundness guarantee every CR must satisfy. MCR
// generation calls this as a safety net; it holds by construction for
// useful embeddings.
func (cr *ContainedRewriting) VerifyContained(q *tpq.Pattern) bool {
	return tpq.Contained(cr.Rewriting, q)
}
