package rewrite

import "qav/internal/tpq"

// ContainedRewriting is one contained rewriting (CR) of a query using a
// view: the rewriting query R ≡ E ∘ V together with the compensation
// query E (the clip-away tree grafted onto the view output) that is
// applied to the materialized view at answering time.
type ContainedRewriting struct {
	// Rewriting is R = E ∘ V, a pattern over the base documents.
	Rewriting *tpq.Pattern
	// Compensation is E, a pattern rooted at a node carrying the view
	// output's tag; it is evaluated with its root pinned to each node of
	// the materialized view result.
	Compensation *tpq.Pattern
	// Embedding is the useful embedding the CR was induced by.
	Embedding *Embedding
}

// BuildCR materializes the contained rewriting induced by a useful
// embedding f against the view base (normally f.V; for the schema case,
// the CAT computed against the chased view is composed with the
// original view, per the paper's Example 3).
//
// Construction (paper §3.1, Fig 4): clone the base view; for every
// unmapped child y of a terminal node, graft a copy of y's subtree
// under the clone of the view output dV, preserving y's edge type; for
// the empty embedding the whole query is grafted. The rewriting's
// output is the dV clone if f maps the query output, else the grafted
// copy of the query output.
func BuildCR(f *Embedding, base *tpq.Pattern) (*ContainedRewriting, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return buildUnchecked(f, base)
}

// recordClones records the node correspondence of CloneSubtree into m.
func recordClones(orig, clone *tpq.Node, m map[*tpq.Node]*tpq.Node) {
	m[orig] = clone
	for i := range orig.Children {
		recordClones(orig.Children[i], clone.Children[i], m)
	}
}

// extractCompensation copies the subtree of R rooted at the dV clone
// into a standalone pattern E. R's output is inside that subtree by
// construction.
func extractCompensation(r *tpq.Pattern, dVc *tpq.Node) *tpq.Pattern {
	m := make(map[*tpq.Node]*tpq.Node)
	cp := tpq.CloneSubtree(dVc)
	recordClones(dVc, cp, m)
	cp.SetAxis(tpq.Descendant) // the compensation root is a context node
	e := &tpq.Pattern{Root: cp, Output: m[r.Output]}
	return e
}

// VerifyContained reports whether the CR's rewriting is contained in
// the query — the soundness guarantee every CR must satisfy. MCR
// generation calls this as a safety net; it holds by construction for
// useful embeddings.
func (cr *ContainedRewriting) VerifyContained(q *tpq.Pattern) bool {
	return tpq.Contained(cr.Rewriting, q)
}
