package rewrite

import (
	"context"
	"fmt"

	"qav/internal/tpq"
)

// CutCheck is an extra admissibility condition for leaving the subtree
// rooted at y unmapped (y is "clipped away" and grafted below the view
// output). The schemaless case allows every cut; the schema case
// (Definition 2) requires the grafted subtree to be realizable below
// the view output's tag.
type CutCheck func(y *tpq.Node) bool

// Labeling is the result of the label-entry computation of Algorithm
// UseEmb (Fig 6): for every query node the set of admissible view
// images, taking into account the distinguished-path discipline and the
// cut conditions. It is a compact encoding of all useful embeddings.
type Labeling struct {
	Q, V *tpq.Pattern

	qn, vn []*tpq.Node
	qi, vi map[*tpq.Node]int

	// ok[i][j]: query node qn[i] can map to view node vn[j] such that
	// the whole query subtree below qn[i] is handled (mapped or
	// admissibly cut).
	ok [][]bool

	pv      map[*tpq.Node]bool
	vDesc   [][]*tpq.Node
	cut     CutCheck
	onPQ    map[*tpq.Node]bool
	canCutQ []bool // cached cut admissibility per query node
}

// ComputeLabels runs the polynomial labeling pass of Algorithm UseEmb:
// O(|Q|·|V|²) as stated by Theorem 2. cut may be nil (always allowed).
func ComputeLabels(q, v *tpq.Pattern, cut CutCheck) *Labeling {
	l := &Labeling{
		Q: q, V: v,
		qn: q.Nodes(), vn: v.Nodes(),
		qi: make(map[*tpq.Node]int), vi: make(map[*tpq.Node]int),
		pv:   pathSet(v),
		onPQ: pathSet(q),
		cut:  cut,
	}
	for i, n := range l.qn {
		l.qi[n] = i
	}
	for j, n := range l.vn {
		l.vi[n] = j
	}
	l.vDesc = make([][]*tpq.Node, len(l.vn))
	var collect func(anc int, n *tpq.Node)
	collect = func(anc int, n *tpq.Node) {
		for _, c := range n.Children {
			l.vDesc[anc] = append(l.vDesc[anc], c)
			collect(anc, c)
		}
	}
	for j, n := range l.vn {
		collect(j, n)
	}
	l.canCutQ = make([]bool, len(l.qn))
	for i, n := range l.qn {
		l.canCutQ[i] = cut == nil || cut(n)
	}

	l.ok = make([][]bool, len(l.qn))
	for i := range l.ok {
		l.ok[i] = make([]bool, len(l.vn))
	}
	// Post-order: children of qn[i] have larger preorder indexes, so
	// iterate in reverse preorder.
	for i := len(l.qn) - 1; i >= 0; i-- {
		x := l.qn[i]
		for j, img := range l.vn {
			l.ok[i][j] = l.feasible(x, img, j)
		}
	}
	return l
}

// feasible decides ok[x][img]: tags match, path discipline holds, and
// every child is either mappable consistently or admissibly cut.
func (l *Labeling) feasible(x *tpq.Node, img *tpq.Node, j int) bool {
	if x.Tag != img.Tag {
		return false
	}
	if x == l.Q.Output {
		if img != l.V.Output {
			return false
		}
	} else if l.onPQ[x] && !l.pv[img] {
		return false
	}
	if x.Parent == nil && x.Axis == tpq.Child {
		// '/t' query root must be the view root, itself rooted '/t'.
		if img != l.V.Root || l.V.Root.Axis != tpq.Child {
			return false
		}
	}
	for _, y := range x.Children {
		if l.cutAllowed(y, img) {
			continue
		}
		yi := l.qi[y]
		found := false
		for _, cand := range l.candidates(y, img, j) {
			if l.ok[yi][l.vi[cand]] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// candidates lists the view nodes y may map to when its parent maps to
// img.
func (l *Labeling) candidates(y *tpq.Node, img *tpq.Node, j int) []*tpq.Node {
	if y.Axis == tpq.Child {
		var out []*tpq.Node
		for _, c := range img.Children {
			if c.Axis == tpq.Child {
				out = append(out, c)
			}
		}
		return out
	}
	return l.vDesc[j]
}

// cutAllowed reports whether the subtree at y may be left unmapped when
// y's parent maps to img: ad-edges cut below distinguished-path nodes,
// pc-edges only below the view output itself (Def 1 (ii)(b)), plus the
// caller's CutCheck.
func (l *Labeling) cutAllowed(y *tpq.Node, img *tpq.Node) bool {
	if !l.canCutQ[l.qi[y]] {
		return false
	}
	if y.Axis == tpq.Child {
		return img == l.V.Output
	}
	return l.pv[img]
}

// emptyAllowed reports whether the empty embedding is useful: the query
// root is '//' and the whole-query graft passes the cut check.
func (l *Labeling) emptyAllowed() bool {
	return l.Q.Root.Axis == tpq.Descendant && l.canCutQ[0]
}

// RootImages returns the admissible images of the query root.
func (l *Labeling) RootImages() []*tpq.Node {
	var out []*tpq.Node
	for j := range l.vn {
		if l.ok[0][j] {
			out = append(out, l.vn[j])
		}
	}
	return out
}

// Exists reports whether at least one useful embedding exists, i.e.
// whether the query is answerable using the view (Theorem 1). This is
// the polynomial-time existence test of Theorem 2.
func (l *Labeling) Exists() bool {
	if l.emptyAllowed() {
		return true
	}
	return len(l.RootImages()) > 0
}

// Enumerate yields every useful embedding encoded by the labeling
// (including the empty one when admissible), deduplicated. It stops
// with an error if more than limit embeddings are produced — the MCR
// can be exponential in |Q| (§3.2), so callers must bound the
// enumeration explicitly. The context is polled periodically inside
// the branching recursion, so cancelling it stops an exponential
// enumeration promptly with ctx's error.
func (l *Labeling) Enumerate(ctx context.Context, limit int) ([]*Embedding, error) {
	var out []*Embedding
	steps := 0
	emit := func(m map[*tpq.Node]*tpq.Node) error {
		cp := make(map[*tpq.Node]*tpq.Node, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out = append(out, &Embedding{Q: l.Q, V: l.V, M: cp})
		if len(out) > limit {
			return fmt.Errorf("rewrite: more than %d useful embeddings", limit)
		}
		return nil
	}

	cur := make(map[*tpq.Node]*tpq.Node)
	// assign maps the subtree below x given x ∈ cur, then calls next.
	var assign func(x *tpq.Node, next func() error) error
	assign = func(x *tpq.Node, next func() error) error {
		steps++
		if steps&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		img := cur[x]
		// Recursively branch over each child's choices.
		var perChild func(k int) error
		perChild = func(k int) error {
			if k == len(x.Children) {
				return next()
			}
			y := x.Children[k]
			yi := l.qi[y]
			if l.cutAllowed(y, img) {
				if err := perChild(k + 1); err != nil {
					return err
				}
			}
			for _, cand := range l.candidates(y, img, l.vi[img]) {
				if !l.ok[yi][l.vi[cand]] {
					continue
				}
				cur[y] = cand
				err := assign(y, func() error { return perChild(k + 1) })
				delete(cur, y)
				if err != nil {
					return err
				}
			}
			return nil
		}
		return perChild(0)
	}

	if l.emptyAllowed() {
		if err := emit(nil); err != nil {
			return nil, err
		}
	}
	for _, rootImg := range l.RootImages() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur[l.Q.Root] = rootImg
		err := assign(l.Q.Root, func() error { return emit(cur) })
		delete(cur, l.Q.Root)
		if err != nil {
			return nil, err
		}
	}
	// Deduplicate (different branches can coincide after cuts).
	seen := make(map[string]bool, len(out))
	uniq := out[:0]
	for _, e := range out {
		sig := e.Signature()
		if !seen[sig] {
			seen[sig] = true
			uniq = append(uniq, e)
		}
	}
	return uniq, nil
}
