package rewrite

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"qav/internal/fault"
	"qav/internal/names"
	"qav/internal/tpq"
)

// ErrEmbeddingBudget is the errors.Is target for enumeration-budget
// overruns: more useful embeddings exist than the caller's
// MaxEmbeddings bound allows. MCR generation treats it as a signal to
// degrade gracefully (return the sound union found so far, marked
// Partial) rather than as a hard failure.
var ErrEmbeddingBudget = errors.New("rewrite: embedding budget exhausted")

// faultEnumerate fires once per produced embedding, inside the
// enumeration recursion.
var faultEnumerate = fault.Register(names.FaultRewriteEnumerate)

// CutCheck is an extra admissibility condition for leaving the subtree
// rooted at y unmapped (y is "clipped away" and grafted below the view
// output). The schemaless case allows every cut; the schema case
// (Definition 2) requires the grafted subtree to be realizable below
// the view output's tag.
type CutCheck func(y *tpq.Node) bool

// Labeling is the result of the label-entry computation of Algorithm
// UseEmb (Fig 6): for every query node the set of admissible view
// images, taking into account the distinguished-path discipline and the
// cut conditions. It is a compact encoding of all useful embeddings.
//
// Internally everything is addressed by preorder position (the
// patterns' interval labels, see tpq's index), so the hot loops perform
// no map lookups and no per-call allocations.
type Labeling struct {
	Q, V *tpq.Pattern

	qn, vn []*tpq.Node

	// ok is the flattened label matrix: ok[i*len(vn)+j] reports that
	// query node qn[i] can map to view node vn[j] such that the whole
	// query subtree below qn[i] is handled (mapped or admissibly cut).
	ok []bool

	pv      []bool        // view position lies on the view's distinguished path
	onPQ    []bool        // query position lies on the query's distinguished path
	vDesc   [][]*tpq.Node // per view position: proper descendants (shared views)
	vKidsC  [][]*tpq.Node // per view position: children reached by a pc-edge
	cut     CutCheck
	canCutQ []bool // cached cut admissibility per query position
}

// qpos and vpos are the O(1) preorder positions of query and view nodes.
func (l *Labeling) qpos(n *tpq.Node) int { return l.Q.Preorder(n) }
func (l *Labeling) vpos(n *tpq.Node) int { return l.V.Preorder(n) }

func (l *Labeling) okAt(i, j int) bool { return l.ok[i*len(l.vn)+j] }

// ComputeLabels runs the polynomial labeling pass of Algorithm UseEmb:
// O(|Q|·|V|²) as stated by Theorem 2. cut may be nil (always allowed).
func ComputeLabels(q, v *tpq.Pattern, cut CutCheck) *Labeling {
	return NewQuerySide(q, cut).LabelsFor(v)
}

// QuerySide is the query half of the labeling pass: the preorder node
// list, distinguished-path membership and cut admissibility of every
// query node. It depends only on the query (and the cut check), so the
// batched multi-view pipeline computes it once and reuses it across
// every candidate view instead of rebuilding it |catalog| times inside
// ComputeLabels.
type QuerySide struct {
	Q       *tpq.Pattern
	qn      []*tpq.Node
	onPQ    []bool
	canCutQ []bool
	cut     CutCheck
}

// NewQuerySide precomputes the query-side labeling metadata.
func NewQuerySide(q *tpq.Pattern, cut CutCheck) *QuerySide {
	qs := &QuerySide{Q: q, qn: q.PreorderNodes(), cut: cut}
	nq := len(qs.qn)
	buf := make([]bool, 2*nq)
	qs.onPQ, qs.canCutQ = buf[:nq], buf[nq:]
	for i, n := range qs.qn {
		qs.onPQ[i] = q.OnDistinguishedPath(n)
		qs.canCutQ[i] = cut == nil || cut(n)
	}
	return qs
}

// EmptyAllowed reports whether the empty (trivial) useful embedding is
// admissible for this query regardless of the view: the query root is
// '//' and the whole-query graft passes the cut check. When it holds,
// EVERY view contributes at least the trivial CR (the whole query
// grafted below the view output), which the batch pipeline synthesizes
// directly for views the candidate filter rejects.
func (qs *QuerySide) EmptyAllowed() bool {
	return qs.Q.Root.Axis == tpq.Descendant && qs.canCutQ[0]
}

// NonemptyPossible is the O(1) necessary condition for a NONEMPTY
// useful embedding of the query into v — the brute-force root-image
// conditions of the labeling pass (feasible's root rule):
//
//   - a '/t'-rooted query can only map its root to a '/t'-rooted view's
//     root;
//   - a '//t'-rooted query can map its root to any view node tagged t.
//
// It over-approximates: a view passing the test may still admit no
// useful embedding (the full labeling decides), but a view failing it
// admits none, so the signature-index candidate filter and the batch
// pipeline may skip the O(|Q|·|V|²) labeling for it entirely.
func (qs *QuerySide) NonemptyPossible(v *tpq.Pattern) bool {
	root := qs.Q.Root
	if root.Axis == tpq.Child {
		return v.Root.Axis == tpq.Child && v.Root.Tag == root.Tag
	}
	return v.HasTag(root.Tag)
}

// LabelsFor runs the view-side labeling against v, reusing the
// precomputed query-side metadata.
func (qs *QuerySide) LabelsFor(v *tpq.Pattern) *Labeling {
	l := &Labeling{
		Q: qs.Q, V: v,
		qn: qs.qn, vn: v.PreorderNodes(),
		cut: qs.cut, onPQ: qs.onPQ, canCutQ: qs.canCutQ,
	}
	nq, nv := len(l.qn), len(l.vn)
	// All per-view boolean state shares one backing allocation.
	buf := make([]bool, nq*nv+nv)
	l.ok, l.pv = buf[:nq*nv], buf[nq*nv:]
	for j, n := range l.vn {
		l.pv[j] = v.OnDistinguishedPath(n)
	}
	l.vDesc = make([][]*tpq.Node, nv)
	l.vKidsC = make([][]*tpq.Node, nv)
	kidsBuf := make([]*tpq.Node, 0, nv) // one backing array for all pc-child lists
	for j, n := range l.vn {
		l.vDesc[j] = v.Descendants(n)
		start := len(kidsBuf)
		for _, c := range n.Children {
			if c.Axis == tpq.Child {
				kidsBuf = append(kidsBuf, c)
			}
		}
		l.vKidsC[j] = kidsBuf[start:len(kidsBuf):len(kidsBuf)]
	}

	// Post-order: children of qn[i] have larger preorder indexes, so
	// iterate in reverse preorder.
	for i := nq - 1; i >= 0; i-- {
		x := l.qn[i]
		row := l.ok[i*nv:]
		for j, img := range l.vn {
			row[j] = l.feasible(x, img, j)
		}
	}
	return l
}

// feasible decides ok[x][img]: tags match, path discipline holds, and
// every child is either mappable consistently or admissibly cut.
func (l *Labeling) feasible(x *tpq.Node, img *tpq.Node, j int) bool {
	if x.Tag != img.Tag {
		return false
	}
	if x == l.Q.Output {
		if img != l.V.Output {
			return false
		}
	} else if l.onPQ[l.qpos(x)] && !l.pv[j] {
		return false
	}
	if x.Parent == nil && x.Axis == tpq.Child {
		// '/t' query root must be the view root, itself rooted '/t'.
		if img != l.V.Root || l.V.Root.Axis != tpq.Child {
			return false
		}
	}
	for _, y := range x.Children {
		if l.cutAllowed(y, img, j) {
			continue
		}
		yi := l.qpos(y)
		found := false
		for _, cand := range l.candidates(y, j) {
			if l.okAt(yi, l.vpos(cand)) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// candidates lists the view nodes y may map to when its parent maps to
// the view node at position j. The returned slice is a shared
// precomputed view — never modified, never reallocated per call.
func (l *Labeling) candidates(y *tpq.Node, j int) []*tpq.Node {
	if y.Axis == tpq.Child {
		return l.vKidsC[j]
	}
	return l.vDesc[j]
}

// cutAllowed reports whether the subtree at y may be left unmapped when
// y's parent maps to img (at view position j): ad-edges cut below
// distinguished-path nodes, pc-edges only below the view output itself
// (Def 1 (ii)(b)), plus the caller's CutCheck.
func (l *Labeling) cutAllowed(y *tpq.Node, img *tpq.Node, j int) bool {
	if !l.canCutQ[l.qpos(y)] {
		return false
	}
	if y.Axis == tpq.Child {
		return img == l.V.Output
	}
	return l.pv[j]
}

// emptyAllowed reports whether the empty embedding is useful: the query
// root is '//' and the whole-query graft passes the cut check.
func (l *Labeling) emptyAllowed() bool {
	return l.Q.Root.Axis == tpq.Descendant && l.canCutQ[0]
}

// RootImages returns the admissible images of the query root.
func (l *Labeling) RootImages() []*tpq.Node {
	var out []*tpq.Node
	for j := range l.vn {
		if l.okAt(0, j) {
			out = append(out, l.vn[j])
		}
	}
	return out
}

// Exists reports whether at least one useful embedding exists, i.e.
// whether the query is answerable using the view (Theorem 1). This is
// the polynomial-time existence test of Theorem 2.
func (l *Labeling) Exists() bool {
	if l.emptyAllowed() {
		return true
	}
	return len(l.RootImages()) > 0
}

// Stream enumerates every useful embedding encoded by the labeling
// (including the empty one when admissible), deduplicated on the fly,
// calling emit for each without ever materializing the full set — MCR
// generation consumes this to overlap CR construction with enumeration.
// Enumeration stops with an error if more than limit embeddings are
// produced (counting duplicates) — the MCR can be exponential in |Q|
// (§3.2), so callers must bound the enumeration explicitly. The context
// is polled periodically inside the branching recursion, so cancelling
// it stops an exponential enumeration promptly with ctx's error. An
// error returned by emit aborts the enumeration and is returned as-is.
func (l *Labeling) Stream(ctx context.Context, limit int, emit func(*Embedding) error) error {
	produced := 0
	steps := 0
	seen := make(map[string]bool)
	sig := make([]byte, 0, 4*len(l.qn))
	cur := make(map[*tpq.Node]*tpq.Node, len(l.qn))

	// yield hands the current assignment to emit unless its signature
	// was already seen (different branches can coincide after cuts).
	yield := func() error {
		if err := faultEnumerate.Hit(ctx); err != nil {
			return err
		}
		produced++
		if produced > limit {
			return fmt.Errorf("rewrite: more than %d useful embeddings: %w", limit, ErrEmbeddingBudget)
		}
		sig = sig[:0]
		for i, x := range l.qn {
			if i > 0 {
				sig = append(sig, ',')
			}
			if img, ok := cur[x]; ok {
				sig = strconv.AppendInt(sig, int64(l.vpos(img)), 10)
			} else {
				sig = append(sig, '_')
			}
		}
		if seen[string(sig)] {
			return nil
		}
		seen[string(sig)] = true
		cp := make(map[*tpq.Node]*tpq.Node, len(cur))
		for k, v := range cur {
			cp[k] = v
		}
		return emit(&Embedding{Q: l.Q, V: l.V, M: cp})
	}

	// assign maps the subtree below x given x ∈ cur, then calls next.
	var assign func(x *tpq.Node, next func() error) error
	assign = func(x *tpq.Node, next func() error) error {
		steps++
		if steps&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		img := cur[x]
		j := l.vpos(img)
		// Recursively branch over each child's choices.
		var perChild func(k int) error
		perChild = func(k int) error {
			if k == len(x.Children) {
				return next()
			}
			y := x.Children[k]
			yi := l.qpos(y)
			if l.cutAllowed(y, img, j) {
				if err := perChild(k + 1); err != nil {
					return err
				}
			}
			for _, cand := range l.candidates(y, j) {
				if !l.okAt(yi, l.vpos(cand)) {
					continue
				}
				cur[y] = cand
				err := assign(y, func() error { return perChild(k + 1) })
				delete(cur, y)
				if err != nil {
					return err
				}
			}
			return nil
		}
		return perChild(0)
	}

	if l.emptyAllowed() {
		if err := yield(); err != nil {
			return err
		}
	}
	for _, rootImg := range l.RootImages() {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur[l.Q.Root] = rootImg
		err := assign(l.Q.Root, yield)
		delete(cur, l.Q.Root)
		if err != nil {
			return err
		}
	}
	return nil
}

// Enumerate collects every useful embedding from Stream into a slice.
// Prefer Stream in pipelines that can process embeddings incrementally.
// On error the embeddings enumerated so far are returned alongside it,
// so budget/deadline overruns can degrade into a sound partial result.
func (l *Labeling) Enumerate(ctx context.Context, limit int) ([]*Embedding, error) {
	var out []*Embedding
	err := l.Stream(ctx, limit, func(e *Embedding) error {
		out = append(out, e)
		return nil
	})
	return out, err
}
