package rewrite

import (
	"testing"

	"qav/internal/tpq"
)

// FuzzRewriteRoundTrip drives MCR generation with fuzzer-chosen
// query/view expressions and checks the structural contracts of every
// contained rewriting it emits: the rewriting and compensation
// patterns are valid, survive a print/parse round trip, and each
// rewriting is contained in the query (the soundness half of
// Theorem 1 — an MCR may drop answers, never invent them).
func FuzzRewriteRoundTrip(f *testing.F) {
	seeds := [][2]string{
		{"//Trials[//Status]//Trial", "//Trials//Trial"}, // Figure 1
		{"//a//a/b/c[d1][//a/b/c/d2]", "//a//a/b/c"},     // Figure 8
		{"//a//b[c]", "//a//b"},                          // Figure 9 core
		{"/a/b", "//b"},
		{"//a/b", "/a"},
		{"//a[b][c]//d", "//a//d"},
		{"//a", "//b"}, // unanswerable
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, qExpr, vExpr string) {
		q, err := tpq.Parse(qExpr)
		if err != nil {
			return
		}
		v, err := tpq.Parse(vExpr)
		if err != nil {
			return
		}
		res, err := MCR(q, v, Options{MaxEmbeddings: 64})
		if err != nil {
			return // budget exhausted on an adversarial input is fine
		}
		if len(res.CRs) != len(res.Union.Patterns) {
			t.Fatalf("q=%s v=%s: %d CRs but %d union patterns", q, v, len(res.CRs), len(res.Union.Patterns))
		}
		for i, cr := range res.CRs {
			for _, p := range []*tpq.Pattern{cr.Rewriting, cr.Compensation} {
				if err := p.Validate(); err != nil {
					t.Fatalf("q=%s v=%s CR %d: invalid pattern %s: %v", q, v, i, p, err)
				}
				s := p.String()
				p2, err := tpq.Parse(s)
				if err != nil {
					t.Fatalf("q=%s v=%s CR %d: %q not reparsable: %v", q, v, i, s, err)
				}
				if !p.StructuralEqual(p2) {
					t.Fatalf("q=%s v=%s CR %d: round trip changed %q", q, v, i, s)
				}
			}
			if !tpq.Contained(cr.Rewriting, q) {
				t.Fatalf("q=%s v=%s CR %d: rewriting %s not contained in the query", q, v, i, cr.Rewriting)
			}
			if cr.Compensation.Root.Tag != v.Output.Tag {
				t.Fatalf("q=%s v=%s CR %d: compensation rooted at %q, view output is %q",
					q, v, i, cr.Compensation.Root.Tag, v.Output.Tag)
			}
		}
	})
}
