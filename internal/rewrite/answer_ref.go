package rewrite

import (
	"context"
	"sort"

	"qav/internal/xmltree"
)

// This file freezes the pre-plan naive answer evaluators. They are the
// reference semantics the compiled answer plans (internal/plan) are
// differentially tested against (plan_diff_test.go) and the baseline
// the answering benchmark reports speedups over. Do not "optimize"
// them: their value is being obviously correct and independent of the
// plan code paths.

// NaiveAnswerMaterialized answers through a materialized view forest
// the way the pre-plan implementation did: each CR's compensation is
// pinned to each view node in turn via the tpq dynamic program, with
// map dedup and a document-order sort at the end. The context is
// polled once per (rewriting, view node) pair.
func NaiveAnswerMaterialized(ctx context.Context, crs []*ContainedRewriting, d *xmltree.Document, viewNodes []*xmltree.Node) ([]*xmltree.Node, error) {
	seen := make(map[*xmltree.Node]bool)
	for _, cr := range crs {
		comp := cr.Compensation.Prepare()
		for _, vn := range viewNodes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, n := range comp.EvaluateAt(d, vn) {
				seen[n] = true
			}
		}
	}
	return sortedByIndex(seen), nil
}

// NaiveAnswerForest is the reference evaluator for shipped forests
// (the viewstore layout, one standalone document per view answer):
// per-CR, per-tree pinned evaluation, deduplicated by node and ordered
// by (tree, preorder) — the ordering contract Materialized.Answer and
// the plan layer share. The context is polled once per (rewriting,
// tree) pair.
func NaiveAnswerForest(ctx context.Context, crs []*ContainedRewriting, forest []*xmltree.Document) ([]*xmltree.Node, error) {
	type hit struct {
		tree int
		node *xmltree.Node
	}
	seen := make(map[*xmltree.Node]bool)
	var out []hit
	for _, cr := range crs {
		comp := cr.Compensation.Prepare()
		for ti, tree := range forest {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, n := range comp.EvaluateAt(tree, tree.Root) {
				if !seen[n] {
					seen[n] = true
					out = append(out, hit{tree: ti, node: n})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].tree != out[j].tree {
			return out[i].tree < out[j].tree
		}
		return out[i].node.Index < out[j].node.Index
	})
	nodes := make([]*xmltree.Node, len(out))
	for i, h := range out {
		nodes[i] = h.node
	}
	return nodes, nil
}

// sortedByIndex flattens an answer set into document order.
func sortedByIndex(seen map[*xmltree.Node]bool) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
