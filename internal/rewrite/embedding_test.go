package rewrite

import (
	"context"
	"strings"
	"testing"

	"qav/internal/tpq"
)

// buildEmbedding maps query nodes to view nodes by position in a
// preorder walk; -1 means unmapped.
func buildEmbedding(q, v *tpq.Pattern, assign []int) *Embedding {
	qn, vn := q.Nodes(), v.Nodes()
	m := make(map[*tpq.Node]*tpq.Node)
	for i, j := range assign {
		if j >= 0 {
			m[qn[i]] = vn[j]
		}
	}
	return &Embedding{Q: q, V: v, M: m}
}

func TestEmbeddingValidateAccepts(t *testing.T) {
	// Fig 1 embedding: Trials -> Trials, Trial -> Trial, Status cut.
	q := tpq.MustParse("//Trials[//Status]//Trial")
	v := tpq.MustParse("//Trials//Trial")
	f := buildEmbedding(q, v, []int{0, -1, 1})
	if err := f.Validate(); err != nil {
		t.Fatalf("valid embedding rejected: %v", err)
	}
	terms := f.Terminals()
	if len(terms) != 1 || terms[0].Tag != "Trials" {
		t.Errorf("Terminals = %v", terms)
	}
	if f.Empty() {
		t.Error("Empty() on non-empty embedding")
	}
	if !strings.Contains(f.String(), "Trials->Trials") {
		t.Errorf("String() = %s", f)
	}
}

func TestEmbeddingValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		q, v   string
		assign []int
		errSub string
	}{
		{
			name: "tag mismatch",
			q:    "//a", v: "//b",
			assign: []int{0}, errSub: "tag mismatch",
		},
		{
			name: "upward closure",
			q:    "//a/b", v: "//a/b",
			assign: []int{-1, 1}, errSub: "upward closed",
		},
		{
			name: "pc edge not preserved",
			q:    "//a/b", v: "//a//b",
			assign: []int{0, 1}, errSub: "pc-edge",
		},
		{
			name: "ad edge not preserved",
			q:    "//a//b", v: "//a[b]//c", // map b to the sibling branch? b IS below a; use unrelated nodes
			assign: []int{1, 0}, errSub: "tag mismatch",
		},
		{
			name: "slash root onto descendant-rooted view",
			q:    "/a", v: "//a",
			assign: []int{0}, errSub: "must map to a '/' view root",
		},
		{
			name: "output not on view output",
			q:    "//a//b", v: "//a[b]//c",
			assign: []int{0, 1}, errSub: "query output mapped",
		},
		{
			name: "distinguished path off PV",
			q:    "//a//b//c", v: "//a[b[c]]//c",
			// map q's b (on PQ) to v's predicate b (off PV).
			assign: []int{0, 1, 2}, errSub: "distinguished-path",
		},
		{
			name: "pc cut below non-output",
			q:    "//a/b", v: "//a//c",
			assign: []int{0, -1}, errSub: "pc-child",
		},
		{
			name: "empty embedding with slash root",
			q:    "/a/b", v: "//a",
			assign: []int{-1, -1}, errSub: "empty embedding",
		},
	}
	for _, tc := range cases {
		q, v := tpq.MustParse(tc.q), tpq.MustParse(tc.v)
		f := buildEmbedding(q, v, tc.assign)
		err := f.Validate()
		if err == nil {
			t.Errorf("%s: invalid embedding accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errSub)
		}
	}
}

func TestEmbeddingEmptyValid(t *testing.T) {
	q := tpq.MustParse("//a/b")
	v := tpq.MustParse("//c")
	f := &Embedding{Q: q, V: v, M: nil}
	if err := f.Validate(); err != nil {
		t.Fatalf("empty embedding with '//' root rejected: %v", err)
	}
	if f.Signature() != "_,_" {
		t.Errorf("Signature = %q", f.Signature())
	}
	if f.String() != "{empty}" {
		t.Errorf("String = %q", f.String())
	}
}

func TestBuildCRFig1(t *testing.T) {
	q := tpq.MustParse("//Trials[//Status]//Trial")
	v := tpq.MustParse("//Trials//Trial")
	f := buildEmbedding(q, v, []int{0, -1, 1})
	cr, err := BuildCR(f, v)
	if err != nil {
		t.Fatal(err)
	}
	want := tpq.MustParse("//Trials//Trial[//Status]")
	if !tpq.Equivalent(cr.Rewriting, want) {
		t.Errorf("rewriting = %s, want %s", cr.Rewriting, want)
	}
	// The compensation is the clip-away tree rooted at the dV tag,
	// .[//Status] in the paper's notation.
	if cr.Compensation.Root.Tag != "Trial" {
		t.Errorf("compensation root = %s", cr.Compensation.Root.Tag)
	}
	if cr.Compensation.Size() != 2 {
		t.Errorf("compensation size = %d, want 2", cr.Compensation.Size())
	}
	if cr.Compensation.Output != cr.Compensation.Root {
		t.Error("compensation output should be its root (Trial itself)")
	}
	if !cr.VerifyContained(q) {
		t.Error("CR not contained in Q")
	}
}

func TestBuildCREmptyEmbedding(t *testing.T) {
	q := tpq.MustParse("//a/b")
	v := tpq.MustParse("//c")
	cr, err := BuildCR(&Embedding{Q: q, V: v, M: nil}, v)
	if err != nil {
		t.Fatal(err)
	}
	want := tpq.MustParse("//c//a/b")
	if !tpq.Equivalent(cr.Rewriting, want) {
		t.Errorf("rewriting = %s, want %s", cr.Rewriting, want)
	}
	if cr.Rewriting.Output.Tag != "b" {
		t.Errorf("output = %s", cr.Rewriting.Output.Tag)
	}
}

func TestBuildCRRejectsInvalid(t *testing.T) {
	q := tpq.MustParse("//a/b")
	v := tpq.MustParse("//a//c")
	f := buildEmbedding(q, v, []int{0, -1}) // pc-cut below non-dV
	if _, err := BuildCR(f, v); err == nil {
		t.Error("BuildCR accepted a non-useful embedding")
	}
}

func TestLabelingRootImages(t *testing.T) {
	// V = //a//a/b/c: both a's are on PV and admissible root images.
	q := tpq.MustParse("//a//b")
	v := tpq.MustParse("//a//a/b/c")
	l := ComputeLabels(q, v, nil)
	if got := len(l.RootImages()); got != 2 {
		t.Errorf("root images = %d, want 2", got)
	}
	if !l.Exists() {
		t.Error("Exists() = false")
	}
	// '/'-rooted query against '//'-rooted view has no root image, but
	// exists... no: '/' root cannot use the empty embedding either.
	l2 := ComputeLabels(tpq.MustParse("/z"), v, nil)
	if l2.Exists() {
		t.Error("unanswerable pair reported answerable")
	}
}

func TestLabelingEnumerateLimit(t *testing.T) {
	q := tpq.MustParse("//a[//b][//b]//b")
	v := tpq.MustParse("//a[//b][//b]//b")
	l := ComputeLabels(q, v, nil)
	if _, err := l.Enumerate(context.Background(), 1); err == nil {
		t.Error("limit 1 not enforced")
	}
	embs, err := l.Enumerate(context.Background(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	// All embeddings are valid and pairwise distinct.
	seen := make(map[string]bool)
	for _, f := range embs {
		if err := f.Validate(); err != nil {
			t.Fatalf("enumerated invalid embedding %s: %v", f, err)
		}
		sig := f.Signature()
		if seen[sig] {
			t.Fatalf("duplicate embedding %s", sig)
		}
		seen[sig] = true
	}
}

func TestGreedyMaximalMapsEverythingPossible(t *testing.T) {
	q := tpq.MustParse("//Trials[//Status]//Trial")
	v := tpq.MustParse("//Trials[//Status]//Trial")
	l := ComputeLabels(q, v, nil)
	f := l.greedyMaximal()
	if f == nil {
		t.Fatal("no embedding found")
	}
	if len(f.M) != q.Size() {
		t.Errorf("greedy mapped %d of %d nodes", len(f.M), q.Size())
	}
}
