package rewrite

import (
	"context"
	"fmt"
	"sort"

	"qav/internal/plan"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// ViewSource pairs a named view with the document it is materialized
// over (in a real deployment, the source behind it).
type ViewSource struct {
	Name string
	View *tpq.Pattern
}

// MultiViewResult is the maximal contained rewriting of a query over a
// SET of views: per-view contributions, globally deduplicated and made
// irredundant. This is the information-integration setting of Halevy's
// survey (the paper's [13]): each source exposes one view, and the
// mediator unions the best sound answers obtainable from each.
type MultiViewResult struct {
	// Union is the global MCR: the irredundant union of every view's
	// contained rewritings.
	Union *tpq.Union
	// Contributions maps positions in Union.Patterns to the index of
	// the view whose compensation produces that disjunct.
	Contributions []int
	// CRs aligns with Union.Patterns.
	CRs []*ContainedRewriting
	// PerView records each view's own MCR size before global redundancy
	// elimination (views whose CRs are all subsumed contribute 0 to
	// Union but keep their local size here).
	PerView []int
}

// MCRMultiView computes the maximal contained rewriting of q using all
// the views together: the union of the per-view MCRs with redundancy
// eliminated across views. A view subsumed by a more informative view
// contributes nothing.
func MCRMultiView(q *tpq.Pattern, views []ViewSource, opts Options) (*MultiViewResult, error) {
	type tagged struct {
		cr   *ContainedRewriting
		view int
	}
	ctx := opts.ctx()
	var all []tagged
	perView := make([]int, len(views))
	for i, vs := range views {
		res, err := MCR(q, vs.View, opts)
		if err != nil {
			return nil, fmt.Errorf("rewrite: view %q: %w", vs.Name, err)
		}
		perView[i] = len(res.CRs)
		for _, cr := range res.CRs {
			all = append(all, tagged{cr: cr, view: i})
		}
	}
	// Dedup structurally, then drop CRs contained in another CR
	// (possibly from a different view).
	seen := make(map[string]bool)
	var uniq []tagged
	for _, t := range all {
		key := t.cr.Rewriting.Canonical()
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, t)
		}
	}
	sort.SliceStable(uniq, func(i, j int) bool {
		si, sj := uniq[i].cr.Rewriting.Size(), uniq[j].cr.Rewriting.Size()
		if si != sj {
			return si < sj
		}
		return uniq[i].cr.Rewriting.Canonical() < uniq[j].cr.Rewriting.Canonical()
	})
	redundant, err := markRedundant(ctx, len(uniq), func(i, j int) bool {
		return tpq.Contained(uniq[i].cr.Rewriting, uniq[j].cr.Rewriting)
	})
	if err != nil {
		return nil, err
	}
	out := &MultiViewResult{Union: &tpq.Union{}, PerView: perView}
	for i, t := range uniq {
		if redundant[i] {
			continue
		}
		out.Union.Patterns = append(out.Union.Patterns, t.cr.Rewriting)
		out.CRs = append(out.CRs, t.cr)
		out.Contributions = append(out.Contributions, t.view)
	}
	return out, nil
}

// AnswerMultiView answers the query against a document through the
// views only: the kept CRs' compensations are grouped by contributing
// view, each group compiles to one answer plan (internal/plan), and
// each plan executes over its own view's materialization. The answers
// are unioned with cross-view dedup and returned in document order —
// independent of both CR enumeration order and view order. The context
// is polled throughout compilation, indexing and execution, so a
// cancelled ctx aborts a large multi-source answering run promptly.
func (r *MultiViewResult) AnswerMultiView(ctx context.Context, views []ViewSource, d *xmltree.Document) ([]*xmltree.Node, error) {
	byView := make(map[int][]*tpq.Pattern)
	var order []int
	for i, cr := range r.CRs {
		vi := r.Contributions[i]
		if _, ok := byView[vi]; !ok {
			order = append(order, vi)
		}
		byView[vi] = append(byView[vi], cr.Compensation)
	}
	seen := make(map[*xmltree.Node]bool)
	var out []*xmltree.Node
	for _, vi := range order {
		pl, err := plan.Compile(ctx, byView[vi])
		if err != nil {
			return nil, err
		}
		f, err := plan.IndexSubtrees(ctx, d, views[vi].View.Evaluate(d))
		if err != nil {
			return nil, err
		}
		res, err := pl.Exec(ctx, f, plan.ExecOptions{})
		if err != nil {
			return nil, err
		}
		for _, n := range res.Nodes() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}
