package rewrite

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"qav/internal/guard"
	"qav/internal/obs"
	"qav/internal/plan"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// ViewSource pairs a named view with the document it is materialized
// over (in a real deployment, the source behind it).
type ViewSource struct {
	Name string
	View *tpq.Pattern
}

// MultiViewResult is the maximal contained rewriting of a query over a
// SET of views: per-view contributions, globally deduplicated and made
// irredundant. This is the information-integration setting of Halevy's
// survey (the paper's [13]): each source exposes one view, and the
// mediator unions the best sound answers obtainable from each.
type MultiViewResult struct {
	// Union is the global MCR: the irredundant union of every view's
	// contained rewritings.
	Union *tpq.Union
	// Contributions maps positions in Union.Patterns to the index of
	// the view whose compensation produces that disjunct.
	Contributions []int
	// CRs aligns with Union.Patterns.
	CRs []*ContainedRewriting
	// PerView records, per view, the number of structurally distinct
	// rewritings the view produced BEFORE global redundancy elimination
	// (views whose CRs are all subsumed contribute 0 to Union but keep
	// their local count here). The batch pipeline skips the per-view
	// elimination pass — globally eliminating once is equivalent — so
	// unlike the frozen MCRMultiViewRef baseline these counts are not
	// per-view MCR sizes.
	PerView []int
	// Labeled is the number of views that passed the candidate filter
	// and paid the full O(|Q|·|V|²) labeling pass; the remaining
	// len(PerView)-Labeled views were classified in O(1) and at most
	// synthesized the trivial CR.
	Labeled int
	// Partial reports that at least one view's enumeration stopped at
	// the embedding budget or the context deadline: the union is a
	// sound (every disjunct verified contained) but possibly
	// non-maximal rewriting. PartialReason carries the first reason in
	// view order.
	Partial       bool
	PartialReason PartialReason
}

// viewCRs is one view's slot in the batch pipeline output.
type viewCRs struct {
	crs     []*ContainedRewriting
	partial PartialReason
	err     error
}

// MCRMultiView computes the maximal contained rewriting of q using all
// the views together: the union of the per-view MCRs with redundancy
// eliminated across views. A view subsumed by a more informative view
// contributes nothing.
//
// The implementation is a batch pipeline built to scale to catalogs of
// 10⁴–10⁶ views (the frozen flat-scan baseline, MCRMultiViewRef, pays
// a full labeling pass per view):
//
//   - the query-side labeling metadata (QuerySide) is computed ONCE and
//     shared by every view;
//   - each view is classified in O(1) by the necessary root condition
//     (QuerySide.NonemptyPossible — the same condition the viewstore
//     signature index evaluates as a root-tag partition probe plus
//     tag-bitmap scan): views that fail it admit no nonempty useful
//     embedding, so for a '/'-rooted query they contribute nothing at
//     all, and for a '//'-rooted query exactly the trivial CR (the
//     whole query grafted below the view output), which is synthesized
//     directly without labeling;
//   - surviving candidates stream their per-view MCRs through a bounded
//     worker pool, each worker reusing the shared query side and
//     honoring the per-view embedding budget and the context's
//     deadline;
//   - redundancy elimination runs once, globally — equivalent to the
//     baseline's per-view-then-global elimination because containment
//     is transitive and markRedundant's criterion is order-independent.
//
// The result's Union, Contributions and CRs are identical to
// MCRMultiViewRef's (pinned by differential tests); only the PerView
// counts differ in semantics, as documented on MultiViewResult.
func MCRMultiView(q *tpq.Pattern, views []ViewSource, opts Options) (*MultiViewResult, error) {
	limit := opts.MaxEmbeddings
	if limit <= 0 {
		limit = DefaultMaxEmbeddings
	}
	ctx := opts.ctx()
	sp := obs.SpanFrom(ctx)

	// Shared query-side metadata: one pass, reused by every candidate.
	t := sp.Start()
	wildcardQ := q.HasWildcard()
	var qs *QuerySide
	emptyOK := false
	if !wildcardQ {
		qs = NewQuerySide(q, nil)
		emptyOK = qs.EmptyAllowed()
	}
	sp.Observe(obs.StageBatchChase, t)

	// O(1)-per-view candidate classification.
	t = sp.Start()
	cand := make([]bool, len(views))
	labeled := 0
	if !wildcardQ {
		for i, vs := range views {
			if !vs.View.HasWildcard() && qs.NonemptyPossible(vs.View) {
				cand[i] = true
				labeled++
			}
		}
	}
	sp.Observe(obs.StageCatalogPrune, t)

	// Per-view generation across a bounded worker pool. Each slot is
	// written by exactly one worker; views are serial internally, so the
	// per-view CR order is the serial enumeration order and the whole
	// assembly below is deterministic.
	slots := make([]viewCRs, len(views))
	process := func(i int) {
		vs := views[i]
		if wildcardQ || vs.View.HasWildcard() {
			slots[i].err = fmt.Errorf("rewrite: wildcard patterns are outside XP{/,//,[]}; the MCR algorithms do not support them")
			return
		}
		if err := faultWorker.Hit(ctx); err != nil {
			slots[i].err = err
			return
		}
		if !cand[i] {
			if !emptyOK {
				return // no nonempty embedding possible, no trivial CR
			}
			// Trivial CR only: synthesized directly, no labeling pass.
			cr, err := buildVerifyCR(ctx, sp, &Embedding{Q: q, V: vs.View}, vs.View, q)
			if err != nil {
				slots[i].err = err
				return
			}
			slots[i].crs = []*ContainedRewriting{cr}
			return
		}
		tl := sp.Start()
		labels := qs.LabelsFor(vs.View)
		sp.Observe(obs.StageBatchChase, tl)
		seen := make(map[string]bool)
		te := sp.Start()
		err := labels.Stream(ctx, limit, func(f *Embedding) error {
			cr, err := buildVerifyCR(ctx, sp, f, vs.View, q)
			if err != nil {
				return err
			}
			key := cr.Rewriting.Canonical()
			if seen[key] {
				return nil
			}
			seen[key] = true
			slots[i].crs = append(slots[i].crs, cr)
			return nil
		})
		sp.Observe(obs.StageEnumerate, te)
		if err != nil {
			if reason := partialReason(err); reason != "" {
				// Sound prefix: every collected CR is verified contained
				// in q, so keep it and mark the view partial, mirroring
				// MCR's graceful degradation.
				slots[i].partial = reason
				return
			}
			slots[i].crs = nil
			slots[i].err = err
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(views) {
		workers = len(views)
	}
	if workers <= 1 {
		for i := range views {
			if ctx.Err() != nil {
				break
			}
			process(i)
		}
	} else {
		var (
			wg   sync.WaitGroup
			next atomic.Int64
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// A panic processing one view must fail that view's slot,
				// not the process; buildVerifyCR recovers its own panics,
				// so this guards only the loop itself.
				defer guard.Rescue("rewrite.multiViewWorker", func(err error) {})
				for {
					i := int(next.Add(1)) - 1
					if i >= len(views) || ctx.Err() != nil {
						return
					}
					process(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil && partialReason(err) == "" {
		return nil, err
	}

	// First failing view (in view order) wins, matching the flat scan.
	perView := make([]int, len(views))
	partial := PartialReason("")
	for i := range views {
		if err := slots[i].err; err != nil {
			return nil, fmt.Errorf("rewrite: view %q: %w", views[i].Name, err)
		}
		if partial == "" && slots[i].partial != "" {
			partial = slots[i].partial
		}
		perView[i] = len(slots[i].crs)
	}

	// Global assembly: dedup in (view, enumeration) order, smallest
	// canonical first, one redundancy-elimination pass across all views.
	type tagged struct {
		cr   *ContainedRewriting
		view int
	}
	seen := make(map[string]bool)
	var uniq []tagged
	for i := range views {
		for _, cr := range slots[i].crs {
			key := cr.Rewriting.Canonical()
			if !seen[key] {
				seen[key] = true
				uniq = append(uniq, tagged{cr: cr, view: i})
			}
		}
	}
	sort.SliceStable(uniq, func(i, j int) bool {
		si, sj := uniq[i].cr.Rewriting.Size(), uniq[j].cr.Rewriting.Size()
		if si != sj {
			return si < sj
		}
		return uniq[i].cr.Rewriting.Canonical() < uniq[j].cr.Rewriting.Canonical()
	})
	redundant, err := markRedundant(ctx, len(uniq), func(i, j int) bool {
		return tpq.Contained(uniq[i].cr.Rewriting, uniq[j].cr.Rewriting)
	})
	if err != nil {
		return nil, err
	}
	out := &MultiViewResult{
		Union:         &tpq.Union{},
		PerView:       perView,
		Labeled:       labeled,
		Partial:       partial != "",
		PartialReason: partial,
	}
	for i, t := range uniq {
		if redundant[i] {
			continue
		}
		out.Union.Patterns = append(out.Union.Patterns, t.cr.Rewriting)
		out.CRs = append(out.CRs, t.cr)
		out.Contributions = append(out.Contributions, t.view)
	}
	return out, nil
}

// buildVerifyCR materializes and soundness-checks the CR induced by one
// useful embedding — the batch pipeline's counterpart of generateCRs'
// buildVerify closure, panic-isolated the same way.
func buildVerifyCR(ctx context.Context, sp *obs.Span, f *Embedding, base, q *tpq.Pattern) (cr *ContainedRewriting, err error) {
	defer guard.Recover(&err, "rewrite.buildVerifyCR")
	if err := faultBuildCR.Hit(ctx); err != nil {
		return nil, err
	}
	t := sp.Start()
	cr, err = BuildCR(f, base)
	sp.Observe(obs.StageBuildCR, t)
	if err != nil {
		return nil, fmt.Errorf("rewrite: embedding %s: %w", f, err)
	}
	t = sp.Start()
	contained := cr.VerifyContained(q)
	sp.Observe(obs.StageContain, t)
	if !contained {
		// Useful embeddings induce contained rewritings by
		// construction; reaching this indicates a bug upstream.
		return nil, fmt.Errorf("rewrite: internal error: CR %s not contained in %s (embedding %s)", cr.Rewriting, q, f)
	}
	return cr, nil
}

// AnswerMultiView answers the query against a document through the
// views only: the kept CRs' compensations are grouped by contributing
// view, each group compiles to one answer plan (internal/plan), and
// each plan executes over its own view's materialization. The answers
// are unioned with cross-view dedup and returned in document order —
// independent of both CR enumeration order and view order. The context
// is polled throughout compilation, indexing and execution, so a
// cancelled ctx aborts a large multi-source answering run promptly.
func (r *MultiViewResult) AnswerMultiView(ctx context.Context, views []ViewSource, d *xmltree.Document) ([]*xmltree.Node, error) {
	byView := make(map[int][]*tpq.Pattern)
	var order []int
	for i, cr := range r.CRs {
		vi := r.Contributions[i]
		if _, ok := byView[vi]; !ok {
			order = append(order, vi)
		}
		byView[vi] = append(byView[vi], cr.Compensation)
	}
	seen := make(map[*xmltree.Node]bool)
	var out []*xmltree.Node
	for _, vi := range order {
		pl, err := plan.Compile(ctx, byView[vi])
		if err != nil {
			return nil, err
		}
		f, err := plan.IndexSubtrees(ctx, d, views[vi].View.Evaluate(d))
		if err != nil {
			return nil, err
		}
		res, err := pl.Exec(ctx, f, plan.ExecOptions{})
		if err != nil {
			return nil, err
		}
		for _, n := range res.Nodes() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}
