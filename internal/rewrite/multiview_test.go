package rewrite

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

func TestMCRMultiViewCombines(t *testing.T) {
	q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	views := []ViewSource{
		{Name: "A", View: tpq.MustParse("//Trials//Trial")},
		{Name: "B", View: tpq.MustParse("//Trials[//Status]")},
		{Name: "C", View: tpq.MustParse("//Patient")},
	}
	res, err := MCRMultiView(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Union.Empty() {
		t.Fatal("no multi-view MCR")
	}
	// View B alone can deliver the exact query: //Trials[//Status]//
	// Trial/Patient is among the disjuncts and subsumes everything, so
	// the global MCR collapses to it.
	want := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	if len(res.Union.Patterns) != 1 || !tpq.Equivalent(res.Union.Patterns[0], want) {
		t.Fatalf("global MCR = %s, want %s", res.Union, want)
	}
	if views[res.Contributions[0]].Name != "B" {
		t.Errorf("winning view = %s, want B", views[res.Contributions[0]].Name)
	}
	// Per-view sizes recorded for all, including subsumed ones.
	for i, n := range res.PerView {
		if n == 0 {
			t.Errorf("view %s reported no local CRs", views[i].Name)
		}
	}
}

func TestMCRMultiViewAnswering(t *testing.T) {
	d := xmltree.NewDocument(xmltree.Build("PharmaLab",
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient"), xmltree.Build("Status")),
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
	))
	q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	views := []ViewSource{
		{Name: "A", View: tpq.MustParse("//Trials//Trial")},
		{Name: "B", View: tpq.MustParse("//Trials[//Status]")},
	}
	res, err := MCRMultiView(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.AnswerMultiView(context.Background(), views, d)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Evaluate(d) // view B makes the rewriting exact here
	if !sameNodeSet(got, want) {
		t.Fatalf("multi-view answers %d != query answers %d", len(got), len(want))
	}
}

func TestMCRMultiViewUnanswerableViewsSkipped(t *testing.T) {
	q := tpq.MustParse("/a/b")
	views := []ViewSource{
		{Name: "useless", View: tpq.MustParse("/z//y")},
		{Name: "good", View: tpq.MustParse("/a[//c]")},
	}
	res, err := MCRMultiView(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerView[0] != 0 {
		t.Error("unanswerable view contributed CRs")
	}
	if len(res.Union.Patterns) != 1 {
		t.Fatalf("MCR = %s", res.Union)
	}
}

// The multi-view MCR must dominate every single-view MCR and stay
// contained in the query.
func TestQuickMultiViewDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		q := workload.RandomPattern(rng, alphabet, 4)
		views := []ViewSource{
			{Name: "v1", View: workload.RandomPattern(rng, alphabet, 4)},
			{Name: "v2", View: workload.RandomPattern(rng, alphabet, 4)},
			{Name: "v3", View: workload.RandomPattern(rng, alphabet, 4)},
		}
		res, err := MCRMultiView(q, views, Options{MaxEmbeddings: 1 << 14})
		if err != nil {
			return true
		}
		if !res.Union.ContainedIn(q) {
			t.Logf("multi-view MCR not contained in q=%s: %s", q, res.Union)
			return false
		}
		for _, vs := range views {
			single, err := MCR(q, vs.View, Options{MaxEmbeddings: 1 << 14})
			if err != nil {
				return true
			}
			if !single.Union.CoveredBy(res.Union) {
				t.Logf("view %s MCR %s not covered by global %s", vs.Name, single.Union, res.Union)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
