package rewrite

import (
	"context"
	"sort"

	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// MaterializeView evaluates the view over the document and returns the
// view result: the document nodes whose subtrees constitute the
// materialized view (Figure 1(b) of the paper shows such a forest).
func MaterializeView(v *tpq.Pattern, d *xmltree.Document) []*xmltree.Node {
	return v.Evaluate(d)
}

// ApplyCompensation runs a compensation query E over a materialized
// view forest: E's root is pinned to each view node in turn and the
// answers are unioned. The document provides the node storage backing
// the forest (the subtrees of the view nodes). The context is polled
// once per view node, so answering over a large materialization stops
// promptly when the caller cancels.
func ApplyCompensation(ctx context.Context, e *tpq.Pattern, d *xmltree.Document, viewNodes []*xmltree.Node) ([]*xmltree.Node, error) {
	seen := make(map[*xmltree.Node]bool)
	for _, vn := range viewNodes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, n := range e.EvaluateAt(d, vn) {
			seen[n] = true
		}
	}
	return sortedByIndex(seen), nil
}

// AnswerUsingView answers a query through its contained rewritings:
// the view is materialized once and each CR's compensation query is
// applied to the view forest (E ∘ V evaluated as the paper prescribes,
// footnote 1 of §2). The result equals evaluating the union of the
// rewritings directly, without ever running the query itself.
func AnswerUsingView(ctx context.Context, crs []*ContainedRewriting, v *tpq.Pattern, d *xmltree.Document) ([]*xmltree.Node, error) {
	return AnswerMaterialized(ctx, crs, d, MaterializeView(v, d))
}

// AnswerMaterialized answers through an already-materialized view
// forest: only the compensation queries run, in time proportional to
// the total size of the view subtrees — the source of the paper's
// reported savings when the view is selective. The context is polled
// once per (rewriting, view node) pair.
func AnswerMaterialized(ctx context.Context, crs []*ContainedRewriting, d *xmltree.Document, viewNodes []*xmltree.Node) ([]*xmltree.Node, error) {
	seen := make(map[*xmltree.Node]bool)
	for _, cr := range crs {
		comp := cr.Compensation.Prepare()
		for _, vn := range viewNodes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, n := range comp.EvaluateAt(d, vn) {
				seen[n] = true
			}
		}
	}
	return sortedByIndex(seen), nil
}

// sortedByIndex flattens an answer set into document order.
func sortedByIndex(seen map[*xmltree.Node]bool) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
