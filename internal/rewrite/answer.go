package rewrite

import (
	"context"

	"qav/internal/plan"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// MaterializeView evaluates the view over the document and returns the
// view result: the document nodes whose subtrees constitute the
// materialized view (Figure 1(b) of the paper shows such a forest).
func MaterializeView(v *tpq.Pattern, d *xmltree.Document) []*xmltree.Node {
	return v.Evaluate(d)
}

// Compensations extracts the compensation queries of the contained
// rewritings — the input the plan compiler consumes.
func Compensations(crs []*ContainedRewriting) []*tpq.Pattern {
	out := make([]*tpq.Pattern, 0, len(crs))
	for _, cr := range crs {
		out = append(out, cr.Compensation)
	}
	return out
}

// ApplyCompensation runs a compensation query E over a materialized
// view forest: E's root is pinned to each view node in turn and the
// answers are unioned. The document provides the node storage backing
// the forest (the subtrees of the view nodes). The context is polled
// once per view node, so answering over a large materialization stops
// promptly when the caller cancels.
func ApplyCompensation(ctx context.Context, e *tpq.Pattern, d *xmltree.Document, viewNodes []*xmltree.Node) ([]*xmltree.Node, error) {
	seen := make(map[*xmltree.Node]bool)
	for _, vn := range viewNodes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, n := range e.EvaluateAt(d, vn) {
			seen[n] = true
		}
	}
	return sortedByIndex(seen), nil
}

// AnswerUsingView answers a query through its contained rewritings:
// the view is materialized once and each CR's compensation query is
// applied to the view forest (E ∘ V evaluated as the paper prescribes,
// footnote 1 of §2). The result equals evaluating the union of the
// rewritings directly, without ever running the query itself. Answers
// come back deduplicated across CRs, in document order.
func AnswerUsingView(ctx context.Context, crs []*ContainedRewriting, v *tpq.Pattern, d *xmltree.Document) ([]*xmltree.Node, error) {
	return AnswerMaterialized(ctx, crs, d, MaterializeView(v, d))
}

// AnswerMaterialized answers through an already-materialized view
// forest by compiling the CRs' compensation queries into an answer
// plan (internal/plan) and executing it over the indexed view windows:
// only the compensation queries run, in time proportional to the
// compensation candidate lists within the view subtrees — the source
// of the paper's reported savings when the view is selective. Answers
// are deduplicated across CRs and returned in document order,
// independent of CR enumeration order. The context is polled
// throughout compilation, indexing and execution.
func AnswerMaterialized(ctx context.Context, crs []*ContainedRewriting, d *xmltree.Document, viewNodes []*xmltree.Node) ([]*xmltree.Node, error) {
	pl, err := plan.Compile(ctx, Compensations(crs))
	if err != nil {
		return nil, err
	}
	f, err := plan.IndexSubtrees(ctx, d, viewNodes)
	if err != nil {
		return nil, err
	}
	res, err := pl.Exec(ctx, f, plan.ExecOptions{})
	if err != nil {
		return nil, err
	}
	return res.Nodes(), nil
}
