package rewrite

import (
	"fmt"
	"sort"

	"qav/internal/tpq"
)

// MCRMultiViewRef is the frozen flat-scan baseline of MCRMultiView: one
// full per-view MCR for every view in the list (each paying its own
// labeling pass and per-view redundancy elimination), then global dedup
// and redundancy elimination across views. It is kept verbatim as the
// ground truth for the batched pipeline's differential tests and as the
// ablation baseline of the `qavbench -exp catalog` experiment — do not
// optimize it.
//
// Its PerView counts record each view's own post-elimination MCR size,
// the historical semantics; the batch pipeline reports pre-elimination
// distinct counts instead (see MultiViewResult.PerView).
func MCRMultiViewRef(q *tpq.Pattern, views []ViewSource, opts Options) (*MultiViewResult, error) {
	type tagged struct {
		cr   *ContainedRewriting
		view int
	}
	ctx := opts.ctx()
	var all []tagged
	perView := make([]int, len(views))
	for i, vs := range views {
		res, err := MCR(q, vs.View, opts)
		if err != nil {
			return nil, fmt.Errorf("rewrite: view %q: %w", vs.Name, err)
		}
		perView[i] = len(res.CRs)
		for _, cr := range res.CRs {
			all = append(all, tagged{cr: cr, view: i})
		}
	}
	// Dedup structurally, then drop CRs contained in another CR
	// (possibly from a different view).
	seen := make(map[string]bool)
	var uniq []tagged
	for _, t := range all {
		key := t.cr.Rewriting.Canonical()
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, t)
		}
	}
	sort.SliceStable(uniq, func(i, j int) bool {
		si, sj := uniq[i].cr.Rewriting.Size(), uniq[j].cr.Rewriting.Size()
		if si != sj {
			return si < sj
		}
		return uniq[i].cr.Rewriting.Canonical() < uniq[j].cr.Rewriting.Canonical()
	})
	redundant, err := markRedundant(ctx, len(uniq), func(i, j int) bool {
		return tpq.Contained(uniq[i].cr.Rewriting, uniq[j].cr.Rewriting)
	})
	if err != nil {
		return nil, err
	}
	out := &MultiViewResult{Union: &tpq.Union{}, PerView: perView}
	for i, t := range uniq {
		if redundant[i] {
			continue
		}
		out.Union.Patterns = append(out.Union.Patterns, t.cr.Rewriting)
		out.CRs = append(out.CRs, t.cr)
		out.Contributions = append(out.Contributions, t.view)
	}
	return out, nil
}
