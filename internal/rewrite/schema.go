package rewrite

import (
	"context"
	"fmt"

	"qav/internal/chase"
	"qav/internal/constraints"
	"qav/internal/obs"
	"qav/internal/schema"
	"qav/internal/tpq"
)

// SchemaContext bundles a schema with its inferred constraint set. Use
// NewSchemaContext once and reuse it across rewritings: inference is
// O(|S|³) (Theorem 5) and independent of queries.
type SchemaContext struct {
	Schema *schema.Graph
	Sigma  *constraints.Set
}

// NewSchemaContext infers all SC, FC, CC, PC and IC constraints implied
// by the schema.
func NewSchemaContext(g *schema.Graph) *SchemaContext {
	return &SchemaContext{Schema: g, Sigma: constraints.Infer(g)}
}

// SContained decides schema-relative containment p ⊆_S q using the
// chase (Theorem 6): p ⊆_S q iff Chase_Σ(p) ⊆ q, with the chase
// conducted intelligently against q's tags (Lemma 4 guarantees this
// introduces every tag that matters for the homomorphism test).
func (sc *SchemaContext) SContained(p, q *tpq.Pattern) bool {
	chased := chase.Intelligent(p, q, sc.Sigma)
	return tpq.Contained(chased, q)
}

// SEquivalent reports p ≡_S q.
func (sc *SchemaContext) SEquivalent(p, q *tpq.Pattern) bool {
	return sc.SContained(p, q) && sc.SContained(q, p)
}

// graftCut returns the Definition 2 cut check for a view output tag:
// the clipped subtree must be realizable below dV in instances of the
// schema — the graft edge and every edge inside the subtree must be
// supported by the schema graph.
func (sc *SchemaContext) graftCut(dVTag string) CutCheck {
	g := sc.Schema
	var subtreeOK func(n *tpq.Node) bool
	subtreeOK = func(n *tpq.Node) bool {
		for _, c := range n.Children {
			switch c.Axis {
			case tpq.Child:
				if _, ok := g.EdgeBetween(n.Tag, c.Tag); !ok {
					return false
				}
			case tpq.Descendant:
				if !g.Reachable(n.Tag, c.Tag) {
					return false
				}
			}
			if !subtreeOK(c) {
				return false
			}
		}
		return true
	}
	return func(y *tpq.Node) bool {
		switch y.Axis {
		case tpq.Child:
			if _, ok := g.EdgeBetween(dVTag, y.Tag); !ok {
				return false
			}
		case tpq.Descendant:
			if !g.Reachable(dVTag, y.Tag) {
				return false
			}
		}
		return subtreeOK(y)
	}
}

// AnswerableWithSchema reports whether q is answerable using v in the
// presence of the schema (Theorem 7): a useful embedding into the
// intelligently chased view exists whose induced rewriting is
// satisfiable w.r.t. the schema. Runs in polynomial time (Theorem 9).
func (sc *SchemaContext) AnswerableWithSchema(q, v *tpq.Pattern) bool {
	cr, err := sc.mcrSingle(nil, q, v)
	return err == nil && cr != nil
}

// MCRWithSchema computes the maximal contained rewriting of q using v
// under a schema without recursion or union types (Algorithm
// MCRGenSchema, Fig 13). By Theorems 8 and 9 the MCR, when it exists,
// is a single tree pattern; the result union carries zero or one CR.
// For recursive schemas use MCRRecursive.
func (sc *SchemaContext) MCRWithSchema(q, v *tpq.Pattern) (*Result, error) {
	return sc.MCRWithSchemaCtx(context.Background(), q, v)
}

// MCRWithSchemaCtx is MCRWithSchema with a context carrying stage
// instrumentation (obs.WithSpan). The recursion-free pipeline is
// polynomial, so the context is not consulted for cancellation — only
// for its span.
func (sc *SchemaContext) MCRWithSchemaCtx(ctx context.Context, q, v *tpq.Pattern) (*Result, error) {
	if sc.Schema.IsRecursive() {
		return nil, fmt.Errorf("rewrite: schema is recursive; use MCRRecursive")
	}
	cr, err := sc.mcrSingle(obs.SpanFrom(ctx), q, v)
	if err != nil {
		return nil, err
	}
	if cr == nil {
		return &Result{Union: &tpq.Union{}}, nil
	}
	return &Result{
		Union:                tpq.NewUnion(cr.Rewriting),
		CRs:                  []*ContainedRewriting{cr},
		EmbeddingsConsidered: 1,
	}, nil
}

// mcrSingle runs the efficient single-embedding pipeline shared by the
// existence test and MCR generation: chase the view, compute labels,
// extract one maximal useful embedding greedily, build the CR against
// the ORIGINAL view (the compensation runs on real materialized data;
// schema-guaranteed nodes need not be re-checked, per Example 3), and
// validate satisfiability and schema-relative containment. Returns
// (nil, nil) when no MCR exists.
func (sc *SchemaContext) mcrSingle(sp *obs.Span, q, v *tpq.Pattern) (*ContainedRewriting, error) {
	if q.HasWildcard() || v.HasWildcard() {
		return nil, fmt.Errorf("rewrite: wildcard patterns are outside XP{/,//,[]}; the MCR algorithms do not support them")
	}
	if !sc.Schema.Satisfiable(v) || !sc.Schema.Satisfiable(q) {
		// A view or query that can never produce answers on legal
		// instances admits no rewriting with a non-empty instance.
		return nil, nil
	}
	t := sp.Start()
	vPrime := chase.Intelligent(v, q, sc.Sigma)
	sp.Observe(obs.StageChase, t)
	t = sp.Start()
	labels := ComputeLabels(q, vPrime, sc.graftCut(vPrime.Output.Tag))
	f := labels.greedyMaximal()
	sp.Observe(obs.StageEnumerate, t)
	if f == nil {
		return nil, nil
	}
	t = sp.Start()
	cr, err := BuildCR(f, v)
	sp.Observe(obs.StageBuildCR, t)
	if err != nil {
		return nil, err
	}
	t = sp.Start()
	if !sc.Schema.Satisfiable(cr.Rewriting) {
		// Theorem 7(ii): the rewriting must totally embed into the
		// schema graph.
		sp.Observe(obs.StageContain, t)
		return nil, nil
	}
	ok := sc.SContained(cr.Rewriting, q)
	sp.Observe(obs.StageContain, t)
	if !ok {
		return nil, fmt.Errorf("rewrite: internal error: CR %s not S-contained in %s", cr.Rewriting, q)
	}
	return cr, nil
}

// greedyMaximal extracts one useful embedding that maps a node whenever
// the labeling allows it, cutting only when forced. By Theorem 8 every
// admissible embedding clips the same node set, so any maximal one
// induces the (unique) schema-case CR.
func (l *Labeling) greedyMaximal() *Embedding {
	m := make(map[*tpq.Node]*tpq.Node)
	var assign func(x *tpq.Node) bool
	assign = func(x *tpq.Node) bool {
		img := m[x]
		j := l.vpos(img)
		for _, y := range x.Children {
			yi := l.qpos(y)
			mapped := false
			for _, cand := range l.candidates(y, j) {
				if l.okAt(yi, l.vpos(cand)) {
					m[y] = cand
					if assign(y) {
						mapped = true
						break
					}
					delete(m, y)
				}
			}
			if mapped {
				continue
			}
			if !l.cutAllowed(y, img, j) {
				return false
			}
		}
		return true
	}
	for _, rootImg := range l.RootImages() {
		m[l.Q.Root] = rootImg
		if assign(l.Q.Root) {
			return &Embedding{Q: l.Q, V: l.V, M: m}
		}
		m = make(map[*tpq.Node]*tpq.Node)
	}
	if l.emptyAllowed() {
		return &Embedding{Q: l.Q, V: l.V, M: nil}
	}
	return nil
}

// MCRRecursive computes the maximal contained rewriting under a
// possibly recursive schema (§5): unlike the recursion-free case the
// MCR may be a union of exponentially many CRs, so all useful
// embeddings into the chased view are enumerated (bounded by
// opts.MaxEmbeddings), their CRs filtered by schema satisfiability and
// schema-relative redundancy.
func (sc *SchemaContext) MCRRecursive(q, v *tpq.Pattern, opts Options) (*Result, error) {
	limit := opts.MaxEmbeddings
	if limit <= 0 {
		limit = DefaultMaxEmbeddings
	}
	ctx := opts.ctx()
	if q.HasWildcard() || v.HasWildcard() {
		return nil, fmt.Errorf("rewrite: wildcard patterns are outside XP{/,//,[]}; the MCR algorithms do not support them")
	}
	if !sc.Schema.Satisfiable(v) || !sc.Schema.Satisfiable(q) {
		return &Result{Union: &tpq.Union{}}, nil
	}
	sp := obs.SpanFrom(ctx)
	t := sp.Start()
	vPrime := chase.Intelligent(v, q, sc.Sigma)
	sp.Observe(obs.StageChase, t)
	t = sp.Start()
	labels := ComputeLabels(q, vPrime, sc.graftCut(vPrime.Output.Tag))
	embeddings, err := labels.Enumerate(ctx, limit)
	sp.Observe(obs.StageEnumerate, t)
	// Budget/deadline overruns degrade gracefully: Enumerate returns the
	// prefix produced before the wall, and each CR below is individually
	// verified S-contained, so the partial union is sound.
	reason := PartialReason("")
	if err != nil {
		if reason = partialReason(err); reason == "" {
			return nil, err
		}
	}
	var crs []*ContainedRewriting
	considered := 0
	for i, f := range embeddings {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				if r := partialReason(err); r != "" {
					// Deadline fired mid-build: keep what is finished.
					reason = r
					break
				}
				return nil, err
			}
		}
		t = sp.Start()
		cr, err := BuildCR(f, v)
		sp.Observe(obs.StageBuildCR, t)
		if err != nil {
			return nil, err
		}
		t = sp.Start()
		sat := sc.Schema.Satisfiable(cr.Rewriting)
		contained := sat && sc.SContained(cr.Rewriting, q)
		sp.Observe(obs.StageContain, t)
		considered++
		if !sat {
			continue
		}
		if !contained {
			return nil, fmt.Errorf("rewrite: internal error: CR %s not S-contained in %s", cr.Rewriting, q)
		}
		crs = append(crs, cr)
	}
	if reason != "" {
		return assembleSchemaPartial(crs, considered, reason), nil
	}
	res, err := sc.assembleSchemaResult(ctx, crs, len(embeddings))
	if err != nil {
		if r := partialReason(err); r != "" {
			// Deadline inside schema-relative redundancy elimination.
			return assembleSchemaPartial(crs, considered, r), nil
		}
		return nil, err
	}
	return res, nil
}

// assembleSchemaPartial mirrors assemblePartial for the schema path:
// structural dedup and deterministic order only, skipping the quadratic
// S-containment matrix. Compensation extraction matches
// assembleSchemaResult, which leaves it on demand.
func assembleSchemaPartial(crs []*ContainedRewriting, considered int, reason PartialReason) *Result {
	seen := make(map[string]bool, len(crs))
	res := &Result{
		Union:                &tpq.Union{},
		EmbeddingsConsidered: considered,
		Partial:              true,
		PartialReason:        reason,
	}
	kept := make([]*ContainedRewriting, 0, len(crs))
	for _, cr := range crs {
		key := cr.Rewriting.Canonical()
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, cr)
	}
	sortCRs(kept)
	for _, cr := range kept {
		res.CRs = append(res.CRs, cr)
		res.Union.Patterns = append(res.Union.Patterns, cr.Rewriting)
	}
	return res
}

// assembleSchemaResult deduplicates and removes CRs that are S-contained
// in another CR.
func (sc *SchemaContext) assembleSchemaResult(ctx context.Context, crs []*ContainedRewriting, considered int) (*Result, error) {
	seen := make(map[string]*ContainedRewriting)
	var uniq []*ContainedRewriting
	for _, cr := range crs {
		key := cr.Rewriting.Canonical()
		if seen[key] == nil {
			seen[key] = cr
			uniq = append(uniq, cr)
		}
	}
	sortCRs(uniq)
	sp := obs.SpanFrom(ctx)
	t := sp.Start()
	redundant, err := markRedundant(ctx, len(uniq), func(i, j int) bool {
		return sc.SContained(uniq[i].Rewriting, uniq[j].Rewriting)
	})
	sp.Observe(obs.StageContain, t)
	if err != nil {
		return nil, err
	}
	res := &Result{Union: &tpq.Union{}, EmbeddingsConsidered: considered}
	for i, cr := range uniq {
		if !redundant[i] {
			res.CRs = append(res.CRs, cr)
			res.Union.Patterns = append(res.Union.Patterns, cr.Rewriting)
		}
	}
	return res, nil
}
