package rewrite

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"qav/internal/leaktest"
	"qav/internal/tpq"
	"qav/internal/workload"
)

// referenceMCR is the pre-pipeline MCR path kept for differential
// testing: materialize every useful embedding with Enumerate, build and
// verify each CR serially, then assemble. The streaming pipeline must
// produce exactly this result.
func referenceMCR(q, v *tpq.Pattern, limit int) (*Result, error) {
	ctx := context.Background()
	labels := ComputeLabels(q, v, nil)
	if !labels.Exists() {
		return &Result{Union: &tpq.Union{}}, nil
	}
	embs, err := labels.Enumerate(ctx, limit)
	if err != nil {
		return nil, err
	}
	var crs []*ContainedRewriting
	for _, f := range embs {
		cr, err := BuildCR(f, v)
		if err != nil {
			return nil, err
		}
		if !cr.VerifyContained(q) {
			return nil, fmt.Errorf("reference: CR %s not contained in %s", cr.Rewriting.Canonical(), q.Canonical())
		}
		crs = append(crs, cr)
	}
	return assembleResult(ctx, crs, len(embs))
}

// disjunctSet returns the sorted canonical forms of the result's union.
func disjunctSet(res *Result) []string {
	var out []string
	for _, p := range res.Union.Patterns {
		out = append(out, p.Canonical())
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMCRMatchesReference checks the streaming parallel pipeline
// against the materialize-then-build reference on random instances:
// identical disjunct sets, identical embedding counts.
func TestMCRMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := []string{"a", "b", "c"}
	checked := 0
	for trial := 0; trial < 600; trial++ {
		q := workload.RandomPattern(rng, alphabet, 7)
		v := workload.RandomPattern(rng, alphabet, 7)
		got, errGot := MCR(q, v, Options{})
		want, errWant := referenceMCR(q, v, DefaultMaxEmbeddings)
		if (errGot == nil) != (errWant == nil) {
			t.Fatalf("MCR err=%v, reference err=%v for q=%s v=%s", errGot, errWant, q.Canonical(), v.Canonical())
		}
		if errGot != nil {
			continue
		}
		if got.EmbeddingsConsidered != want.EmbeddingsConsidered {
			t.Fatalf("EmbeddingsConsidered %d, reference says %d for q=%s v=%s",
				got.EmbeddingsConsidered, want.EmbeddingsConsidered, q.Canonical(), v.Canonical())
		}
		if !sameStrings(disjunctSet(got), disjunctSet(want)) {
			t.Fatalf("union mismatch for q=%s v=%s:\n  pipeline:  %v\n  reference: %v",
				q.Canonical(), v.Canonical(), disjunctSet(got), disjunctSet(want))
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("only %d instances checked, want >= 500", checked)
	}
}

// TestMCRMatchesReferenceExponential runs the differential check on the
// Figure 8 family, where the enumeration is large enough (2^n + extras)
// to engage the parallel arm of the pipeline.
func TestMCRMatchesReferenceExponential(t *testing.T) {
	v := workload.Fig8View()
	for n := 2; n <= 5; n++ {
		q := workload.Fig8Query(n)
		got, err := MCR(q, v, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceMCR(q, v, DefaultMaxEmbeddings)
		if err != nil {
			t.Fatal(err)
		}
		if got.EmbeddingsConsidered != want.EmbeddingsConsidered {
			t.Fatalf("n=%d: EmbeddingsConsidered %d, reference says %d", n, got.EmbeddingsConsidered, want.EmbeddingsConsidered)
		}
		if !sameStrings(disjunctSet(got), disjunctSet(want)) {
			t.Fatalf("n=%d: union mismatch", n)
		}
		// Determinism: the paper's 2^n disjuncts in a fixed order.
		again, err := MCR(q, v, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Union.Patterns {
			if got.Union.Patterns[i].Canonical() != again.Union.Patterns[i].Canonical() {
				t.Fatalf("n=%d: non-deterministic disjunct order at %d", n, i)
			}
		}
	}
}

// TestMCRAgreesWithNaive cross-checks the optimized pipeline against the
// brute-force baseline, which enumerates all partial matchings rather
// than useful embeddings.
func TestMCRAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	alphabet := []string{"a", "b"}
	for trial := 0; trial < 150; trial++ {
		q := workload.RandomPattern(rng, alphabet, 5)
		v := workload.RandomPattern(rng, alphabet, 5)
		fast, err := MCR(q, v, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NaiveMCR(context.Background(), q, v)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Union.SameAs(naive.Union) {
			t.Fatalf("MCR and NaiveMCR disagree for q=%s v=%s:\n  mcrgen: %v\n  naive:  %v",
				q.Canonical(), v.Canonical(), disjunctSet(fast), disjunctSet(naive))
		}
	}
}

// TestMCRConcurrentSharedPatterns runs many MCR computations over the
// same shared query/view patterns from concurrent goroutines; under
// -race this verifies that the interval-label caches and the streaming
// pipeline never write to shared pattern state.
func TestMCRConcurrentSharedPatterns(t *testing.T) {
	v := workload.Fig8View()
	q := workload.Fig8Query(4)
	want, err := MCR(q, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantSet := disjunctSet(want)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				res, err := MCR(q, v, Options{})
				if err != nil {
					t.Error(err)
					return
				}
				if !sameStrings(disjunctSet(res), wantSet) {
					t.Error("concurrent MCR produced a different union")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMCRStreamCancellation checks that cancelling the context aborts
// the streaming pipeline promptly with the context's error, and that
// the worker pool it may have started is fully torn down.
func TestMCRStreamCancellation(t *testing.T) {
	defer leaktest.Check(t)()

	// Cancelled upfront: the stream aborts before any worker starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := workload.Fig8Query(7)
	v := workload.Fig8View()
	if _, err := MCR(q, v, Options{Context: ctx}); err == nil {
		t.Fatal("cancelled MCR returned nil error")
	}

	// Cancelled mid-flight: the exponential Figure 8 instance at n=12
	// is large enough that the pipeline workers are running when the
	// cancel lands; they must all drain (the deferred leak check is
	// the assertion).
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := MCR(workload.Fig8Query(12), v, Options{Context: ctx, MaxEmbeddings: 1 << 22})
	cancel()
	if err == nil {
		t.Fatal("mid-flight cancelled MCR returned nil error")
	}
}
