package rewrite

import (
	"fmt"
	"strings"

	"qav/internal/tpq"
)

// Dump renders the labeling in the spirit of the paper's Figure 5: one
// line per query node listing its admissible view images (view nodes
// are identified by their root paths), plus whether the subtree may be
// clipped below each image. Intended for diagnostics and the CLI.
func (l *Labeling) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\nview : %s\n", l.Q, l.V)
	if l.emptyAllowed() {
		b.WriteString("the empty embedding is useful (query root is '//')\n")
	}
	for i, x := range l.qn {
		fmt.Fprintf(&b, "%-24s ->", strings.Repeat("  ", depth(x))+x.Axis.String()+x.Tag)
		any := false
		for j, img := range l.vn {
			if l.okAt(i, j) {
				fmt.Fprintf(&b, " %s", nodePath(img))
				any = true
			}
		}
		if !any {
			b.WriteString(" (no image: must be clipped)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func depth(n *tpq.Node) int {
	d := 0
	for x := n.Parent; x != nil; x = x.Parent {
		d++
	}
	return d
}

// Explain renders a human-readable derivation of an MCR result: for
// each contained rewriting, the inducing embedding (which query nodes
// were mapped where, which were clipped into the CAT) and the
// compensation query to run over the materialized view.
func Explain(q, v *tpq.Pattern, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\nview : %s\n", q, v)
	if res.Union.Empty() {
		b.WriteString("not answerable: no useful embedding exists\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d useful embedding(s) considered, %d irredundant CR(s):\n",
		res.EmbeddingsConsidered, len(res.CRs))
	for i, cr := range res.CRs {
		fmt.Fprintf(&b, "\nCR %d: %s\n", i+1, cr.Rewriting)
		fmt.Fprintf(&b, "  compensation: %s\n", cr.Compensation)
		f := cr.Embedding
		if f == nil {
			continue
		}
		if f.Empty() {
			b.WriteString("  embedding: empty (the whole query is clipped below the view output)\n")
			continue
		}
		b.WriteString("  embedding:\n")
		for _, x := range f.Q.Nodes() {
			if img, ok := f.M[x]; ok {
				fmt.Fprintf(&b, "    %-20s -> %s\n", nodePath(x), nodePath(img))
			}
		}
		var clipped []string
		for _, x := range f.Q.Nodes() {
			if !f.Defined(x) && (x.Parent == nil || f.Defined(x.Parent)) {
				clipped = append(clipped, nodePath(x))
			}
		}
		if len(clipped) > 0 {
			fmt.Fprintf(&b, "  clipped below the view output: %s\n", strings.Join(clipped, ", "))
		}
	}
	return b.String()
}
