package rewrite

import "qav/internal/tpq"

// EquivalentRewriting decides the classical query-optimization
// formulation of QAV that the paper contrasts with contained rewriting
// (§1, §6; studied by Xu & Özsoyoglu, the paper's [26]): is there a
// compensation E with E ∘ V ≡ Q? If so, the first such contained
// rewriting is returned.
//
// Correctness: an equivalent rewriting is in particular a contained
// rewriting, so it is contained in some irredundant disjunct R of the
// MCR; then Q ≡ E∘V ⊆ R ⊆ Q forces R ≡ Q. Hence an equivalent
// rewriting exists iff some MCR disjunct is equivalent to Q.
func EquivalentRewriting(q, v *tpq.Pattern, opts Options) (*ContainedRewriting, bool, error) {
	res, err := MCR(q, v, opts)
	if err != nil {
		return nil, false, err
	}
	for _, cr := range res.CRs {
		if tpq.Contained(q, cr.Rewriting) { // cr ⊆ q always holds
			return cr, true, nil
		}
	}
	return nil, false, nil
}

// EquivalentRewriting is the schema-relative version: is there a
// compensation E with E ∘ V ≡_S Q?
func (sc *SchemaContext) EquivalentRewriting(q, v *tpq.Pattern, opts Options) (*ContainedRewriting, bool, error) {
	var res *Result
	var err error
	if sc.Schema.IsRecursive() {
		res, err = sc.MCRRecursive(q, v, opts)
	} else {
		res, err = sc.MCRWithSchema(q, v)
	}
	if err != nil {
		return nil, false, err
	}
	for _, cr := range res.CRs {
		if sc.SContained(q, cr.Rewriting) {
			return cr, true, nil
		}
	}
	return nil, false, nil
}
