package rewrite

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/schema"
	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

// Figure 2 / Example 2: with the auction schema, the MCR of
// Q = //Auction[//item]//name using V = //Auction//person is the single
// CR //Auction//person//name, licensed by the cousin constraint
// Auction : person ⇓ item.
func TestFigure2MCRGenSchema(t *testing.T) {
	sc := NewSchemaContext(workload.AuctionSchema())
	q := tpq.MustParse("//Auction[//item]//name")
	v := tpq.MustParse("//Auction//person")
	if !sc.AnswerableWithSchema(q, v) {
		t.Fatal("Q must be answerable using V under the auction schema")
	}
	res, err := sc.MCRWithSchema(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Union.Patterns) != 1 {
		t.Fatalf("schema MCR must be a single TPQ, got %d: %s", len(res.Union.Patterns), res.Union)
	}
	got := res.Union.Patterns[0]
	want := tpq.MustParse("//Auction//person//name")
	if !sc.SEquivalent(got, want) {
		t.Errorf("MCR = %s, want ≡_S %s", got, want)
	}
	// The MCR is S-contained in Q but NOT equivalent to it: Q also
	// finds item names, which the view cannot deliver.
	if !sc.SContained(got, q) {
		t.Error("MCR not S-contained in Q")
	}
	if sc.SContained(q, got) {
		t.Error("MCR should be strictly weaker than Q")
	}
	// Without the schema, Q is NOT answerable into this shape: the
	// schemaless MCR cannot verify the [//item] predicate above person,
	// so the best schemaless CR must carry item inside the view trees.
	plain := mustMCR(t, q, v)
	for _, p := range plain.Union.Patterns {
		if tpq.Equivalent(p, want) {
			t.Error("schemaless MCR should not contain //Auction//person//name")
		}
	}
}

// The Figure 2 MCR must be sound and effective on real instances:
// answers through the view are query answers, and on instances where
// every Auction with a person also has an item (always true by the
// schema) the person-subtree names are all returned.
func TestFigure2OnInstances(t *testing.T) {
	g := workload.AuctionSchema()
	sc := NewSchemaContext(g)
	q := tpq.MustParse("//Auction[//item]//name")
	v := tpq.MustParse("//Auction//person")
	res, err := sc.MCRWithSchema(q, v)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	sawAnswer := false
	for i := 0; i < 60; i++ {
		d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 3, OptProb: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		inQ := make(map[*xmltree.Node]bool)
		for _, n := range q.Evaluate(d) {
			inQ[n] = true
		}
		got, err := AnswerUsingView(context.Background(), res.CRs, v, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range got {
			if !inQ[n] {
				t.Fatalf("unsound answer %s on instance\n%s", n.Path(), d.XMLString())
			}
		}
		if len(got) > 0 {
			sawAnswer = true
		}
		// Maximality on instances: every name under a person under an
		// Auction must be found.
		for _, n := range res.Union.Patterns[0].Evaluate(d) {
			if !inQ[n] {
				t.Fatalf("rewriting answer %s not a query answer", n.Path())
			}
		}
	}
	if !sawAnswer {
		t.Error("no instance produced answers; test is vacuous")
	}
}

// Figure 14 / Example 3: the view's two bids nodes are chased
// uniformly; every query node embeds into the chased view, the CAT is
// trivial, and the MCR is the identity compensation over the original
// view.
func TestFigure14IdentityCompensation(t *testing.T) {
	g := schema.MustParse(`
root Auctions
Auctions -> Auction*
Auction -> open_auction* closed_auction?
open_auction -> bids?
closed_auction -> bids?
bids -> person+ item+
item -> name+
person ->
`)
	sc := NewSchemaContext(g)
	// V = //Auction[open_auction/bids]/closed_auction/bids with the
	// closed_auction bids distinguished.
	v := tpq.New(tpq.Descendant, "Auction")
	oa := v.Root.AddChild(tpq.Child, "open_auction")
	oa.AddChild(tpq.Child, "bids")
	ca := v.Root.AddChild(tpq.Child, "closed_auction")
	vOut := ca.AddChild(tpq.Child, "bids")
	v.Output = vOut
	// Q = //Auction[//bids/person]//bids[item/name] with the second
	// bids distinguished.
	q := tpq.New(tpq.Descendant, "Auction")
	b1 := q.Root.AddChild(tpq.Descendant, "bids")
	b1.AddChild(tpq.Child, "person")
	b2 := q.Root.AddChild(tpq.Descendant, "bids")
	item := b2.AddChild(tpq.Child, "item")
	item.AddChild(tpq.Child, "name")
	q.Output = b2

	res, err := sc.MCRWithSchema(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Union.Patterns) != 1 {
		t.Fatalf("MCR = %s, want single CR", res.Union)
	}
	r := res.Union.Patterns[0]
	// The rewriting is the view itself: identity compensation.
	if !r.StructuralEqual(v) {
		t.Errorf("MCR = %s, want the view %s (identity compensation)", r, v)
	}
	if res.CRs[0].Compensation.Size() != 1 {
		t.Errorf("compensation has %d nodes, want 1 (identity)", res.CRs[0].Compensation.Size())
	}
	// The single embedding embeds away ALL query nodes (Example 3).
	if len(res.CRs[0].Embedding.M) != q.Size() {
		t.Errorf("embedding maps %d of %d query nodes", len(res.CRs[0].Embedding.M), q.Size())
	}
}

// Figure 15: under a recursive schema the MCR may again be a union; the
// Figure 9 query/view pair against a recursive schema admitting nested
// b's yields the same four CRs as the schemaless case.
func TestFigure15Recursive(t *testing.T) {
	g := schema.MustParse(`
root a
a -> b*
b -> b* c? d?
c ->
d ->
`)
	sc := NewSchemaContext(g)
	if !g.IsRecursive() {
		t.Fatal("schema should be recursive")
	}
	q := workload.Fig9Query()
	v := workload.Fig9View()
	res, err := sc.MCRRecursive(q, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Union.Patterns) != 4 {
		t.Fatalf("recursive-schema MCR has %d CRs, want 4:\n%s", len(res.Union.Patterns), res.Union)
	}
	plain := mustMCR(t, q, v)
	if !res.Union.SameAs(plain.Union) {
		t.Errorf("recursive MCR %s differs from schemaless MCR %s", res.Union, plain.Union)
	}
}

// Under a recursive schema that forbids some CR shapes, unsatisfiable
// CRs must be pruned.
func TestRecursivePrunesUnsatisfiable(t *testing.T) {
	// No d anywhere in the schema: the d-branch can never match.
	g := schema.MustParse(`
root a
a -> b*
b -> b* c?
c ->
`)
	sc := NewSchemaContext(g)
	q := workload.Fig9Query() // requires a b with a d child
	v := workload.Fig9View()
	res, err := sc.MCRRecursive(q, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Union.Empty() {
		t.Errorf("query mentions d which the schema forbids; MCR must be empty, got %s", res.Union)
	}
}

// Unsatisfiable pc-grafts must be rejected by the Definition 2 cut
// check: with V = //a//b (dV = b) and Q = //a/z* where z exists only as
// a child of a, z cannot hang below b.
func TestSchemaCutCheck(t *testing.T) {
	g := schema.MustParse(`
root a
a -> b* z?
b -> b*
z ->
`)
	sc := NewSchemaContext(g)
	q := tpq.MustParse("//a//z")
	v := tpq.MustParse("//a//b")
	// z is not reachable from b, so the clip-away graft is impossible
	// and no rewriting exists.
	if sc.AnswerableWithSchema(q, v) {
		res, _ := sc.MCRRecursive(q, v, Options{})
		t.Errorf("z cannot occur below b; expected unanswerable, got %s", res.Union)
	}
	// Make z reachable below b and it becomes answerable.
	g2 := schema.MustParse(`
root a
a -> b* z?
b -> b* z?
z ->
`)
	sc2 := NewSchemaContext(g2)
	if !sc2.AnswerableWithSchema(q, v) {
		t.Error("z below b is allowed; expected answerable")
	}
}

// Theorem 8/9: for recursion-free schemas the efficient single-CR
// algorithm agrees with full enumeration: the union of all enumerated,
// satisfiable CRs collapses (under S-containment) to the single CR.
func TestQuickSchemaSingleCRMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := workload.RandomDAGSchema(rng, 3+rng.Intn(5), 0.45)
		sc := NewSchemaContext(g)
		q := workload.RandomSchemaPattern(rng, g, 4)
		v := workload.RandomSchemaPattern(rng, g, 4)
		single, err := sc.MCRWithSchema(q, v)
		if err != nil {
			t.Logf("seed %d: %v (q=%s v=%s schema=\n%s)", seed, err, q, v, g)
			return false
		}
		all, err := sc.MCRRecursive(q, v, Options{MaxEmbeddings: 1 << 14})
		if err != nil {
			return true // enumeration blow-up: skip
		}
		if single.Union.Empty() != all.Union.Empty() {
			t.Logf("existence mismatch: single=%s all=%s (q=%s v=%s)", single.Union, all.Union, q, v)
			return false
		}
		if single.Union.Empty() {
			return true
		}
		r := single.Union.Patterns[0]
		// Every enumerated CR must be S-contained in the single CR.
		for _, p := range all.Union.Patterns {
			if !sc.SContained(p, r) {
				t.Logf("CR %s not S-contained in single CR %s (q=%s v=%s, schema:\n%s)", p, r, q, v, g)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Soundness of the schema MCR on generated instances.
func TestQuickSchemaMCRSoundOnInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := workload.RandomDAGSchema(rng, 3+rng.Intn(5), 0.45)
		sc := NewSchemaContext(g)
		q := workload.RandomSchemaPattern(rng, g, 4)
		v := workload.RandomSchemaPattern(rng, g, 4)
		res, err := sc.MCRWithSchema(q, v)
		if err != nil || res.Union.Empty() {
			return true
		}
		for i := 0; i < 4; i++ {
			d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 2})
			if err != nil {
				return true
			}
			inQ := make(map[*xmltree.Node]bool)
			for _, n := range q.Evaluate(d) {
				inQ[n] = true
			}
			for _, n := range res.Union.Evaluate(d) {
				if !inQ[n] {
					t.Logf("unsound: schema\n%s\nq=%s v=%s r=%s", g, q, v, res.Union)
					return false
				}
			}
			// And via the view, identically.
			via, err := AnswerUsingView(context.Background(), res.CRs, v, d)
			if err != nil {
				t.Logf("view answering failed: %v", err)
				return false
			}
			if !sameNodeSet(via, res.Union.Evaluate(d)) {
				t.Logf("view answering mismatch: q=%s v=%s r=%s", q, v, res.Union)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// SContained soundness: if p ⊆_S q then on conforming instances p's
// answers are a subset of q's.
func TestQuickSContainedSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := workload.RandomDAGSchema(rng, 3+rng.Intn(5), 0.45)
		sc := NewSchemaContext(g)
		p := workload.RandomSchemaPattern(rng, g, 4)
		q := workload.RandomSchemaPattern(rng, g, 4)
		if !sc.SContained(p, q) {
			return true
		}
		for i := 0; i < 4; i++ {
			d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 2})
			if err != nil {
				return true
			}
			inQ := make(map[*xmltree.Node]bool)
			for _, n := range q.Evaluate(d) {
				inQ[n] = true
			}
			for _, n := range p.Evaluate(d) {
				if !inQ[n] {
					t.Logf("SContained unsound: schema\n%s\np=%s q=%s", g, p, q)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Schema-relative containment is strictly more powerful than plain
// containment (Fig 2's rewriting is the canonical witness).
func TestSContainedStrongerThanPlain(t *testing.T) {
	sc := NewSchemaContext(workload.AuctionSchema())
	r := tpq.MustParse("//Auction//person//name")
	q := tpq.MustParse("//Auction[//item]//name")
	if tpq.Contained(r, q) {
		t.Fatal("plain containment should fail (no item witness)")
	}
	if !sc.SContained(r, q) {
		t.Fatal("S-containment should hold via Auction:person⇓item")
	}
}
