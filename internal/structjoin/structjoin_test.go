package structjoin

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

func TestEvaluateBasics(t *testing.T) {
	d := xmltree.NewDocument(xmltree.Build("PharmaLab",
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient"), xmltree.Build("Status")),
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
	))
	ix := Build(d)
	if ix.Cardinality("Trial") != 3 || ix.Cardinality("nope") != 0 {
		t.Fatalf("cardinalities wrong")
	}
	cases := []struct {
		expr string
		want int
	}{
		{"//Trials//Trial", 3},
		{"//Trials[//Status]//Trial", 2},
		{"//Trials//Trial[//Status]", 1},
		{"/PharmaLab", 1},
		{"/Trials", 0},
		{"//Trial/Patient", 3},
		{"//Trial[Status]/Patient", 1},
	}
	for _, tc := range cases {
		p := tpq.MustParse(tc.expr)
		got := evalIx(t, ix, p)
		if len(got) != tc.want {
			t.Errorf("%s: %d answers, want %d", tc.expr, len(got), tc.want)
		}
		// Agreement with the DP engine, including node identity.
		want := p.Evaluate(d)
		if !sameNodes(got, want) {
			t.Errorf("%s: engines disagree", tc.expr)
		}
	}
}

// The two engines must agree on arbitrary inputs.
func TestQuickEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		d := xmltree.Generate(rng, xmltree.GenSpec{
			Tags: alphabet, MaxDepth: 6, MaxFanout: 3, TargetSize: 40,
		})
		ix := Build(d)
		for i := 0; i < 5; i++ {
			p := workload.RandomPattern(rng, alphabet, 6)
			if !sameNodes(evalIx(t, ix, p), p.Evaluate(d)) {
				t.Logf("disagree on %s over %s", p, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateDeepChains(t *testing.T) {
	// Same-tag chains exercise the interval logic: b/b/b/b.
	root := xmltree.Build("b")
	cur := root
	for i := 0; i < 10; i++ {
		cur = cur.AddChild("b")
	}
	d := xmltree.NewDocument(root)
	ix := Build(d)
	for _, tc := range []struct {
		expr string
		want int
	}{
		{"//b", 11},
		{"//b//b", 10},
		{"//b//b//b//b//b//b//b//b//b//b//b", 1},
		{"//b/b", 10},
		{"//b[b]", 10},
	} {
		if got := len(evalIx(t, ix, tpq.MustParse(tc.expr))); got != tc.want {
			t.Errorf("%s: %d answers, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestEvaluateSiblingIntervals(t *testing.T) {
	// Two disjoint a-subtrees; descendants must not leak across.
	d := xmltree.NewDocument(xmltree.Build("r",
		xmltree.Build("a", xmltree.Build("x")),
		xmltree.Build("a", xmltree.Build("y")),
	))
	ix := Build(d)
	if got := len(evalIx(t, ix, tpq.MustParse("//a[//x]//y"))); got != 0 {
		t.Errorf("//a[//x]//y leaked across sibling subtrees: %d answers", got)
	}
	if got := len(evalIx(t, ix, tpq.MustParse("//r[//x]//y"))); got != 1 {
		t.Errorf("//r[//x]//y = %d answers, want 1", got)
	}
}

func sameNodes(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[*xmltree.Node]bool, len(a))
	for _, n := range a {
		m[n] = true
	}
	for _, n := range b {
		if !m[n] {
			return false
		}
	}
	return true
}

// evalIx runs the indexed evaluator with a background context, failing
// the test on error.
func evalIx(tb testing.TB, ix *Index, p *tpq.Pattern) []*xmltree.Node {
	tb.Helper()
	out, err := ix.Evaluate(context.Background(), p)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}
