// Package structjoin evaluates tree patterns with structural joins over
// inverted tag lists, in the style the paper's introduction cites
// (Al-Khalifa et al., Bruno et al.): every tag's occurrences are kept
// in preorder, and parent/child and ancestor/descendant steps become
// interval joins on (preorder, subtree-end) ranges.
//
// It is an alternative engine to tpq.Pattern.Evaluate — profitable when
// the pattern's tags are selective, since the work is proportional to
// the candidate lists rather than to the whole document. The two
// engines are cross-checked against each other in the tests.
package structjoin

import (
	"context"
	"sort"

	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// Index is an inverted element index over one document.
type Index struct {
	doc   *xmltree.Document
	byTag map[string][]*xmltree.Node // preorder within each list
}

// Build indexes the document. O(|D|).
func Build(d *xmltree.Document) *Index {
	ix := &Index{doc: d, byTag: make(map[string][]*xmltree.Node)}
	for _, n := range d.Nodes {
		ix.byTag[n.Tag] = append(ix.byTag[n.Tag], n)
	}
	return ix
}

// Doc returns the indexed document.
func (ix *Index) Doc() *xmltree.Document { return ix.doc }

// Cardinality returns the number of occurrences of tag.
func (ix *Index) Cardinality(tag string) int { return len(ix.byTag[tag]) }

// Evaluate computes p(doc) using bottom-up structural semi-joins over
// the tag lists followed by a top-down pass along the distinguished
// path. The answers equal tpq's Pattern.Evaluate. Each join scans tag
// lists proportional to the document, so the context is polled once
// per pattern node and a cancelled ctx aborts with its error.
func (ix *Index) Evaluate(ctx context.Context, p *tpq.Pattern) ([]*xmltree.Node, error) {
	if p.Root == nil {
		return nil, nil
	}
	qnodes := p.Nodes()
	// lists[i] holds the candidates of the pattern node at preorder
	// position i (the pattern's interval labels give O(1) positions).
	lists := make([][]*xmltree.Node, len(qnodes))

	// Bottom-up: lists[q] = nodes where q's subtree embeds.
	for i := len(qnodes) - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q := qnodes[i]
		cand := ix.byTag[q.Tag]
		for _, c := range q.Children {
			if len(cand) == 0 {
				break
			}
			cand = semiJoin(cand, lists[p.Preorder(c)], c.Axis)
		}
		lists[i] = cand
	}

	// Root axis.
	roots := lists[0]
	if p.Root.Axis == tpq.Child {
		roots = nil
		for _, n := range lists[0] {
			if n == ix.doc.Root {
				roots = append(roots, n)
			}
		}
	}

	// Top-down along the distinguished path.
	path := p.DistinguishedPath()
	cur := roots
	for _, q := range path[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur = downJoin(cur, lists[p.Preorder(q)], q.Axis)
	}
	return cur, nil
}

// semiJoin keeps the parents ∈ upper that have a witness in lower via
// the given axis. Both lists are in preorder; output preserves order.
func semiJoin(upper, lower []*xmltree.Node, axis tpq.Axis) []*xmltree.Node {
	if len(lower) == 0 {
		return nil
	}
	var out []*xmltree.Node
	switch axis {
	case tpq.Child:
		// Witness iff some lower node's parent is the upper node:
		// binary-search a sorted list of the parents' preorders.
		parents := parentIndexes(lower)
		for _, n := range upper {
			if containsInt(parents, n.Index) {
				out = append(out, n)
			}
		}
	case tpq.Descendant:
		// Witness iff some lower node lies inside (n.Index, n.end]:
		// binary search the first lower node after n in preorder.
		for _, n := range upper {
			j := sort.Search(len(lower), func(i int) bool {
				return lower[i].Index > n.Index
			})
			if j < len(lower) && n.IsAncestorOf(lower[j]) {
				out = append(out, n)
			}
		}
	}
	return out
}

// downJoin keeps the nodes ∈ lower that have a parent (Child) or
// ancestor (Descendant) in upper. Both lists are in preorder.
func downJoin(upper, lower []*xmltree.Node, axis tpq.Axis) []*xmltree.Node {
	if len(upper) == 0 || len(lower) == 0 {
		return nil
	}
	var out []*xmltree.Node
	switch axis {
	case tpq.Child:
		// upper is preorder-sorted already; binary-search it per child.
		ups := make([]int, len(upper))
		for i, n := range upper {
			ups[i] = n.Index
		}
		for _, m := range lower {
			if m.Parent != nil && containsInt(ups, m.Parent.Index) {
				out = append(out, m)
			}
		}
	case tpq.Descendant:
		// Merge the upper intervals (Index, end] into disjoint covered
		// ranges; nested intervals collapse since preorder intervals
		// nest or are disjoint.
		type span struct{ lo, hi int }
		spans := make([]span, 0, len(upper))
		for _, n := range upper { // already preorder-sorted
			s := span{n.Index + 1, n.SubtreeEnd()}
			if s.lo > s.hi {
				continue
			}
			if len(spans) > 0 && s.lo <= spans[len(spans)-1].hi+1 {
				if s.hi > spans[len(spans)-1].hi {
					spans[len(spans)-1].hi = s.hi
				}
				continue
			}
			spans = append(spans, s)
		}
		for _, m := range lower {
			k := sort.Search(len(spans), func(i int) bool {
				return spans[i].hi >= m.Index
			})
			if k < len(spans) && spans[k].lo <= m.Index {
				out = append(out, m)
			}
		}
	}
	return out
}

// parentIndexes returns the sorted distinct preorder indexes of the
// nodes' parents.
func parentIndexes(ns []*xmltree.Node) []int {
	out := make([]int, 0, len(ns))
	for _, m := range ns {
		if m.Parent != nil {
			out = append(out, m.Parent.Index)
		}
	}
	sort.Ints(out)
	// Compact duplicates in place.
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// containsInt reports membership in a sorted int slice.
func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}
