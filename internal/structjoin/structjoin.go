// Package structjoin evaluates tree patterns with structural joins over
// inverted tag lists, in the style the paper's introduction cites
// (Al-Khalifa et al., Bruno et al.): every tag's occurrences are kept
// in preorder, and parent/child and ancestor/descendant steps become
// interval joins on (preorder, subtree-end) ranges.
//
// It is an alternative engine to tpq.Pattern.Evaluate — profitable when
// the pattern's tags are selective, since the work is proportional to
// the candidate lists rather than to the whole document. The two
// engines are cross-checked against each other in the tests.
//
// Since the plan layer was introduced, this package is a façade: the
// index is a single-tree plan.Forest and evaluation delegates to the
// forest-general join core in internal/plan, which the compiled answer
// plans share. The façade keeps the historical per-document API (and
// its tests double as differential coverage of the plan joins).
package structjoin

import (
	"context"

	"qav/internal/plan"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// Index is an inverted element index over one document.
type Index struct {
	doc *xmltree.Document
	f   *plan.Forest
}

// Build indexes the document. O(|D|). The build itself is not
// cancellable (callers index once and evaluate many times); pass the
// request context to Evaluate instead.
func Build(d *xmltree.Document) *Index {
	f, err := plan.IndexDocument(context.Background(), d)
	if err != nil {
		// IndexDocument only fails on context cancellation, and the
		// Background context never cancels.
		panic("structjoin: " + err.Error())
	}
	return &Index{doc: d, f: f}
}

// Doc returns the indexed document.
func (ix *Index) Doc() *xmltree.Document { return ix.doc }

// Forest returns the underlying single-tree plan forest, so callers
// holding a structjoin index can execute compiled plans against it
// without re-indexing.
func (ix *Index) Forest() *plan.Forest { return ix.f }

// Cardinality returns the number of occurrences of tag.
func (ix *Index) Cardinality(tag string) int { return ix.f.Cardinality(tag) }

// Evaluate computes p(doc) using bottom-up structural semi-joins over
// the tag lists followed by a top-down pass along the distinguished
// path. The answers equal tpq's Pattern.Evaluate. Each join scans tag
// lists proportional to the document, so the context is polled once
// per pattern node and a cancelled ctx aborts with its error.
func (ix *Index) Evaluate(ctx context.Context, p *tpq.Pattern) ([]*xmltree.Node, error) {
	if p == nil || p.Root == nil {
		return nil, nil
	}
	return plan.EvaluateIndexed(ctx, ix.f, p)
}
