package viewstore

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

// regView registers a bare (forest-less) materialization of expr — the
// catalog only reads Expr for its signature machinery.
func regView(c *Catalog, name string, expr string) {
	c.Register(name, &Materialized{Expr: tpq.MustParse(expr)})
}

// TestCandidatesSupersetOfNonempty is the soundness differential of the
// signature index: over many random catalogs and probe queries, the
// candidate set must include EVERY view for which the rewriting layer's
// exact necessary condition (rewrite.QuerySide.NonemptyPossible)
// admits a nonempty useful embedding. False positives are allowed
// (the rewriter re-checks); a false negative would silently drop
// rewritings.
func TestCandidatesSupersetOfNonempty(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	alphabet := []string{"a", "b", "c", "d", "e"}
	catalogs := 500
	if testing.Short() {
		catalogs = 100
	}
	ctx := context.Background()
	for i := 0; i < catalogs; i++ {
		c := NewCatalog()
		n := 1 + rng.Intn(12)
		views := make(map[string]*Materialized, n)
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("v%d", j)
			m := &Materialized{Expr: workload.RandomPattern(rng, alphabet, 5)}
			views[name] = m
			c.Register(name, m)
		}
		// Churn: remove and re-register a few so swap-remove compaction
		// and slot reuse are part of the differential surface.
		for j := 0; j < n/3; j++ {
			name := fmt.Sprintf("v%d", rng.Intn(n))
			c.Remove(name)
			delete(views, name)
		}
		q := workload.RandomPattern(rng, alphabet, 5)
		got, err := c.Candidates(ctx, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		admitted := make(map[string]bool, len(got))
		for _, name := range got {
			if admitted[name] {
				t.Fatalf("catalog %d: duplicate candidate %q", i, name)
			}
			admitted[name] = true
			if views[name] == nil {
				t.Fatalf("catalog %d: candidate %q not registered", i, name)
			}
		}
		qs := rewrite.NewQuerySide(q, nil)
		for name, m := range views {
			if qs.NonemptyPossible(m.Expr) && !admitted[name] {
				t.Fatalf("catalog %d: view %q (%s) admits a nonempty embedding for %s but was pruned",
					i, name, m.Expr, q)
			}
		}
	}
}

// TestCandidatesZeroAlloc pins the prune path's allocation budget: with
// a recycled destination slice a candidate lookup performs no
// allocations at all.
func TestCandidatesZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewCatalog()
	for _, v := range workload.RandomCatalogViews(rng, 2000, 50, 6, 0.8) {
		c.Register(v.Name, &Materialized{Expr: v.Expr})
	}
	ctx := context.Background()
	for _, q := range []string{
		"/t0/t1",   // anchored: exact root-partition probe
		"//t3[t4]", // unanchored: bitmap bit-test scan
	} {
		probe := tpq.MustParse(q)
		dst := make([]string, 0, 2048)
		// Warm the pattern's lazy index caches outside the measured runs.
		if _, err := c.Candidates(ctx, probe, dst); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			var err error
			if _, err = c.Candidates(ctx, probe, dst[:0]); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("Candidates(%s): %v allocs/op, want 0", q, allocs)
		}
	}
}

// TestExtendRegisterRace exercises Extend racing Register-replace and
// Remove under -race: Extend holds the shard read lock across the
// forest append, so a replacement can never interleave mid-extend and
// the appended trees always land on the then-current registration.
func TestExtendRegisterRace(t *testing.T) {
	c := NewCatalog()
	doc := xmltree.NewDocument(xmltree.Build("a"))
	regView(c, "v", "/a")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = c.Extend("v", doc)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Register("v", &Materialized{Expr: tpq.MustParse("/a")})
		}
	}()
	wg.Wait()
	m, ok := c.Get("v")
	if !ok {
		t.Fatal("view lost")
	}
	// The final registration was either extended afterwards or not, but
	// its forest must be internally consistent with its index.
	if _, err := m.ForestIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestExtendAtomicWithReplace pins the replacement ordering the shard
// lock provides: once Register has replaced a view, a subsequent Extend
// lands on the replacement, never the stale materialization.
func TestExtendAtomicWithReplace(t *testing.T) {
	c := NewCatalog()
	old := &Materialized{Expr: tpq.MustParse("/a")}
	c.Register("v", old)
	repl := &Materialized{Expr: tpq.MustParse("/a")}
	c.Register("v", repl)
	if err := c.Extend("v", xmltree.NewDocument(xmltree.Build("a"))); err != nil {
		t.Fatal(err)
	}
	if len(old.Forest) != 0 {
		t.Fatalf("extend reached the replaced materialization (%d trees)", len(old.Forest))
	}
	if len(repl.Forest) != 1 {
		t.Fatalf("replacement forest = %d trees, want 1", len(repl.Forest))
	}
}

// TestNamesGenerationCache checks that Names re-sorts only after a
// mutation: unchanged catalogs serve the identical cached slice, and
// Extend (which does not change the name set) does not invalidate it.
func TestNamesGenerationCache(t *testing.T) {
	c := NewCatalog()
	regView(c, "b", "/x")
	regView(c, "a", "/y")
	first := c.Names()
	if len(first) != 2 || first[0] != "a" || first[1] != "b" {
		t.Fatalf("names = %v", first)
	}
	again := c.Names()
	if &first[0] != &again[0] {
		t.Error("unchanged catalog re-materialized the name list")
	}
	if err := c.Extend("a", xmltree.NewDocument(xmltree.Build("y"))); err != nil {
		t.Fatal(err)
	}
	if after := c.Names(); &first[0] != &after[0] {
		t.Error("Extend invalidated the name cache (name set is unchanged)")
	}
	gen := c.Generation()
	regView(c, "c", "/z")
	if c.Generation() == gen {
		t.Error("Register did not bump the generation")
	}
	if after := c.Names(); len(after) != 3 || after[2] != "c" {
		t.Fatalf("names after register = %v", after)
	}
	if allocs := testing.AllocsPerRun(10, func() { c.Names() }); allocs != 0 {
		t.Errorf("cached Names: %v allocs/op, want 0", allocs)
	}
}

// TestCatalogStatsAndSelect covers Stats and the ranked SelectViews
// surface: candidates only, ranked deterministically, capped at k.
func TestCatalogStatsAndSelect(t *testing.T) {
	c := NewCatalog()
	regView(c, "tight", "/a/b[c]")
	regView(c, "loose", "/a")
	regView(c, "other", "/z")
	regView(c, "deep", "//b")
	st := c.Stats()
	if st.Views != 4 || st.Shards != numShards || st.Tags == 0 {
		t.Fatalf("stats = %+v", st)
	}
	q := tpq.MustParse("/a/b[c]")
	sel, err := c.SelectViews(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected = %v", sel)
	}
	if sel[0].Name != "tight" {
		t.Fatalf("top view = %q, want \"tight\"", sel[0].Name)
	}
	for _, s := range sel {
		// A '/'-rooted query's root can only map to a '/'-rooted view
		// with the same root tag: "other" (/z) and "deep" (//b) are not
		// candidates.
		if s.Name == "other" || s.Name == "deep" {
			t.Fatalf("non-candidate %q selected", s.Name)
		}
	}
	all, err := c.SelectViews(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("uncapped selection = %v, want the 2 '/a'-rooted candidates", all)
	}
}

// TestCatalogConcurrentChurn hammers every entry point from concurrent
// goroutines; run under -race this checks the sharded locking
// discipline end to end.
func TestCatalogConcurrentChurn(t *testing.T) {
	c := NewCatalog()
	rng := rand.New(rand.NewSource(7))
	seed := workload.RandomCatalogViews(rng, 64, 8, 4, 0.7)
	for _, v := range seed {
		c.Register(v.Name, &Materialized{Expr: v.Expr})
	}
	q := tpq.MustParse("/t0/t1")
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				v := seed[r.Intn(len(seed))]
				switch i % 5 {
				case 0:
					c.Register(v.Name, &Materialized{Expr: v.Expr})
				case 1:
					c.Remove(v.Name)
				case 2:
					if _, err := c.Candidates(ctx, q, nil); err != nil {
						t.Error(err)
						return
					}
				case 3:
					c.Names()
					c.Len()
				default:
					c.Get(v.Name)
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(c.Names()); got != c.Len() {
		t.Fatalf("Names()/Len() disagree: %d vs %d", got, c.Len())
	}
}
