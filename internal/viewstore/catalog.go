package viewstore

import "sync"

// Catalog is the mediator's registry of shipped materialized views,
// safe for concurrent use: sources register views while query threads
// look them up.
type Catalog struct {
	mu sync.RWMutex
	// views is keyed by registration name.
	// guarded by mu
	views map[string]*Materialized
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{views: make(map[string]*Materialized)}
}

// Register stores m under name, replacing any previous registration.
func (c *Catalog) Register(name string, m *Materialized) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views[name] = m
}

// Get returns the view registered under name.
func (c *Catalog) Get(name string) (*Materialized, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.views[name]
	return m, ok
}

// Len returns the number of registered views.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.views)
}
