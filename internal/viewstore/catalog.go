package viewstore

import (
	"fmt"
	"sort"
	"sync"

	"qav/internal/xmltree"
)

// Catalog is the mediator's registry of shipped materialized views,
// safe for concurrent use: sources register views while query threads
// look them up. Registered views carry their compiled forest index
// (see Materialized.ForestIndex); the catalog's mutation entry points
// keep that index coherent.
type Catalog struct {
	mu sync.RWMutex
	// views is keyed by registration name.
	// guarded by mu
	views map[string]*Materialized
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{views: make(map[string]*Materialized)}
}

// Register stores m under name, replacing any previous registration.
func (c *Catalog) Register(name string, m *Materialized) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views[name] = m
}

// Get returns the view registered under name.
func (c *Catalog) Get(name string) (*Materialized, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.views[name]
	return m, ok
}

// Remove drops the registration under name, reporting whether one
// existed.
func (c *Catalog) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.views[name]
	delete(c.views, name)
	return ok
}

// Extend appends shipped trees to the named view's forest — a source
// sending an incremental update — invalidating its compiled index.
func (c *Catalog) Extend(name string, trees ...*xmltree.Document) error {
	c.mu.RLock()
	m, ok := c.views[name]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("viewstore: no view registered under %q", name)
	}
	m.Append(trees...)
	return nil
}

// Names returns the registered view names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.views))
	for name := range c.views {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered views.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.views)
}
