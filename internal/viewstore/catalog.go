package viewstore

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"qav/internal/fault"
	"qav/internal/names"
	"qav/internal/obs"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// faultLookup injects failures into the candidate-selection path, so
// chaos drills cover the signature index like every other serving
// stage.
var faultLookup = fault.Register(names.FaultCatalogLookup)

// numShards is the catalog's shard count — a power of two so the name
// hash maps by masking. 16 ways is enough to take lock contention off
// the register/lookup paths at 10⁵ views without bloating an empty
// catalog.
const numShards = 16

// entry is one registration within a shard.
type entry struct {
	m *Materialized
	// slot indexes the shard's packed sigs/names arrays; the owning
	// shard's mu guards it.
	slot int
}

// shard holds one partition of the registrations plus the packed
// signature column the candidate scan iterates. sigs and names are
// parallel: compaction on Remove swap-moves the last slot down.
type shard struct {
	mu sync.RWMutex
	// guarded by mu
	entries map[string]*entry
	// guarded by mu
	sigs []signature
	// guarded by mu
	names []string
}

// namesCache is one materialization of the sorted name list, valid for
// a single generation.
type namesCache struct {
	gen   uint64
	names []string
}

// Catalog is the mediator's registry of shipped materialized views,
// safe for concurrent use: sources register views while query threads
// look them up. Registered views carry their compiled forest index
// (see Materialized.ForestIndex); the catalog's mutation entry points
// keep that index coherent.
//
// The catalog is built for 10⁴–10⁶ registrations:
//
//   - registrations are sharded numShards ways by a hash of the name,
//     so concurrent Register/Get/Extend calls rarely contend on one
//     lock;
//   - every view carries a signature (signature.go) computed once at
//     Register time; Candidates scans the packed per-shard signature
//     columns to select the views that can possibly admit a nonempty
//     useful embedding for a query, allocation-free when the caller
//     recycles the destination slice;
//   - Len is an atomic counter and Names serves repeated calls from a
//     generation-stamped cache, re-sorting only after a mutation.
type Catalog struct {
	shards [numShards]shard
	dict   tagDict
	// count mirrors the total registration count.
	count atomic.Int64
	// gen increments on every Register/Remove (not Extend: the name set
	// is unchanged), versioning the names cache.
	gen       atomic.Uint64
	nameCache atomic.Pointer[namesCache]
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	c := &Catalog{}
	c.dict.mu.Lock()
	c.dict.ids = make(map[string]int32)
	c.dict.mu.Unlock()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*entry)
		s.mu.Unlock()
	}
	return c
}

// shardOf maps a registration name to its shard (FNV-1a, masked).
func (c *Catalog) shardOf(name string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &c.shards[h&(numShards-1)]
}

// Register stores m under name, replacing any previous registration.
// The view's signature is computed here, off the shard lock, so lookup
// threads never wait on signature construction.
func (c *Catalog) Register(name string, m *Materialized) {
	var sig signature
	if m != nil {
		sig = computeSignature(&c.dict, m.Expr)
	} else {
		sig = computeSignature(&c.dict, nil)
	}
	sh := c.shardOf(name)
	sh.mu.Lock()
	if e, ok := sh.entries[name]; ok {
		e.m = m
		sh.sigs[e.slot] = sig
	} else {
		sh.entries[name] = &entry{m: m, slot: len(sh.sigs)}
		sh.sigs = append(sh.sigs, sig)
		sh.names = append(sh.names, name)
		c.count.Add(1)
	}
	sh.mu.Unlock()
	c.gen.Add(1)
}

// Get returns the view registered under name.
func (c *Catalog) Get(name string) (*Materialized, bool) {
	sh := c.shardOf(name)
	sh.mu.RLock()
	e, ok := sh.entries[name]
	var m *Materialized
	if ok {
		m = e.m
	}
	sh.mu.RUnlock()
	return m, ok
}

// Remove drops the registration under name, reporting whether one
// existed. The vacated signature slot is compacted by swap-remove so
// the scan columns stay dense.
func (c *Catalog) Remove(name string) bool {
	sh := c.shardOf(name)
	sh.mu.Lock()
	e, ok := sh.entries[name]
	if ok {
		last := len(sh.sigs) - 1
		if e.slot != last {
			moved := sh.names[last]
			sh.sigs[e.slot] = sh.sigs[last]
			sh.names[e.slot] = moved
			sh.entries[moved].slot = e.slot
		}
		sh.sigs = sh.sigs[:last]
		sh.names = sh.names[:last]
		delete(sh.entries, name)
		c.count.Add(-1)
	}
	sh.mu.Unlock()
	if ok {
		c.gen.Add(1)
	}
	return ok
}

// Extend appends shipped trees to the named view's forest — a source
// sending an incremental update — invalidating its compiled index. The
// shard's read lock is held across the append, so an Extend can never
// land its trees on a *Materialized that a concurrent Register has
// already replaced (the replacement waits for the write lock). The
// lock order shard.mu → Materialized.mu has no reverse path:
// Materialized's methods never call back into the catalog.
func (c *Catalog) Extend(name string, trees ...*xmltree.Document) error {
	sh := c.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[name]
	if !ok || e.m == nil {
		return fmt.Errorf("viewstore: no view registered under %q", name)
	}
	e.m.Append(trees...)
	return nil
}

// Names returns the registered view names, sorted. Repeated calls on
// an unchanged catalog return the same cached slice without re-sorting;
// callers must treat it as read-only.
func (c *Catalog) Names() []string {
	gen := c.gen.Load()
	if nc := c.nameCache.Load(); nc != nil && nc.gen == gen {
		return nc.names
	}
	out := make([]string, 0, c.count.Load())
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		out = append(out, sh.names...)
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	// Publish only if no mutation raced the collection; a racing reader
	// still gets a correct (point-in-time) result, it just isn't cached.
	if c.gen.Load() == gen {
		c.nameCache.Store(&namesCache{gen: gen, names: out})
	}
	return out
}

// Len returns the number of registered views — one atomic load.
func (c *Catalog) Len() int { return int(c.count.Load()) }

// Generation returns the catalog's mutation stamp; it increments on
// every Register and Remove.
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// Candidates appends to dst the names of every view that can possibly
// admit a NONEMPTY useful embedding for q — the signature-index
// evaluation of rewrite.QuerySide.NonemptyPossible — and returns the
// extended slice. The result is a superset of the views with nonempty
// embeddings and a subset of the catalog; for a '//'-rooted query the
// excluded views still admit the trivial rewriting (whole query under
// the view output), so multi-view rewriting handles them separately in
// O(1) each.
//
// The scan takes each shard's read lock once and performs no
// allocation beyond growing dst: pass a recycled slice with sufficient
// capacity for an allocation-free lookup.
func (c *Catalog) Candidates(ctx context.Context, q *tpq.Pattern, dst []string) ([]string, error) {
	if err := faultLookup.Hit(ctx); err != nil {
		return dst, err
	}
	sp := obs.SpanFrom(ctx)
	t := sp.Start()
	p, _ := compileProbe(&c.dict, q)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for j := range sh.sigs {
			if p.admit(&sh.sigs[j]) {
				dst = append(dst, sh.names[j])
			}
		}
		sh.mu.RUnlock()
	}
	sp.Observe(obs.StageCatalogPrune, t)
	return dst, nil
}

// SelectedView is one ranked entry of SelectViews.
type SelectedView struct {
	Name string `json:"name"`
	// Score is the signature-tightness rank: tag-bitmap overlap with
	// the query, with a bonus for an exact '/'-root match and a small
	// tie-break preferring smaller (tighter) views.
	Score float64 `json:"score"`
}

// SelectViews returns the top k candidate views for q ranked by
// signature tightness — a recall/latency dial for rewriting over very
// large catalogs. k <= 0 means no cap (all candidates, still ranked).
// For a '//'-rooted query the non-candidate views each still admit the
// trivial rewriting; capping with k trades that tail for latency.
func (c *Catalog) SelectViews(ctx context.Context, q *tpq.Pattern, k int) ([]SelectedView, error) {
	if err := faultLookup.Hit(ctx); err != nil {
		return nil, err
	}
	sp := obs.SpanFrom(ctx)
	t := sp.Start()
	p, _ := compileProbe(&c.dict, q)
	qsig := querySignature(&c.dict, q)
	var out []SelectedView
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for j := range sh.sigs {
			s := &sh.sigs[j]
			if !p.admit(s) {
				continue
			}
			score := float64(overlap(&qsig, s))
			if !s.universal && s.rootChild && s.rootTag == qsig.rootTag {
				score += 2
			}
			if s.size > 0 {
				score += 1 / float64(1+s.size)
			}
			out = append(out, SelectedView{Name: sh.names[j], Score: score})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	sp.Observe(obs.StageCatalogPrune, t)
	return out, nil
}

// CatalogStats is the catalog's self-description, served by
// GET /v1/views.
type CatalogStats struct {
	// Views is the registration count.
	Views int `json:"views"`
	// Shards is the lock-partition count.
	Shards int `json:"shards"`
	// Tags is the interned tag-dictionary size.
	Tags int `json:"tags"`
	// Generation increments on every Register/Remove.
	Generation uint64 `json:"generation"`
}

// Stats returns the catalog's current statistics.
func (c *Catalog) Stats() CatalogStats {
	return CatalogStats{
		Views:      c.Len(),
		Shards:     numShards,
		Tags:       c.dict.size(),
		Generation: c.Generation(),
	}
}
