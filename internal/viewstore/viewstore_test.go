package viewstore

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

func pharma() *xmltree.Document {
	return xmltree.NewDocument(xmltree.Build("PharmaLab",
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient"), xmltree.Build("Status")),
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
	))
}

func TestMaterializeShipsCopies(t *testing.T) {
	d := pharma()
	v := tpq.MustParse("//Trials//Trial")
	m := Materialize(v, d)
	if len(m.Forest) != 3 {
		t.Fatalf("forest has %d trees, want 3", len(m.Forest))
	}
	if m.Size() != 7 { // 3 Trials + 3 Patients + 1 Status
		t.Fatalf("forest size = %d, want 7", m.Size())
	}
	// Mutating the stored forest must not touch the source.
	m.Forest[0].Root.AddChild("intruder")
	if d.Size() != 10 {
		t.Error("materialization aliased the source document")
	}
}

// Answers from the shipped forest agree (up to node identity) with
// answering against the source: the mediator loses nothing the view
// exposes.
func TestAnswerOnForestMatchesSource(t *testing.T) {
	d := pharma()
	q := tpq.MustParse("//Trials[//Status]//Trial")
	v := tpq.MustParse("//Trials//Trial")
	res, err := rewrite.MCR(q, v, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Materialize(v, d)
	got, err := m.Answer(context.Background(), res.CRs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rewrite.AnswerUsingView(context.Background(), res.CRs, v, d)
	if err != nil {
		t.Fatal(err)
	}
	if !samePathsShape(got, want) {
		t.Fatalf("forest answers %v != source answers %v", shapes(got), shapes(want))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := pharma()
	v := tpq.MustParse("//Trials//Trial")
	m := Materialize(v, d)
	var b strings.Builder
	if err := m.Write(&b); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("read back: %v\n%s", err, b.String())
	}
	if m2.Expr.String() != v.String() {
		t.Errorf("expr round trip: %s", m2.Expr)
	}
	if len(m2.Forest) != len(m.Forest) || m2.Size() != m.Size() {
		t.Fatalf("forest round trip: %d trees / %d nodes", len(m2.Forest), m2.Size())
	}
	for i := range m.Forest {
		if m.Forest[i].String() != m2.Forest[i].String() {
			t.Errorf("tree %d changed: %s vs %s", i, m.Forest[i], m2.Forest[i])
		}
	}
	// Text content survives.
	d2 := pharma()
	d2.Nodes[3].Text = "John Doe"
	m3 := Materialize(v, d2)
	var b3 strings.Builder
	if err := m3.Write(&b3); err != nil {
		t.Fatal(err)
	}
	m4, err := Read(strings.NewReader(b3.String()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range m4.Forest {
		for _, n := range tr.Nodes {
			if n.Text == "John Doe" {
				found = true
			}
		}
	}
	if !found {
		t.Error("text content lost in round trip")
	}
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{
		"<wrong/>",
		"<materialized-view/>",            // missing expr
		`<materialized-view expr="///"/>`, // bad expression
		`<materialized-view expr="//a"><bogus/></materialized-view>`,
		`<materialized-view expr="//a"><tree><a/><b/></tree></materialized-view>`,
	} {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}

// Property: for random documents and answerable query/view pairs, the
// mediator's forest answers match source-side view answering.
func TestQuickForestAnswering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		q := workload.RandomPattern(rng, alphabet, 4)
		v := workload.RandomPattern(rng, alphabet, 4)
		res, err := rewrite.MCR(q, v, rewrite.Options{MaxEmbeddings: 1 << 14})
		if err != nil || res.Union.Empty() {
			return true
		}
		for i := 0; i < 3; i++ {
			d := xmltree.Generate(rng, xmltree.GenSpec{
				Tags: alphabet, MaxDepth: 5, MaxFanout: 3, TargetSize: 25,
			})
			m := Materialize(v, d)
			got, err := m.Answer(context.Background(), res.CRs)
			if err != nil {
				return false
			}
			want, err := rewrite.AnswerUsingView(context.Background(), res.CRs, v, d)
			if err != nil {
				return false
			}
			if !samePathsShape(got, want) {
				t.Logf("q=%s v=%s d=%s:\nforest %v\nsource %v", q, v, d, shapes(got), shapes(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// shapes renders answers as the SET of structural strings rooted at
// the answer nodes; forest answers are copies, so node identity cannot
// be compared but subtree shapes can. The set (not multiset) is used:
// overlapping view answers (a view node nested under another) ship the
// same source element twice, and the mediator cannot tell the copies
// apart — an inherent artifact of shipping subtrees.
func shapes(ns []*xmltree.Node) []string {
	set := make(map[string]bool, len(ns))
	for _, n := range ns {
		set[xmltree.NewDocument(cloneSubtree(n)).String()] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func samePathsShape(a, b []*xmltree.Node) bool {
	as, bs := shapes(a), shapes(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestForestIndexCachingAndInvalidation(t *testing.T) {
	ctx := context.Background()
	d := pharma()
	v := tpq.MustParse("//Trials//Trial")
	m := Materialize(v, d)

	f1, err := m.ForestIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.ForestIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("ForestIndex rebuilt despite no mutation")
	}
	if f1.Trees() != 3 || f1.Shared() {
		t.Fatalf("Trees=%d Shared=%v", f1.Trees(), f1.Shared())
	}

	m.Invalidate()
	f3, err := m.ForestIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Fatal("Invalidate did not drop the cached index")
	}
}

func TestAppendInvalidatesAndAnswerSeesNewTrees(t *testing.T) {
	ctx := context.Background()
	d := pharma()
	q := tpq.MustParse("//Trials//Trial/Patient")
	v := tpq.MustParse("//Trials//Trial")
	res, err := rewrite.MCR(q, v, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Materialize(v, d)
	before, err := m.Answer(ctx, res.CRs)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental update from the source: one more Trial subtree.
	extra := xmltree.NewDocument(xmltree.Build("Trial", xmltree.Build("Patient")))
	m.Append(extra)
	after, err := m.Answer(ctx, res.CRs)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("answers %d -> %d after Append, want +1", len(before), len(after))
	}
	// Stable (tree, preorder) order: the appended tree's answer is last.
	if got := after[len(after)-1]; got.Parent != extra.Root {
		t.Fatalf("appended tree's Patient not last: %v", got.Path())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	d := pharma()
	v := tpq.MustParse("//Trials//Trial")
	c.Register("b-src", Materialize(v, d))
	c.Register("a-src", Materialize(v, d))
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a-src" || names[1] != "b-src" {
		t.Fatalf("Names = %v, want sorted [a-src b-src]", names)
	}
	m, ok := c.Get("a-src")
	if !ok || m == nil {
		t.Fatal("Get(a-src) missed")
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get(nope) hit")
	}
	if err := c.Extend("a-src", xmltree.NewDocument(xmltree.Build("Trial"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Extend("nope", xmltree.NewDocument(xmltree.Build("Trial"))); err == nil {
		t.Fatal("Extend(nope) succeeded")
	}
	if len(m.Forest) != 4 {
		t.Fatalf("Extend did not reach the stored view: %d trees", len(m.Forest))
	}
	if !c.Remove("b-src") || c.Remove("b-src") {
		t.Fatal("Remove semantics wrong")
	}
	if c.Len() != 1 {
		t.Fatalf("Len after Remove = %d", c.Len())
	}
}
