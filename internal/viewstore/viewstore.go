// Package viewstore implements the mediator side of the paper's
// information-integration scenario: a source evaluates the view
// expression and ships ONLY the materialized result (a forest of
// subtrees, Figure 1(b)); the mediator stores that forest and answers
// queries by applying compensation queries to it — the original
// database is never available.
package viewstore

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"qav/internal/plan"
	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// Materialized is a stored view: the view expression and the result
// forest, each tree a standalone copy of one view-answer subtree.
type Materialized struct {
	// Expr is the view expression the forest was computed with.
	Expr *tpq.Pattern
	// Forest holds one document per view answer, in document order.
	// Concurrent mutators must go through Append (or call Invalidate
	// after mutating directly) so the compiled index stays coherent.
	Forest []*xmltree.Document

	mu sync.Mutex
	// index is the compiled forest index (inverted tag lists, interval
	// labels), built lazily by ForestIndex and dropped on mutation.
	// guarded by mu
	index *plan.Forest
}

// Materialize evaluates the view on the source database and copies the
// answer subtrees out, exactly what a source would ship.
func Materialize(v *tpq.Pattern, d *xmltree.Document) *Materialized {
	m := &Materialized{Expr: v}
	for _, n := range v.Evaluate(d) {
		m.Forest = append(m.Forest, xmltree.NewDocument(cloneSubtree(n)))
	}
	return m
}

func cloneSubtree(n *xmltree.Node) *xmltree.Node {
	c := &xmltree.Node{Tag: n.Tag, Text: n.Text}
	for _, k := range n.Children {
		kc := cloneSubtree(k)
		kc.Parent = c
		c.Children = append(c.Children, kc)
	}
	return c
}

// Size returns the total number of element nodes stored.
func (m *Materialized) Size() int {
	total := 0
	for _, t := range m.Forest {
		total += t.Size()
	}
	return total
}

// ForestIndex returns the compiled plan index over the stored forest,
// building it on first use and caching it until the forest mutates
// (Append, Invalidate). The build walks the whole forest, so it is
// held under the lock — concurrent callers wait rather than duplicate
// an O(|forest|) pass — and the context is honored by the indexer.
func (m *Materialized) ForestIndex(ctx context.Context) (*plan.Forest, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.index != nil {
		return m.index, nil
	}
	f, err := plan.IndexForest(ctx, m.Forest)
	if err != nil {
		return nil, err
	}
	m.index = f
	return f, nil
}

// Invalidate drops the compiled forest index; the next ForestIndex
// call rebuilds it. Callers that mutate Forest directly must call it.
func (m *Materialized) Invalidate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.index = nil
}

// Append adds shipped trees to the forest (a source sending an
// incremental view update) and invalidates the compiled index.
func (m *Materialized) Append(trees ...*xmltree.Document) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Forest = append(m.Forest, trees...)
	m.index = nil
}

// Answer applies the contained rewritings' compensation queries to the
// stored forest and returns the answers (nodes of the stored trees).
// This is E ∘ V evaluated the way footnote 1 of §2 prescribes, with no
// access to the source database. The compensations are compiled to an
// answer plan and executed over the cached forest index; answers are
// deduplicated across CRs and returned in (tree, preorder) order —
// stable regardless of CR enumeration order (preorder indexes repeat
// across the standalone trees, so index order alone would not be).
func (m *Materialized) Answer(ctx context.Context, crs []*rewrite.ContainedRewriting) ([]*xmltree.Node, error) {
	pl, err := plan.Compile(ctx, rewrite.Compensations(crs))
	if err != nil {
		return nil, err
	}
	f, err := m.ForestIndex(ctx)
	if err != nil {
		return nil, err
	}
	res, err := pl.Exec(ctx, f, plan.ExecOptions{})
	if err != nil {
		return nil, err
	}
	return res.Nodes(), nil
}

// Write serializes the materialized view as an XML envelope:
//
//	<materialized-view expr="...">
//	  <tree> ... </tree>*
//	</materialized-view>
func (m *Materialized) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "<materialized-view expr=%q>\n", m.Expr.String()); err != nil {
		return err
	}
	for _, t := range m.Forest {
		if _, err := io.WriteString(w, "<tree>\n"); err != nil {
			return err
		}
		if err := t.WriteXML(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "</tree>\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</materialized-view>\n")
	return err
}

// Read parses a materialized view previously written with Write.
func Read(r io.Reader) (*Materialized, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	if doc.Root.Tag != "materialized-view" {
		return nil, fmt.Errorf("viewstore: unexpected root %q", doc.Root.Tag)
	}
	m := &Materialized{}
	for _, c := range doc.Root.Children {
		switch c.Tag {
		case "expr":
			p, err := tpq.Parse(strings.TrimSpace(c.Text))
			if err != nil {
				return nil, fmt.Errorf("viewstore: bad view expression: %w", err)
			}
			m.Expr = p
		case "tree":
			if len(c.Children) != 1 {
				return nil, fmt.Errorf("viewstore: tree envelope with %d roots", len(c.Children))
			}
			root := c.Children[0]
			root.Parent = nil
			m.Forest = append(m.Forest, xmltree.NewDocument(root))
		default:
			return nil, fmt.Errorf("viewstore: unexpected element %q", c.Tag)
		}
	}
	if m.Expr == nil {
		return nil, fmt.Errorf("viewstore: missing view expression")
	}
	return m, nil
}
