// Package viewstore implements the mediator side of the paper's
// information-integration scenario: a source evaluates the view
// expression and ships ONLY the materialized result (a forest of
// subtrees, Figure 1(b)); the mediator stores that forest and answers
// queries by applying compensation queries to it — the original
// database is never available.
package viewstore

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// Materialized is a stored view: the view expression and the result
// forest, each tree a standalone copy of one view-answer subtree.
type Materialized struct {
	// Expr is the view expression the forest was computed with.
	Expr *tpq.Pattern
	// Forest holds one document per view answer, in document order.
	Forest []*xmltree.Document
}

// Materialize evaluates the view on the source database and copies the
// answer subtrees out, exactly what a source would ship.
func Materialize(v *tpq.Pattern, d *xmltree.Document) *Materialized {
	m := &Materialized{Expr: v}
	for _, n := range v.Evaluate(d) {
		m.Forest = append(m.Forest, xmltree.NewDocument(cloneSubtree(n)))
	}
	return m
}

func cloneSubtree(n *xmltree.Node) *xmltree.Node {
	c := &xmltree.Node{Tag: n.Tag, Text: n.Text}
	for _, k := range n.Children {
		kc := cloneSubtree(k)
		kc.Parent = c
		c.Children = append(c.Children, kc)
	}
	return c
}

// Size returns the total number of element nodes stored.
func (m *Materialized) Size() int {
	total := 0
	for _, t := range m.Forest {
		total += t.Size()
	}
	return total
}

// Answer applies the contained rewritings' compensation queries to the
// stored forest and returns the answers (nodes of the stored trees).
// This is E ∘ V evaluated the way footnote 1 of §2 prescribes, with no
// access to the source database.
func (m *Materialized) Answer(crs []*rewrite.ContainedRewriting) []*xmltree.Node {
	var out []*xmltree.Node
	seen := make(map[*xmltree.Node]bool)
	for _, cr := range crs {
		comp := cr.Compensation.Prepare()
		for _, tree := range m.Forest {
			for _, n := range comp.EvaluateAt(tree, tree.Root) {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		return out[i].Path() < out[j].Path()
	})
	return out
}

// Write serializes the materialized view as an XML envelope:
//
//	<materialized-view expr="...">
//	  <tree> ... </tree>*
//	</materialized-view>
func (m *Materialized) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "<materialized-view expr=%q>\n", m.Expr.String()); err != nil {
		return err
	}
	for _, t := range m.Forest {
		if _, err := io.WriteString(w, "<tree>\n"); err != nil {
			return err
		}
		if err := t.WriteXML(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "</tree>\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</materialized-view>\n")
	return err
}

// Read parses a materialized view previously written with Write.
func Read(r io.Reader) (*Materialized, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	if doc.Root.Tag != "materialized-view" {
		return nil, fmt.Errorf("viewstore: unexpected root %q", doc.Root.Tag)
	}
	m := &Materialized{}
	for _, c := range doc.Root.Children {
		switch c.Tag {
		case "expr":
			p, err := tpq.Parse(strings.TrimSpace(c.Text))
			if err != nil {
				return nil, fmt.Errorf("viewstore: bad view expression: %w", err)
			}
			m.Expr = p
		case "tree":
			if len(c.Children) != 1 {
				return nil, fmt.Errorf("viewstore: tree envelope with %d roots", len(c.Children))
			}
			root := c.Children[0]
			root.Parent = nil
			m.Forest = append(m.Forest, xmltree.NewDocument(root))
		default:
			return nil, fmt.Errorf("viewstore: unexpected element %q", c.Tag)
		}
	}
	if m.Expr == nil {
		return nil, fmt.Errorf("viewstore: missing view expression")
	}
	return m, nil
}
