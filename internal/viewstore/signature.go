package viewstore

import (
	"math/bits"
	"sync"

	"qav/internal/tpq"
)

// This file implements the catalog's per-view signatures: a few words
// of metadata computed once at Register time that let the multi-view
// rewriter discard most of a 10⁴–10⁶-view catalog without touching the
// view patterns. The filter evaluates the NECESSARY root-image
// condition of the useful-embedding machinery (rewrite.QuerySide
// .NonemptyPossible):
//
//   - a '/t'-rooted query's root can only map to the root of a
//     '/t'-rooted view, so the probe is an exact (rootChild, rootTag)
//     comparison — effectively a partition of the catalog by root tag;
//   - a '//t'-rooted query's root can map to any view node tagged t,
//     so the probe is one bit test against a 256-bit tag bitmap (a
//     single-hash bloom filter over the interned tag dictionary; the
//     word-AND shape keeps a full-shard scan branch-light and
//     SIMD-friendly).
//
// False positives are fine (the rewriter re-checks), false negatives
// are impossible: the dictionary interns every tag of every registered
// view, so a query tag absent from the dictionary occurs in no view,
// and a present tag always has its bit set in the signatures of the
// views containing it.

// sigWords is the tag bitmap width in 64-bit words (256 bits; a tag id
// maps to bit id mod 256).
const sigWords = 4

// tagDict interns tag strings to dense int32 ids, shared by all shards
// of one catalog so signatures are comparable across shards.
type tagDict struct {
	mu sync.RWMutex
	// ids assigns dense ids in interning order.
	// guarded by mu
	ids map[string]int32
}

// intern returns the id of tag, assigning the next dense id on first
// sight.
func (d *tagDict) intern(tag string) int32 {
	d.mu.RLock()
	id, ok := d.ids[tag]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.ids[tag]; ok {
		return id
	}
	id = int32(len(d.ids))
	d.ids[tag] = id
	return id
}

// lookup returns the id of tag without interning. The miss case is the
// filter's strongest verdict: a tag no registered view contains.
func (d *tagDict) lookup(tag string) (int32, bool) {
	d.mu.RLock()
	id, ok := d.ids[tag]
	d.mu.RUnlock()
	return id, ok
}

// size returns the number of interned tags.
func (d *tagDict) size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ids)
}

// signature is one view's filter record, packed so a shard's signatures
// form a flat scannable slice.
type signature struct {
	// words is the tag bitmap: bit (id mod 256) is set for every tag id
	// occurring in the view.
	words [sigWords]uint64
	// rootTag is the interned id of the view's root tag (-1 when
	// universal).
	rootTag int32
	// height, outDepth and size bound the view's shape, used by
	// SelectViews for tightness ranking.
	height   int32
	outDepth int32
	size     int32
	// rootChild reports a '/'-rooted view.
	rootChild bool
	// universal marks a view the filter must never exclude (rootless or
	// wildcard patterns, whose root images the signature cannot bound).
	universal bool
}

// setBit sets the bitmap bit for one interned tag id.
func (s *signature) setBit(id int32) {
	b := uint32(id) & (sigWords*64 - 1)
	s.words[b>>6] |= 1 << (b & 63)
}

// hasBit reports whether the bitmap bit for id is set.
func (s *signature) hasBit(id int32) bool {
	b := uint32(id) & (sigWords*64 - 1)
	return s.words[b>>6]&(1<<(b&63)) != 0
}

// computeSignature derives the signature of a view pattern, interning
// its tags into d. Runs once per Register, off the shard lock.
func computeSignature(d *tagDict, v *tpq.Pattern) signature {
	s := signature{rootTag: -1, outDepth: -1}
	if v == nil || v.Root == nil || v.HasWildcard() {
		s.universal = true
		return s
	}
	nodes := v.PreorderNodes()
	for _, n := range nodes {
		s.setBit(d.intern(n.Tag))
	}
	s.rootTag = d.intern(v.Root.Tag)
	s.rootChild = v.Root.Axis == tpq.Child
	s.height = int32(v.Height())
	s.outDepth = int32(v.OutputDepth())
	s.size = int32(len(nodes))
	return s
}

// probe is one compiled candidate test, built once per lookup from the
// query root and evaluated against every signature of a shard.
type probe struct {
	// all short-circuits the scan to "every view" (wildcard or rootless
	// query roots, which the filter cannot bound).
	all bool
	// none short-circuits to "no non-universal view" (query root tag
	// absent from the dictionary).
	none bool
	// child selects the exact root partition (rootChild && rootTag==id);
	// otherwise the probe is the bitmap bit test for id.
	child bool
	id    int32
}

// compileProbe derives the candidate test for query q. The bool result
// reports whether q has a root to probe with.
func compileProbe(d *tagDict, q *tpq.Pattern) (probe, bool) {
	if q == nil || q.Root == nil {
		return probe{all: true}, false
	}
	if q.Root.Tag == tpq.Wildcard {
		return probe{all: true}, true
	}
	id, ok := d.lookup(q.Root.Tag)
	if !ok {
		return probe{none: true}, true
	}
	return probe{child: q.Root.Axis == tpq.Child, id: id}, true
}

// admit evaluates the probe against one signature.
func (p probe) admit(s *signature) bool {
	if s.universal || p.all {
		return !p.none || s.universal
	}
	if p.none {
		return false
	}
	if p.child {
		return s.rootChild && s.rootTag == p.id
	}
	return s.hasBit(p.id)
}

// overlap counts the tag-bitmap bits shared by two signatures — the
// tightness core of the SelectViews ranking.
func overlap(a, b *signature) int {
	n := 0
	for i := range a.words {
		n += bits.OnesCount64(a.words[i] & b.words[i])
	}
	return n
}

// querySignature builds the query-side bitmap for ranking: lookups
// only, so ranking a query never grows the dictionary.
func querySignature(d *tagDict, q *tpq.Pattern) signature {
	s := signature{rootTag: -1, outDepth: -1}
	if q == nil || q.Root == nil {
		return s
	}
	nodes := q.PreorderNodes()
	for _, n := range nodes {
		if id, ok := d.lookup(n.Tag); ok {
			s.setBit(id)
		}
	}
	if id, ok := d.lookup(q.Root.Tag); ok {
		s.rootTag = id
	}
	s.rootChild = q.Root.Axis == tpq.Child
	s.height = int32(q.Height())
	s.outDepth = int32(q.OutputDepth())
	s.size = int32(len(nodes))
	return s
}
