package schema

import (
	"errors"
	"fmt"

	"qav/internal/tpq"
)

// ErrUnsatisfiable is the sentinel wrapped by every error returned from
// ExplainUnsatisfiable; callers can test for it with errors.Is.
var ErrUnsatisfiable = errors.New("schema: unsatisfiable pattern")

// Satisfiable reports whether the pattern has a total embedding into the
// schema graph (Theorem 7(ii) of the paper): each pattern node maps to
// the schema node with its tag, pc-edges must be schema edges, ad-edges
// must be realizable as non-empty schema paths, and the pattern root
// must be the schema root (for "/t") or reachable from it (for "//t",
// where the schema root itself qualifies).
//
// A pattern that is not satisfiable w.r.t. the schema returns the empty
// answer on every conforming instance.
func (g *Graph) Satisfiable(p *tpq.Pattern) bool {
	return g.explainUnsatisfiable(p) == nil
}

// ExplainUnsatisfiable returns nil if the pattern is satisfiable w.r.t.
// the schema, and otherwise an error describing the first violated
// structural requirement. Useful for diagnostics in tools.
func (g *Graph) ExplainUnsatisfiable(p *tpq.Pattern) error {
	return g.explainUnsatisfiable(p)
}

func (g *Graph) explainUnsatisfiable(p *tpq.Pattern) error {
	if p.Root == nil {
		return fmt.Errorf("%w: empty pattern", ErrUnsatisfiable)
	}
	root := p.Root
	if root.Axis == tpq.Child {
		if root.Tag != g.Root {
			return fmt.Errorf("%w: pattern root /%s but schema root is %s", ErrUnsatisfiable, root.Tag, g.Root)
		}
	} else {
		if root.Tag != g.Root && !g.Reachable(g.Root, root.Tag) {
			return fmt.Errorf("%w: no %s element can occur in instances", ErrUnsatisfiable, root.Tag)
		}
	}
	for _, n := range p.Nodes() {
		if !g.HasTag(n.Tag) {
			return fmt.Errorf("%w: tag %q not declared", ErrUnsatisfiable, n.Tag)
		}
		for _, c := range n.Children {
			switch c.Axis {
			case tpq.Child:
				if _, ok := g.EdgeBetween(n.Tag, c.Tag); !ok {
					return fmt.Errorf("%w: %q cannot be a child of %q", ErrUnsatisfiable, c.Tag, n.Tag)
				}
			case tpq.Descendant:
				if !g.Reachable(n.Tag, c.Tag) {
					return fmt.Errorf("%w: %q cannot be a descendant of %q", ErrUnsatisfiable, c.Tag, n.Tag)
				}
			}
		}
	}
	return nil
}
