package schema

import (
	"fmt"
	"math/rand"

	"qav/internal/xmltree"
)

// ValidateDocument checks that d conforms to the schema (d ∈ inst(S)):
// the root carries the schema's root tag, every element's children are
// declared subelements of its tag, and the child multiplicities respect
// the edge quantifiers ('1': exactly one, '+': at least one, '?': at
// most one, '*': any number).
func (g *Graph) ValidateDocument(d *xmltree.Document) error {
	if d.Root == nil {
		return fmt.Errorf("schema: empty document")
	}
	if d.Root.Tag != g.Root {
		return fmt.Errorf("schema: document root %q, schema root %q", d.Root.Tag, g.Root)
	}
	for _, n := range d.Nodes {
		edges := g.nodes[n.Tag]
		if edges == nil && !g.HasTag(n.Tag) {
			return fmt.Errorf("schema: element %q not declared", n.Tag)
		}
		counts := make(map[string]int)
		for _, c := range n.Children {
			if _, ok := g.EdgeBetween(n.Tag, c.Tag); !ok {
				return fmt.Errorf("schema: %q is not a declared child of %q (at %s)", c.Tag, n.Tag, n.Path())
			}
			counts[c.Tag]++
		}
		for _, e := range edges {
			c := counts[e.Child]
			if e.Quant.Guaranteed() && c == 0 {
				return fmt.Errorf("schema: %q requires a %q child (quantifier %s) at %s", n.Tag, e.Child, e.Quant, n.Path())
			}
			if e.Quant.AtMostOne() && c > 1 {
				return fmt.Errorf("schema: %q allows at most one %q child (quantifier %s) at %s, got %d", n.Tag, e.Child, e.Quant, n.Path(), c)
			}
		}
	}
	return nil
}

// InstanceSpec controls random conforming-instance generation.
type InstanceSpec struct {
	// MaxRepeat bounds how many copies a '+' or '*' edge may produce
	// (default 3).
	MaxRepeat int
	// MaxDepth bounds recursion depth: below it, optional edges are
	// dropped and repeated edges produce the minimum count (default 12).
	// Generation fails if a mandatory edge would exceed the bound, which
	// can only happen for schemas whose cycles contain guaranteed edges.
	MaxDepth int
	// OptProb is the probability of materializing a '?' or the optional
	// part of a '*' edge (default 0.5).
	OptProb float64
}

// RandomInstance generates a random document conforming to the schema.
func (g *Graph) RandomInstance(rng *rand.Rand, spec InstanceSpec) (*xmltree.Document, error) {
	if spec.MaxRepeat <= 0 {
		spec.MaxRepeat = 3
	}
	if spec.MaxDepth <= 0 {
		spec.MaxDepth = 12
	}
	if spec.OptProb <= 0 {
		spec.OptProb = 0.5
	}
	var build func(tag string, depth int) (*xmltree.Node, error)
	build = func(tag string, depth int) (*xmltree.Node, error) {
		n := &xmltree.Node{Tag: tag}
		for _, e := range g.nodes[tag] {
			count := 0
			switch e.Quant {
			case One:
				count = 1
			case Plus:
				count = 1 + rng.Intn(spec.MaxRepeat)
			case Opt:
				if rng.Float64() < spec.OptProb {
					count = 1
				}
			case Star:
				if rng.Float64() < spec.OptProb {
					count = 1 + rng.Intn(spec.MaxRepeat)
				}
			}
			if depth >= spec.MaxDepth {
				if e.Quant.Guaranteed() {
					count = 1
					if depth > spec.MaxDepth+g.Size() {
						return nil, fmt.Errorf("schema: cannot close instance: mandatory cycle through %q", tag)
					}
				} else {
					count = 0
				}
			}
			for i := 0; i < count; i++ {
				c, err := build(e.Child, depth+1)
				if err != nil {
					return nil, err
				}
				c.Parent = n
				n.Children = append(n.Children, c)
			}
		}
		return n, nil
	}
	root, err := build(g.Root, 0)
	if err != nil {
		return nil, err
	}
	return xmltree.NewDocument(root), nil
}
