// Package schema implements the schema graphs of the paper (§2): directed
// graphs with one node per element tag and edges labeled by the
// quantifiers '1' (one, the default), '+' (one or more), '?' (zero or
// one), and '*' (zero or more). Schema graphs model DTDs and a core
// fragment of XML Schema structure.
//
// Like the paper's algorithms, the package assumes one schema node per
// tag and no union types; recursion (cycles) is permitted and detected,
// since §5 of the paper discusses recursive schemas.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Quantifier is an edge label of a schema graph.
type Quantifier uint8

const (
	// One: exactly one occurrence (the default, usually unlabeled).
	One Quantifier = iota
	// Plus: one or more occurrences.
	Plus
	// Opt: zero or one occurrence.
	Opt
	// Star: zero or more occurrences.
	Star
)

func (q Quantifier) String() string {
	switch q {
	case One:
		return "1"
	case Plus:
		return "+"
	case Opt:
		return "?"
	default:
		return "*"
	}
}

// Guaranteed reports whether the quantifier forces at least one
// occurrence ('1' or '+'). Paths all of whose edges are guaranteed are
// the paper's "guaranteed paths".
func (q Quantifier) Guaranteed() bool { return q == One || q == Plus }

// AtMostOne reports whether the quantifier forbids repetition ('1', '?').
func (q Quantifier) AtMostOne() bool { return q == One || q == Opt }

// Edge is a subelement edge of the schema graph.
type Edge struct {
	Child string
	Quant Quantifier
}

// Graph is a schema graph. The zero value is empty; use New or Parse.
type Graph struct {
	// Root is the tag of the document root element.
	Root string
	// tags in insertion order, for deterministic iteration.
	order []string
	nodes map[string][]Edge
}

// New creates an empty schema graph with the given root tag. The root
// tag is registered as a node immediately.
func New(root string) *Graph {
	g := &Graph{Root: root, nodes: make(map[string][]Edge)}
	g.ensure(root)
	return g
}

func (g *Graph) ensure(tag string) {
	if _, ok := g.nodes[tag]; !ok {
		g.nodes[tag] = nil
		g.order = append(g.order, tag)
	}
}

// AddEdge declares child as a subelement of parent with the given
// quantifier. Both tags are registered as nodes. Declaring the same
// (parent, child) pair twice is an error, mirroring DTD element
// declarations.
func (g *Graph) AddEdge(parent, child string, q Quantifier) error {
	g.ensure(parent)
	g.ensure(child)
	for _, e := range g.nodes[parent] {
		if e.Child == child {
			return fmt.Errorf("schema: duplicate edge %s -> %s", parent, child)
		}
	}
	g.nodes[parent] = append(g.nodes[parent], Edge{Child: child, Quant: q})
	return nil
}

// MustAddEdge is AddEdge panicking on error, for static literals.
func (g *Graph) MustAddEdge(parent, child string, q Quantifier) {
	if err := g.AddEdge(parent, child, q); err != nil {
		panic(err)
	}
}

// Tags returns all node tags in insertion order.
func (g *Graph) Tags() []string { return g.order }

// Size returns |S|, the number of nodes.
func (g *Graph) Size() int { return len(g.order) }

// Edges returns the outgoing edges of tag (nil if unknown).
func (g *Graph) Edges(tag string) []Edge { return g.nodes[tag] }

// HasTag reports whether tag is a node of the schema.
func (g *Graph) HasTag(tag string) bool {
	_, ok := g.nodes[tag]
	return ok
}

// EdgeBetween returns the edge parent->child and whether it exists.
func (g *Graph) EdgeBetween(parent, child string) (Edge, bool) {
	for _, e := range g.nodes[parent] {
		if e.Child == child {
			return e, true
		}
	}
	return Edge{}, false
}

// Parents returns the tags with an edge into child, sorted.
func (g *Graph) Parents(child string) []string {
	var out []string
	for _, tag := range g.order {
		if _, ok := g.EdgeBetween(tag, child); ok {
			out = append(out, tag)
		}
	}
	sort.Strings(out)
	return out
}

// IsRecursive reports whether the schema graph contains a cycle.
func (g *Graph) IsRecursive() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.order))
	var visit func(string) bool
	visit = func(t string) bool {
		color[t] = gray
		for _, e := range g.nodes[t] {
			switch color[e.Child] {
			case gray:
				return true
			case white:
				if visit(e.Child) {
					return true
				}
			}
		}
		color[t] = black
		return false
	}
	for _, t := range g.order {
		if color[t] == white && visit(t) {
			return true
		}
	}
	return false
}

// InCycle reports whether tag lies on some cycle (there is a non-empty
// path from tag to itself). Used by the §5 recursive-schema PC
// inference.
func (g *Graph) InCycle(tag string) bool {
	// DFS from tag looking for tag again.
	seen := make(map[string]bool)
	var visit func(string) bool
	visit = func(t string) bool {
		for _, e := range g.nodes[t] {
			if e.Child == tag {
				return true
			}
			if !seen[e.Child] {
				seen[e.Child] = true
				if visit(e.Child) {
					return true
				}
			}
		}
		return false
	}
	return visit(tag)
}

// Reachable reports whether there is a non-empty path from a to b.
func (g *Graph) Reachable(a, b string) bool {
	seen := make(map[string]bool)
	var visit func(string) bool
	visit = func(t string) bool {
		for _, e := range g.nodes[t] {
			if e.Child == b {
				return true
			}
			if !seen[e.Child] {
				seen[e.Child] = true
				if visit(e.Child) {
					return true
				}
			}
		}
		return false
	}
	return visit(a)
}

// Validate checks that the root is registered and all edges reference
// known tags (always true by construction) and that the root has no
// incoming edges in a non-recursive schema. It returns nil for usable
// schemas.
func (g *Graph) Validate() error {
	if g.Root == "" {
		return fmt.Errorf("schema: no root tag")
	}
	if !g.HasTag(g.Root) {
		return fmt.Errorf("schema: root tag %q not declared", g.Root)
	}
	return nil
}

// String renders the schema in the DSL accepted by Parse.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root %s\n", g.Root)
	for _, tag := range g.order {
		edges := g.nodes[tag]
		if len(edges) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s ->", tag)
		for _, e := range edges {
			b.WriteByte(' ')
			b.WriteString(e.Child)
			if e.Quant != One {
				b.WriteString(e.Quant.String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Clone returns a deep copy of the schema graph.
func (g *Graph) Clone() *Graph {
	c := New(g.Root)
	for _, tag := range g.order {
		c.ensure(tag)
		c.nodes[tag] = append([]Edge(nil), g.nodes[tag]...)
	}
	return c
}
