package schema

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// auctionDSL is the schema of Figure 2(a) in the paper.
const auctionDSL = `
root Auctions
Auctions -> Auction*
Auction  -> open_auction* closed_auction?
open_auction -> item bids?
closed_auction -> item person? buyer?
bids  -> person+
buyer -> person
person -> name
item  -> name
`

func TestParseAuctionSchema(t *testing.T) {
	g := MustParse(auctionDSL)
	if g.Root != "Auctions" {
		t.Fatalf("root = %q", g.Root)
	}
	if g.Size() != 9 {
		t.Fatalf("size = %d, want 9", g.Size())
	}
	e, ok := g.EdgeBetween("Auction", "closed_auction")
	if !ok || e.Quant != Opt {
		t.Errorf("Auction->closed_auction = %v %v", e, ok)
	}
	e, ok = g.EdgeBetween("bids", "person")
	if !ok || e.Quant != Plus {
		t.Errorf("bids->person = %v %v", e, ok)
	}
	e, ok = g.EdgeBetween("open_auction", "item")
	if !ok || e.Quant != One {
		t.Errorf("open_auction->item = %v %v", e, ok)
	}
	if _, ok := g.EdgeBetween("person", "item"); ok {
		t.Error("phantom edge person->item")
	}
	if g.IsRecursive() {
		t.Error("auction schema is not recursive")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"a -> b",                 // missing root line
		"root r\nx : y",          // bad arrow
		"root r\nr -> b b",       // duplicate edge
		"root r\n -> b",          // empty parent
		"root r\nr -> +",         // empty child tag
		"root two words\nr -> b", // bad root
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else if !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) error %v does not wrap ErrParse", src, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	g := MustParse(auctionDSL)
	g2, err := Parse(g.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if g2.String() != g.String() {
		t.Errorf("round trip changed schema:\n%s\nvs\n%s", g.String(), g2.String())
	}
}

func TestRecursionDetection(t *testing.T) {
	g := MustParse("root a\na -> b*\nb -> a? c\nc -> d")
	if !g.IsRecursive() {
		t.Error("cycle a->b->a not detected")
	}
	if !g.InCycle("a") || !g.InCycle("b") {
		t.Error("a and b are in a cycle")
	}
	if g.InCycle("c") || g.InCycle("d") {
		t.Error("c, d are not in a cycle")
	}
}

func TestReachable(t *testing.T) {
	g := MustParse(auctionDSL)
	cases := []struct {
		a, b string
		want bool
	}{
		{"Auctions", "name", true},
		{"Auction", "person", true},
		{"person", "Auction", false},
		{"item", "name", true},
		{"name", "name", false},
		{"buyer", "name", true},
	}
	for _, c := range cases {
		if got := g.Reachable(c.a, c.b); got != c.want {
			t.Errorf("Reachable(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Self-reachability requires a cycle.
	r := MustParse("root a\na -> a?")
	if !r.Reachable("a", "a") {
		t.Error("a->a edge means a reaches itself")
	}
}

func TestParents(t *testing.T) {
	g := MustParse(auctionDSL)
	got := g.Parents("person")
	want := []string{"bids", "buyer", "closed_auction"}
	if len(got) != len(want) {
		t.Fatalf("Parents(person) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Parents(person) = %v, want %v", got, want)
		}
	}
}

func TestRandomInstanceConforms(t *testing.T) {
	g := MustParse(auctionDSL)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		d, err := g.RandomInstance(rng, InstanceSpec{MaxRepeat: 3, MaxDepth: 10})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.ValidateDocument(d); err != nil {
			t.Fatalf("generated instance does not conform: %v\n%s", err, d.XMLString())
		}
	}
}

func TestRandomInstanceRecursiveSchema(t *testing.T) {
	g := MustParse("root a\na -> b*\nb -> a? c\nc ->")
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		d, err := g.RandomInstance(rng, InstanceSpec{MaxDepth: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.ValidateDocument(d); err != nil {
			t.Fatalf("recursive instance invalid: %v", err)
		}
	}
}

func TestRandomInstanceMandatoryCycleFails(t *testing.T) {
	g := MustParse("root a\na -> b\nb -> a")
	if _, err := g.RandomInstance(rand.New(rand.NewSource(1)), InstanceSpec{MaxDepth: 4}); err == nil {
		t.Error("mandatory cycle should be ungeneratable")
	}
}

func TestValidateDocumentViolations(t *testing.T) {
	g := MustParse(auctionDSL)
	cases := []struct {
		name string
		xml  string
		ok   bool
	}{
		{"wrong root", "<Auction/>", false},
		{"undeclared child", "<Auctions><item><name/></item></Auctions>", false},
		{"missing mandatory item", "<Auctions><Auction><open_auction><bids><person><name/></person></bids></open_auction></Auction></Auctions>", false},
		{"two closed_auctions", "<Auctions><Auction><closed_auction><item><name/></item></closed_auction><closed_auction><item><name/></item></closed_auction></Auction></Auctions>", false},
		{"minimal valid", "<Auctions/>", true},
		{"valid with one open_auction", "<Auctions><Auction><open_auction><item><name/></item></open_auction></Auction></Auctions>", true},
	}
	for _, c := range cases {
		d := mustDoc(t, c.xml)
		err := g.ValidateDocument(d)
		if (err == nil) != c.ok {
			t.Errorf("%s: ValidateDocument err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSatisfiable(t *testing.T) {
	g := MustParse(auctionDSL)
	cases := []struct {
		expr string
		want bool
	}{
		{"//Auction//person", true},
		{"//Auction[//item]//name", true},
		{"/Auctions//name", true},
		{"/Auction//name", false},    // Auction is not the schema root
		{"//person//Auction", false}, // Auction below person impossible
		{"//Auction/person", false},  // person is not a direct child of Auction
		{"//Auction/open_auction", true},
		{"//widget", false},  // unknown tag
		{"//Auctions", true}, // root tag via '//' qualifies
		{"//bids[person]//name", true},
	}
	for _, c := range cases {
		p := tpq.MustParse(c.expr)
		if got := g.Satisfiable(p); got != c.want {
			t.Errorf("Satisfiable(%s) = %v, want %v (%v)", c.expr, got, c.want, g.ExplainUnsatisfiable(p))
		}
		if err := g.ExplainUnsatisfiable(p); (err == nil) != c.want {
			t.Errorf("ExplainUnsatisfiable(%s) = %v, want nil=%v", c.expr, err, c.want)
		} else if err != nil && !errors.Is(err, ErrUnsatisfiable) {
			t.Errorf("ExplainUnsatisfiable(%s) error %v does not wrap ErrUnsatisfiable", c.expr, err)
		}
	}
}

// Satisfiability must agree with evaluability on random instances: if a
// pattern matches some generated instance, it is satisfiable.
func TestSatisfiableSoundOnInstances(t *testing.T) {
	g := MustParse(auctionDSL)
	rng := rand.New(rand.NewSource(77))
	pats := []*tpq.Pattern{
		tpq.MustParse("//Auction//person"),
		tpq.MustParse("//Auction[//item]//name"),
		tpq.MustParse("//Auction/person"),
		tpq.MustParse("//bids/person/name"),
		tpq.MustParse("//closed_auction/buyer//name"),
	}
	for i := 0; i < 40; i++ {
		d, err := g.RandomInstance(rng, InstanceSpec{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pats {
			if len(p.Evaluate(d)) > 0 && !g.Satisfiable(p) {
				t.Fatalf("pattern %s matched an instance but is reported unsatisfiable", p)
			}
		}
	}
}

func TestClone(t *testing.T) {
	g := MustParse(auctionDSL)
	c := g.Clone()
	c.MustAddEdge("name", "extra", Star)
	if g.HasTag("extra") {
		t.Error("mutating clone affected original")
	}
	if !strings.Contains(c.String(), "extra") {
		t.Error("clone missing added edge")
	}
}

func mustDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return d
}
