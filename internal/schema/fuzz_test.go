package schema

import "testing"

// FuzzParse checks the schema DSL parser never panics and accepted
// schemas survive a print/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("root a\na -> b* c?\nb -> d+\n")
	f.Add("root Auctions\nAuctions -> Auction*\n")
	f.Add("root a\na -> a?\n")
	f.Add("root a\n# comment\na -> b")
	f.Add("a -> b")
	f.Add("root a\na ->")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Parse accepted invalid schema: %v", err)
		}
		g2, err := Parse(g.String())
		if err != nil {
			t.Fatalf("round trip of\n%s\nfailed: %v", g.String(), err)
		}
		if g2.String() != g.String() {
			t.Fatalf("round trip changed schema:\n%s\nvs\n%s", g.String(), g2.String())
		}
		_ = g.IsRecursive()
	})
}
