package schema

import (
	"errors"
	"fmt"
	"strings"
)

// ErrParse is the sentinel wrapped by every error returned from Parse;
// callers can test for it with errors.Is without matching message text.
var ErrParse = errors.New("schema: parse error")

// Parse reads a schema graph from a small text DSL:
//
//	root Auctions
//	Auctions -> Auction*
//	Auction  -> open_auction* closed_auction?
//	open_auction -> item bids?
//
// Each line declares the children of one element; a child tag may be
// suffixed by one of '+', '?', '*' (default quantifier is '1').
// Blank lines and '#' comments are ignored. The "root" line is
// mandatory and must come first.
func Parse(src string) (*Graph, error) {
	var g *Graph
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if g == nil {
			rest, ok := strings.CutPrefix(line, "root ")
			if !ok {
				return nil, fmt.Errorf("%w: line %d: expected 'root <tag>' first", ErrParse, lineNo+1)
			}
			tag := strings.TrimSpace(rest)
			if tag == "" || strings.ContainsAny(tag, " \t") {
				return nil, fmt.Errorf("%w: line %d: bad root tag %q", ErrParse, lineNo+1, rest)
			}
			g = New(tag)
			continue
		}
		parent, rhs, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: expected '<tag> -> children'", ErrParse, lineNo+1)
		}
		parent = strings.TrimSpace(parent)
		if parent == "" {
			return nil, fmt.Errorf("%w: line %d: empty parent tag", ErrParse, lineNo+1)
		}
		for _, field := range strings.Fields(rhs) {
			child, q, err := splitQuant(field)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %w", ErrParse, lineNo+1, err)
			}
			if err := g.AddEdge(parent, child, q); err != nil {
				return nil, fmt.Errorf("%w: line %d: %w", ErrParse, lineNo+1, err)
			}
		}
	}
	if g == nil {
		return nil, fmt.Errorf("%w: empty input", ErrParse)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	return g, nil
}

// MustParse is Parse panicking on error, for static literals in tests
// and examples.
func MustParse(src string) *Graph {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

func splitQuant(field string) (string, Quantifier, error) {
	q := One
	switch field[len(field)-1] {
	case '+':
		q = Plus
	case '?':
		q = Opt
	case '*':
		q = Star
	case '1':
		// Bare tags may end in digits; only strip an explicit trailing
		// quantifier character, and '1' is never stripped.
	}
	if q != One {
		field = field[:len(field)-1]
	}
	if field == "" {
		return "", One, fmt.Errorf("empty child tag")
	}
	return field, q, nil
}
