package server

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qav/internal/engine"
	"qav/internal/fault"
	"qav/internal/leaktest"
	"qav/internal/limits"
	"qav/internal/workload"
)

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: non-JSON response %q", path, rec.Body.String())
	}
	return rec, out
}

func TestHealthz(t *testing.T) {
	h := New()
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

func TestRewriteEndpoint(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/rewrite",
		`{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out["answerable"] != true {
		t.Fatalf("answerable = %v", out["answerable"])
	}
	if !strings.Contains(out["union"].(string), "//Trials//Trial[//Status]") {
		t.Errorf("union = %v", out["union"])
	}
	crs := out["crs"].([]any)
	if len(crs) == 0 {
		t.Fatal("no CRs")
	}
	first := crs[0].(map[string]any)
	if first["compensation"] == "" {
		t.Error("missing compensation")
	}
}

func TestRewriteWithSchemaEndpoint(t *testing.T) {
	h := New()
	body := `{"query":"//Auction[//item]//name","view":"//Auction//person","schema":"root Auctions\nAuctions -> Auction*\nAuction -> open_auction* closed_auction?\nopen_auction -> item bids?\nclosed_auction -> item person? buyer?\nbids -> person+\nbuyer -> person\nperson -> name\nitem -> name\n"}`
	rec, out := post(t, h, "/v1/rewrite", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out["union"] != "//Auction//person//name" {
		t.Errorf("union = %v", out["union"])
	}
}

func TestRewriteUnanswerable(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/rewrite", `{"query":"/b/d","view":"/a/b//c"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if out["answerable"] != false {
		t.Errorf("answerable = %v", out["answerable"])
	}
}

func TestRewriteErrors(t *testing.T) {
	h := New()
	cases := []struct {
		body string
		code int
	}{
		{`{`, http.StatusBadRequest},
		{`{"query":"///","view":"//a"}`, http.StatusUnprocessableEntity},
		{`{"query":"//a","view":"//b","bogus":1}`, http.StatusBadRequest},
		{`{"query":"//a","view":"//b","schema":"not a schema"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		rec, out := post(t, h, "/v1/rewrite", tc.body)
		if rec.Code != tc.code {
			t.Errorf("body %q: status %d, want %d", tc.body, rec.Code, tc.code)
		}
		if out["error"] == nil {
			t.Errorf("body %q: no error field", tc.body)
		}
	}
}

func TestAnswerEndpoint(t *testing.T) {
	h := New()
	body := `{
	  "query": "//Trials[//Status]//Trial/Patient",
	  "view": "//Trials//Trial",
	  "document": "<PharmaLab><Trials><Trial><Patient>John</Patient><Status/></Trial><Trial><Patient>Jen</Patient></Trial></Trials></PharmaLab>"
	}`
	rec, out := post(t, h, "/v1/answer", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	answers := out["answers"].([]any)
	if len(answers) != 1 {
		t.Fatalf("answers = %v", answers)
	}
	a := answers[0].(map[string]any)
	if a["text"] != "John" {
		t.Errorf("answer = %v", a)
	}
	if out["viewNodes"].(float64) != 2 {
		t.Errorf("viewNodes = %v", out["viewNodes"])
	}
	if out["directAnswerCount"].(float64) != 2 {
		t.Errorf("directAnswerCount = %v", out["directAnswerCount"])
	}
}

func TestAnswerUnanswerable(t *testing.T) {
	h := New()
	rec, _ := post(t, h, "/v1/answer",
		`{"query":"/b","view":"/a//c","document":"<a/>"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestContainEndpoint(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/contain", `{"p":"//a/b","q":"//a//b"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if out["pInQ"] != true || out["qInP"] != false {
		t.Errorf("contain = %v", out)
	}
	// Schema-relative: the Figure 2 pair.
	body := `{"p":"//Auction//person//name","q":"//Auction[//item]//name","schema":"root Auctions\nAuctions -> Auction*\nAuction -> open_auction* closed_auction?\nopen_auction -> item bids?\nclosed_auction -> item person? buyer?\nbids -> person+\nbuyer -> person\nperson -> name\nitem -> name\n"}`
	rec, out = post(t, h, "/v1/contain", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out["pInQ"] != true {
		t.Errorf("S-containment = %v", out)
	}
}

func TestMethodRouting(t *testing.T) {
	h := New()
	req := httptest.NewRequest("GET", "/v1/rewrite", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/rewrite = %d, want 405", rec.Code)
	}
}

func TestCacheStats(t *testing.T) {
	h := New()
	body := `{"query":"//a[b]","view":"//a"}`
	post(t, h, "/v1/rewrite", body)
	post(t, h, "/v1/rewrite", body) // cache hit
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["cacheHits"] < 1 || out["cacheMisses"] < 1 || out["cacheEntries"] < 1 {
		t.Errorf("stats = %v", out)
	}
}

// A body is exactly one JSON object: trailing garbage after it is
// rejected instead of silently ignored, while trailing whitespace is
// fine.
func TestDecodeTrailingGarbage(t *testing.T) {
	h := New()
	valid := `{"query":"//a[b]","view":"//a"}`
	cases := []struct {
		name string
		body string
		code int
	}{
		{"clean", valid, http.StatusOK},
		{"trailing whitespace", valid + "\n  \t", http.StatusOK},
		{"second object", valid + `{"query":"//x","view":"//y"}`, http.StatusBadRequest},
		{"empty second object", valid + `{}`, http.StatusBadRequest},
		{"trailing token", valid + ` true`, http.StatusBadRequest},
		{"trailing text", valid + ` garbage`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec, out := post(t, h, "/v1/rewrite", tc.body)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.code, rec.Body.String())
		}
		if tc.code != http.StatusOK && out["error"] == nil {
			t.Errorf("%s: no error field", tc.name)
		}
	}
}

// Oversized bodies are refused with 413, not a generic 400.
func TestBodyTooLarge(t *testing.T) {
	h := New()
	body := `{"query":"` + strings.Repeat("a", maxBodyBytes+1) + `","view":"//a"}`
	rec, out := post(t, h, "/v1/rewrite", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
	if out["error"] == nil {
		t.Error("no error field")
	}
}

// writeJSON must not write a 200 header (or half a body) when encoding
// fails; the client gets one well-formed error object with a 500.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, math.NaN()) // NaN has no JSON encoding
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("response is not one JSON object: %q", rec.Body.String())
	}
	if out["error"] == nil {
		t.Error("no error field")
	}
}

// Error messages keep their double quotes: JSON escaping handles them,
// so `unknown field "bogus"` must not arrive as 'bogus'.
func TestErrorMessagePreservesQuotes(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/rewrite", `{"query":"//a","view":"//b","bogus":1}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error %q lost its quoted field name", msg)
	}
	if strings.Contains(msg, "'bogus'") {
		t.Errorf("error %q had its quotes mangled to apostrophes", msg)
	}
}

// GET /metrics reports per-endpoint request/status/latency counters and
// per-stage pipeline timings after traffic has flowed.
func TestMetricsEndpoint(t *testing.T) {
	h := New()
	post(t, h, "/v1/rewrite", `{"query":"//a[b]","view":"//a"}`) // 200, cold: stages run
	post(t, h, "/v1/rewrite", `{bad`)                            // 400

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Endpoints map[string]struct {
			Requests int64            `json:"requests"`
			Status   map[string]int64 `json:"status"`
			Latency  struct {
				Count int64 `json:"count"`
			} `json:"latency"`
		} `json:"endpoints"`
		Stages map[string]struct {
			Count   int64 `json:"count"`
			TotalNs int64 `json:"total_ns"`
		} `json:"stages"`
		Cache map[string]int64 `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	ep, ok := out.Endpoints["POST /v1/rewrite"]
	if !ok {
		t.Fatalf("no POST /v1/rewrite endpoint section: %s", rec.Body.String())
	}
	if ep.Requests != 2 || ep.Status["2xx"] != 1 || ep.Status["4xx"] != 1 {
		t.Errorf("rewrite endpoint = %+v", ep)
	}
	if ep.Latency.Count != 2 {
		t.Errorf("latency count = %d, want 2", ep.Latency.Count)
	}
	for _, st := range []string{"parse", "enumerate", "buildcr", "contain"} {
		if out.Stages[st].Count == 0 || out.Stages[st].TotalNs == 0 {
			t.Errorf("stage %s not recorded: %+v", st, out.Stages[st])
		}
	}
	if out.Cache["misses"] != 1 {
		t.Errorf("cache = %v", out.Cache)
	}
}

// GET /v1/slowlog returns queries over the threshold with their stage
// breakdown, newest first.
func TestSlowLogEndpoint(t *testing.T) {
	eng := engine.New(engine.Config{CacheSize: 16, SlowQueryThreshold: time.Nanosecond})
	h := NewWith(eng)
	post(t, h, "/v1/rewrite", `{"query":"//a[b]","view":"//a"}`) // any miss exceeds 1ns

	req := httptest.NewRequest("GET", "/v1/slowlog", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Total   int64 `json:"total"`
		Entries []struct {
			Query      string           `json:"query"`
			View       string           `json:"view"`
			DurationNs int64            `json:"duration_ns"`
			StageNs    map[string]int64 `json:"stage_ns"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 1 || len(out.Entries) != 1 {
		t.Fatalf("slowlog = %s", rec.Body.String())
	}
	// The log stores canonical forms so identical queries collate
	// regardless of how the client spelled them.
	e := out.Entries[0]
	if e.Query == "" || e.View == "" || e.DurationNs <= 0 {
		t.Errorf("entry = %+v", e)
	}
	if len(e.StageNs) == 0 {
		t.Error("entry has no stage breakdown")
	}
}

// The handler must be safe under concurrent requests (shared cache).
func TestConcurrentRequests(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	queries := []string{"//a[b]", "//a[c]", "//a//b", "//x/y"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(w+i)%len(queries)]
				body := `{"query":"` + q + `","view":"//a"}`
				req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d for %s", rec.Code, q)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// A handler panic becomes a clean 500 with a JSON error body, the stack
// lands in the slow-query log, and the server keeps serving.
func TestHandlerPanicRecovered(t *testing.T) {
	eng := engine.New(engine.Config{})
	h := NewWith(eng)
	defer fault.Disable()
	if err := fault.Enable(&fault.Plan{Seed: 21, Injections: []fault.Injection{
		{Point: "server.handler", Action: fault.ActPanic},
	}}); err != nil {
		t.Fatal(err)
	}
	rec, out := post(t, h, "/v1/rewrite", `{"query":"//a","view":"//a"}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if out["error"] == nil {
		t.Fatal("500 without a JSON error body")
	}
	slow := eng.SlowLog().Snapshot()
	if len(slow.Entries) == 0 || slow.Entries[0].Stack == "" {
		t.Fatalf("panic stack not recorded in the slow log: %+v", slow.Entries)
	}
	// The server survives: the same request succeeds once disarmed.
	fault.Disable()
	rec, _ = post(t, h, "/v1/rewrite", `{"query":"//a","view":"//a"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-recovery status = %d, want 200", rec.Code)
	}
}

// Saturation surfaces as 429 + Retry-After, the shed counter appears in
// GET /metrics, and in-flight requests complete normally.
func TestSaturationSheds429(t *testing.T) {
	eng := engine.New(engine.Config{Gate: limits.New(limits.Config{MaxInFlight: 1, MaxQueue: 0})})
	h := NewWith(eng)
	defer fault.Disable()
	if err := fault.Enable(&fault.Plan{Seed: 22, Injections: []fault.Injection{
		{Point: "engine.compute", Action: fault.ActDelay, Delay: 300 * time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(`{"query":"//a[b]//c","view":"//a//c"}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		first <- rec
	}()
	deadline := time.Now().Add(2 * time.Second)
	for eng.MetricsSnapshot().Gate.InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the gate")
		}
		time.Sleep(time.Millisecond)
	}
	rec, out := post(t, h, "/v1/rewrite", `{"query":"//x[y]//z","view":"//x//z"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %v)", rec.Code, out)
	}
	// The header must parse as a positive integer: Retry-After: 0 would
	// invite an immediate retry stampede from well-behaved clients.
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Error("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", ra)
	}
	if rec := <-first; rec.Code != http.StatusOK {
		t.Errorf("admitted request status = %d, want 200", rec.Code)
	}
	snap := eng.MetricsSnapshot()
	if snap.Gate == nil || snap.Gate.Shed != 1 {
		t.Errorf("gate metrics = %+v, want shed=1", snap.Gate)
	}
}

// A deadline expiring mid-enumeration returns HTTP 200 with
// "partial": true and a nonempty sound union.
func TestDeadlinePartialOver200(t *testing.T) {
	eng := engine.New(engine.Config{Timeout: 50 * time.Millisecond})
	h := NewWith(eng)
	// The Figure 8 family at n=12 has 2^12 useful embeddings plus a
	// quadratic redundancy matrix: many seconds uninterrupted.
	q := workload.Fig8Query(12).String()
	v := workload.Fig8View().String()
	rec, out := post(t, h, "/v1/rewrite", `{"query":"`+q+`","view":"`+v+`"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %v)", rec.Code, out)
	}
	if out["partial"] != true || out["partialReason"] != "deadline" {
		t.Fatalf("partial fields = %v/%v, want true/deadline", out["partial"], out["partialReason"])
	}
	if out["answerable"] != true || out["union"] == "" {
		t.Errorf("partial response has no sound union: %v", out)
	}
}

// A real listener cycle: start the handler under an http.Server, push
// a mix of healthy and deadline-walled requests through it, shut the
// server down, and verify every goroutine the cycle started — HTTP
// conn handlers, engine pipeline workers — is gone.
func TestServerShutdownNoLeak(t *testing.T) {
	defer leaktest.Check(t)()
	eng := engine.New(engine.Config{Timeout: 50 * time.Millisecond})
	srv := httptest.NewServer(NewWith(eng))

	body := `{"query":"` + workload.Fig8Query(12).String() + `","view":"` + workload.Fig8View().String() + `"}`
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/rewrite", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Errorf("read: %v", err)
			}
			// 200 is the deadline partial; 504 is the legitimate
			// outcome when the 50ms wall expires before enumeration
			// yields any sound prefix (scheduling pressure under a
			// parallel test run). Either way the workers must drain —
			// the deferred leak check is the real assertion here.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGatewayTimeout {
				t.Errorf("status = %d, want 200 or 504", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	srv.Close()
	// Idle keep-alive client connections hold conn goroutines; drop
	// them so the leak check measures the server, not the client pool.
	http.DefaultClient.CloseIdleConnections()
}

func TestRegisterAndAnswerStoredView(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/views", `{
	  "name": "src1",
	  "view": "//Trials//Trial",
	  "document": "<PharmaLab><Trials><Trial><Patient>John</Patient><Status/></Trial><Trial><Patient>Jen</Patient></Trial></Trials></PharmaLab>"
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.String())
	}
	if out["trees"].(float64) != 2 {
		t.Fatalf("register: %v", out)
	}

	req := httptest.NewRequest("GET", "/v1/views", nil)
	lrec := httptest.NewRecorder()
	h.ServeHTTP(lrec, req)
	var listed struct {
		Views []string       `json:"views"`
		Stats map[string]any `json:"stats"`
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed.Views) != 1 || listed.Views[0] != "src1" {
		t.Fatalf("views = %v", listed.Views)
	}
	if listed.Stats["views"].(float64) != 1 || listed.Stats["shards"].(float64) < 1 {
		t.Fatalf("stats = %v", listed.Stats)
	}

	// Ranked candidate selection for a query touching the view's tags.
	req = httptest.NewRequest("GET", "/v1/views?q=//Trials//Trial&k=5", nil)
	lrec = httptest.NewRecorder()
	h.ServeHTTP(lrec, req)
	var sel struct {
		Selected []map[string]any `json:"selected"`
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &sel); err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 1 || sel.Selected[0]["name"] != "src1" {
		t.Fatalf("selected = %v", sel.Selected)
	}

	rec, out = post(t, h, "/v1/answer", `{"query":"//Trials//Trial/Patient","viewName":"src1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("stored answer: status %d: %s", rec.Code, rec.Body.String())
	}
	answers := out["answers"].([]any)
	if len(answers) != 2 {
		t.Fatalf("answers = %v", answers)
	}
	if out["viewTrees"].(float64) != 2 {
		t.Errorf("viewTrees = %v", out["viewTrees"])
	}
	pl, ok := out["plan"].(map[string]any)
	if !ok || pl["programs"].(float64) < 1 {
		t.Fatalf("plan = %v", out["plan"])
	}
	if _, ok := pl["backends"].([]any); !ok {
		t.Fatalf("plan backends missing: %v", pl)
	}

	// Unknown stored view is a semantic rejection, not a crash.
	rec, _ = post(t, h, "/v1/answer", `{"query":"//a","viewName":"nope"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown view: status %d", rec.Code)
	}
}

func TestAnswerBackendField(t *testing.T) {
	h := New()
	doc := `<a><b><c/></b></a>`
	for _, be := range []string{"structjoin", "treedp", "stream", "auto"} {
		rec, out := post(t, h, "/v1/answer",
			`{"query":"//a//c","view":"//a//b","document":"`+doc+`","backend":"`+be+`"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("backend %s: status %d: %s", be, rec.Code, rec.Body.String())
		}
		if len(out["answers"].([]any)) != 1 {
			t.Fatalf("backend %s: answers = %v", be, out["answers"])
		}
	}
	rec, _ := post(t, h, "/v1/answer",
		`{"query":"//a//c","view":"//a//b","document":"`+doc+`","backend":"warp"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bad backend: status %d", rec.Code)
	}
}

func TestAnswerViewNameExclusive(t *testing.T) {
	h := New()
	rec, _ := post(t, h, "/v1/answer",
		`{"query":"//a","viewName":"x","view":"//a","document":"<a/>"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestRegisterViewValidation(t *testing.T) {
	h := New()
	for _, tc := range []struct{ name, body string }{
		{"empty name", `{"name":"","view":"//a","document":"<a/>"}`},
		{"bad view", `{"name":"x","view":"((","document":"<a/>"}`},
		{"bad document", `{"name":"x","view":"//a","document":"<broken"}`},
	} {
		rec, _ := post(t, h, "/v1/views", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d", tc.name, rec.Code)
		}
	}
}

func TestMetricsPlanStages(t *testing.T) {
	h := New()
	rec, _ := post(t, h, "/v1/answer",
		`{"query":"//a//c","view":"//a//b","document":"<a><b><c/></b></a>"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("answer: status %d: %s", rec.Code, rec.Body.String())
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	var snap map[string]any
	if err := json.Unmarshal(mrec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	stages := snap["stages"].(map[string]any)
	for _, st := range []string{"plan.compile", "plan.index", "plan.exec"} {
		s, ok := stages[st].(map[string]any)
		if !ok || s["count"].(float64) == 0 {
			t.Errorf("stage %s not recorded: %v", st, stages[st])
		}
	}
	eng := snap["engine"].(map[string]any)
	if eng["planCacheMisses"].(float64) != 1 {
		t.Errorf("planCacheMisses = %v", eng["planCacheMisses"])
	}
}
