package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: non-JSON response %q", path, rec.Body.String())
	}
	return rec, out
}

func TestHealthz(t *testing.T) {
	h := New()
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

func TestRewriteEndpoint(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/rewrite",
		`{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out["answerable"] != true {
		t.Fatalf("answerable = %v", out["answerable"])
	}
	if !strings.Contains(out["union"].(string), "//Trials//Trial[//Status]") {
		t.Errorf("union = %v", out["union"])
	}
	crs := out["crs"].([]any)
	if len(crs) == 0 {
		t.Fatal("no CRs")
	}
	first := crs[0].(map[string]any)
	if first["compensation"] == "" {
		t.Error("missing compensation")
	}
}

func TestRewriteWithSchemaEndpoint(t *testing.T) {
	h := New()
	body := `{"query":"//Auction[//item]//name","view":"//Auction//person","schema":"root Auctions\nAuctions -> Auction*\nAuction -> open_auction* closed_auction?\nopen_auction -> item bids?\nclosed_auction -> item person? buyer?\nbids -> person+\nbuyer -> person\nperson -> name\nitem -> name\n"}`
	rec, out := post(t, h, "/v1/rewrite", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out["union"] != "//Auction//person//name" {
		t.Errorf("union = %v", out["union"])
	}
}

func TestRewriteUnanswerable(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/rewrite", `{"query":"/b/d","view":"/a/b//c"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if out["answerable"] != false {
		t.Errorf("answerable = %v", out["answerable"])
	}
}

func TestRewriteErrors(t *testing.T) {
	h := New()
	cases := []struct {
		body string
		code int
	}{
		{`{`, http.StatusBadRequest},
		{`{"query":"///","view":"//a"}`, http.StatusUnprocessableEntity},
		{`{"query":"//a","view":"//b","bogus":1}`, http.StatusBadRequest},
		{`{"query":"//a","view":"//b","schema":"not a schema"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		rec, out := post(t, h, "/v1/rewrite", tc.body)
		if rec.Code != tc.code {
			t.Errorf("body %q: status %d, want %d", tc.body, rec.Code, tc.code)
		}
		if out["error"] == nil {
			t.Errorf("body %q: no error field", tc.body)
		}
	}
}

func TestAnswerEndpoint(t *testing.T) {
	h := New()
	body := `{
	  "query": "//Trials[//Status]//Trial/Patient",
	  "view": "//Trials//Trial",
	  "document": "<PharmaLab><Trials><Trial><Patient>John</Patient><Status/></Trial><Trial><Patient>Jen</Patient></Trial></Trials></PharmaLab>"
	}`
	rec, out := post(t, h, "/v1/answer", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	answers := out["answers"].([]any)
	if len(answers) != 1 {
		t.Fatalf("answers = %v", answers)
	}
	a := answers[0].(map[string]any)
	if a["text"] != "John" {
		t.Errorf("answer = %v", a)
	}
	if out["viewNodes"].(float64) != 2 {
		t.Errorf("viewNodes = %v", out["viewNodes"])
	}
	if out["directAnswerCount"].(float64) != 2 {
		t.Errorf("directAnswerCount = %v", out["directAnswerCount"])
	}
}

func TestAnswerUnanswerable(t *testing.T) {
	h := New()
	rec, _ := post(t, h, "/v1/answer",
		`{"query":"/b","view":"/a//c","document":"<a/>"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestContainEndpoint(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/contain", `{"p":"//a/b","q":"//a//b"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if out["pInQ"] != true || out["qInP"] != false {
		t.Errorf("contain = %v", out)
	}
	// Schema-relative: the Figure 2 pair.
	body := `{"p":"//Auction//person//name","q":"//Auction[//item]//name","schema":"root Auctions\nAuctions -> Auction*\nAuction -> open_auction* closed_auction?\nopen_auction -> item bids?\nclosed_auction -> item person? buyer?\nbids -> person+\nbuyer -> person\nperson -> name\nitem -> name\n"}`
	rec, out = post(t, h, "/v1/contain", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out["pInQ"] != true {
		t.Errorf("S-containment = %v", out)
	}
}

func TestMethodRouting(t *testing.T) {
	h := New()
	req := httptest.NewRequest("GET", "/v1/rewrite", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/rewrite = %d, want 405", rec.Code)
	}
}

func TestCacheStats(t *testing.T) {
	h := New()
	body := `{"query":"//a[b]","view":"//a"}`
	post(t, h, "/v1/rewrite", body)
	post(t, h, "/v1/rewrite", body) // cache hit
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["cacheHits"] < 1 || out["cacheMisses"] < 1 || out["cacheEntries"] < 1 {
		t.Errorf("stats = %v", out)
	}
}

// The handler must be safe under concurrent requests (shared cache).
func TestConcurrentRequests(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	queries := []string{"//a[b]", "//a[c]", "//a//b", "//x/y"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(w+i)%len(queries)]
				body := `{"query":"` + q + `","view":"//a"}`
				req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d for %s", rec.Code, q)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
