package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: non-JSON response %q", path, rec.Body.String())
	}
	return rec, out
}

func batchItems(t *testing.T, out map[string]any) []map[string]any {
	t.Helper()
	raw, ok := out["items"].([]any)
	if !ok {
		t.Fatalf("no items array in %v", out)
	}
	items := make([]map[string]any, len(raw))
	for i, r := range raw {
		items[i] = r.(map[string]any)
	}
	return items
}

// The batch endpoint returns index-aligned per-item outcomes: successes
// carry rewrite responses, failures carry their own status and error,
// and canonical duplicates are marked shared.
func TestRewriteBatchEndpoint(t *testing.T) {
	h := New()
	rec, out := post(t, h, "/v1/rewrite/batch", `{"items":[
		{"query":"//Trials[//Status][//Phase]//Trial","view":"//Trials//Trial"},
		{"query":"//Trials[//Status//","view":"//Trials//Trial"},
		{"query":"//Trials[//Phase][//Status]//Trial","view":"//Trials//Trial"},
		{"query":"/b/d","view":"/a/b//c"}
	]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	items := batchItems(t, out)
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	if items[0]["status"] != float64(200) || items[0]["answerable"] != true {
		t.Errorf("item 0 = %v, want a 200 answerable rewrite", items[0])
	}
	if items[0]["shared"] == true {
		t.Error("item 0 is the leader, must not be marked shared")
	}
	if items[1]["status"] != float64(http.StatusUnprocessableEntity) {
		t.Errorf("item 1 status = %v, want 422", items[1]["status"])
	}
	if msg, _ := items[1]["error"].(string); !strings.Contains(msg, "query") {
		t.Errorf("item 1 error = %v, want a query parse error", items[1]["error"])
	}
	if items[2]["status"] != float64(200) || items[2]["shared"] != true {
		t.Errorf("item 2 = %v, want a shared 200", items[2])
	}
	if items[2]["union"] != items[0]["union"] {
		t.Errorf("canonical twins disagree: %v vs %v", items[2]["union"], items[0]["union"])
	}
	// Item 3 is well-formed but not answerable — still a 200 outcome.
	if items[3]["status"] != float64(200) || items[3]["answerable"] == true {
		t.Errorf("item 3 = %v, want a 200 unanswerable rewrite", items[3])
	}
}

// Batch validation: empty batches and oversized batches are rejected as
// a whole with 400.
func TestRewriteBatchValidation(t *testing.T) {
	h := New()
	rec, _ := post(t, h, "/v1/rewrite/batch", `{"items":[]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", rec.Code)
	}
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"query":"//a%d","view":"//a"}`, i)
	}
	sb.WriteString(`]}`)
	rec, _ = post(t, h, "/v1/rewrite/batch", sb.String())
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", rec.Code)
	}
	rec, _ = post(t, h, "/v1/rewrite/batch", `{"items":[{"query":"//a","view":"//a"}]} trailing`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("trailing-garbage batch status = %d, want 400", rec.Code)
	}
}

// Duplicate-heavy batches share computation: the engine counters show
// one miss per distinct canonical key, not per item.
func TestRewriteBatchSharesComputation(t *testing.T) {
	h := New()
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i < 8; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}`)
	}
	sb.WriteString(`]}`)
	rec, out := post(t, h, "/v1/rewrite/batch", sb.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	items := batchItems(t, out)
	shared := 0
	for _, it := range items {
		if it["shared"] == true {
			shared++
		}
	}
	if shared != 7 {
		t.Errorf("shared items = %d, want 7 (one leader, seven followers)", shared)
	}
	recStats, stats := get(t, h, "/v1/stats")
	if recStats.Code != http.StatusOK {
		t.Fatalf("stats status %d", recStats.Code)
	}
	if stats["cacheMisses"] != float64(1) {
		t.Errorf("cacheMisses = %v, want 1 (one computation for eight items)", stats["cacheMisses"])
	}
}
