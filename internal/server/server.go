// Package server exposes the QAV engine as a small JSON-over-HTTP
// service: the mediator component of an integration deployment.
// Endpoints:
//
//	POST /v1/rewrite        {query, view, schema?, recursive?}
//	POST /v1/rewrite/batch  {items: [{query, view, schema?, recursive?}, ...]}
//	POST /v1/answer   {query, view, document, schema?, backend?}
//	POST /v1/answer   {query, viewName, backend?}   (stored-view mode)
//	POST /v1/contain  {p, q, schema?}
//	POST /v1/views    {name, view, document}
//	GET  /v1/views
//	GET  /v1/stats
//	GET  /v1/slowlog
//	GET  /metrics
//	GET  /healthz
//
// /v1/answer runs the compiled answer-plan pipeline (see
// internal/plan): the MCR's compensations are compiled once per
// canonical CR union (cached), the view forest is indexed, and the
// plan executes with a per-program backend (structural join, per-tree
// DP, or streaming — "auto" picks by forest statistics). In
// stored-view mode the document never travels: the query is answered
// from the forest a source shipped to POST /v1/views.
//
// The handlers are thin JSON adapters over internal/engine: one shared
// Engine carries the rewrite cache (singleflight-deduplicated), the
// per-schema constraint contexts, and the enumeration budget. Each
// request's context is threaded into the pipeline, so a client
// disconnect or server deadline stops an exponential enumeration.
//
// Every endpoint is wrapped in a metrics middleware that records
// request counts, status classes and latency into the Engine's
// obs.Registry; GET /metrics serves the combined snapshot (endpoint,
// stage, cache and slow-query-log sections) as JSON.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"qav/internal/engine"
	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/limits"
	"qav/internal/names"
	"qav/internal/obs"
	"qav/internal/plan"
	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/viewstore"
)

// faultHandler fires at the top of every instrumented endpoint (no-op
// unless a chaos plan arms it; see internal/fault). ActPanic on this
// point exercises the handler recovery middleware end to end.
var faultHandler = fault.Register(names.FaultServerHandler)

// maxBodyBytes bounds request bodies; anything larger is refused with
// 413 before the decoder buffers it.
const maxBodyBytes = 16 << 20

// New returns the service's HTTP handler backed by a fresh Engine with
// default bounds.
func New() http.Handler {
	return NewWith(engine.New(engine.Config{CacheSize: 1024}))
}

// NewWith returns the service's HTTP handler backed by eng, so a
// deployment can share one Engine between the HTTP surface and other
// entry points, or tune its bounds. Deployments that need the drain
// control (flipping /healthz to 503 before shutdown) use NewService
// instead.
func NewWith(eng *engine.Engine) http.Handler {
	return NewService(eng).Handler()
}

// NewService returns the service backed by eng. The Service exposes
// the HTTP handler plus the lifecycle surface a clustered deployment
// needs: StartDraining (health goes 503 before the listener dies) and
// the Health load report.
func NewService(eng *engine.Engine) *Service {
	s := &Service{eng: eng}
	reg := eng.Metrics()
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		// The endpoint label is the route pattern, not the raw URL, so
		// cardinality stays bounded no matter what clients send.
		mux.Handle(pattern, s.instrument(pattern, reg.Endpoint(pattern), h))
	}
	handle("GET /healthz", s.handleHealth)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/slowlog", s.handleSlowLog)
	handle("GET /metrics", s.handleMetrics)
	handle("POST /v1/rewrite", s.handleRewrite)
	handle("POST /v1/rewrite/batch", s.handleRewriteBatch)
	handle("POST /v1/answer", s.handleAnswer)
	handle("POST /v1/contain", s.handleContain)
	handle("POST /v1/views", s.handleRegisterView)
	handle("GET /v1/views", s.handleListViews)
	s.mux = mux
	return s
}

// Service is the HTTP service with its lifecycle state: the handler
// mux, the draining bit /healthz reports, and the in-flight request
// gauge the health payload exposes for least-loaded routing.
type Service struct {
	eng *engine.Engine
	mux *http.ServeMux

	draining atomic.Bool
	inflight atomic.Int64
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler { return s.mux }

// Engine returns the engine backing the service.
func (s *Service) Engine() *engine.Engine { return s.eng }

// statusWriter remembers the first status code written so the metrics
// middleware can classify the response.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler to record request count, status class and
// latency into ep, and isolates handler panics: a panic becomes a clean
// 500 (when nothing was written yet) plus a slow-log entry carrying the
// stack, instead of net/http killing the connection and losing the
// crash site in the server's stderr noise.
func (s *Service) instrument(pattern string, ep *obs.Endpoint, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		func() {
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				// http.ErrAbortHandler is net/http's own control flow for
				// aborting a response; re-panicking preserves it.
				if v == http.ErrAbortHandler {
					panic(v)
				}
				ie := guard.FromPanic(v, "server "+pattern)
				s.eng.SlowLog().Record(obs.SlowEntry{
					Time:       time.Now(),
					Op:         names.OpPanic,
					Query:      pattern,
					DurationNs: int64(time.Since(start)),
					Err:        ie.Error(),
					Stack:      string(ie.Stack),
				})
				if sw.status == 0 {
					httpError(sw, http.StatusInternalServerError, ie)
				}
			}()
			if err := faultHandler.Hit(r.Context()); err != nil {
				httpError(sw, statusFor(err), err)
				return
			}
			h(sw, r)
		}()
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		ep.Observe(status, time.Since(start))
	})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, map[string]int64{
		"cacheHits":       st.CacheHits,
		"cacheWarmHits":   st.CacheWarmHits,
		"cacheMisses":     st.CacheMisses,
		"cacheDedups":     st.CacheDedups,
		"cacheEntries":    int64(st.CacheEntries),
		"warmEntries":     int64(st.WarmEntries),
		"warmReplayed":    st.WarmReplayed,
		"persisted":       st.Persisted,
		"internHits":      st.InternHits,
		"internDedups":    st.InternDedups,
		"planCacheHits":   st.PlanCacheHits,
		"planCacheMisses": st.PlanCacheMiss,
		"planCacheDedups": st.PlanCacheDedup,
		"planCacheSize":   int64(st.PlanEntries),
		"schemaContexts":  int64(st.SchemaContexts),
		"storedViews":     int64(st.StoredViews),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.MetricsSnapshot())
}

func (s *Service) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.SlowLog().Snapshot())
}

type rewriteRequest struct {
	Query     string `json:"query"`
	View      string `json:"view"`
	Schema    string `json:"schema,omitempty"`
	Recursive bool   `json:"recursive,omitempty"`
}

type crJSON struct {
	Rewriting    string `json:"rewriting"`
	Compensation string `json:"compensation"`
}

type rewriteResponse struct {
	Answerable bool     `json:"answerable"`
	Union      string   `json:"union,omitempty"`
	CRs        []crJSON `json:"crs,omitempty"`
	// Partial reports graceful degradation: the enumeration budget or
	// the deadline expired mid-computation and Union is the sound (every
	// disjunct verified contained) but possibly non-maximal subset found
	// up to that point. PartialReason is "budget" or "deadline".
	Partial       bool   `json:"partial,omitempty"`
	PartialReason string `json:"partialReason,omitempty"`
}

func (s *Service) handleRewrite(w http.ResponseWriter, r *http.Request) {
	var req rewriteRequest
	if err := decode(w, r, &req); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	res, err := s.eng.RewriteExpr(r.Context(), engine.RewriteRequest{
		Query: req.Query, View: req.View, Schema: req.Schema, Recursive: req.Recursive,
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, buildRewriteResponse(res))
}

func buildRewriteResponse(res *rewrite.Result) rewriteResponse {
	out := rewriteResponse{
		Answerable:    !res.Union.Empty(),
		Partial:       res.Partial,
		PartialReason: string(res.PartialReason),
	}
	if out.Answerable {
		out.Union = res.Union.String()
		for _, cr := range res.CRs {
			out.CRs = append(out.CRs, crJSON{
				Rewriting:    cr.Rewriting.String(),
				Compensation: cr.Compensation.String(),
			})
		}
	}
	return out
}

// maxBatchItems bounds one batch request; larger workloads paginate.
const maxBatchItems = 256

type batchRewriteRequest struct {
	Items []rewriteRequest `json:"items"`
}

// batchItemResponse is one item's outcome: its own HTTP-style status
// and either a rewrite response (200) or an error message. Shared marks
// items that were canonically identical to an earlier item in the same
// batch and reused its computation.
type batchItemResponse struct {
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
	Shared bool   `json:"shared,omitempty"`
	rewriteResponse
}

type batchRewriteResponse struct {
	Items []batchItemResponse `json:"items"`
}

// handleRewriteBatch rewrites up to maxBatchItems requests in one call,
// sharing parse, schema-context and chase work across items hitting the
// same view+schema (see engine.RewriteBatch). The response is
// index-aligned with the request items; per-item failures carry their
// own status and never fail the batch, so the outer status is 200
// whenever the batch itself was well-formed.
func (s *Service) handleRewriteBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRewriteRequest
	if err := decode(w, r, &req); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("batch must contain at least one item"))
		return
	}
	if len(req.Items) > maxBatchItems {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d items exceeds the limit of %d", len(req.Items), maxBatchItems))
		return
	}
	reqs := make([]engine.RewriteRequest, len(req.Items))
	for i, it := range req.Items {
		reqs[i] = engine.RewriteRequest{
			Query: it.Query, View: it.View, Schema: it.Schema, Recursive: it.Recursive,
		}
	}
	outs := s.eng.RewriteBatch(r.Context(), reqs)
	resp := batchRewriteResponse{Items: make([]batchItemResponse, len(outs))}
	for i, o := range outs {
		item := batchItemResponse{Status: http.StatusOK, Shared: o.Shared}
		if o.Err != nil {
			item.Status = statusFor(o.Err)
			item.Error = o.Err.Error()
		} else {
			item.rewriteResponse = buildRewriteResponse(o.Result)
		}
		resp.Items[i] = item
	}
	writeJSON(w, resp)
}

type answerRequest struct {
	Query    string `json:"query"`
	View     string `json:"view,omitempty"`
	Document string `json:"document,omitempty"`
	Schema   string `json:"schema,omitempty"`
	// ViewName selects stored-view mode: the query is answered from the
	// forest registered under this name (POST /v1/views) and View,
	// Document and Schema must be absent.
	ViewName string `json:"viewName,omitempty"`
	// Backend forces the plan execution backend ("structjoin", "treedp",
	// "stream"); empty or "auto" selects per program.
	Backend string `json:"backend,omitempty"`
}

type answerJSON struct {
	Path string `json:"path"`
	Text string `json:"text,omitempty"`
}

// planJSON summarizes the compiled answer plan a request executed: how
// many compensation programs it unions and which backend ran each.
type planJSON struct {
	Programs int      `json:"programs"`
	Backends []string `json:"backends,omitempty"`
}

type answerResponse struct {
	Union      string       `json:"union"`
	ViewNodes  int          `json:"viewNodes,omitempty"`
	ViewTrees  int          `json:"viewTrees,omitempty"`
	Answers    []answerJSON `json:"answers"`
	DirectSize int          `json:"directAnswerCount,omitempty"`
	Plan       *planJSON    `json:"plan,omitempty"`
	// Partial mirrors rewriteResponse: the answers were produced by a
	// sound but possibly non-maximal rewriting.
	Partial       bool   `json:"partial,omitempty"`
	PartialReason string `json:"partialReason,omitempty"`
}

func buildPlanJSON(pl *plan.Plan, exec *plan.ExecResult) *planJSON {
	if pl == nil {
		return nil
	}
	pj := &planJSON{Programs: pl.Programs()}
	if exec != nil {
		for _, b := range exec.Backends {
			pj.Backends = append(pj.Backends, b.String())
		}
	}
	return pj
}

func (s *Service) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := decode(w, r, &req); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	if req.ViewName != "" {
		if req.View != "" || req.Document != "" || req.Schema != "" {
			httpError(w, http.StatusBadRequest,
				errors.New("viewName is exclusive with view, document and schema"))
			return
		}
		sa, err := s.eng.AnswerStoredExpr(r.Context(), req.Query, req.ViewName, req.Backend)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		resp := answerResponse{
			Union:         sa.Result.Union.String(),
			ViewTrees:     sa.Trees,
			Partial:       sa.Result.Partial,
			PartialReason: string(sa.Result.PartialReason),
			Plan:          buildPlanJSON(sa.Plan, sa.Exec),
		}
		for _, n := range sa.Answers {
			resp.Answers = append(resp.Answers, answerJSON{Path: n.Path(), Text: n.Text})
		}
		writeJSON(w, resp)
		return
	}
	ans, err := s.eng.AnswerExpr(r.Context(), engine.AnswerRequest{
		Query: req.Query, View: req.View, Document: req.Document,
		Schema: req.Schema, Backend: req.Backend,
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	resp := answerResponse{
		Union:         ans.Result.Union.String(),
		ViewNodes:     len(ans.ViewNodes),
		DirectSize:    len(ans.Direct),
		Partial:       ans.Result.Partial,
		PartialReason: string(ans.Result.PartialReason),
		Plan:          buildPlanJSON(ans.Plan, ans.Exec),
	}
	for _, n := range ans.Answers {
		resp.Answers = append(resp.Answers, answerJSON{Path: n.Path(), Text: n.Text})
	}
	writeJSON(w, resp)
}

type registerViewRequest struct {
	Name     string `json:"name"`
	View     string `json:"view"`
	Document string `json:"document"`
}

type registerViewResponse struct {
	Name  string `json:"name"`
	Trees int    `json:"trees"`
	Nodes int    `json:"nodes"`
}

// handleRegisterView materializes the view over the document and stores
// the resulting forest under the given name — the source side of the
// integration scenario, shipping a view to the mediator.
func (s *Service) handleRegisterView(w http.ResponseWriter, r *http.Request) {
	var req registerViewRequest
	if err := decode(w, r, &req); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	m, err := s.eng.RegisterViewExpr(req.Name, req.View, req.Document)
	if err != nil {
		httpError(w, registerStatusFor(err), err)
		return
	}
	writeJSON(w, registerViewResponse{Name: req.Name, Trees: len(m.Forest), Nodes: m.Size()})
}

type listViewsResponse struct {
	Views []string               `json:"views"`
	Stats viewstore.CatalogStats `json:"stats"`
	// Selected is present when the request carried ?q=: the catalog's
	// top-k candidate views for that query, ranked by signature
	// tightness (?k= caps the list, default 10, 0 = all candidates).
	Selected []viewstore.SelectedView `json:"selected,omitempty"`
}

// handleListViews lists the registered views plus the catalog's
// statistics. With ?q=<tree pattern> it additionally ranks the
// signature-index candidates for that query (?k= bounds the list).
func (s *Service) handleListViews(w http.ResponseWriter, r *http.Request) {
	resp := listViewsResponse{Views: s.eng.ViewNames(), Stats: s.eng.ViewStats()}
	if resp.Views == nil {
		resp.Views = []string{}
	}
	if qExpr := r.URL.Query().Get("q"); qExpr != "" {
		q, err := tpq.Parse(qExpr)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("q: %w", err))
			return
		}
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			if k, err = strconv.Atoi(ks); err != nil || k < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("k: not a non-negative integer: %q", ks))
				return
			}
		}
		sel, err := s.eng.SelectViews(r.Context(), q, k)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		if sel == nil {
			sel = []viewstore.SelectedView{}
		}
		resp.Selected = sel
	}
	writeJSON(w, resp)
}

type containRequest struct {
	P      string `json:"p"`
	Q      string `json:"q"`
	Schema string `json:"schema,omitempty"`
}

type containResponse struct {
	PInQ bool `json:"pInQ"`
	QInP bool `json:"qInP"`
}

func (s *Service) handleContain(w http.ResponseWriter, r *http.Request) {
	var req containRequest
	if err := decode(w, r, &req); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	pInQ, qInP, err := s.eng.ContainExpr(r.Context(), engine.ContainRequest{P: req.P, Q: req.Q, Schema: req.Schema})
	if err != nil {
		httpError(w, containStatusFor(err), err)
		return
	}
	writeJSON(w, containResponse{PInQ: pInQ, QInP: qInP})
}

// statusFor maps pipeline errors to HTTP statuses: malformed documents
// are the client's fault (400), load shedding is 429 (the Retry-After
// header is added by httpError), recovered panics and injected faults
// are the server's 500, deadline overruns are reported as a timeout
// (504), everything else — unparsable expressions, unanswerable
// queries — is a semantically rejected request (422).
func statusFor(err error) int {
	var inv *engine.InvalidRequestError
	switch {
	case errors.As(err, &inv) && inv.Field == "document":
		return http.StatusBadRequest
	case errors.Is(err, limits.ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, guard.ErrInternal), errors.Is(err, fault.ErrInjected):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// containStatusFor preserves the contain endpoint's contract: its
// inputs are plain expressions, so parse failures are 400s.
func containStatusFor(err error) int {
	var inv *engine.InvalidRequestError
	if errors.As(err, &inv) {
		return http.StatusBadRequest
	}
	return statusFor(err)
}

// registerStatusFor: view registration's inputs (name, view expression,
// document) are all plain client data, so every validation failure is a
// 400; pipeline errors keep the shared mapping.
func registerStatusFor(err error) int {
	var inv *engine.InvalidRequestError
	if errors.As(err, &inv) {
		return http.StatusBadRequest
	}
	return statusFor(err)
}

// decode parses exactly one JSON object from the request body. A body
// with trailing garbage after the object ("{}{}", "{} extra") is
// rejected: a second Decode must report io.EOF, otherwise the request
// is ambiguous and refusing it beats silently ignoring half of it.
// Oversized bodies surface as *http.MaxBytesError, which decodeStatus
// maps to 413.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("bad request body: unexpected data after JSON object")
	}
	return nil
}

// decodeStatus maps a decode failure to its HTTP status: an oversized
// body is 413 Content Too Large, anything else is the client's 400.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeJSON marshals v fully before touching the ResponseWriter, so an
// encoding failure can still become a clean 500 instead of a 200 with
// half a body and a second JSON object glued on.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus is writeJSON with an explicit status code, for
// endpoints (like the draining /healthz) that serve a body alongside a
// non-200 status.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, err error) {
	// A shed request tells the client when the gate expects capacity
	// back; well-behaved clients back off instead of hammering.
	var sat *limits.SaturatedError
	if errors.As(err, &sat) {
		w.Header().Set("Retry-After", strconv.Itoa(sat.RetryAfterSeconds()))
	}
	// json.Marshal of a string cannot fail and escapes quotes properly,
	// so the message survives round-tripping instead of having its
	// quotes rewritten to apostrophes.
	msg, _ := json.Marshal(err.Error())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\n  \"error\": %s\n}\n", msg)
}
