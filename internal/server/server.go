// Package server exposes the QAV library as a small JSON-over-HTTP
// service: the mediator component of an integration deployment.
// Endpoints:
//
//	POST /v1/rewrite  {query, view, schema?, recursive?}
//	POST /v1/answer   {query, view, document, schema?}
//	POST /v1/contain  {p, q, schema?}
//	GET  /healthz
//
// All state is per-request; the handler is safe for concurrent use.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"qav/internal/cache"
	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// New returns the service's HTTP handler. Rewriting results are cached
// (LRU, 1024 entries) keyed by the canonical query/view/schema forms —
// mediators answer many queries against few views, and rewriting is
// pure.
func New() http.Handler {
	s := &service{cache: cache.New(1024)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/rewrite", s.handleRewrite)
	mux.HandleFunc("POST /v1/answer", s.handleAnswer)
	mux.HandleFunc("POST /v1/contain", handleContain)
	return mux
}

type service struct {
	cache *cache.Cache
}

func (s *service) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	writeJSON(w, map[string]int64{"cacheHits": hits, "cacheMisses": misses, "cacheEntries": int64(s.cache.Len())})
}

type rewriteRequest struct {
	Query     string `json:"query"`
	View      string `json:"view"`
	Schema    string `json:"schema,omitempty"`
	Recursive bool   `json:"recursive,omitempty"`
}

type crJSON struct {
	Rewriting    string `json:"rewriting"`
	Compensation string `json:"compensation"`
}

type rewriteResponse struct {
	Answerable bool     `json:"answerable"`
	Union      string   `json:"union,omitempty"`
	CRs        []crJSON `json:"crs,omitempty"`
}

func (s *service) handleRewrite(w http.ResponseWriter, r *http.Request) {
	var req rewriteRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.doRewrite(req)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, buildRewriteResponse(res))
}

func (s *service) doRewrite(req rewriteRequest) (*rewrite.Result, error) {
	q, err := tpq.Parse(req.Query)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	v, err := tpq.Parse(req.View)
	if err != nil {
		return nil, fmt.Errorf("view: %w", err)
	}
	var g *schema.Graph
	if req.Schema != "" {
		if g, err = schema.Parse(req.Schema); err != nil {
			return nil, fmt.Errorf("schema: %w", err)
		}
	}
	recursive := g != nil && (req.Recursive || g.IsRecursive())
	return s.cache.GetOrCompute(cache.Key(q, v, g, recursive), func() (*rewrite.Result, error) {
		if g == nil {
			return rewrite.MCR(q, v, rewrite.Options{})
		}
		sc := rewrite.NewSchemaContext(g)
		if recursive {
			return sc.MCRRecursive(q, v, rewrite.Options{})
		}
		return sc.MCRWithSchema(q, v)
	})
}

func buildRewriteResponse(res *rewrite.Result) rewriteResponse {
	out := rewriteResponse{Answerable: !res.Union.Empty()}
	if out.Answerable {
		out.Union = res.Union.String()
		for _, cr := range res.CRs {
			out.CRs = append(out.CRs, crJSON{
				Rewriting:    cr.Rewriting.String(),
				Compensation: cr.Compensation.String(),
			})
		}
	}
	return out
}

type answerRequest struct {
	Query    string `json:"query"`
	View     string `json:"view"`
	Document string `json:"document"`
	Schema   string `json:"schema,omitempty"`
}

type answerJSON struct {
	Path string `json:"path"`
	Text string `json:"text,omitempty"`
}

type answerResponse struct {
	Union      string       `json:"union"`
	ViewNodes  int          `json:"viewNodes"`
	Answers    []answerJSON `json:"answers"`
	DirectSize int          `json:"directAnswerCount"`
}

func (s *service) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.doRewrite(rewriteRequest{Query: req.Query, View: req.View, Schema: req.Schema})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if res.Union.Empty() {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("query is not answerable using the view"))
		return
	}
	d, err := xmltree.ParseString(req.Document)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("document: %w", err))
		return
	}
	q, _ := tpq.Parse(req.Query)
	v, _ := tpq.Parse(req.View)
	viewNodes := rewrite.MaterializeView(v, d)
	answers := rewrite.AnswerMaterialized(res.CRs, d, viewNodes)
	resp := answerResponse{
		Union:      res.Union.String(),
		ViewNodes:  len(viewNodes),
		DirectSize: len(q.Evaluate(d)),
	}
	for _, n := range answers {
		resp.Answers = append(resp.Answers, answerJSON{Path: n.Path(), Text: n.Text})
	}
	writeJSON(w, resp)
}

type containRequest struct {
	P      string `json:"p"`
	Q      string `json:"q"`
	Schema string `json:"schema,omitempty"`
}

type containResponse struct {
	PInQ bool `json:"pInQ"`
	QInP bool `json:"qInP"`
}

func handleContain(w http.ResponseWriter, r *http.Request) {
	var req containRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := tpq.Parse(req.P)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("p: %w", err))
		return
	}
	q, err := tpq.Parse(req.Q)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("q: %w", err))
		return
	}
	var resp containResponse
	if req.Schema != "" {
		g, err := schema.Parse(req.Schema)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("schema: %w", err))
			return
		}
		sc := rewrite.NewSchemaContext(g)
		resp = containResponse{PInQ: sc.SContained(p, q), QInP: sc.SContained(q, p)}
	} else {
		resp = containResponse{PInQ: tpq.Contained(p, q), QInP: tpq.Contained(q, p)}
	}
	writeJSON(w, resp)
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Too late for a status change; best effort.
		fmt.Fprintln(w, `{"error":"encoding failure"}`)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	msg := strings.ReplaceAll(err.Error(), `"`, `'`)
	fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", msg)
}
