// Package server exposes the QAV engine as a small JSON-over-HTTP
// service: the mediator component of an integration deployment.
// Endpoints:
//
//	POST /v1/rewrite  {query, view, schema?, recursive?}
//	POST /v1/answer   {query, view, document, schema?}
//	POST /v1/contain  {p, q, schema?}
//	GET  /v1/stats
//	GET  /healthz
//
// The handlers are thin JSON adapters over internal/engine: one shared
// Engine carries the rewrite cache (singleflight-deduplicated), the
// per-schema constraint contexts, and the enumeration budget. Each
// request's context is threaded into the pipeline, so a client
// disconnect or server deadline stops an exponential enumeration.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"qav/internal/engine"
	"qav/internal/rewrite"
)

// New returns the service's HTTP handler backed by a fresh Engine with
// default bounds.
func New() http.Handler {
	return NewWith(engine.New(engine.Config{CacheSize: 1024}))
}

// NewWith returns the service's HTTP handler backed by eng, so a
// deployment can share one Engine between the HTTP surface and other
// entry points, or tune its bounds.
func NewWith(eng *engine.Engine) http.Handler {
	s := &service{eng: eng}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/rewrite", s.handleRewrite)
	mux.HandleFunc("POST /v1/answer", s.handleAnswer)
	mux.HandleFunc("POST /v1/contain", s.handleContain)
	return mux
}

type service struct {
	eng *engine.Engine
}

func (s *service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, map[string]int64{
		"cacheHits":      st.CacheHits,
		"cacheMisses":    st.CacheMisses,
		"cacheEntries":   int64(st.CacheEntries),
		"schemaContexts": int64(st.SchemaContexts),
		"storedViews":    int64(st.StoredViews),
	})
}

type rewriteRequest struct {
	Query     string `json:"query"`
	View      string `json:"view"`
	Schema    string `json:"schema,omitempty"`
	Recursive bool   `json:"recursive,omitempty"`
}

type crJSON struct {
	Rewriting    string `json:"rewriting"`
	Compensation string `json:"compensation"`
}

type rewriteResponse struct {
	Answerable bool     `json:"answerable"`
	Union      string   `json:"union,omitempty"`
	CRs        []crJSON `json:"crs,omitempty"`
}

func (s *service) handleRewrite(w http.ResponseWriter, r *http.Request) {
	var req rewriteRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.RewriteExpr(r.Context(), engine.RewriteRequest{
		Query: req.Query, View: req.View, Schema: req.Schema, Recursive: req.Recursive,
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, buildRewriteResponse(res))
}

func buildRewriteResponse(res *rewrite.Result) rewriteResponse {
	out := rewriteResponse{Answerable: !res.Union.Empty()}
	if out.Answerable {
		out.Union = res.Union.String()
		for _, cr := range res.CRs {
			out.CRs = append(out.CRs, crJSON{
				Rewriting:    cr.Rewriting.String(),
				Compensation: cr.Compensation.String(),
			})
		}
	}
	return out
}

type answerRequest struct {
	Query    string `json:"query"`
	View     string `json:"view"`
	Document string `json:"document"`
	Schema   string `json:"schema,omitempty"`
}

type answerJSON struct {
	Path string `json:"path"`
	Text string `json:"text,omitempty"`
}

type answerResponse struct {
	Union      string       `json:"union"`
	ViewNodes  int          `json:"viewNodes"`
	Answers    []answerJSON `json:"answers"`
	DirectSize int          `json:"directAnswerCount"`
}

func (s *service) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ans, err := s.eng.AnswerExpr(r.Context(), engine.AnswerRequest{
		Query: req.Query, View: req.View, Document: req.Document, Schema: req.Schema,
	})
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	resp := answerResponse{
		Union:      ans.Result.Union.String(),
		ViewNodes:  len(ans.ViewNodes),
		DirectSize: len(ans.Direct),
	}
	for _, n := range ans.Answers {
		resp.Answers = append(resp.Answers, answerJSON{Path: n.Path(), Text: n.Text})
	}
	writeJSON(w, resp)
}

type containRequest struct {
	P      string `json:"p"`
	Q      string `json:"q"`
	Schema string `json:"schema,omitempty"`
}

type containResponse struct {
	PInQ bool `json:"pInQ"`
	QInP bool `json:"qInP"`
}

func (s *service) handleContain(w http.ResponseWriter, r *http.Request) {
	var req containRequest
	if err := decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	pInQ, qInP, err := s.eng.ContainExpr(r.Context(), engine.ContainRequest{P: req.P, Q: req.Q, Schema: req.Schema})
	if err != nil {
		httpError(w, containStatusFor(err), err)
		return
	}
	writeJSON(w, containResponse{PInQ: pInQ, QInP: qInP})
}

// statusFor maps pipeline errors to HTTP statuses: malformed documents
// are the client's fault (400), deadline overruns are reported as a
// timeout (504), everything else — unparsable expressions, budget
// overruns, unanswerable queries — is a semantically rejected request
// (422).
func statusFor(err error) int {
	var inv *engine.InvalidRequestError
	switch {
	case errors.As(err, &inv) && inv.Field == "document":
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// containStatusFor preserves the contain endpoint's contract: its
// inputs are plain expressions, so parse failures are 400s.
func containStatusFor(err error) int {
	var inv *engine.InvalidRequestError
	if errors.As(err, &inv) {
		return http.StatusBadRequest
	}
	return statusFor(err)
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Too late for a status change; best effort.
		fmt.Fprintln(w, `{"error":"encoding failure"}`)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	msg := strings.ReplaceAll(err.Error(), `"`, `'`)
	fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", msg)
}
