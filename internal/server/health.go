package server

import (
	"net/http"
)

// HealthPayload is the document GET /healthz serves: liveness plus the
// load signals a cluster router needs for health-aware routing. It is
// served with status 200 while the process accepts work and 503 the
// moment draining begins — the flip happens before the listener closes,
// so a router polling /healthz stops routing to a replica before its
// connections start dying.
//
// The load fields feed the router's least-loaded policy (InFlight +
// Queued is the queueing signal) and its cache-affinity diagnostics
// (CacheEntries/WarmEntries/CacheHits describe how warm this replica's
// rewrite cache is).
type HealthPayload struct {
	// Status is "ok" or "draining"; Draining is the same bit for
	// programmatic consumers.
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// InFlight counts HTTP requests currently inside the handlers;
	// ComputeInFlight and Queued are the admission gate's occupancy
	// (zero when the engine is ungated); Shed is the gate's lifetime
	// shed counter — the saturation signal.
	InFlight        int64 `json:"inflight"`
	ComputeInFlight int64 `json:"computeInflight"`
	Queued          int64 `json:"queued"`
	Shed            int64 `json:"shed"`
	// Warm-cache state: in-memory rewrite-cache entries, persistent
	// warm-tier entries, and lifetime cache hits.
	CacheEntries int   `json:"cacheEntries"`
	WarmEntries  int   `json:"warmEntries,omitempty"`
	CacheHits    int64 `json:"cacheHits"`
}

// Health returns the current health payload.
func (s *Service) Health() HealthPayload {
	st := s.eng.Stats()
	gs := s.eng.Gate().Stats()
	hp := HealthPayload{
		Status:          "ok",
		Draining:        s.draining.Load(),
		InFlight:        s.inflight.Load(),
		ComputeInFlight: gs.InFlight,
		Queued:          gs.Queued,
		Shed:            gs.Shed,
		CacheEntries:    st.CacheEntries,
		WarmEntries:     st.WarmEntries,
		CacheHits:       st.CacheHits + st.CacheWarmHits,
	}
	if hp.Draining {
		hp.Status = "draining"
	}
	return hp
}

// StartDraining flips /healthz to 503 ("draining"). Call it the moment
// shutdown begins, before http.Server.Shutdown stops accepting
// connections: a router that probes health stops sending new work while
// in-flight requests still complete normally. Draining is one-way.
func (s *Service) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// handleHealth serves the health payload: 200 while accepting work,
// 503 once draining. The body is identical in both cases so probers
// always get the load fields.
func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	hp := s.Health()
	code := http.StatusOK
	if hp.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSONStatus(w, code, hp)
}
