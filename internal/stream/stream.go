// Package stream evaluates tree pattern queries over XML byte streams
// without materializing the document: a single SAX-style pass computes
// subtree matches bottom-up on element close and confirms answer
// candidates against their (still open) ancestor chains as those close.
// Memory is O(depth · |Q| + pending answers), independent of document
// size — the streaming-evaluation substrate for documents too large to
// load.
//
// Attribute handling matches xmltree.Parse (attributes become child
// elements in document order), so answer preorder indexes agree exactly
// with the in-memory evaluator's node indexes.
package stream

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// Answer identifies one answer element of the streamed document.
type Answer struct {
	// Index is the element's preorder position (equal to the Index the
	// in-memory parser would assign).
	Index int
	// Path is the root-to-answer tag path, e.g. /PharmaLab/Trials/Trial.
	Path string
	// Text is the element's direct character data, trimmed.
	Text string
}

// Evaluate runs the pattern over the XML stream and returns the
// answers in document (preorder) order. The stream can be unbounded
// (that is the point of this package), so the context is polled every
// 1024 tokens and a cancelled ctx aborts the pass with its error.
func Evaluate(ctx context.Context, r io.Reader, p *tpq.Pattern) ([]Answer, error) {
	ev, err := newEvaluator(p)
	if err != nil {
		return nil, err
	}
	dec := xml.NewDecoder(r)
	for tokens := 0; ; tokens++ {
		if tokens&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			ev.open(t.Name.Local)
			for _, a := range t.Attr {
				// Attributes are leaf child elements, like xmltree.Parse.
				ev.open(a.Name.Local)
				ev.text(a.Value)
				if err := ev.close(); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			if err := ev.close(); err != nil {
				return nil, err
			}
		case xml.CharData:
			ev.text(string(t))
		}
	}
	if len(ev.stack) != 0 {
		return nil, fmt.Errorf("stream: unterminated document")
	}
	if !ev.sawRoot {
		return nil, fmt.Errorf("stream: empty document")
	}
	sort.Slice(ev.answers, func(i, j int) bool { return ev.answers[i].Index < ev.answers[j].Index })
	return ev.answers, nil
}

// EvaluateNode runs the pattern over the subtree rooted at n of an
// in-memory document by replaying its open/text/close events through
// the same evaluator Evaluate drives from a byte stream — no
// serialization round trip. It is the bounded-memory backend of the
// plan layer: resident state is O(depth · |Q| + pending answers)
// regardless of subtree size. Answer.Index is the preorder position
// within the walked subtree (0 = n itself), aligning index-for-index
// with Document.Window(n). The walk is document-scale, so the context
// is polled every 1024 elements and a cancelled ctx aborts with its
// error.
func EvaluateNode(ctx context.Context, n *xmltree.Node, p *tpq.Pattern) ([]Answer, error) {
	if n == nil {
		return nil, fmt.Errorf("stream: nil subtree root")
	}
	ev, err := newEvaluator(p)
	if err != nil {
		return nil, err
	}
	elements := 0
	var walk func(x *xmltree.Node) error
	walk = func(x *xmltree.Node) error {
		if elements&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		elements++
		ev.open(x.Tag)
		if x.Text != "" {
			ev.text(x.Text)
		}
		for _, c := range x.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return ev.close()
	}
	if err := walk(n); err != nil {
		return nil, err
	}
	sort.Slice(ev.answers, func(i, j int) bool { return ev.answers[i].Index < ev.answers[j].Index })
	return ev.answers, nil
}

// pending is an unconfirmed answer: some ancestor must match pattern
// path node pathIdx; direct requires the IMMEDIATE parent of the frame
// that raised it.
type pending struct {
	answer  Answer
	pathIdx int
	direct  bool
}

type frame struct {
	tag   string
	index int
	depth int
	text  strings.Builder
	// pcHit[qi]: some closed direct child matched pattern subtree qi.
	// adHit[qi]: some closed proper descendant matched subtree qi.
	pcHit, adHit []bool
	pend         []pending
}

type evaluator struct {
	p       *tpq.Pattern
	qnodes  []*tpq.Node
	qindex  map[*tpq.Node]int
	path    []*tpq.Node // distinguished path
	pathIdx map[*tpq.Node]int

	stack     []*frame
	nextIndex int
	sawRoot   bool
	confirmed map[int]bool
	answers   []Answer
}

func newEvaluator(p *tpq.Pattern) (*evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := &evaluator{
		p:         p,
		qnodes:    p.Nodes(),
		qindex:    make(map[*tpq.Node]int),
		path:      p.DistinguishedPath(),
		pathIdx:   make(map[*tpq.Node]int),
		confirmed: make(map[int]bool),
	}
	for i, n := range ev.qnodes {
		ev.qindex[n] = i
	}
	for i, n := range ev.path {
		ev.pathIdx[n] = i
	}
	return ev, nil
}

func (ev *evaluator) open(tag string) {
	ev.sawRoot = ev.sawRoot || len(ev.stack) == 0
	f := &frame{
		tag:   tag,
		index: ev.nextIndex,
		depth: len(ev.stack),
		pcHit: make([]bool, len(ev.qnodes)),
		adHit: make([]bool, len(ev.qnodes)),
	}
	ev.nextIndex++
	ev.stack = append(ev.stack, f)
}

func (ev *evaluator) text(s string) {
	if len(ev.stack) == 0 {
		return
	}
	top := ev.stack[len(ev.stack)-1]
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return
	}
	if top.text.Len() > 0 {
		top.text.WriteByte(' ')
	}
	top.text.WriteString(trimmed)
}

func (ev *evaluator) close() error {
	if len(ev.stack) == 0 {
		return fmt.Errorf("stream: unbalanced end element")
	}
	f := ev.stack[len(ev.stack)-1]
	ev.stack = ev.stack[:len(ev.stack)-1]

	// Bottom-up subtree satisfaction for f.
	sat := make([]bool, len(ev.qnodes))
	for qi := len(ev.qnodes) - 1; qi >= 0; qi-- {
		q := ev.qnodes[qi]
		if q.Tag != tpq.Wildcard && q.Tag != f.tag {
			continue
		}
		ok := true
		for _, c := range q.Children {
			ci := ev.qindex[c]
			var hit bool
			if c.Axis == tpq.Child {
				hit = f.pcHit[ci]
			} else {
				hit = f.adHit[ci]
			}
			if !hit {
				ok = false
				break
			}
		}
		sat[qi] = ok
	}

	// New answer candidate?
	out := ev.qindex[ev.p.Output]
	if sat[out] {
		ans := Answer{Index: f.index, Path: ev.currentPath(f.tag), Text: f.text.String()}
		if len(ev.path) == 1 {
			ev.confirm(ans, f.depth)
		} else {
			ev.raise(pending{
				answer:  ans,
				pathIdx: len(ev.path) - 2,
				direct:  ev.path[len(ev.path)-1].Axis == tpq.Child,
			})
		}
	}

	// Process pending items raised by f's children against f.
	for _, item := range f.pend {
		qi := ev.qindex[ev.path[item.pathIdx]]
		if sat[qi] {
			if item.pathIdx == 0 {
				ev.confirm(item.answer, f.depth)
			} else {
				ev.raise(pending{
					answer:  item.answer,
					pathIdx: item.pathIdx - 1,
					direct:  ev.path[item.pathIdx].Axis == tpq.Child,
				})
			}
		}
		// An ad-step may also skip f and match higher up; a pc-step
		// dies here if f did not match.
		if !item.direct {
			ev.raise(item)
		}
	}

	// Propagate f's results into its parent.
	if len(ev.stack) > 0 {
		parent := ev.stack[len(ev.stack)-1]
		for qi, ok := range sat {
			if ok {
				parent.pcHit[qi] = true
				parent.adHit[qi] = true
			}
			if f.adHit[qi] {
				parent.adHit[qi] = true
			}
		}
	}
	return nil
}

// raise defers a pending item to the current top of stack; if the stack
// is empty (the candidate needed an ancestor above the root) the item
// dies.
func (ev *evaluator) raise(item pending) {
	if len(ev.stack) == 0 {
		return
	}
	top := ev.stack[len(ev.stack)-1]
	top.pend = append(top.pend, item)
}

// confirm records an answer whose whole distinguished path matched,
// subject to the query root's axis ('/' requires the match at the
// document root).
func (ev *evaluator) confirm(ans Answer, rootMatchDepth int) {
	if ev.p.Root.Axis == tpq.Child && rootMatchDepth != 0 {
		return
	}
	if ev.confirmed[ans.Index] {
		return
	}
	ev.confirmed[ans.Index] = true
	ev.answers = append(ev.answers, ans)
}

// currentPath renders the root-to-answer tag path from the open stack
// plus the closing tag.
func (ev *evaluator) currentPath(tag string) string {
	var b strings.Builder
	for _, f := range ev.stack {
		b.WriteByte('/')
		b.WriteString(f.tag)
	}
	b.WriteByte('/')
	b.WriteString(tag)
	return b.String()
}
