package stream

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

const pharmaXML = `<PharmaLab>
  <Trials type="T1">
    <Trial><Patient>John Doe</Patient><Status>Complete</Status></Trial>
    <Trial><Patient>Jennifer Bloe</Patient></Trial>
  </Trials>
  <Trials type="T2">
    <Trial><Patient>Mary Moore</Patient></Trial>
  </Trials>
</PharmaLab>`

func TestStreamBasics(t *testing.T) {
	cases := []struct {
		expr string
		want int
	}{
		{"//Trials//Trial", 3},
		{"//Trials[//Status]//Trial", 2},
		{"//Trials//Trial[//Status]", 1},
		{"/PharmaLab", 1},
		{"/Trials", 0},
		{"//Trial/Patient", 3},
		{"//type", 2},
		{"//*[Status]", 1},
	}
	for _, tc := range cases {
		got, err := Evaluate(context.Background(), strings.NewReader(pharmaXML), tpq.MustParse(tc.expr))
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if len(got) != tc.want {
			t.Errorf("%s: %d answers, want %d (%v)", tc.expr, len(got), tc.want, got)
		}
	}
}

func TestStreamAnswerDetails(t *testing.T) {
	got, err := Evaluate(context.Background(), strings.NewReader(pharmaXML), tpq.MustParse("//Trial[//Status]/Patient"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("answers = %v", got)
	}
	a := got[0]
	if a.Path != "/PharmaLab/Trials/Trial/Patient" {
		t.Errorf("path = %s", a.Path)
	}
	if a.Text != "John Doe" {
		t.Errorf("text = %q", a.Text)
	}
	// Index agrees with the in-memory parser.
	d, _ := xmltree.ParseString(pharmaXML)
	mem := tpq.MustParse("//Trial[//Status]/Patient").Evaluate(d)
	if len(mem) != 1 || mem[0].Index != a.Index {
		t.Errorf("index = %d, in-memory = %d", a.Index, mem[0].Index)
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := Evaluate(context.Background(), strings.NewReader(""), tpq.MustParse("//a")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Evaluate(context.Background(), strings.NewReader("<a><b></a>"), tpq.MustParse("//a")); err == nil {
		t.Error("malformed stream accepted")
	}
	bad := &tpq.Pattern{}
	if _, err := Evaluate(context.Background(), strings.NewReader("<a/>"), bad); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestStreamDeepRecursion(t *testing.T) {
	var b strings.Builder
	const depth = 200
	for i := 0; i < depth; i++ {
		b.WriteString("<b>")
	}
	b.WriteString("<c/>")
	for i := 0; i < depth; i++ {
		b.WriteString("</b>")
	}
	got, err := Evaluate(context.Background(), strings.NewReader(b.String()), tpq.MustParse("//b[//c]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != depth {
		t.Errorf("answers = %d, want %d", len(got), depth)
	}
	got, err = Evaluate(context.Background(), strings.NewReader(b.String()), tpq.MustParse("//b/b//c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("//b/b//c = %d answers, want 1", len(got))
	}
}

// The streaming engine agrees with the in-memory engine on random
// documents and patterns, including answer indexes.
func TestQuickStreamAgreesWithMemory(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		d := xmltree.Generate(rng, xmltree.GenSpec{
			Tags: alphabet, MaxDepth: 6, MaxFanout: 3, TargetSize: 40,
		})
		xmlSrc := d.XMLString()
		for i := 0; i < 4; i++ {
			p := workload.RandomPattern(rng, alphabet, 6)
			mem := p.Evaluate(d)
			memIdx := make(map[int]bool, len(mem))
			for _, n := range mem {
				memIdx[n.Index] = true
			}
			got, err := Evaluate(context.Background(), strings.NewReader(xmlSrc), p)
			if err != nil {
				t.Logf("stream error: %v", err)
				return false
			}
			if len(got) != len(mem) {
				t.Logf("p=%s d=%s: stream %d vs memory %d", p, d, len(got), len(mem))
				return false
			}
			for _, a := range got {
				if !memIdx[a.Index] {
					t.Logf("p=%s d=%s: stray stream answer %v", p, d, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Wildcards work in the streaming engine too.
func TestStreamWildcard(t *testing.T) {
	got, err := Evaluate(context.Background(), strings.NewReader(pharmaXML), tpq.MustParse("//Trials/*[Patient]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("wildcard answers = %d, want 3", len(got))
	}
}
