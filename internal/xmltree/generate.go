package xmltree

import "math/rand"

// GenSpec controls random document generation. Generated documents are
// used by property tests and by the benchmark workloads.
type GenSpec struct {
	// Tags is the alphabet to draw element tags from; must be non-empty.
	Tags []string
	// MaxDepth bounds tree depth (root is depth 0).
	MaxDepth int
	// MaxFanout bounds the number of children per node.
	MaxFanout int
	// TargetSize stops growth once this many nodes exist (approximate).
	TargetSize int
}

// Generate produces a random document according to the spec, using rng
// for reproducibility.
func Generate(rng *rand.Rand, spec GenSpec) *Document {
	if len(spec.Tags) == 0 {
		spec.Tags = []string{"a"}
	}
	if spec.MaxDepth <= 0 {
		spec.MaxDepth = 6
	}
	if spec.MaxFanout <= 0 {
		spec.MaxFanout = 4
	}
	if spec.TargetSize <= 0 {
		spec.TargetSize = 64
	}
	size := 1
	root := &Node{Tag: spec.Tags[rng.Intn(len(spec.Tags))]}
	// Grow breadth-first so TargetSize caps the whole tree rather than
	// the first branch.
	queue := []*Node{root}
	depth := map[*Node]int{root: 0}
	for len(queue) > 0 && size < spec.TargetSize {
		n := queue[0]
		queue = queue[1:]
		if depth[n] >= spec.MaxDepth {
			continue
		}
		fanout := rng.Intn(spec.MaxFanout + 1)
		for i := 0; i < fanout && size < spec.TargetSize; i++ {
			c := n.AddChild(spec.Tags[rng.Intn(len(spec.Tags))])
			depth[c] = depth[n] + 1
			size++
			queue = append(queue, c)
		}
	}
	return NewDocument(root)
}
