package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r into a Document. Attributes are
// lifted into child elements (the paper blurs the element/attribute
// distinction); processing instructions and comments are ignored.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Tag: t.Name.Local}
			for _, a := range t.Attr {
				attr := n.AddChild(a.Name.Local)
				attr.Text = a.Value
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				s := strings.TrimSpace(string(t))
				if s != "" {
					top := stack[len(stack)-1]
					if top.Text != "" {
						top.Text += " "
					}
					top.Text += s
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unclosed element %q", stack[len(stack)-1].Tag)
	}
	return NewDocument(root), nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// WriteXML serializes the document as indented XML.
func (d *Document) WriteXML(w io.Writer) error {
	if d.Root == nil {
		return fmt.Errorf("xmltree: cannot serialize empty document")
	}
	return writeNode(w, d.Root, 0)
}

func writeNode(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	if len(n.Children) == 0 {
		if n.Text == "" {
			_, err := fmt.Fprintf(w, "%s<%s/>\n", indent, n.Tag)
			return err
		}
		_, err := fmt.Fprintf(w, "%s<%s>%s</%s>\n", indent, n.Tag, escape(n.Text), n.Tag)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s>", indent, n.Tag); err != nil {
		return err
	}
	if n.Text != "" {
		if _, err := io.WriteString(w, escape(n.Text)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Tag)
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// XMLString renders the document as an indented XML string.
func (d *Document) XMLString() string {
	var b strings.Builder
	if err := d.WriteXML(&b); err != nil {
		return ""
	}
	return b.String()
}
