package xmltree

import "testing"

// FuzzParse checks the XML reader never panics and that accepted
// documents round trip through the serializer.
func FuzzParse(f *testing.F) {
	f.Add("<a><b/><c>x</c></a>")
	f.Add(`<a x="1"/>`)
	f.Add("<a>&lt;</a>")
	f.Add("<a><b></a>")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted invalid document: %v", err)
		}
		d2, err := ParseString(d.XMLString())
		if err != nil {
			t.Fatalf("round trip parse failed: %v\n%s", err, d.XMLString())
		}
		if d2.String() != d.String() {
			t.Fatalf("round trip changed structure: %s vs %s", d, d2)
		}
	})
}
