package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildAndReindex(t *testing.T) {
	d := NewDocument(Build("a",
		Build("b", Build("d")),
		Build("c"),
	))
	if d.Size() != 4 {
		t.Fatalf("Size = %d, want 4", d.Size())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "d", "c"}
	for i, n := range d.Nodes {
		if n.Tag != want[i] {
			t.Errorf("Nodes[%d].Tag = %q, want %q", i, n.Tag, want[i])
		}
		if n.Index != i {
			t.Errorf("Nodes[%d].Index = %d", i, n.Index)
		}
	}
	a, b, dd, c := d.Nodes[0], d.Nodes[1], d.Nodes[2], d.Nodes[3]
	if !a.IsAncestorOf(dd) || !b.IsAncestorOf(dd) {
		t.Error("ancestor relation broken")
	}
	if a.IsAncestorOf(a) {
		t.Error("IsAncestorOf must be proper")
	}
	if c.IsAncestorOf(dd) || b.IsAncestorOf(c) {
		t.Error("unrelated nodes reported as ancestors")
	}
	if dd.Depth != 2 || a.Depth != 0 {
		t.Errorf("depths wrong: a=%d d=%d", a.Depth, dd.Depth)
	}
}

func TestAddChildAndMutation(t *testing.T) {
	d := NewDocument(Build("a"))
	d.Root.AddChild("b").AddChild("c")
	d.Reindex()
	if d.Size() != 3 {
		t.Fatalf("Size = %d, want 3", d.Size())
	}
	if got := d.Nodes[2].Path(); got != "/a/b/c" {
		t.Errorf("Path = %q, want /a/b/c", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	const src = `<PharmaLab>
  <Trials type="T1">
    <Trial><Patient>John Doe</Patient><Status>Complete</Status></Trial>
    <Trial><Patient>Jennifer Bloe</Patient></Trial>
  </Trials>
  <Trials type="T2">
    <Trial><Patient>Mary Moore</Patient></Trial>
  </Trials>
</PharmaLab>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Tag != "PharmaLab" {
		t.Fatalf("root = %q", d.Root.Tag)
	}
	// 1 root + 2 Trials + 2 type attrs + 3 Trial + 3 Patient + 1 Status.
	if d.Size() != 12 {
		t.Fatalf("Size = %d, want 12", d.Size())
	}
	var patients int
	for _, n := range d.Nodes {
		if n.Tag == "Patient" {
			patients++
		}
	}
	if patients != 3 {
		t.Errorf("patients = %d, want 3", patients)
	}
	// Round-trip through the serializer.
	d2, err := ParseString(d.XMLString())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.String() != d.String() {
		t.Errorf("round trip changed structure:\n%s\n%s", d.String(), d2.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "<a><b></a>", "<a/><b/>"} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestParseAttributesBecomeChildren(t *testing.T) {
	d, err := ParseString(`<a x="1"><b y="2"/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "a(x,b(y))" {
		t.Errorf("structure = %q, want a(x,b(y))", got)
	}
	if d.Nodes[1].Text != "1" {
		t.Errorf("attribute value lost: %q", d.Nodes[1].Text)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := NewDocument(Build("a", Build("b")))
	c := d.Clone()
	c.Root.AddChild("z")
	c.Reindex()
	if d.Size() != 2 {
		t.Errorf("mutating clone changed original (size %d)", d.Size())
	}
	if c.Size() != 3 {
		t.Errorf("clone size = %d, want 3", c.Size())
	}
}

func TestSubtree(t *testing.T) {
	d := NewDocument(Build("a", Build("b", Build("c")), Build("d")))
	got := d.Nodes[1].Subtree()
	if len(got) != 2 || got[0].Tag != "b" || got[1].Tag != "c" {
		t.Errorf("Subtree = %v", got)
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := GenSpec{Tags: []string{"a", "b", "c"}, MaxDepth: 4, MaxFanout: 3, TargetSize: 50}
	for i := 0; i < 20; i++ {
		d := Generate(rng, spec)
		if d.Size() > spec.TargetSize {
			t.Fatalf("size %d exceeds target %d", d.Size(), spec.TargetSize)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, n := range d.Nodes {
			if n.Depth > spec.MaxDepth {
				t.Fatalf("depth %d exceeds max %d", n.Depth, spec.MaxDepth)
			}
			if len(n.Children) > spec.MaxFanout {
				t.Fatalf("fanout %d exceeds max %d", len(n.Children), spec.MaxFanout)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Tags: []string{"a", "b"}, MaxDepth: 5, MaxFanout: 3, TargetSize: 40}
	d1 := Generate(rand.New(rand.NewSource(7)), spec)
	d2 := Generate(rand.New(rand.NewSource(7)), spec)
	if d1.String() != d2.String() {
		t.Error("same seed produced different documents")
	}
}

// Property: ancestor tests agree with parent-chain walking.
func TestQuickAncestorConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		d := Generate(rand.New(rand.NewSource(seed)), GenSpec{
			Tags: []string{"a", "b", "c"}, MaxDepth: 5, MaxFanout: 3, TargetSize: 30,
		})
		for i := 0; i < 20; i++ {
			n := d.Nodes[rng.Intn(d.Size())]
			m := d.Nodes[rng.Intn(d.Size())]
			walked := false
			for x := m.Parent; x != nil; x = x.Parent {
				if x == n {
					walked = true
					break
				}
			}
			if n.IsAncestorOf(m) != walked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEscape(t *testing.T) {
	d := NewDocument(Build("a"))
	d.Root.Text = `x < y & z`
	s := d.XMLString()
	if !strings.Contains(s, "x &lt; y &amp; z") {
		t.Errorf("escaping failed: %s", s)
	}
	d2, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Root.Text != "x < y & z" {
		t.Errorf("text round trip = %q", d2.Root.Text)
	}
}

func TestSubtreeEnd(t *testing.T) {
	d := NewDocument(Build("a", Build("b", Build("c")), Build("d")))
	if d.Root.SubtreeEnd() != 3 {
		t.Errorf("root SubtreeEnd = %d", d.Root.SubtreeEnd())
	}
	b := d.Nodes[1]
	if b.SubtreeEnd() != 2 {
		t.Errorf("b SubtreeEnd = %d", b.SubtreeEnd())
	}
	leaf := d.Nodes[3]
	if leaf.SubtreeEnd() != leaf.Index {
		t.Errorf("leaf SubtreeEnd = %d", leaf.SubtreeEnd())
	}
}
