// Package xmltree implements the XML data model of the paper: a finite
// rooted, labeled tree D = (N, E, r, λ). Document order is preserved for
// reproducibility but is not semantically significant (the paper ignores
// order). Attributes are modeled as child elements, as the paper does
// ("we blur the distinction between elements and attributes").
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a single element node in an XML database tree.
type Node struct {
	// Tag is the element tag (λ(n) in the paper).
	Tag string
	// Text is the concatenated character data directly under this
	// element, if any. It plays no role in tree pattern matching but is
	// kept so that answers can be rendered faithfully.
	Text string
	// Parent is nil for the root.
	Parent *Node
	// Children in document order.
	Children []*Node

	// Index is the preorder position of the node within its Document,
	// assigned by Document.Reindex. It doubles as a stable node id
	// (the paper numbers nodes the same way in Figure 1).
	Index int
	// end is the largest Index in this node's subtree; together with
	// Index it gives O(1) ancestor/descendant tests.
	end int
	// Depth is the root's distance; the root has Depth 0.
	Depth int
}

// AddChild appends a new child element with the given tag and returns it.
func (n *Node) AddChild(tag string) *Node {
	c := &Node{Tag: tag, Parent: n}
	n.Children = append(n.Children, c)
	return c
}

// SubtreeEnd returns the largest preorder Index within n's subtree;
// (n.Index, n.SubtreeEnd()] is exactly the preorder interval of n's
// proper descendants. Requires a reindexed Document.
func (n *Node) SubtreeEnd() int { return n.end }

// IsAncestorOf reports whether n is a proper ancestor of m. Both nodes
// must belong to the same reindexed Document.
func (n *Node) IsAncestorOf(m *Node) bool {
	return n.Index < m.Index && m.Index <= n.end
}

// Subtree returns the nodes of n's subtree in preorder, including n.
func (n *Node) Subtree() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(x *Node) {
		out = append(out, x)
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Path returns the tags from the root down to n, joined by '/'.
func (n *Node) Path() string {
	var tags []string
	for x := n; x != nil; x = x.Parent {
		tags = append(tags, x.Tag)
	}
	for i, j := 0, len(tags)-1; i < j; i, j = i+1, j-1 {
		tags[i], tags[j] = tags[j], tags[i]
	}
	return "/" + strings.Join(tags, "/")
}

// Document is an XML database: a rooted tree with a preorder index over
// its nodes.
type Document struct {
	Root *Node
	// Nodes lists every node in preorder; Nodes[i].Index == i.
	Nodes []*Node
}

// NewDocument wraps a root node into a Document and indexes it.
func NewDocument(root *Node) *Document {
	d := &Document{Root: root}
	d.Reindex()
	return d
}

// Reindex rebuilds the preorder Nodes slice and the Index/end/Depth
// fields. It must be called after structural mutation and before using
// Size, IsAncestorOf or pattern evaluation.
func (d *Document) Reindex() {
	d.Nodes = d.Nodes[:0]
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		n.Index = len(d.Nodes)
		n.Depth = depth
		d.Nodes = append(d.Nodes, n)
		for _, c := range n.Children {
			c.Parent = n
			walk(c, depth+1)
		}
		n.end = len(d.Nodes) - 1
	}
	if d.Root != nil {
		d.Root.Parent = nil
		walk(d.Root, 0)
	}
}

// Size returns the number of element nodes in the document.
func (d *Document) Size() int { return len(d.Nodes) }

// Window returns n's subtree in preorder (n first) as a slice view into
// d.Nodes — O(1) and allocation-free on an indexed document. Callers
// must not modify the returned slice. If n is not indexed in d (the
// document was mutated without Reindex), it falls back to materializing
// the subtree with a walk.
func (d *Document) Window(n *Node) []*Node {
	if i := n.Index; i >= 0 && i < len(d.Nodes) && d.Nodes[i] == n {
		return d.Nodes[i : n.end+1]
	}
	return n.Subtree()
}

// Tags returns the distinct element tags appearing in the document,
// sorted.
func (d *Document) Tags() []string {
	seen := make(map[string]bool)
	for _, n := range d.Nodes {
		seen[n.Tag] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the document.
func (d *Document) Clone() *Document {
	var cp func(*Node) *Node
	cp = func(n *Node) *Node {
		m := &Node{Tag: n.Tag, Text: n.Text}
		for _, c := range n.Children {
			cc := cp(c)
			cc.Parent = m
			m.Children = append(m.Children, cc)
		}
		return m
	}
	if d.Root == nil {
		return &Document{}
	}
	return NewDocument(cp(d.Root))
}

// String renders a compact single-line summary, useful in test failures.
func (d *Document) String() string {
	if d.Root == nil {
		return "<empty>"
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(n *Node) {
		b.WriteString(n.Tag)
		if len(n.Children) > 0 {
			b.WriteByte('(')
			for i, c := range n.Children {
				if i > 0 {
					b.WriteByte(',')
				}
				walk(c)
			}
			b.WriteByte(')')
		}
	}
	walk(d.Root)
	return b.String()
}

// Build constructs a tree from a tag and child subtrees; a convenience
// for literals in tests and examples.
func Build(tag string, children ...*Node) *Node {
	n := &Node{Tag: tag}
	for _, c := range children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// Validate checks structural invariants (parent pointers, index order)
// and returns a descriptive error on the first violation.
func (d *Document) Validate() error {
	if d.Root == nil {
		return fmt.Errorf("xmltree: document has no root")
	}
	if d.Root.Parent != nil {
		return fmt.Errorf("xmltree: root has a parent")
	}
	for i, n := range d.Nodes {
		if n.Index != i {
			return fmt.Errorf("xmltree: node %q has index %d at position %d", n.Tag, n.Index, i)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("xmltree: child %q of %q has wrong parent", c.Tag, n.Tag)
			}
		}
	}
	return nil
}
