// Package fault is a deterministic, seedable fault-injection registry
// for chaos testing the serving path. Pipeline stages and
// infrastructure layers register named injection points
// (fault.Register, a package-var at init time) and call Hit on them
// from inside their hot loops; a chaos test arms a Plan that makes
// selected points panic, delay, report cancellation, or fail with an
// injected error.
//
// The design constraints, in order:
//
//   - Disarmed cost ~ zero. A disarmed Hit is a single atomic pointer
//     load and a nil check — no map lookups, no locks, no clock reads —
//     so the points stay compiled into production binaries without
//     moving the hot-kernel benchmarks.
//   - Deterministic per seed. Whether the n-th Hit of a point fires is
//     a pure function of (plan seed, point name, n), computed by a
//     splitmix64 hash of an atomic per-point hit counter. Two runs of a
//     serial workload under the same plan inject identically; under
//     concurrency the per-point decision sequence is still fixed even
//     though goroutine interleaving is not.
//   - Typed failures. Injected errors satisfy errors.Is(err,
//     ErrInjected) and are Transient() (never cached); injected panics
//     carry *InjectedPanic so recovery sites can tell a drill from a
//     real bug.
//
// The registry is process-global because injection points live in
// package-level vars of the instrumented packages; Enable/Disable are
// test-only entry points and safe for concurrent use with Hit.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the target of errors.Is for all injected errors.
var ErrInjected = errors.New("fault: injected error")

// Error is an injected failure, naming the point that produced it.
type Error struct {
	Point string
}

func (e *Error) Error() string { return "fault: injected error at " + e.Point }

// Is makes errors.Is(err, ErrInjected) true for injected errors.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Transient marks injected errors as never-cacheable: a drill must not
// poison negative caches with failures the real computation would not
// produce.
func (e *Error) Transient() bool { return true }

// InjectedPanic is the value injected panics carry, so recovery sites
// (and chaos tests) can distinguish a drill from a genuine bug.
type InjectedPanic struct {
	Point string
}

func (p *InjectedPanic) String() string { return "fault: injected panic at " + p.Point }

// Action selects what an armed point does when it fires.
type Action uint8

const (
	// ActError makes Hit return an *Error.
	ActError Action = iota
	// ActPanic makes Hit panic with an *InjectedPanic.
	ActPanic
	// ActDelay makes Hit sleep for the injection's Delay (respecting
	// ctx) and then succeed.
	ActDelay
	// ActCancel makes Hit return context.Canceled, simulating a client
	// disconnect observed mid-stage.
	ActCancel
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	case ActCancel:
		return "cancel"
	}
	return "unknown"
}

// Injection arms one point within a Plan.
type Injection struct {
	// Point names a registered injection point.
	Point string
	// Action is what the point does when it fires.
	Action Action
	// Prob is the per-hit firing probability in (0, 1]; 0 means 1
	// (fire on every hit).
	Prob float64
	// Delay is the sleep duration for ActDelay; 0 means 1ms.
	Delay time.Duration
}

// Plan is a seeded set of injections. The same plan enabled twice
// produces the same per-point firing sequence.
type Plan struct {
	Seed       int64
	Injections []Injection
}

// arming is the armed state of one point; nil means disarmed.
type arming struct {
	seed      uint64
	action    Action
	threshold uint64 // fire when hash < threshold; ^0 means always
	delay     time.Duration
}

// A Point is one named injection site. Obtain points with Register at
// package init; Hit them from the instrumented code path.
type Point struct {
	name  string
	armed atomic.Pointer[arming]
	hits  atomic.Uint64
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

var (
	regMu    sync.Mutex
	registry = make(map[string]*Point)
)

// Register returns the point named name, creating it on first use.
// Registration is idempotent, so independent packages may name the
// same point.
func Register(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry[name] = p
	return p
}

// Names returns the names of all registered points, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Enable arms the plan's injections on their registered points,
// disarming every other point and resetting all hit counters so the
// firing sequence restarts deterministically. It fails if the plan
// names an unregistered point (a typo in a chaos test must not
// silently test nothing).
func Enable(plan *Plan) error {
	regMu.Lock()
	defer regMu.Unlock()
	byPoint := make(map[string]*arming, len(plan.Injections))
	for _, inj := range plan.Injections {
		if registry[inj.Point] == nil {
			return fmt.Errorf("fault: unregistered injection point %q", inj.Point)
		}
		a := &arming{
			seed:   splitmix64(uint64(plan.Seed) ^ hashName(inj.Point)),
			action: inj.Action,
			delay:  inj.Delay,
		}
		if a.delay <= 0 {
			a.delay = time.Millisecond
		}
		switch {
		case inj.Prob <= 0 || inj.Prob >= 1:
			a.threshold = ^uint64(0)
		default:
			a.threshold = uint64(inj.Prob * float64(1<<63) * 2)
		}
		byPoint[inj.Point] = a
	}
	for name, p := range registry {
		p.hits.Store(0)
		if a := byPoint[name]; a != nil {
			p.armed.Store(a)
		} else {
			p.armed.Store(nil)
		}
	}
	return nil
}

// Disable disarms every registered point.
func Disable() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		p.armed.Store(nil)
	}
}

// Hit is the instrumented code path's probe: disarmed it costs one
// atomic load, armed it decides deterministically from the per-point
// hit counter whether to fire. ActPanic panics; the other actions
// return their failure (or nil after a delay).
func (p *Point) Hit(ctx context.Context) error {
	a := p.armed.Load()
	if a == nil {
		return nil
	}
	return p.fire(ctx, a)
}

// fire is kept out of Hit so the disarmed fast path stays inlinable.
func (p *Point) fire(ctx context.Context, a *arming) error {
	n := p.hits.Add(1)
	if a.threshold != ^uint64(0) && splitmix64(a.seed+n) >= a.threshold {
		return nil
	}
	switch a.action {
	case ActPanic:
		panic(&InjectedPanic{Point: p.name})
	case ActDelay:
		t := time.NewTimer(a.delay)
		defer t.Stop()
		if ctx == nil {
			<-t.C
			return nil
		}
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case ActCancel:
		return context.Canceled
	default:
		return &Error{Point: p.name}
	}
}

// hashName is FNV-1a over the point name, mixing the name into the
// plan seed so distinct points under one plan fire independently.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the standard 64-bit finalizer: a cheap, well-mixed
// hash giving each (seed, hit-index) pair an independent decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
