package fault

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	p := Register("test.disarmed")
	for i := 0; i < 100; i++ {
		if err := p.Hit(context.Background()); err != nil {
			t.Fatalf("disarmed hit %d returned %v", i, err)
		}
	}
}

func TestEnableUnknownPoint(t *testing.T) {
	if err := Enable(&Plan{Injections: []Injection{{Point: "no.such.point"}}}); err == nil {
		t.Fatal("enabling an unregistered point did not fail")
	}
}

func TestErrorInjection(t *testing.T) {
	p := Register("test.error")
	defer Disable()
	if err := Enable(&Plan{Seed: 1, Injections: []Injection{{Point: "test.error", Action: ActError}}}); err != nil {
		t.Fatal(err)
	}
	err := p.Hit(context.Background())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "test.error" {
		t.Fatalf("err = %#v, want *Error naming the point", err)
	}
	if !fe.Transient() {
		t.Error("injected errors must be Transient")
	}
	Disable()
	if err := p.Hit(context.Background()); err != nil {
		t.Fatalf("hit after Disable returned %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	p := Register("test.panic")
	defer Disable()
	if err := Enable(&Plan{Seed: 2, Injections: []Injection{{Point: "test.panic", Action: ActPanic}}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		ip, ok := v.(*InjectedPanic)
		if !ok || ip.Point != "test.panic" {
			t.Errorf("panic value = %#v, want *InjectedPanic", v)
		}
	}()
	p.Hit(context.Background())
	t.Fatal("armed panic point did not panic")
}

func TestCancelInjection(t *testing.T) {
	p := Register("test.cancel")
	defer Disable()
	if err := Enable(&Plan{Seed: 3, Injections: []Injection{{Point: "test.cancel", Action: ActCancel}}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Hit(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDelayInjectionHonorsContext(t *testing.T) {
	p := Register("test.delay")
	defer Disable()
	if err := Enable(&Plan{Seed: 4, Injections: []Injection{
		{Point: "test.delay", Action: ActDelay, Delay: time.Minute},
	}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := p.Hit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("delay ignored the cancelled context")
	}
}

// The firing sequence of a probabilistic injection is a pure function
// of (seed, hit index): two enables of the same plan replay the same
// decisions, a different seed diverges.
func TestDeterministicFiring(t *testing.T) {
	p := Register("test.deterministic")
	defer Disable()
	sequence := func(seed int64) []bool {
		plan := &Plan{Seed: seed, Injections: []Injection{
			{Point: "test.deterministic", Action: ActError, Prob: 0.5},
		}}
		if err := Enable(plan); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Hit(context.Background()) != nil
		}
		return out
	}
	a, b, c := sequence(42), sequence(42), sequence(43)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob 0.5 fired %d/%d times; hash looks degenerate", fired, len(a))
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestNamesSortedAndRegistered(t *testing.T) {
	Register("test.names.b")
	Register("test.names.a")
	names := Names()
	seenA, seenB := false, false
	for i, n := range names {
		if i > 0 && names[i-1] > n {
			t.Fatalf("Names not sorted: %v", names)
		}
		seenA = seenA || n == "test.names.a"
		seenB = seenB || n == "test.names.b"
	}
	if !seenA || !seenB {
		t.Fatalf("registered points missing from Names: %v", names)
	}
}

// Hit must be safe against concurrent Enable/Disable flips.
func TestConcurrentHitAndToggle(t *testing.T) {
	p := Register("test.race")
	defer Disable()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					p.Hit(context.Background())
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := Enable(&Plan{Seed: int64(i), Injections: []Injection{
			{Point: "test.race", Action: ActError, Prob: 0.3},
		}}); err != nil {
			t.Fatal(err)
		}
		Disable()
	}
	close(stop)
	wg.Wait()
}
