package tpq

// Wildcard is the tag of a pattern node matching any element, written
// '*' in XPath. Wildcards extend the fragment to XP{/,//,[],*} — one of
// the paper's future-work directions (§7(i)).
//
// Support is deliberately scoped:
//
//   - Parsing and evaluation handle wildcards fully.
//   - Containment with wildcards is SOUND but incomplete: homomorphism
//     existence still implies containment, but containment no longer
//     implies a homomorphism (Miklau & Suciu show the combined fragment
//     is coNP-complete). Contained never errs on the side of claiming
//     containment.
//   - The rewriting algorithms (rewrite package) reject wildcarded
//     inputs: the paper's MCR theory is developed for XP{/,//,[]} and
//     its guarantees do not transfer.
const Wildcard = "*"

// HasWildcard reports whether any node of the pattern is a wildcard.
func (p *Pattern) HasWildcard() bool {
	pi := p.index()
	return pi != nil && pi.hasWildcard
}

// tagMatches is the single point deciding whether a pattern node's tag
// accepts an element tag.
func tagMatches(patternTag, elementTag string) bool {
	return patternTag == Wildcard || patternTag == elementTag
}

// homTagMatches decides whether a node of the CONTAINING pattern q' may
// map onto a node of the contained pattern q in the homomorphism test:
// a wildcard in q' accepts anything; a concrete tag in q' must meet the
// same concrete tag in q (mapping a concrete tag onto a wildcard of q
// would be unsound — the wildcard also matches other tags).
func homTagMatches(containerTag, containedTag string) bool {
	return containerTag == Wildcard || containerTag == containedTag
}
