package tpq

// This file is the structured mutation API: the only sanctioned way to
// edit a pattern in place. Everywhere else in the module, patterns are
// treated as immutable once built — they flow through the engine's
// cache and are shared between concurrent requests — and the patmut
// analyzer (internal/lint) rejects direct field assignments outside
// this package. Algorithms that need to edit (the chase's rule
// applications, compensation assembly) Clone first and then use these
// operations, which keep the Parent/Children/Output invariants that
// Validate checks.

// Every operation here additionally invalidates the tree's interval
// labels and cached derived forms (see index.go) in O(1), so stale
// labels are never consulted; the next indexed read re-labels.

// SetOutput marks n as the pattern's distinguished node. n must belong
// to the tree rooted at p.Root (Validate reports a violation).
func (p *Pattern) SetOutput(n *Node) {
	p.Output = n
	if p.Root != nil {
		// The canonical form and output-derived metadata changed.
		p.Root.invalidate()
	}
}

// SetAxis changes the axis connecting n to its parent (or, for the
// root, to the virtual document root).
func (n *Node) SetAxis(a Axis) {
	n.Axis = a
	n.invalidate()
}

// RemoveChildAt detaches and returns the i-th child of n. The returned
// subtree is self-contained: its root has no parent.
func (n *Node) RemoveChildAt(i int) *Node {
	c := n.Children[i]
	n.Children = append(n.Children[:i], n.Children[i+1:]...)
	c.Parent = nil
	n.invalidate()
	return c
}

// AdoptChildren moves every child of donor under n, preserving each
// child's axis, and leaves donor childless. It is the merge step of
// the chase's FC rule: two duplicate siblings collapse by one adopting
// the other's subtrees.
func (n *Node) AdoptChildren(donor *Node) {
	for _, c := range donor.Children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	donor.Children = nil
	n.invalidate()
	donor.invalidate()
}

// SpliceAbove inserts a fresh node with the given axis and tag between
// n and its i-th child, and returns the new node: n -axis-> new -> c,
// with c keeping its own axis below the new node. It is the edge-split
// step of the chase's IC rule (a⇝b becomes a⇝c⇝b).
func (n *Node) SpliceAbove(i int, axis Axis, tag string) *Node {
	ch := n.Children[i]
	mid := &Node{Tag: tag, Axis: axis, Parent: n}
	n.Children[i] = mid
	ch.Parent = mid
	mid.Children = append(mid.Children, ch)
	n.invalidate()
	return mid
}
