package tpq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/xmltree"
)

// pharmaDoc builds the Figure 1(a) document. Node numbering follows the
// paper: 1 PharmaLab, 2 Trials(T1), 3 Trial, 4 Patient, 10 Status,
// 11 Trial, 12 Patient, 13 Trials(T2), 14 Trial, 15 Patient.
func pharmaDoc() *xmltree.Document {
	return xmltree.NewDocument(xmltree.Build("PharmaLab",
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient"), xmltree.Build("Status")),
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
		xmltree.Build("Trials",
			xmltree.Build("Trial", xmltree.Build("Patient")),
		),
	))
}

func tags(ns []*xmltree.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Tag
	}
	return out
}

func paths(ns []*xmltree.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Path()
	}
	return out
}

func TestEvaluateFigure1(t *testing.T) {
	d := pharmaDoc()
	// The view //Trials//Trial returns all three Trial elements.
	v := MustParse("//Trials//Trial")
	if got := v.Evaluate(d); len(got) != 3 {
		t.Fatalf("view answers = %v, want 3 Trials", paths(got))
	}
	// The query //Trials[//Status]//Trial returns the two Trial children
	// of the first Trials (nodes 3, 11 in the paper).
	q := MustParse("//Trials[//Status]//Trial")
	got := q.Evaluate(d)
	if len(got) != 2 {
		t.Fatalf("query answers = %v, want 2", paths(got))
	}
	firstTrials := d.Root.Children[0]
	for _, n := range got {
		if n.Parent != firstTrials {
			t.Errorf("answer %s not under the Status-bearing Trials", n.Path())
		}
	}
	// The rewriting //Trials//Trial[//Status] returns only the first
	// Trial (node 3) — strictly fewer answers, but sound.
	r := MustParse("//Trials//Trial[//Status]")
	rgot := r.Evaluate(d)
	if len(rgot) != 1 || rgot[0] != firstTrials.Children[0] {
		t.Fatalf("rewriting answers = %v, want only the first Trial", paths(rgot))
	}
}

func TestEvaluateRootAxis(t *testing.T) {
	d := xmltree.NewDocument(xmltree.Build("a", xmltree.Build("a", xmltree.Build("b"))))
	if got := MustParse("/a").Evaluate(d); len(got) != 1 || got[0] != d.Root {
		t.Errorf("/a = %v", paths(got))
	}
	if got := MustParse("//a").Evaluate(d); len(got) != 2 {
		t.Errorf("//a = %v, want both a nodes", paths(got))
	}
	if got := MustParse("/b").Evaluate(d); len(got) != 0 {
		t.Errorf("/b = %v, want empty", paths(got))
	}
	if got := MustParse("//b").Evaluate(d); len(got) != 1 {
		t.Errorf("//b = %v", paths(got))
	}
}

func TestEvaluateChildVsDescendant(t *testing.T) {
	// a -> b -> c: /a/c matches nothing, /a//c matches c.
	d := xmltree.NewDocument(xmltree.Build("a", xmltree.Build("b", xmltree.Build("c"))))
	if got := MustParse("/a/c").Evaluate(d); len(got) != 0 {
		t.Errorf("/a/c = %v", paths(got))
	}
	if got := MustParse("/a//c").Evaluate(d); len(got) != 1 {
		t.Errorf("/a//c = %v", paths(got))
	}
	// Descendant is proper: //a//a on a single a matches nothing.
	single := xmltree.NewDocument(xmltree.Build("a"))
	if got := MustParse("//a//a").Evaluate(single); len(got) != 0 {
		t.Errorf("//a//a on single a = %v", paths(got))
	}
}

func TestEvaluatePredicatesFilter(t *testing.T) {
	d := xmltree.NewDocument(xmltree.Build("r",
		xmltree.Build("x", xmltree.Build("y"), xmltree.Build("z")),
		xmltree.Build("x", xmltree.Build("y")),
		xmltree.Build("x", xmltree.Build("z")),
	))
	got := MustParse("/r/x[y][z]").Evaluate(d)
	if len(got) != 1 || got[0] != d.Root.Children[0] {
		t.Errorf("/r/x[y][z] = %v", paths(got))
	}
	got = MustParse("/r/x[y]").Evaluate(d)
	if len(got) != 2 {
		t.Errorf("/r/x[y] = %v", paths(got))
	}
}

func TestEvaluateSameTagChain(t *testing.T) {
	// b/b/b chain: //b//b needs two distinct b's on a path.
	d := xmltree.NewDocument(xmltree.Build("b", xmltree.Build("b", xmltree.Build("b"))))
	got := MustParse("//b//b").Evaluate(d)
	if len(got) != 2 {
		t.Errorf("//b//b = %v, want the two lower b's", paths(got))
	}
	got = MustParse("//b//b//b").Evaluate(d)
	if len(got) != 1 {
		t.Errorf("//b//b//b = %v, want the deepest b", paths(got))
	}
}

func TestEvaluateAnswersAreSet(t *testing.T) {
	// Multiple matchings must not duplicate answers: both b children
	// witness the predicate, the answer node appears once.
	d := xmltree.NewDocument(xmltree.Build("a",
		xmltree.Build("b"), xmltree.Build("b"), xmltree.Build("c"),
	))
	got := MustParse("//a[b]/c").Evaluate(d)
	if len(got) != 1 {
		t.Errorf("answers duplicated: %v", paths(got))
	}
}

func TestCanonicalDocumentMatchesItself(t *testing.T) {
	exprs := []string{
		"/a", "//a//b", "//Trials[//Status]//Trial",
		"//a//a/b/c[d][//a/b/c/e]", "/a[b[//c][d]]/e",
	}
	for _, e := range exprs {
		p := MustParse(e)
		doc, outImg := p.CanonicalDocument()
		got := p.Evaluate(doc)
		found := false
		for _, n := range got {
			if n == outImg {
				found = true
			}
		}
		if !found {
			t.Errorf("%s does not match its canonical document (answers %v)", e, paths(got))
		}
	}
}

// naiveEvaluate enumerates all matchings by brute force, for
// cross-checking Evaluate on random inputs.
func naiveEvaluate(p *Pattern, d *xmltree.Document) map[*xmltree.Node]bool {
	answers := make(map[*xmltree.Node]bool)
	qnodes := p.Nodes()
	assign := make(map[*Node]*xmltree.Node, len(qnodes))
	var try func(i int) // assign qnodes[i..]
	try = func(i int) {
		if i == len(qnodes) {
			answers[assign[p.Output]] = true
			return
		}
		q := qnodes[i]
		var candidates []*xmltree.Node
		if q.Parent == nil {
			if q.Axis == Child {
				candidates = []*xmltree.Node{d.Root}
			} else {
				candidates = d.Nodes
			}
		} else {
			img := assign[q.Parent]
			if q.Axis == Child {
				candidates = img.Children
			} else {
				candidates = img.Subtree()[1:]
			}
		}
		for _, c := range candidates {
			if c.Tag != q.Tag {
				continue
			}
			assign[q] = c
			try(i + 1)
		}
		delete(assign, q)
	}
	try(0)
	return answers
}

func TestQuickEvaluateAgainstNaive(t *testing.T) {
	tagsets := [][]string{{"a", "b"}, {"a", "b", "c"}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := xmltree.Generate(rng, xmltree.GenSpec{
			Tags: tagsets[rng.Intn(len(tagsets))], MaxDepth: 5, MaxFanout: 3, TargetSize: 18,
		})
		p := randomPattern(rng, []string{"a", "b", "c"}, 5)
		want := naiveEvaluate(p, d)
		got := p.Evaluate(d)
		if len(got) != len(want) {
			return false
		}
		for _, n := range got {
			if !want[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomPattern builds a random pattern with up to maxNodes nodes.
func randomPattern(rng *rand.Rand, alphabet []string, maxNodes int) *Pattern {
	n := 1 + rng.Intn(maxNodes)
	axis := Axis(rng.Intn(2))
	p := New(axis, alphabet[rng.Intn(len(alphabet))])
	nodes := []*Node{p.Root}
	for len(nodes) < n {
		parent := nodes[rng.Intn(len(nodes))]
		c := parent.AddChild(Axis(rng.Intn(2)), alphabet[rng.Intn(len(alphabet))])
		nodes = append(nodes, c)
	}
	p.Output = nodes[rng.Intn(len(nodes))]
	// Output must be reachable on a root path; any node qualifies.
	return p
}
