// Package tpq implements tree pattern queries (TPQs), the XPath fragment
// XP{/,//,[]} of the paper: rooted trees whose nodes carry element tags,
// whose edges are pc-edges (child, '/') or ad-edges (descendant, '//'),
// and which have one distinguished (output) node.
//
// A pattern is conceptually rooted at a virtual document root: the
// pattern root's own Axis states whether the root must be the document
// root (Child, written "/tag") or may be any node (Descendant, "//tag").
package tpq

import (
	"fmt"
	"sort"
	"strings"
)

// Axis is the type of the edge connecting a pattern node to its parent
// (pc for '/', ad for '//').
type Axis uint8

const (
	// Child is the pc (parent-child) axis, written '/'.
	Child Axis = iota
	// Descendant is the ad (ancestor-descendant) axis, written '//'.
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Node is a node of a tree pattern.
type Node struct {
	// Tag is the element tag the node must match.
	Tag string
	// Axis relates the node to its parent (or, for the pattern root, to
	// the virtual document root).
	Axis Axis
	// Parent is nil for the pattern root.
	Parent *Node
	// Children of the node; order is not semantically significant.
	Children []*Node

	// pre and end are the node's preorder interval labels: pre is the
	// preorder position within the tree, end the largest position inside
	// the subtree, so "n is a proper ancestor of m" is the O(1) test
	// n.pre < m.pre && m.pre <= n.end. Valid only while stamp is fresh
	// (see index.go); maintained by Reindex and invalidated by the
	// structured mutation API.
	pre, end int32
	stamp    *treeStamp
}

// AddChild appends a new child connected by the given axis and returns it.
func (n *Node) AddChild(axis Axis, tag string) *Node {
	c := &Node{Tag: tag, Axis: axis, Parent: n}
	n.Children = append(n.Children, c)
	n.invalidate()
	return c
}

// Attach links an existing subtree under n with the given axis.
func (n *Node) Attach(axis Axis, sub *Node) {
	sub.Axis = axis
	sub.Parent = n
	n.Children = append(n.Children, sub)
	n.invalidate()
	sub.invalidate()
}

// IsAncestorOf reports whether n is a proper ancestor of m in the
// pattern. On an indexed pattern (see Reindex) this is an O(1) interval
// comparison; otherwise it falls back to walking m's parent chain.
func (n *Node) IsAncestorOf(m *Node) bool {
	if s := n.stamp; s != nil && s == m.stamp && s.valid {
		return n.pre < m.pre && m.pre <= n.end
	}
	return isAncestorOfWalk(n, m)
}

// isAncestorOfWalk is the reference parent-chain implementation of
// IsAncestorOf; the differential tests check the interval fast path
// against it.
func isAncestorOfWalk(n, m *Node) bool {
	for x := m.Parent; x != nil; x = x.Parent {
		if x == n {
			return true
		}
	}
	return false
}

// Pattern is a tree pattern query with a distinguished output node.
type Pattern struct {
	// Root of the pattern. Root.Axis distinguishes "/a" from "//a".
	Root *Node
	// Output is the distinguished node (marked '*' in the paper's
	// figures). It must be a node of the tree rooted at Root.
	Output *Node

	// info and canon cache derived read-only metadata per indexing pass
	// (see index.go). Zero values are valid; both are keyed by the
	// tree's stamp, so stale entries are ignored rather than consulted.
	info  infoCache
	canon canonCache
}

// New builds a pattern from a root node; the root is the output unless
// changed afterwards.
func New(rootAxis Axis, rootTag string) *Pattern {
	r := &Node{Tag: rootTag, Axis: rootAxis}
	return &Pattern{Root: r, Output: r}
}

// Nodes returns all pattern nodes in preorder. The returned slice is a
// fresh copy the caller may modify.
func (p *Pattern) Nodes() []*Node {
	pi := p.index()
	if pi == nil {
		return nil
	}
	out := make([]*Node, len(pi.nodes))
	copy(out, pi.nodes)
	return out
}

// Size is the number of pattern nodes (|Q| in the paper).
func (p *Pattern) Size() int {
	pi := p.index()
	if pi == nil {
		return 0
	}
	return len(pi.nodes)
}

// DistinguishedPath returns the nodes on the path from the root to the
// output node, inclusive (P_Q in the paper).
func (p *Pattern) DistinguishedPath() []*Node {
	var path []*Node
	for n := p.Output; n != nil; n = n.Parent {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// OnDistinguishedPath reports whether n lies on the root-to-output path.
// O(1) on an indexed pattern.
func (p *Pattern) OnDistinguishedPath(n *Node) bool {
	pi := p.index()
	if pi == nil || n == nil {
		return false
	}
	if i := int(n.pre); i >= 0 && i < len(pi.nodes) && pi.nodes[i] == n {
		return pi.onPath[i]
	}
	return false
}

// Validate checks the structural invariants: a root exists, parent
// pointers are consistent, tags are non-empty, and the output node
// belongs to the tree.
func (p *Pattern) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("tpq: pattern has no root")
	}
	if p.Root.Parent != nil {
		return fmt.Errorf("tpq: root has a parent")
	}
	if p.Output == nil {
		return fmt.Errorf("tpq: pattern has no output node")
	}
	seen := false
	for _, n := range p.Nodes() {
		if n.Tag == "" {
			return fmt.Errorf("tpq: node with empty tag")
		}
		if n == p.Output {
			seen = true
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("tpq: child %q of %q has wrong parent pointer", c.Tag, n.Tag)
			}
		}
	}
	if !seen {
		return fmt.Errorf("tpq: output node not in pattern tree")
	}
	return nil
}

// Clone deep-copies the pattern. The second return value maps original
// nodes to their copies, which rewriting algorithms use to carry node
// correspondences across copies. The copy is indexed (see Reindex)
// regardless of the state of the original, which is only read.
func (p *Pattern) Clone() (*Pattern, map[*Node]*Node) {
	m := make(map[*Node]*Node)
	st := &treeStamp{valid: true}
	var cp func(n *Node, next int32) (*Node, int32)
	cp = func(n *Node, next int32) (*Node, int32) {
		c := &Node{Tag: n.Tag, Axis: n.Axis, pre: next, stamp: st}
		next++
		m[n] = c
		if len(n.Children) > 0 {
			c.Children = make([]*Node, len(n.Children))
			for i, k := range n.Children {
				var kc *Node
				kc, next = cp(k, next)
				kc.Parent = c
				c.Children[i] = kc
			}
		}
		c.end = next - 1
		return c, next
	}
	root, _ := cp(p.Root, 0)
	return &Pattern{Root: root, Output: m[p.Output]}, m
}

// CloneTrack deep-copies the pattern like Clone but, instead of the full
// correspondence map, returns only the copy of target (nil when target
// is not a node of p). Rewriting construction uses this to follow one
// distinguished node through a copy without allocating the map.
func (p *Pattern) CloneTrack(target *Node) (*Pattern, *Node) {
	st := &treeStamp{valid: true}
	var outc, tc *Node
	var cp func(n *Node, next int32) (*Node, int32)
	cp = func(n *Node, next int32) (*Node, int32) {
		c := &Node{Tag: n.Tag, Axis: n.Axis, pre: next, stamp: st}
		next++
		if n == p.Output {
			outc = c
		}
		if n == target {
			tc = c
		}
		if len(n.Children) > 0 {
			c.Children = make([]*Node, len(n.Children))
			for i, k := range n.Children {
				var kc *Node
				kc, next = cp(k, next)
				kc.Parent = c
				c.Children[i] = kc
			}
		}
		c.end = next - 1
		return c, next
	}
	root, _ := cp(p.Root, 0)
	return &Pattern{Root: root, Output: outc}, tc
}

// CloneSubtree deep-copies the subtree rooted at n (detached: the copy's
// root has no parent and keeps n's axis).
func CloneSubtree(n *Node) *Node {
	c, _ := CloneSubtreeTrack(n, nil)
	return c
}

// CloneSubtreeTrack deep-copies the subtree rooted at n like
// CloneSubtree and additionally returns the copy of target (nil when
// target does not occur in the subtree).
func CloneSubtreeTrack(n, target *Node) (clone, targetClone *Node) {
	c := &Node{Tag: n.Tag, Axis: n.Axis}
	var tc *Node
	if n == target && target != nil {
		tc = c
	}
	for _, k := range n.Children {
		kc, ktc := CloneSubtreeTrack(k, target)
		kc.Parent = c
		c.Children = append(c.Children, kc)
		if ktc != nil {
			tc = ktc
		}
	}
	return c, tc
}

// SubtreePattern deep-copies the subtree rooted at n into a standalone
// indexed pattern: the copy's root takes rootAxis, and the pattern's
// output is the copy of output (nil when output lies outside the
// subtree). The copy is labeled during the single construction walk, so
// no separate Reindex pass is needed.
func SubtreePattern(n *Node, rootAxis Axis, output *Node) *Pattern {
	st := &treeStamp{valid: true}
	var outc *Node
	var cp func(x *Node, next int32) (*Node, int32)
	cp = func(x *Node, next int32) (*Node, int32) {
		c := &Node{Tag: x.Tag, Axis: x.Axis, pre: next, stamp: st}
		next++
		if x == output {
			outc = c
		}
		if len(x.Children) > 0 {
			c.Children = make([]*Node, len(x.Children))
			for i, k := range x.Children {
				var kc *Node
				kc, next = cp(k, next)
				kc.Parent = c
				c.Children[i] = kc
			}
		}
		c.end = next - 1
		return c, next
	}
	root, _ := cp(n, 0)
	root.Axis = rootAxis // a field rewrite, not a structural edit: labels stay valid
	return &Pattern{Root: root, Output: outc}
}

// canonical returns a canonical string for the subtree rooted at n,
// marking the output node, with children sorted; used for order-
// insensitive structural equality.
func canonical(n *Node, output *Node) string {
	kids := make([]string, len(n.Children))
	for i, c := range n.Children {
		kids[i] = canonical(c, output)
	}
	sort.Strings(kids)
	mark := ""
	if n == output {
		mark = "*"
	}
	return n.Axis.String() + n.Tag + mark + "(" + strings.Join(kids, ",") + ")"
}

// Canonical returns an order-insensitive canonical form of the pattern.
// Two patterns are structurally identical (isomorphic respecting axes,
// tags and the output mark) iff their canonical forms are equal. The
// form is cached on indexed patterns (see Reindex) and recomputed after
// every structural mutation.
func (p *Pattern) Canonical() string {
	if p.Root == nil {
		return ""
	}
	return p.cachedCanonical()
}

// StructuralEqual reports whether p and q are identical up to sibling
// reordering. (Semantic equivalence is Equivalent in contain.go.)
func (p *Pattern) StructuralEqual(q *Pattern) bool {
	return p.Canonical() == q.Canonical()
}
