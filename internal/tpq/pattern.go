// Package tpq implements tree pattern queries (TPQs), the XPath fragment
// XP{/,//,[]} of the paper: rooted trees whose nodes carry element tags,
// whose edges are pc-edges (child, '/') or ad-edges (descendant, '//'),
// and which have one distinguished (output) node.
//
// A pattern is conceptually rooted at a virtual document root: the
// pattern root's own Axis states whether the root must be the document
// root (Child, written "/tag") or may be any node (Descendant, "//tag").
package tpq

import (
	"fmt"
	"sort"
	"strings"
)

// Axis is the type of the edge connecting a pattern node to its parent
// (pc for '/', ad for '//').
type Axis uint8

const (
	// Child is the pc (parent-child) axis, written '/'.
	Child Axis = iota
	// Descendant is the ad (ancestor-descendant) axis, written '//'.
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Node is a node of a tree pattern.
type Node struct {
	// Tag is the element tag the node must match.
	Tag string
	// Axis relates the node to its parent (or, for the pattern root, to
	// the virtual document root).
	Axis Axis
	// Parent is nil for the pattern root.
	Parent *Node
	// Children of the node; order is not semantically significant.
	Children []*Node
}

// AddChild appends a new child connected by the given axis and returns it.
func (n *Node) AddChild(axis Axis, tag string) *Node {
	c := &Node{Tag: tag, Axis: axis, Parent: n}
	n.Children = append(n.Children, c)
	return c
}

// Attach links an existing subtree under n with the given axis.
func (n *Node) Attach(axis Axis, sub *Node) {
	sub.Axis = axis
	sub.Parent = n
	n.Children = append(n.Children, sub)
}

// IsAncestorOf reports whether n is a proper ancestor of m in the pattern.
func (n *Node) IsAncestorOf(m *Node) bool {
	for x := m.Parent; x != nil; x = x.Parent {
		if x == n {
			return true
		}
	}
	return false
}

// Pattern is a tree pattern query with a distinguished output node.
type Pattern struct {
	// Root of the pattern. Root.Axis distinguishes "/a" from "//a".
	Root *Node
	// Output is the distinguished node (marked '*' in the paper's
	// figures). It must be a node of the tree rooted at Root.
	Output *Node
}

// New builds a pattern from a root node; the root is the output unless
// changed afterwards.
func New(rootAxis Axis, rootTag string) *Pattern {
	r := &Node{Tag: rootTag, Axis: rootAxis}
	return &Pattern{Root: r, Output: r}
}

// Nodes returns all pattern nodes in preorder.
func (p *Pattern) Nodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	if p.Root != nil {
		walk(p.Root)
	}
	return out
}

// Size is the number of pattern nodes (|Q| in the paper).
func (p *Pattern) Size() int { return len(p.Nodes()) }

// DistinguishedPath returns the nodes on the path from the root to the
// output node, inclusive (P_Q in the paper).
func (p *Pattern) DistinguishedPath() []*Node {
	var path []*Node
	for n := p.Output; n != nil; n = n.Parent {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// OnDistinguishedPath reports whether n lies on the root-to-output path.
func (p *Pattern) OnDistinguishedPath(n *Node) bool {
	for x := p.Output; x != nil; x = x.Parent {
		if x == n {
			return true
		}
	}
	return false
}

// Validate checks the structural invariants: a root exists, parent
// pointers are consistent, tags are non-empty, and the output node
// belongs to the tree.
func (p *Pattern) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("tpq: pattern has no root")
	}
	if p.Root.Parent != nil {
		return fmt.Errorf("tpq: root has a parent")
	}
	if p.Output == nil {
		return fmt.Errorf("tpq: pattern has no output node")
	}
	seen := false
	for _, n := range p.Nodes() {
		if n.Tag == "" {
			return fmt.Errorf("tpq: node with empty tag")
		}
		if n == p.Output {
			seen = true
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("tpq: child %q of %q has wrong parent pointer", c.Tag, n.Tag)
			}
		}
	}
	if !seen {
		return fmt.Errorf("tpq: output node not in pattern tree")
	}
	return nil
}

// Clone deep-copies the pattern. The second return value maps original
// nodes to their copies, which rewriting algorithms use to carry node
// correspondences across copies.
func (p *Pattern) Clone() (*Pattern, map[*Node]*Node) {
	m := make(map[*Node]*Node, p.Size())
	var cp func(*Node) *Node
	cp = func(n *Node) *Node {
		c := &Node{Tag: n.Tag, Axis: n.Axis}
		m[n] = c
		for _, k := range n.Children {
			kc := cp(k)
			kc.Parent = c
			c.Children = append(c.Children, kc)
		}
		return c
	}
	out := &Pattern{Root: cp(p.Root)}
	out.Output = m[p.Output]
	return out, m
}

// CloneSubtree deep-copies the subtree rooted at n (detached: the copy's
// root has no parent and keeps n's axis).
func CloneSubtree(n *Node) *Node {
	c := &Node{Tag: n.Tag, Axis: n.Axis}
	for _, k := range n.Children {
		kc := CloneSubtree(k)
		kc.Parent = c
		c.Children = append(c.Children, kc)
	}
	return c
}

// canonical returns a canonical string for the subtree rooted at n,
// marking the output node, with children sorted; used for order-
// insensitive structural equality.
func canonical(n *Node, output *Node) string {
	kids := make([]string, len(n.Children))
	for i, c := range n.Children {
		kids[i] = canonical(c, output)
	}
	sort.Strings(kids)
	mark := ""
	if n == output {
		mark = "*"
	}
	return n.Axis.String() + n.Tag + mark + "(" + strings.Join(kids, ",") + ")"
}

// Canonical returns an order-insensitive canonical form of the pattern.
// Two patterns are structurally identical (isomorphic respecting axes,
// tags and the output mark) iff their canonical forms are equal.
func (p *Pattern) Canonical() string { return canonical(p.Root, p.Output) }

// StructuralEqual reports whether p and q are identical up to sibling
// reordering. (Semantic equivalence is Equivalent in contain.go.)
func (p *Pattern) StructuralEqual(q *Pattern) bool {
	return p.Canonical() == q.Canonical()
}
