package tpq

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The tests below use eval_test.go's randomPattern generator; the
// returned patterns start out unindexed, so they also exercise the lazy
// single-owner reindex path.

// TestContainedMatchesReference checks the optimized Contained (interval
// labels, prefilters, pooled checker) against the frozen reference
// implementation on random pattern pairs — including wildcard patterns.
func TestContainedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabets := [][]string{
		{"a", "b", "c"},
		{"a", "b", Wildcard},
		{"a"},
	}
	checked := 0
	for trial := 0; trial < 700; trial++ {
		alphabet := alphabets[trial%len(alphabets)]
		q := randomPattern(rng, alphabet, 8)
		qp := randomPattern(rng, alphabet, 8)
		got := Contained(q, qp)
		want := containedReference(q, qp)
		if got != want {
			t.Fatalf("Contained(%s, %s) = %v, reference says %v", q.Canonical(), qp.Canonical(), got, want)
		}
		// Also check the reflexive direction: every pattern is contained
		// in itself.
		if !Contained(q, q) {
			t.Fatalf("Contained(%s, itself) = false", q.Canonical())
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("only %d instances checked, want >= 500", checked)
	}
}

// TestIsAncestorOfMatchesWalk checks the O(1) interval ancestor test
// against the parent-chain walk on all node pairs of random patterns,
// both within one pattern and across two (cross-pattern pairs must
// never report ancestry via stale labels).
func TestIsAncestorOfMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alphabet := []string{"a", "b"}
	for trial := 0; trial < 200; trial++ {
		p := randomPattern(rng, alphabet, 10)
		o := randomPattern(rng, alphabet, 10)
		pn, on := p.Nodes(), o.Nodes()
		for _, n := range pn {
			for _, m := range pn {
				if got, want := n.IsAncestorOf(m), isAncestorOfWalk(n, m); got != want {
					t.Fatalf("IsAncestorOf within %s = %v, walk says %v", p.Canonical(), got, want)
				}
			}
			for _, m := range on {
				if n.IsAncestorOf(m) {
					t.Fatalf("cross-pattern IsAncestorOf reported true between %s and %s", p.Canonical(), o.Canonical())
				}
			}
		}
	}
}

// applyRandomMutation performs one random structured-mutation operation
// on p and returns a description of it (for failure messages).
func applyRandomMutation(rng *rand.Rand, p *Pattern) string {
	nodes := p.Nodes()
	n := nodes[rng.Intn(len(nodes))]
	switch op := rng.Intn(5); op {
	case 0:
		p.SetOutput(n)
		return "SetOutput"
	case 1:
		n.SetAxis(Axis(rng.Intn(2)))
		return "SetAxis"
	case 2:
		if len(n.Children) > 0 {
			n.RemoveChildAt(rng.Intn(len(n.Children)))
			// The output may have been detached with the subtree; repoint
			// it so the pattern stays valid.
			p.SetOutput(p.Root)
			return "RemoveChildAt"
		}
		return "noop"
	case 3:
		if len(n.Children) > 0 {
			donor := n.Children[rng.Intn(len(n.Children))]
			n.AdoptChildren(donor)
			return "AdoptChildren"
		}
		return "noop"
	default:
		if len(n.Children) > 0 {
			n.SpliceAbove(rng.Intn(len(n.Children)), Axis(rng.Intn(2)), "s")
			return "SpliceAbove"
		}
		return "noop"
	}
}

// TestMutationMaintainsLabels interleaves random structured mutations
// with label-dependent queries and checks each against a freshly
// reindexed clone: the mutation API must leave no stale interval labels
// behind.
func TestMutationMaintainsLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		p := randomPattern(rng, alphabet, 8)
		for step := 0; step < 4; step++ {
			op := applyRandomMutation(rng, p)
			if err := p.Validate(); err != nil {
				t.Fatalf("after %s: %v", op, err)
			}
			// A fresh clone is indexed from scratch; the mutated pattern
			// must agree with it on every derived quantity.
			fresh, m := p.Clone()
			if got, want := p.Canonical(), fresh.Canonical(); got != want {
				t.Fatalf("after %s: Canonical %q, fresh clone says %q", op, got, want)
			}
			if got, want := p.Size(), fresh.Size(); got != want {
				t.Fatalf("after %s: Size %d, fresh clone says %d", op, got, want)
			}
			for i, n := range p.Nodes() {
				if got := p.Preorder(n); got != i {
					t.Fatalf("after %s: Preorder = %d, want %d", op, got, i)
				}
				for _, k := range p.Nodes() {
					if got, want := n.IsAncestorOf(k), m[n].IsAncestorOf(m[k]); got != want {
						t.Fatalf("after %s: IsAncestorOf = %v, fresh clone says %v", op, got, want)
					}
				}
				if got, want := p.OnDistinguishedPath(n), fresh.OnDistinguishedPath(m[n]); got != want {
					t.Fatalf("after %s: OnDistinguishedPath = %v, fresh clone says %v", op, got, want)
				}
			}
		}
	}
}

// TestDescendantsWindow checks the contiguous-window Descendants view
// against the definition via IsAncestorOf.
func TestDescendantsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	alphabet := []string{"a", "b"}
	for trial := 0; trial < 100; trial++ {
		p := randomPattern(rng, alphabet, 12)
		for _, n := range p.Nodes() {
			want := map[*Node]bool{}
			for _, m := range p.Nodes() {
				if n.IsAncestorOf(m) {
					want[m] = true
				}
			}
			got := p.Descendants(n)
			if len(got) != len(want) {
				t.Fatalf("Descendants returned %d nodes, want %d", len(got), len(want))
			}
			for _, m := range got {
				if !want[m] {
					t.Fatalf("Descendants returned a non-descendant")
				}
			}
		}
	}
	// Nodes outside the pattern yield nil.
	p := MustParse("//a/b")
	if p.Descendants(&Node{Tag: "x"}) != nil {
		t.Fatalf("Descendants of a foreign node should be nil")
	}
}

// TestContainedConcurrent hammers the pooled homomorphism checker and
// the lazily-built pattern caches from many goroutines; run with -race
// this verifies the sync.Pool reuse and atomic cache publication.
func TestContainedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	alphabet := []string{"a", "b", "c"}
	ps := make([]*Pattern, 16)
	for i := range ps {
		ps[i] = randomPattern(rng, alphabet, 10)
		ps[i].Reindex() // the concurrency contract: shared patterns are pre-indexed
	}
	// Sequential ground truth first.
	want := make(map[string]bool)
	for i, q := range ps {
		for j, qp := range ps {
			want[fmt.Sprintf("%d-%d", i, j)] = containedReference(q, qp)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, q := range ps {
					for j, qp := range ps {
						if got := Contained(q, qp); got != want[fmt.Sprintf("%d-%d", i, j)] {
							t.Errorf("goroutine %d: Contained(%d, %d) = %v, want %v", g, i, j, got, !got)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
