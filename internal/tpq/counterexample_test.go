package tpq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterexampleBasics(t *testing.T) {
	cases := []struct{ q, qp string }{
		{"/a//b", "/a/b"},
		{"//a", "/a"},
		{"//a", "//a[b]"},
		{"//Trials[//Status]//Trial", "//Trials//Trial[//Status]"},
		{"//a//c", "//a/b/c"},
	}
	for _, tc := range cases {
		q, qp := MustParse(tc.q), MustParse(tc.qp)
		d, x, ok := Counterexample(q, qp)
		if !ok {
			t.Errorf("%s ⊄ %s but no counterexample produced", tc.q, tc.qp)
			continue
		}
		inQ := false
		for _, n := range q.Evaluate(d) {
			if n == x {
				inQ = true
			}
		}
		if !inQ {
			t.Errorf("%s: witness not a q answer on %s", tc.q, d)
			continue
		}
		for _, n := range qp.Evaluate(d) {
			if n == x {
				t.Errorf("%s vs %s: witness also answers q' on %s", tc.q, tc.qp, d)
			}
		}
	}
}

func TestCounterexampleNoneWhenContained(t *testing.T) {
	if _, _, ok := Counterexample(MustParse("/a/b"), MustParse("/a//b")); ok {
		t.Error("counterexample produced for a valid containment")
	}
	if _, _, ok := Counterexample(MustParse("//a[*]"), MustParse("//a")); ok {
		t.Error("wildcard inputs must be rejected")
	}
}

// The constructive witness validates every negative containment
// decision: whenever Contained says no, the counterexample separates
// the two queries on a real document.
func TestQuickCounterexampleValidatesNonContainment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b"}
		q := randomPattern(rng, alphabet, 5)
		qp := randomPattern(rng, alphabet, 5)
		d, x, ok := Counterexample(q, qp)
		if !ok {
			return true // contained: nothing to witness
		}
		inQ := false
		for _, n := range q.Evaluate(d) {
			if n == x {
				inQ = true
			}
		}
		if !inQ {
			t.Logf("witness not in q(D): q=%s q'=%s D=%s", q, qp, d)
			return false
		}
		for _, n := range qp.Evaluate(d) {
			if n == x {
				t.Logf("witness in q'(D): q=%s q'=%s D=%s", q, qp, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}
