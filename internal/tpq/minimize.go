package tpq

// Minimize returns an equivalent pattern of minimum size, following the
// branch-elimination approach of Amer-Yahia et al. (the paper's [2]):
// for wildcard-free tree patterns, the unique minimal equivalent
// pattern is obtained by repeatedly deleting a redundant branch — a
// subtree off the distinguished path whose removal leaves an equivalent
// pattern. Removing constraints can only grow the answer set, so the
// equivalence test reduces to one homomorphism check per candidate.
//
// The input is not modified. Contained rewritings keep their raw E ∘ V
// shape (the compensation must stay aligned with the view); Minimize is
// for presentation and for downstream optimizers.
func Minimize(p *Pattern) *Pattern {
	out, _ := p.Clone()
	for {
		removed := false
		// Consider larger subtrees first: deleting one redundant branch
		// can make its siblings' redundancy checks cheaper.
		nodes := out.Nodes()
		for i := len(nodes) - 1; i >= 1; i-- {
			x := nodes[i]
			if x.Parent == nil || out.OnDistinguishedPath(x) {
				continue
			}
			if stillAttached(out, x) && removable(out, x) {
				detach(x)
				removed = true
			}
		}
		if !removed {
			return out
		}
	}
}

// stillAttached reports whether x is still part of the pattern (an
// earlier removal this pass may have detached an ancestor).
func stillAttached(p *Pattern, x *Node) bool {
	n := x
	for n.Parent != nil {
		n = n.Parent
	}
	return n == p.Root
}

// removable reports whether deleting the subtree at x preserves
// equivalence. The reduced pattern p' always contains p (fewer
// constraints), so equivalence holds iff p' ⊆ p, i.e. iff the deleted
// constraints are implied by the rest.
func removable(p *Pattern, x *Node) bool {
	reduced, m := p.Clone()
	detach(m[x])
	return Contained(reduced, p)
}

// detach removes x from its parent's child list.
func detach(x *Node) {
	parent := x.Parent
	for i, c := range parent.Children {
		if c == x {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			break
		}
	}
	x.Parent = nil
	parent.invalidate()
}
