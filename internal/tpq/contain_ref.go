package tpq

// This file retains the pre-optimization containment checker verbatim
// as a reference implementation. It exists solely so the differential
// tests (contain_diff_test.go) can assert that the pooled, prefiltered,
// interval-based fast path in contain.go returns identical verdicts on
// randomized inputs. It must stay semantically frozen; performance work
// goes into contain.go.

// containedReference is the original Contained: map-indexed memo table
// and explicitly materialized descendant lists, no pre-filters, no
// pooling.
func containedReference(q, qPrime *Pattern) bool {
	h := &homCheckerRef{
		src: qPrime.Nodes(),
		dst: q.Nodes(),
	}
	h.init(qPrime, q)
	root := qPrime.Root
	if root.Axis == Child {
		// The virtual root's pc-edge forces q' root onto q's root, and
		// q's root must itself be the document root.
		return q.Root.Axis == Child && h.hom(root, q.Root)
	}
	for _, x := range h.dst {
		if h.hom(root, x) {
			return true
		}
	}
	return false
}

type homCheckerRef struct {
	src, dst   []*Node
	srcIdx     map[*Node]int
	dstIdx     map[*Node]int
	srcOut     *Node
	dstOut     *Node
	memo       []int8 // 0 unknown, 1 yes, -1 no; indexed src*|dst|+dst
	descendant [][]*Node
}

func (h *homCheckerRef) init(qPrime, q *Pattern) {
	h.srcIdx = make(map[*Node]int, len(h.src))
	for i, n := range h.src {
		h.srcIdx[n] = i
	}
	h.dstIdx = make(map[*Node]int, len(h.dst))
	for i, n := range h.dst {
		h.dstIdx[n] = i
	}
	h.srcOut = qPrime.Output
	h.dstOut = q.Output
	h.memo = make([]int8, len(h.src)*len(h.dst))
	// Precompute proper-descendant lists in q.
	h.descendant = make([][]*Node, len(h.dst))
	var collect func(anc int, n *Node)
	collect = func(anc int, n *Node) {
		for _, c := range n.Children {
			h.descendant[anc] = append(h.descendant[anc], c)
			collect(anc, c)
		}
	}
	for i, n := range h.dst {
		collect(i, n)
	}
}

// hom reports whether the subtree of q' rooted at x can map to q with
// h(x) = y.
func (h *homCheckerRef) hom(x, y *Node) bool {
	xi, yi := h.srcIdx[x], h.dstIdx[y]
	k := xi*len(h.dst) + yi
	if v := h.memo[k]; v != 0 {
		return v == 1
	}
	ok := h.homCompute(x, y, yi)
	if ok {
		h.memo[k] = 1
	} else {
		h.memo[k] = -1
	}
	return ok
}

func (h *homCheckerRef) homCompute(x, y *Node, yi int) bool {
	if !homTagMatches(x.Tag, y.Tag) {
		return false
	}
	// The output of q' must land exactly on the output of q.
	if x == h.srcOut && y != h.dstOut {
		return false
	}
	for _, cx := range x.Children {
		found := false
		switch cx.Axis {
		case Child:
			for _, cy := range y.Children {
				if cy.Axis == Child && h.hom(cx, cy) {
					found = true
					break
				}
			}
		case Descendant:
			for _, cy := range h.descendant[yi] {
				if h.hom(cx, cy) {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}
