package tpq

import "strings"

// String renders the pattern as an XPath expression in XP{/,//,[]}.
// The main path is the distinguished path; all other subtrees are
// printed as predicates. Parse(p.String()) reproduces p up to sibling
// order.
func (p *Pattern) String() string {
	if p.Root == nil {
		return ""
	}
	var b strings.Builder
	path := p.DistinguishedPath()
	onPath := make(map[*Node]bool, len(path))
	for _, n := range path {
		onPath[n] = true
	}
	for i, n := range path {
		b.WriteString(n.Axis.String())
		b.WriteString(n.Tag)
		var next *Node
		if i+1 < len(path) {
			next = path[i+1]
		}
		for _, c := range n.Children {
			if c == next {
				continue
			}
			b.WriteByte('[')
			writeRel(&b, c, true)
			b.WriteByte(']')
		}
	}
	return b.String()
}

// writeRel prints the subtree rooted at n as the body of a predicate.
// The leading axis is omitted when it is the child axis and we are at
// the start of the predicate (XPath's default).
func writeRel(b *strings.Builder, n *Node, first bool) {
	if !(first && n.Axis == Child) {
		b.WriteString(n.Axis.String())
	}
	b.WriteString(n.Tag)
	if len(n.Children) == 0 {
		return
	}
	// Print the first child inline to keep paths like //b/d compact;
	// remaining children become nested predicates.
	for _, c := range n.Children[1:] {
		b.WriteByte('[')
		writeRel(b, c, true)
		b.WriteByte(']')
	}
	writeRel(b, n.Children[0], false)
}
