package tpq

import (
	"qav/internal/xmltree"
)

// Evaluate computes the answer Q(D): the set of document nodes x such
// that some matching h : Q -> D has h(output) = x. A matching preserves
// tags, maps pc-edges to parent/child pairs and ad-edges to proper
// ancestor/descendant pairs, and maps the pattern root according to its
// root axis ("/t" must match the document root; "//t" matches anywhere).
//
// The result is in document preorder. Runs in O(|Q| * |D|) time.
func (p *Pattern) Evaluate(d *xmltree.Document) []*xmltree.Node {
	if p.Root == nil || d.Root == nil {
		return nil
	}
	qnodes := p.index().nodes

	// Bottom-up: sat[qi][di] == true iff the pattern subtree rooted at
	// node qi embeds at document node di.
	nQ, nD := len(qnodes), d.Size()
	sat := make([][]bool, nQ)
	buf := make([]bool, nQ*nD)
	for i := range sat {
		sat[i], buf = buf[:nD], buf[nD:]
	}
	for qi := nQ - 1; qi >= 0; qi-- {
		q := qnodes[qi]
		for di, dn := range d.Nodes {
			sat[qi][di] = tagMatches(q.Tag, dn.Tag)
		}
		for _, c := range q.Children {
			ci := int(c.pre)
			switch c.Axis {
			case Child:
				for di, dn := range d.Nodes {
					if !sat[qi][di] {
						continue
					}
					ok := false
					for _, k := range dn.Children {
						if sat[ci][k.Index] {
							ok = true
							break
						}
					}
					sat[qi][di] = ok
				}
			case Descendant:
				// hasDesc[di] == some proper descendant of di satisfies c.
				hasDesc := descendantClosure(d, sat[ci])
				for di := range d.Nodes {
					sat[qi][di] = sat[qi][di] && hasDesc[di]
				}
			}
		}
	}

	// Top-down along the distinguished path: reach[di] == the current
	// path node can be the image of di in some complete matching.
	path := p.DistinguishedPath()
	reach := make([]bool, nD)
	rootIdx := int(p.Root.pre)
	if p.Root.Axis == Child {
		reach[d.Root.Index] = sat[rootIdx][d.Root.Index]
	} else {
		for di := range d.Nodes {
			reach[di] = sat[rootIdx][di]
		}
	}
	for _, q := range path[1:] {
		qi := int(q.pre)
		next := make([]bool, nD)
		switch q.Axis {
		case Child:
			for di, dn := range d.Nodes {
				if reach[di] {
					for _, k := range dn.Children {
						if sat[qi][k.Index] {
							next[k.Index] = true
						}
					}
				}
			}
		case Descendant:
			under := underReachable(d, reach)
			for di := range d.Nodes {
				next[di] = under[di] && sat[qi][di]
			}
		}
		reach = next
	}

	var out []*xmltree.Node
	for di, ok := range reach {
		if ok {
			out = append(out, d.Nodes[di])
		}
	}
	return out
}

// Matches reports whether Q(D) is non-empty.
func (p *Pattern) Matches(d *xmltree.Document) bool {
	return len(p.Evaluate(d)) > 0
}

// descendantClosure returns, for every document node, whether some
// proper descendant has the property given by sat (indexed by node
// Index).
func descendantClosure(d *xmltree.Document, sat []bool) []bool {
	out := make([]bool, d.Size())
	var walk func(n *xmltree.Node) bool // subtree (incl. n) has sat node
	walk = func(n *xmltree.Node) bool {
		any := false
		for _, c := range n.Children {
			if walk(c) {
				any = true
			}
		}
		out[n.Index] = any
		return any || sat[n.Index]
	}
	if d.Root != nil {
		walk(d.Root)
	}
	return out
}

// underReachable returns, for every document node, whether some proper
// ancestor has the property given by reach.
func underReachable(d *xmltree.Document, reach []bool) []bool {
	out := make([]bool, d.Size())
	var walk func(n *xmltree.Node, above bool)
	walk = func(n *xmltree.Node, above bool) {
		out[n.Index] = above
		for _, c := range n.Children {
			walk(c, above || reach[n.Index])
		}
	}
	if d.Root != nil {
		walk(d.Root, false)
	}
	return out
}

// Prepared is a pattern compiled for repeated EvaluateAt calls: the
// node indexing is done once, so evaluating a compensation query over
// thousands of materialized view nodes pays only per-subtree work.
// Positions come from the pattern's preorder interval labels
// (index.go), so no per-node map is needed.
type Prepared struct {
	p      *Pattern
	qnodes []*Node
	path   []*Node
}

// Prepare compiles the pattern for repeated evaluation.
func (p *Pattern) Prepare() *Prepared {
	pp := &Prepared{p: p, path: p.DistinguishedPath()}
	if pi := p.index(); pi != nil {
		pp.qnodes = pi.nodes
	}
	return pp
}

// EvaluateAt computes the answers of the pattern when its root is
// pinned to the given document node (the root's own axis is ignored).
// This is how compensation queries run against a materialized view: the
// pattern is matched inside ctx's subtree with root ↦ ctx, in time
// proportional to |pattern| × |subtree| — independent of the rest of
// the document. Returns nil if ctx's tag does not match the pattern
// root.
func (p *Pattern) EvaluateAt(d *xmltree.Document, ctx *xmltree.Node) []*xmltree.Node {
	return p.Prepare().EvaluateAt(d, ctx)
}

// EvaluateAt is the compiled form of Pattern.EvaluateAt.
func (pp *Prepared) EvaluateAt(d *xmltree.Document, ctx *xmltree.Node) []*xmltree.Node {
	p := pp.p
	if p.Root == nil || ctx == nil || !tagMatches(p.Root.Tag, ctx.Tag) {
		return nil
	}
	window := d.Window(ctx) // contiguous preorder view of the subtree
	base := ctx.Index
	nQ, nD := len(pp.qnodes), len(window)
	sat := make([][]bool, nQ)
	buf := make([]bool, nQ*nD)
	for i := range sat {
		sat[i], buf = buf[:nD], buf[nD:]
	}
	for qi := nQ - 1; qi >= 0; qi-- {
		q := pp.qnodes[qi]
		for wi, dn := range window {
			sat[qi][wi] = tagMatches(q.Tag, dn.Tag)
		}
		for _, c := range q.Children {
			ci := int(c.pre)
			switch c.Axis {
			case Child:
				for wi, dn := range window {
					if !sat[qi][wi] {
						continue
					}
					ok := false
					for _, k := range dn.Children {
						if sat[ci][k.Index-base] {
							ok = true
							break
						}
					}
					sat[qi][wi] = ok
				}
			case Descendant:
				hasDesc := subtreeDescendantClosure(ctx, base, sat[ci])
				for wi := range window {
					sat[qi][wi] = sat[qi][wi] && hasDesc[wi]
				}
			}
		}
	}
	rootIdx := int(p.Root.pre)
	if !sat[rootIdx][0] {
		return nil
	}
	reach := make([]bool, nD)
	reach[0] = true
	for _, q := range pp.path[1:] {
		qi := int(q.pre)
		next := make([]bool, nD)
		switch q.Axis {
		case Child:
			for wi, dn := range window {
				if reach[wi] {
					for _, k := range dn.Children {
						if sat[qi][k.Index-base] {
							next[k.Index-base] = true
						}
					}
				}
			}
		case Descendant:
			under := subtreeUnderReachable(ctx, base, reach)
			for wi := range window {
				next[wi] = under[wi] && sat[qi][wi]
			}
		}
		reach = next
	}
	var out []*xmltree.Node
	for wi, ok := range reach {
		if ok {
			out = append(out, window[wi])
		}
	}
	return out
}

// subtreeDescendantClosure is descendantClosure restricted to the
// subtree of ctx, indexed relative to ctx.Index.
func subtreeDescendantClosure(ctx *xmltree.Node, base int, sat []bool) []bool {
	out := make([]bool, len(sat))
	var walk func(n *xmltree.Node) bool
	walk = func(n *xmltree.Node) bool {
		any := false
		for _, c := range n.Children {
			if walk(c) {
				any = true
			}
		}
		out[n.Index-base] = any
		return any || sat[n.Index-base]
	}
	walk(ctx)
	return out
}

// subtreeUnderReachable is underReachable restricted to the subtree of
// ctx, indexed relative to ctx.Index.
func subtreeUnderReachable(ctx *xmltree.Node, base int, reach []bool) []bool {
	out := make([]bool, len(reach))
	var walk func(n *xmltree.Node, above bool)
	walk = func(n *xmltree.Node, above bool) {
		out[n.Index-base] = above
		for _, c := range n.Children {
			walk(c, above || reach[n.Index-base])
		}
	}
	walk(ctx, false)
	return out
}
