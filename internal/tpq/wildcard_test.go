package tpq

import (
	"testing"

	"qav/internal/xmltree"
)

func TestParseWildcard(t *testing.T) {
	p := MustParse("//a/*[b]//*")
	if !p.HasWildcard() {
		t.Fatal("HasWildcard = false")
	}
	if p.Size() != 4 {
		t.Fatalf("size = %d", p.Size())
	}
	star := p.Root.Children[0]
	if star.Tag != Wildcard || star.Axis != Child {
		t.Errorf("first step = %s%s", star.Axis, star.Tag)
	}
	if p.Output.Tag != Wildcard || p.Output.Axis != Descendant {
		t.Errorf("output = %s%s", p.Output.Axis, p.Output.Tag)
	}
	// Round trip.
	p2 := MustParse(p.String())
	if !p.StructuralEqual(p2) {
		t.Errorf("round trip via %q changed structure", p.String())
	}
	if MustParse("//a").HasWildcard() {
		t.Error("HasWildcard on plain pattern")
	}
}

func TestEvaluateWildcard(t *testing.T) {
	d := xmltree.NewDocument(xmltree.Build("r",
		xmltree.Build("a", xmltree.Build("x", xmltree.Build("b"))),
		xmltree.Build("a", xmltree.Build("y")),
		xmltree.Build("c", xmltree.Build("b")),
	))
	cases := []struct {
		expr string
		want int
	}{
		{"//*", 8},      // every element
		{"/r/*", 3},     // a, a, c
		{"//a/*", 2},    // x, y
		{"//a/*[b]", 1}, // only x has a b child
		{"//*[b]", 2},   // x and c
		{"/r/*/*/b", 1}, // r/a/x/b
		{"//*//b", 2},   // both b nodes sit under some element
	}
	for _, tc := range cases {
		got := MustParse(tc.expr).Evaluate(d)
		if len(got) != tc.want {
			t.Errorf("%s: %d answers, want %d", tc.expr, len(got), tc.want)
		}
	}
}

func TestWildcardContainmentSound(t *testing.T) {
	// Wildcards in the container generalize.
	if !Contained(MustParse("//a/b"), MustParse("//a/*")) {
		t.Error("//a/b ⊆ //a/* must hold")
	}
	if !Contained(MustParse("//a/*"), MustParse("//*/*")) {
		t.Error("//a/* ⊆ //*/* must hold")
	}
	// Never the unsound direction.
	if Contained(MustParse("//a/*"), MustParse("//a/b")) {
		t.Error("//a/* ⊄ //a/b")
	}
	// //a/* returns children of a's, which need not be a's themselves.
	if Contained(MustParse("//a/*"), MustParse("//a")) {
		t.Error("//a/* ⊄ //a: a z-child of an a is not an a")
	}
	if Contained(MustParse("//*"), MustParse("//a")) {
		t.Error("//* ⊄ //a")
	}
}

func TestWildcardRejectedByRewriting(t *testing.T) {
	// The rewrite package owns this rejection; here we only pin the
	// predicate it relies on.
	if !MustParse("//a[*]").HasWildcard() {
		t.Error("predicate wildcard not detected")
	}
}

func TestComposeBasic(t *testing.T) {
	// Fig 1: E = Trial[//Status] over V = //Trials//Trial.
	v := MustParse("//Trials//Trial")
	e := MustParse("//Trial[//Status]")
	r, err := Compose(e, v)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParse("//Trials//Trial[//Status]")
	if !Equivalent(r, want) {
		t.Errorf("compose = %s, want %s", r, want)
	}
	// Output follows the compensation's output.
	e2 := MustParse("//Trial/Patient")
	r2, err := Compose(e2, v)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Output.Tag != "Patient" {
		t.Errorf("output = %s", r2.Output.Tag)
	}
	if !Equivalent(r2, MustParse("//Trials//Trial/Patient")) {
		t.Errorf("compose = %s", r2)
	}
}

func TestComposeErrors(t *testing.T) {
	v := MustParse("//Trials//Trial")
	if _, err := Compose(MustParse("//Patient/x"), v); err == nil {
		t.Error("mismatched compensation root accepted")
	}
}

func TestComposeDoesNotMutate(t *testing.T) {
	v := MustParse("//a//b")
	e := MustParse("//b[c]")
	vc, ec := v.Canonical(), e.Canonical()
	if _, err := Compose(e, v); err != nil {
		t.Fatal(err)
	}
	if v.Canonical() != vc || e.Canonical() != ec {
		t.Error("Compose mutated an input")
	}
}

// Compose must agree with the rewriting machinery: composing a CR's
// compensation with its view yields a pattern equivalent to the CR.
func TestComposeMatchesCRConstruction(t *testing.T) {
	// Built via the parser to avoid importing rewrite (cycle).
	v := MustParse("//Trials//Trial")
	e := MustParse("//Trial[//Status]//Trial")
	r, err := Compose(e, v)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(r, MustParse("//Trials//Trial[//Status]//Trial")) {
		t.Errorf("compose = %s", r)
	}
}

func TestComposeWildcardRoot(t *testing.T) {
	// A wildcard-rooted compensation composes with any view output.
	v := MustParse("//Trials//Trial")
	e := MustParse("//*[Patient]")
	r, err := Compose(e, v)
	if err != nil {
		t.Fatal(err)
	}
	if r.Output.Tag != "Trial" {
		t.Errorf("output = %s", r.Output.Tag)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("///bad[")
}
