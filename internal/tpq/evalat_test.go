package tpq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/xmltree"
)

func TestEvaluateAtPinsContext(t *testing.T) {
	d := pharmaDoc()
	// Compensation .[//Status] from the paper: pin Trial at each view
	// node; only the first Trial subtree contains a Status.
	e := MustParse("//Trial[//Status]")
	viewNodes := MustParse("//Trials//Trial").Evaluate(d)
	if len(viewNodes) != 3 {
		t.Fatal("setup: expected 3 view nodes")
	}
	var hits []*xmltree.Node
	for _, vn := range viewNodes {
		hits = append(hits, e.EvaluateAt(d, vn)...)
	}
	if len(hits) != 1 || hits[0] != viewNodes[0] {
		t.Fatalf("EvaluateAt hits = %d, want only the first Trial", len(hits))
	}
	// Tag mismatch is nil, not panic.
	if got := e.EvaluateAt(d, d.Root); got != nil {
		t.Errorf("mismatched context gave %d answers", len(got))
	}
	if got := e.EvaluateAt(d, nil); got != nil {
		t.Error("nil context gave answers")
	}
}

func TestEvaluateAtScopedToSubtree(t *testing.T) {
	// The Status in a SIBLING subtree must not satisfy the predicate:
	// EvaluateAt works within the context subtree only.
	d := xmltree.NewDocument(xmltree.Build("r",
		xmltree.Build("t", xmltree.Build("Status")),
		xmltree.Build("t", xmltree.Build("x")),
	))
	e := MustParse("//t[//Status]")
	first, second := d.Root.Children[0], d.Root.Children[1]
	if got := e.EvaluateAt(d, first); len(got) != 1 {
		t.Errorf("first subtree: %d answers, want 1", len(got))
	}
	if got := e.EvaluateAt(d, second); len(got) != 0 {
		t.Errorf("second subtree: %d answers, want 0 (leaked across siblings)", len(got))
	}
}

func TestEvaluateAtDeepOutput(t *testing.T) {
	d := xmltree.NewDocument(xmltree.Build("t",
		xmltree.Build("a", xmltree.Build("b")),
		xmltree.Build("b"),
	))
	e := MustParse("//t/a/b")
	got := e.EvaluateAt(d, d.Root)
	if len(got) != 1 || got[0].Parent.Tag != "a" {
		t.Fatalf("deep output wrong: %d answers", len(got))
	}
	e2 := MustParse("//t//b")
	if got := e2.EvaluateAt(d, d.Root); len(got) != 2 {
		t.Errorf("//t//b at root: %d answers, want 2", len(got))
	}
}

// EvaluateAt must agree with the definition: full evaluation of the
// pattern restricted to matchings with root ↦ ctx.
func TestQuickEvaluateAtAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		d := xmltree.Generate(rng, xmltree.GenSpec{
			Tags: alphabet, MaxDepth: 5, MaxFanout: 3, TargetSize: 20,
		})
		p := randomPattern(rng, alphabet, 5)
		pp := p.Prepare()
		for _, ctx := range d.Nodes {
			got := make(map[*xmltree.Node]bool)
			for _, n := range pp.EvaluateAt(d, ctx) {
				got[n] = true
			}
			// Naive: all matchings with root pinned at ctx.
			want := make(map[*xmltree.Node]bool)
			for img := range naiveEvaluateAt(p, d, ctx) {
				want[img] = true
			}
			if len(got) != len(want) {
				return false
			}
			for n := range got {
				if !want[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// naiveEvaluateAt enumerates matchings with the pattern root pinned.
func naiveEvaluateAt(p *Pattern, d *xmltree.Document, ctx *xmltree.Node) map[*xmltree.Node]bool {
	answers := make(map[*xmltree.Node]bool)
	if p.Root.Tag != ctx.Tag {
		return answers
	}
	qnodes := p.Nodes()
	assign := map[*Node]*xmltree.Node{p.Root: ctx}
	var try func(i int)
	try = func(i int) {
		if i == len(qnodes) {
			answers[assign[p.Output]] = true
			return
		}
		q := qnodes[i]
		if q == p.Root {
			try(i + 1)
			return
		}
		img := assign[q.Parent]
		var candidates []*xmltree.Node
		if q.Axis == Child {
			candidates = img.Children
		} else {
			candidates = img.Subtree()[1:]
		}
		for _, c := range candidates {
			if c.Tag != q.Tag {
				continue
			}
			assign[q] = c
			try(i + 1)
		}
		delete(assign, q)
	}
	try(0)
	return answers
}

func TestMatches(t *testing.T) {
	d := pharmaDoc()
	if !MustParse("//Status").Matches(d) {
		t.Error("Matches = false for present element")
	}
	if MustParse("//Absent").Matches(d) {
		t.Error("Matches = true for absent element")
	}
}

func TestPatternNodeIsAncestorOf(t *testing.T) {
	p := MustParse("//a/b[c]//d")
	nodes := p.Nodes() // a, b, c, d
	a, b, c, d := nodes[0], nodes[1], nodes[2], nodes[3]
	if !a.IsAncestorOf(d) || !b.IsAncestorOf(c) || !a.IsAncestorOf(b) {
		t.Error("ancestry not detected")
	}
	if c.IsAncestorOf(d) || d.IsAncestorOf(a) || a.IsAncestorOf(a) {
		t.Error("false ancestry")
	}
}

func TestUnionSize(t *testing.T) {
	u := NewUnion(MustParse("//a/b"), MustParse("//c"))
	if u.Size() != 3 {
		t.Errorf("Size = %d, want 3", u.Size())
	}
	var nilU *Union
	if nilU.Size() != 0 {
		t.Error("nil union size")
	}
}

func TestPreparedReuse(t *testing.T) {
	d := pharmaDoc()
	pp := MustParse("//Trial[Patient]").Prepare()
	total := 0
	for _, n := range d.Nodes {
		total += len(pp.EvaluateAt(d, n))
	}
	if total != 3 {
		t.Errorf("prepared evaluation found %d, want 3", total)
	}
}
