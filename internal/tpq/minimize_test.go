package tpq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimizeBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		// Duplicate predicate.
		{"//a[b][b]", "//a[b]"},
		// A pc predicate implies the ad one.
		{"//a[//b][b]", "//a[b]"},
		// A deeper branch implies the shallow one.
		{"//a[b/c][//c]", "//a[b/c]"},
		// Nothing to remove.
		{"//a[b][c]", "//a[b][c]"},
		{"//Trials[//Status]//Trial", "//Trials[//Status]//Trial"},
		// Self-similar branches: //a[//b[c]][//b] drops the weaker one.
		{"//a[//b[c]][//b]", "//a[//b[c]]"},
		// The path's own /b step witnesses the [b] predicate.
		{"//a[b]/b", "//a/b"},
		// ...but not a structurally richer predicate.
		{"//a[b/c]/b", "//a[b/c]/b"},
	}
	for _, tc := range cases {
		got := Minimize(MustParse(tc.in))
		want := MustParse(tc.want)
		if !got.StructuralEqual(want) {
			t.Errorf("Minimize(%s) = %s, want %s", tc.in, got, tc.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("Minimize(%s) invalid: %v", tc.in, err)
		}
	}
}

func TestMinimizeDoesNotMutateInput(t *testing.T) {
	p := MustParse("//a[b][b][//b]")
	before := p.Canonical()
	Minimize(p)
	if p.Canonical() != before {
		t.Error("Minimize mutated its input")
	}
}

// Properties: equivalence, idempotence, and local minimality.
func TestQuickMinimize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng, []string{"a", "b"}, 7)
		m := Minimize(p)
		if !Equivalent(p, m) {
			t.Logf("not equivalent: %s vs %s", p, m)
			return false
		}
		if m.Size() > p.Size() {
			t.Logf("grew: %s -> %s", p, m)
			return false
		}
		m2 := Minimize(m)
		if m2.Size() != m.Size() {
			t.Logf("not idempotent: %s -> %s -> %s", p, m, m2)
			return false
		}
		// Local minimality: no single off-path subtree is removable.
		for _, x := range m.Nodes()[1:] {
			if m.OnDistinguishedPath(x) {
				continue
			}
			reduced, mm := m.Clone()
			detach(mm[x])
			if Contained(reduced, m) {
				t.Logf("still removable %s in %s", x.Tag, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
