package tpq

import "qav/internal/xmltree"

// dummyTag is a tag assumed not to occur in queries; it pads stretched
// ad-edges in counterexample documents.
const dummyTag = "∅dummy"

// Counterexample produces a witness database for non-containment: if
// q ⊄ q', it returns a document D and a node x ∈ q(D) with x ∉ q'(D).
// If q ⊆ q' it returns ok = false.
//
// Construction (the classical canonical-model argument behind
// homomorphism completeness for XP{/,//,[]}): take q's canonical
// document and stretch every ad-edge, including the virtual root edge
// of a '//' query root, with one fresh dummy-tagged node. A matching of
// q' into the stretched document cannot use the dummy nodes (their tag
// occurs in no query) and therefore induces a homomorphism q' → q; so
// when no homomorphism exists, the stretched document is a witness.
// Wildcard patterns are rejected (the argument needs fresh tags).
func Counterexample(q, qPrime *Pattern) (*xmltree.Document, *xmltree.Node, bool) {
	if q.HasWildcard() || qPrime.HasWildcard() {
		return nil, nil, false
	}
	if Contained(q, qPrime) {
		return nil, nil, false
	}
	var outImg *xmltree.Node
	var build func(qn *Node) *xmltree.Node
	build = func(qn *Node) *xmltree.Node {
		n := &xmltree.Node{Tag: qn.Tag}
		if qn == q.Output {
			outImg = n
		}
		for _, c := range qn.Children {
			child := build(c)
			if c.Axis == Descendant {
				pad := &xmltree.Node{Tag: dummyTag}
				child.Parent = pad
				pad.Children = []*xmltree.Node{child}
				child = pad
			}
			child.Parent = n
			n.Children = append(n.Children, child)
		}
		return n
	}
	root := build(q.Root)
	if q.Root.Axis == Descendant {
		pad := &xmltree.Node{Tag: dummyTag}
		root.Parent = pad
		pad.Children = []*xmltree.Node{root}
		root = pad
	}
	return xmltree.NewDocument(root), outImg, true
}
