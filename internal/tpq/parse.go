package tpq

import (
	"errors"
	"fmt"
	"strings"
)

// ErrParse is the sentinel wrapped by every error returned from Parse;
// callers can test for it with errors.Is without matching message text.
var ErrParse = errors.New("tpq: parse error")

// Parse parses an XPath expression in the fragment XP{/,//,[]} into a
// Pattern. The expression is a main path of steps, each "/tag" or
// "//tag" with optional predicates "[...]"; the final step of the main
// path is the distinguished (output) node. Inside a predicate a leading
// axis may be omitted, defaulting to the child axis, e.g.
// "//Auction[//item]//name" or "//a//b[c][//b/d]".
func Parse(expr string) (*Pattern, error) {
	p := &parser{src: expr}
	pat, err := p.pattern()
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %w", ErrParse, expr, err)
	}
	return pat, nil
}

// MustParse is Parse but panics on error; intended for tests, examples
// and literals whose validity is known statically.
func MustParse(expr string) *Pattern {
	p, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: "+format, append([]any{p.pos}, args...)...)
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

// axis consumes '/' or '//' and reports which; ok is false if neither is
// present.
func (p *parser) axis() (Axis, bool) {
	if p.peek() != '/' {
		return 0, false
	}
	p.pos++
	if p.peek() == '/' {
		p.pos++
		return Descendant, true
	}
	return Child, true
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.'
}

func (p *parser) name() (string, error) {
	if p.peek() == '*' {
		p.pos++
		return Wildcard, nil
	}
	start := p.pos
	if p.eof() || !isNameStart(p.peek()) {
		return "", p.errf("expected element name")
	}
	for !p.eof() && isNameChar(p.peek()) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

// pattern parses a whole absolute path expression.
func (p *parser) pattern() (*Pattern, error) {
	p.src = strings.TrimSpace(p.src)
	ax, ok := p.axis()
	if !ok {
		return nil, p.errf("pattern must start with '/' or '//'")
	}
	tag, err := p.name()
	if err != nil {
		return nil, err
	}
	pat := New(ax, tag)
	cur := pat.Root
	if err := p.predicates(cur); err != nil {
		return nil, err
	}
	for !p.eof() {
		ax, ok := p.axis()
		if !ok {
			return nil, p.errf("unexpected character %q", p.peek())
		}
		tag, err := p.name()
		if err != nil {
			return nil, err
		}
		cur = cur.AddChild(ax, tag)
		if err := p.predicates(cur); err != nil {
			return nil, err
		}
	}
	pat.Output = cur
	pat.Reindex()
	return pat, nil
}

// predicates parses zero or more "[...]" filters attached to n.
func (p *parser) predicates(n *Node) error {
	for p.peek() == '[' {
		p.pos++
		if err := p.relPath(n); err != nil {
			return err
		}
		if p.peek() != ']' {
			return p.errf("expected ']'")
		}
		p.pos++
	}
	return nil
}

// relPath parses a relative path inside a predicate and attaches it
// under n. A missing leading axis means child.
func (p *parser) relPath(n *Node) error {
	ax, ok := p.axis()
	if !ok {
		ax = Child
	}
	tag, err := p.name()
	if err != nil {
		return err
	}
	cur := n.AddChild(ax, tag)
	if err := p.predicates(cur); err != nil {
		return err
	}
	for {
		ax, ok := p.axis()
		if !ok {
			return nil
		}
		tag, err := p.name()
		if err != nil {
			return err
		}
		cur = cur.AddChild(ax, tag)
		if err := p.predicates(cur); err != nil {
			return err
		}
	}
}
