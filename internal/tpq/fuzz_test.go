package tpq

import "testing"

// FuzzParse checks that the XPath parser never panics, and that
// whatever it accepts is a valid pattern that survives a print/parse
// round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"//a", "/a/b", "//Trials[//Status]//Trial", "//a//b[c][//b/d]",
		"/a[b[//c][d]]/e", "//a[", "a", "//", "/a[]/b", "//a[b]c",
		"/a//b[c/d][e]//f",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := Parse(expr)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) produced invalid pattern: %v", expr, err)
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q) -> %q not reparsable: %v", expr, s, err)
		}
		if !p.StructuralEqual(p2) {
			t.Fatalf("round trip changed %q -> %q", expr, s)
		}
		// Containment on self must hold, and the canonical document must
		// match.
		if !Contained(p, p) {
			t.Fatalf("self-containment failed for %q", s)
		}
		doc, outImg := p.CanonicalDocument()
		found := false
		for _, n := range p.Evaluate(doc) {
			if n == outImg {
				found = true
			}
		}
		if !found {
			t.Fatalf("%q does not match its canonical document", s)
		}
	})
}
