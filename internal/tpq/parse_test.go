package tpq

import (
	"errors"
	"testing"
)

func TestParseSimplePaths(t *testing.T) {
	tests := []struct {
		expr     string
		size     int
		rootTag  string
		rootAxis Axis
		outTag   string
	}{
		{"/a", 1, "a", Child, "a"},
		{"//a", 1, "a", Descendant, "a"},
		{"/a/b", 2, "a", Child, "b"},
		{"//a//b", 2, "a", Descendant, "b"},
		{"//Trials//Trial", 2, "Trials", Descendant, "Trial"},
		{"/a//b/c", 3, "a", Child, "c"},
	}
	for _, tc := range tests {
		p, err := Parse(tc.expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.expr, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Parse(%q): invalid pattern: %v", tc.expr, err)
		}
		if p.Size() != tc.size {
			t.Errorf("Parse(%q).Size = %d, want %d", tc.expr, p.Size(), tc.size)
		}
		if p.Root.Tag != tc.rootTag || p.Root.Axis != tc.rootAxis {
			t.Errorf("Parse(%q) root = %s%s", tc.expr, p.Root.Axis, p.Root.Tag)
		}
		if p.Output.Tag != tc.outTag {
			t.Errorf("Parse(%q) output tag = %q, want %q", tc.expr, p.Output.Tag, tc.outTag)
		}
	}
}

func TestParsePredicates(t *testing.T) {
	p := MustParse("//Trials[//Status]//Trial")
	if p.Size() != 3 {
		t.Fatalf("size = %d, want 3", p.Size())
	}
	root := p.Root
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	status := root.Children[0]
	if status.Tag != "Status" || status.Axis != Descendant {
		t.Errorf("predicate child = %s%s", status.Axis, status.Tag)
	}
	if p.Output.Tag != "Trial" || p.Output.Axis != Descendant {
		t.Errorf("output = %s%s", p.Output.Axis, p.Output.Tag)
	}
	if !p.OnDistinguishedPath(root) || p.OnDistinguishedPath(status) {
		t.Error("distinguished path membership wrong")
	}
}

func TestParseDefaultChildInPredicate(t *testing.T) {
	p := MustParse("//a//b[c][//b/d]")
	b := p.Output
	if b.Tag != "b" || len(b.Children) != 2 {
		t.Fatalf("output %q with %d children", b.Tag, len(b.Children))
	}
	c := b.Children[0]
	if c.Tag != "c" || c.Axis != Child {
		t.Errorf("bare predicate name should be child axis, got %s%s", c.Axis, c.Tag)
	}
	b2 := b.Children[1]
	if b2.Tag != "b" || b2.Axis != Descendant || len(b2.Children) != 1 {
		t.Fatalf("second predicate shape wrong: %s%s", b2.Axis, b2.Tag)
	}
	if d := b2.Children[0]; d.Tag != "d" || d.Axis != Child {
		t.Errorf("nested step wrong: %s%s", d.Axis, d.Tag)
	}
}

func TestParseNestedPredicates(t *testing.T) {
	p := MustParse("/a[b[//c][d]]/e")
	if p.Size() != 5 {
		t.Fatalf("size = %d, want 5", p.Size())
	}
	b := p.Root.Children[0]
	if b.Tag != "b" || len(b.Children) != 2 {
		t.Fatalf("b has %d children", len(b.Children))
	}
	if b.Children[0].Tag != "c" || b.Children[0].Axis != Descendant {
		t.Error("nested //c wrong")
	}
	if b.Children[1].Tag != "d" || b.Children[1].Axis != Child {
		t.Error("nested d wrong")
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{
		"", "a", "/", "//", "/a[", "/a[b", "/a]", "/a[b]]", "/a/[b]",
		"/a/ /b", "/a[]", "/3a", "/a b",
	} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", expr)
		} else if !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) error %v does not wrap ErrParse", expr, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	exprs := []string{
		"/a",
		"//a",
		"//Trials[//Status]//Trial",
		"//Auction[//item]//name",
		"//a//b[c][//b/d]",
		"/a[b[//c][d]]/e",
		"//a//a/b/c[d][//a/b/c/e]",
		"//a//b[//b/d]//b[c]",
		"/PharmaLab//Trial[Patient][//Status]",
	}
	for _, expr := range exprs {
		p := MustParse(expr)
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", expr, s, err)
			continue
		}
		if !p.StructuralEqual(p2) {
			t.Errorf("round trip of %q via %q changed the pattern", expr, s)
		}
	}
}

func TestStringUsesDistinguishedPath(t *testing.T) {
	p := MustParse("//a[b]//c")
	if got := p.String(); got != "//a[b]//c" {
		t.Errorf("String = %q", got)
	}
	// Move the output onto the predicate branch and re-render.
	p.Output = p.Root.Children[0]
	s := p.String()
	p2 := MustParse(s)
	if !p.StructuralEqual(p2) {
		t.Errorf("re-rooted render %q lost structure", s)
	}
	if p2.Output.Tag != "b" {
		t.Errorf("output after re-render = %q, want b", p2.Output.Tag)
	}
}

func TestCanonicalOrderInsensitive(t *testing.T) {
	p := MustParse("//a[b][c]")
	q := MustParse("//a[c][b]")
	if !p.StructuralEqual(q) {
		t.Error("sibling order should not matter")
	}
	r := MustParse("//a[b]/c")
	if p.StructuralEqual(r) {
		t.Error("distinct patterns compared equal")
	}
	// Output position matters.
	s := MustParse("//a[b]/c")
	s.Output = s.Root
	if r.StructuralEqual(s) {
		t.Error("output mark ignored by canonical form")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustParse("//a[b]//c")
	q, m := p.Clone()
	if !p.StructuralEqual(q) {
		t.Fatal("clone differs")
	}
	if m[p.Output] != q.Output {
		t.Error("clone output mapping wrong")
	}
	q.Output.AddChild(Child, "z")
	if p.Size() != 3 {
		t.Error("mutating clone affected original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := MustParse("//a/b")
	p.Output = &Node{Tag: "zz"}
	if err := p.Validate(); err == nil {
		t.Error("foreign output accepted")
	}
	p = MustParse("//a/b")
	p.Root.Children[0].Parent = nil
	if err := p.Validate(); err == nil {
		t.Error("broken parent pointer accepted")
	}
}

func TestDistinguishedPath(t *testing.T) {
	p := MustParse("//a[x]//b/c[y]")
	path := p.DistinguishedPath()
	var tags []string
	for _, n := range path {
		tags = append(tags, n.Tag)
	}
	want := []string{"a", "b", "c"}
	if len(tags) != len(want) {
		t.Fatalf("path = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("path = %v, want %v", tags, want)
		}
	}
}
