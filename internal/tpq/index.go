package tpq

import "sync/atomic"

// This file implements the pattern-side region (interval) encoding: every
// node of an indexed pattern carries its preorder position and the
// largest preorder position inside its subtree, so ancestor/descendant
// tests are two integer comparisons and "all proper descendants of the
// node at position i" is the contiguous slice (i, end(i)] of the preorder
// node list — the same pre/post labeling the structural-join literature
// uses for documents (and xmltree.Node already carries).
//
// Validity is tracked by a per-tree stamp shared by every node of the
// tree. The structured mutation API (mutate.go) and the in-package
// builders invalidate the stamp in O(1) on any structural edit, and
// Reindex issues a fresh stamp. Derived read-only metadata (the preorder
// node list, tag set, height, canonical form) is cached on the Pattern
// behind atomic pointers keyed by the stamp, so concurrent readers of an
// indexed pattern never write to the nodes; racing cache fills compute
// identical values and publish atomically.
//
// Concurrency contract (matching the patmut immutability contract): a
// pattern that is shared between goroutines must already be indexed —
// Parse, Clone and the rewrite constructors return indexed patterns, and
// a pattern that was structurally edited is by contract privately owned,
// so the lazy re-Reindex performed by index() happens under a single
// owner.

// treeStamp is the shared validity token of one indexing pass. valid is
// written only by the tree's (single) owner during mutation.
type treeStamp struct{ valid bool }

// invalidate marks the labels of n's tree stale. O(1): the stamp is
// shared by every node of the tree.
func (n *Node) invalidate() {
	if n.stamp != nil {
		n.stamp.valid = false
	}
}

// indexed reports whether n carries fresh interval labels.
func (n *Node) indexed() bool { return n.stamp != nil && n.stamp.valid }

// Preorder returns the preorder position of n within p (the index of n
// in p.Nodes()), or -1 if n is not a node of p. O(1) on an indexed
// pattern.
func (p *Pattern) Preorder(n *Node) int {
	pi := p.index()
	if pi == nil || n == nil {
		return -1
	}
	if i := int(n.pre); i >= 0 && i < len(pi.nodes) && pi.nodes[i] == n {
		return i
	}
	return -1
}

// Reindex (re)assigns the interval labels of every node in the tree and
// issues a fresh validity stamp. Parse and Clone return indexed
// patterns; call Reindex after building or editing a pattern through the
// Node API and before sharing it across goroutines. Safe to call
// redundantly; not safe concurrently with readers of the same pattern.
func (p *Pattern) Reindex() {
	if p.Root == nil {
		return
	}
	st := &treeStamp{valid: true}
	var walk func(n *Node, next int32) int32
	walk = func(n *Node, next int32) int32 {
		n.pre = next
		n.stamp = st
		next++
		for _, c := range n.Children {
			next = walk(c, next)
		}
		n.end = next - 1
		return next
	}
	walk(p.Root, 0)
	p.info.Store(nil)
	p.canon.Store(nil)
}

// patternInfo is the derived read-only metadata of one indexing pass.
type patternInfo struct {
	stamp *treeStamp
	// nodes is the preorder node list; nodes[i].pre == i. Callers must
	// not modify it.
	nodes []*Node
	// height is the number of edges on the longest root-to-leaf path.
	height int
	// outDepth is the number of edges from the root to the output node
	// (-1 when the output is not a node of the tree).
	outDepth int
	// tags maps every tag occurring in the pattern (including the
	// wildcard tag) to its number of occurrences.
	tags        map[string]int
	hasWildcard bool
	// onPath[i] reports whether the node at preorder position i lies on
	// the root-to-output (distinguished) path.
	onPath []bool
}

// index returns fresh derived metadata for p, reindexing first if the
// labels are stale (see the concurrency contract above). Returns nil
// only for a rootless pattern.
func (p *Pattern) index() *patternInfo {
	if p.Root == nil {
		return nil
	}
	st := p.Root.stamp
	if st == nil || !st.valid {
		p.Reindex()
		st = p.Root.stamp
	}
	if pi := p.info.Load(); pi != nil && pi.stamp == st {
		return pi
	}
	pi := buildInfo(p, st)
	p.info.Store(pi)
	return pi
}

// buildInfo derives the patternInfo of an indexed tree without writing
// to any node.
func buildInfo(p *Pattern, st *treeStamp) *patternInfo {
	pi := &patternInfo{
		stamp:    st,
		nodes:    make([]*Node, p.Root.end+1),
		outDepth: -1,
		tags:     make(map[string]int),
	}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		pi.nodes[n.pre] = n
		pi.tags[n.Tag]++
		if n.Tag == Wildcard {
			pi.hasWildcard = true
		}
		if depth > pi.height {
			pi.height = depth
		}
		if n == p.Output {
			pi.outDepth = depth
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	pi.onPath = make([]bool, len(pi.nodes))
	if pi.outDepth >= 0 {
		for x := p.Output; x != nil; x = x.Parent {
			pi.onPath[x.pre] = true
		}
	}
	return pi
}

// canonEntry caches the canonical form computed for one indexing pass.
type canonEntry struct {
	stamp *treeStamp
	s     string
}

// cachedCanonical returns the canonical form, serving repeated calls on
// an indexed pattern from the per-stamp cache. Dirty patterns compute
// without caching (they are being edited by their single owner).
func (p *Pattern) cachedCanonical() string {
	st := p.Root.stamp
	fresh := st != nil && st.valid
	if fresh {
		if e := p.canon.Load(); e != nil && e.stamp == st {
			return e.s
		}
	}
	s := canonical(p.Root, p.Output)
	if fresh {
		p.canon.Store(&canonEntry{stamp: st, s: s})
	}
	return s
}

// descendantsIn returns the proper descendants of the node at preorder
// position i as a contiguous window of the preorder node list.
func descendantsIn(nodes []*Node, i int) []*Node {
	return nodes[i+1 : int(nodes[i].end)+1]
}

// PreorderNodes returns the pattern's preorder node list as a shared,
// read-only view — the same backing array the index holds, so no copy
// is made. Callers must not modify the returned slice; use Nodes for an
// owned copy.
func (p *Pattern) PreorderNodes() []*Node {
	pi := p.index()
	if pi == nil {
		return nil
	}
	return pi.nodes
}

// Height returns the number of edges on the longest root-to-leaf path,
// from the cached index — O(1) on an indexed pattern. A rootless
// pattern reports 0.
func (p *Pattern) Height() int {
	pi := p.index()
	if pi == nil {
		return 0
	}
	return pi.height
}

// OutputDepth returns the number of edges from the root to the output
// node, or -1 when the output is not a node of the tree. O(1) on an
// indexed pattern.
func (p *Pattern) OutputDepth() int {
	pi := p.index()
	if pi == nil {
		return -1
	}
	return pi.outDepth
}

// HasTag reports whether tag occurs in the pattern — an O(1) probe of
// the cached tag multiset. The multi-view candidate filter uses it as
// the necessary condition for a '//'-rooted query to admit a nonempty
// useful embedding into a view.
func (p *Pattern) HasTag(tag string) bool {
	pi := p.index()
	return pi != nil && pi.tags[tag] > 0
}

// Descendants returns the proper descendants of n in preorder, as a view
// into the pattern's preorder node list — O(1), no allocation. Callers
// must not modify the returned slice. Returns nil if n is not a node of
// p.
func (p *Pattern) Descendants(n *Node) []*Node {
	pi := p.index()
	if pi == nil || n == nil {
		return nil
	}
	if i := int(n.pre); i >= 0 && i < len(pi.nodes) && pi.nodes[i] == n {
		return descendantsIn(pi.nodes, i)
	}
	return nil
}

// atomicInfo aliases the atomic pointers embedded in Pattern so that
// pattern.go stays focused on the data model.
type (
	infoCache  = atomic.Pointer[patternInfo]
	canonCache = atomic.Pointer[canonEntry]
)
