package tpq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qav/internal/xmltree"
)

func TestContainedBasics(t *testing.T) {
	tests := []struct {
		q, qp string
		want  bool
	}{
		// Reflexive.
		{"//a", "//a", true},
		{"/a/b", "/a/b", true},
		// Child is contained in descendant, not vice versa.
		{"/a/b", "/a//b", true},
		{"/a//b", "/a/b", false},
		// '/' root is contained in '//' root.
		{"/a", "//a", true},
		{"//a", "/a", false},
		// Adding predicates shrinks the query.
		{"//a[b]", "//a", true},
		{"//a", "//a[b]", false},
		{"//a[b][c]", "//a[b]", true},
		// Paper §1: //Trials//Trial[//Status] ⊆ //Trials[//Status]//Trial
		// because descendants of Trial are descendants of Trials.
		{"//Trials//Trial[//Status]", "//Trials[//Status]//Trial", true},
		{"//Trials[//Status]//Trial", "//Trials//Trial[//Status]", false},
		// Different output positions are incomparable even when the
		// trees are identical.
		{"//a/b", "//a[b]", false},
		{"//a[b]", "//a/b", false},
		// Longer paths into shorter descendant edges.
		{"//a/b/c", "//a//c", true},
		{"//a//c", "//a/b/c", false},
		// Incomparable tags.
		{"//a", "//b", false},
		// §6 example: //b//a is contained in //a (Q=//a, V=//b; the
		// rewriting //b//a is a CR of Q though Q and V are incomparable).
		{"//b//a", "//a", true},
		{"//a", "//b//a", false},
		// Predicate structure must be coverable.
		{"//a[b/c]", "//a[b][//c]", true},
		{"//a[b][//c]", "//a[b/c]", false},
	}
	for _, tc := range tests {
		q, qp := MustParse(tc.q), MustParse(tc.qp)
		if got := Contained(q, qp); got != tc.want {
			t.Errorf("Contained(%s ⊆ %s) = %v, want %v", tc.q, tc.qp, got, tc.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	if !Equivalent(MustParse("//a[b][b]"), MustParse("//a[b]")) {
		t.Error("duplicate predicates should be equivalent")
	}
	if Equivalent(MustParse("//a[b]"), MustParse("//a")) {
		t.Error("//a[b] is not equivalent to //a")
	}
	if !ProperlyContained(MustParse("//a[b]"), MustParse("//a")) {
		t.Error("//a[b] ⊂ //a expected")
	}
}

// Containment must be sound w.r.t. evaluation: if q ⊆ q' then on every
// document q's answers are a subset of q”s.
func TestQuickContainmentSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		q := randomPattern(rng, alphabet, 5)
		qp := randomPattern(rng, alphabet, 5)
		if !Contained(q, qp) {
			return true // nothing to check
		}
		for trial := 0; trial < 5; trial++ {
			d := xmltree.Generate(rng, xmltree.GenSpec{
				Tags: alphabet, MaxDepth: 5, MaxFanout: 3, TargetSize: 20,
			})
			inQP := make(map[*xmltree.Node]bool)
			for _, n := range qp.Evaluate(d) {
				inQP[n] = true
			}
			for _, n := range q.Evaluate(d) {
				if !inQP[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Completeness on canonical documents: if q ⊄ q', then q's canonical
// document (which q matches) provides a witness unless q' also matches
// it at the same node. This is the classical canonical-model argument
// for the //-free part; with // edges a failure of containment implies
// SOME counterexample exists, and the canonical document is one for
// pc-only patterns. We check the pc-only case exactly.
func TestQuickContainmentCompletePCOnly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b"}
		q := randomPCPattern(rng, alphabet, 5)
		qp := randomPCPattern(rng, alphabet, 5)
		doc, outImg := q.CanonicalDocument()
		matches := false
		for _, n := range qp.Evaluate(doc) {
			if n == outImg {
				matches = true
			}
		}
		// For pc-only patterns, q ⊆ q' iff q' picks out q's output image
		// on q's canonical document.
		return Contained(q, qp) == matches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func randomPCPattern(rng *rand.Rand, alphabet []string, maxNodes int) *Pattern {
	p := randomPattern(rng, alphabet, maxNodes)
	for _, n := range p.Nodes() {
		n.Axis = Child
	}
	return p
}

func TestContainmentTransitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b"}
		p1 := randomPattern(rng, alphabet, 4)
		p2 := randomPattern(rng, alphabet, 4)
		p3 := randomPattern(rng, alphabet, 4)
		if Contained(p1, p2) && Contained(p2, p3) && !Contained(p1, p3) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnionEvaluateAndRedundancy(t *testing.T) {
	d := pharmaDoc()
	u := NewUnion(
		MustParse("//Trials//Trial[//Status]"), // ⊂ //Trials//Trial
		MustParse("//Trials//Trial"),
		MustParse("//Trials/Trial"), // ⊂ //Trials//Trial
	)
	got := u.Evaluate(d)
	if len(got) != 3 {
		t.Fatalf("union answers = %d, want 3", len(got))
	}
	trimmed := u.RemoveRedundant()
	if len(trimmed.Patterns) != 1 {
		t.Fatalf("RemoveRedundant kept %d, want 1 (//Trials//Trial contains the others)", len(trimmed.Patterns))
	}
	if trimmed.Patterns[0].String() != "//Trials//Trial" {
		t.Errorf("kept %s", trimmed.Patterns[0])
	}
	if !u.SameAs(trimmed) {
		t.Error("redundancy removal changed the union semantics")
	}
}

func TestUnionRemoveRedundantKeepsOneOfEquivalent(t *testing.T) {
	u := NewUnion(MustParse("//a[b][b]"), MustParse("//a[b]"), MustParse("//a[c]"))
	trimmed := u.RemoveRedundant()
	if len(trimmed.Patterns) != 2 {
		t.Fatalf("kept %d disjuncts, want 2: %s", len(trimmed.Patterns), trimmed)
	}
}

func TestUnionContainedIn(t *testing.T) {
	u := NewUnion(MustParse("//a/b"), MustParse("//a//b[c]"))
	if !u.ContainedIn(MustParse("//a//b")) {
		t.Error("union should be contained in //a//b")
	}
	if u.ContainedIn(MustParse("//a/b")) {
		t.Error("union is not contained in //a/b")
	}
	var empty *Union
	if !empty.Empty() {
		t.Error("nil union should be empty")
	}
	if empty.Size() != 0 {
		t.Error("nil union size")
	}
}

func TestUnionString(t *testing.T) {
	u := NewUnion(MustParse("//b"), MustParse("//a"))
	if got := u.String(); got != "//a U //b" {
		t.Errorf("String = %q", got)
	}
	if got := (&Union{}).String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
}
