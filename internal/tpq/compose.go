package tpq

import "fmt"

// Compose builds the rewriting query E ∘ V from a compensation query E
// and a view V (§2 of the paper): E's root is identified with V's
// output node, E's subtrees are grafted there, and the composed query's
// answer node is E's answer node. E's root tag must equal the view
// output's tag (it denotes the same element). Neither input is
// modified.
func Compose(e, v *Pattern) (*Pattern, error) {
	if e.Root == nil || v.Root == nil {
		return nil, fmt.Errorf("tpq: compose with empty pattern")
	}
	if e.Root.Tag != v.Output.Tag && e.Root.Tag != Wildcard {
		return nil, fmt.Errorf("tpq: compensation root %q does not match view output %q", e.Root.Tag, v.Output.Tag)
	}
	r, vm := v.Clone()
	dVc := vm[v.Output]
	ec := CloneSubtree(e.Root)
	em := make(map[*Node]*Node)
	mapClones(e.Root, ec, em)
	for _, c := range ec.Children {
		dVc.Attach(c.Axis, c)
	}
	if e.Output == e.Root {
		r.Output = dVc
	} else {
		r.Output = em[e.Output]
	}
	r.Reindex()
	return r, nil
}

func mapClones(orig, clone *Node, m map[*Node]*Node) {
	m[orig] = clone
	for i := range orig.Children {
		mapClones(orig.Children[i], clone.Children[i], m)
	}
}
