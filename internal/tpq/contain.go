package tpq

import "qav/internal/xmltree"

// Contains reports whether q' contains q, i.e. q ⊆ q' (q'(D) ⊇ q(D) on
// every database D). For XP{/,//,[]} the existence of a homomorphism
// from q' to q is necessary and sufficient (Amer-Yahia et al., Miklau &
// Suciu, as cited in the paper), so this is a polynomial-time decision.
//
// A homomorphism h : q' -> q preserves tags, maps pc-edges to pc-edges,
// maps ad-edges to proper ancestor/descendant pairs, maps the output of
// q' to the output of q, and respects the root axes via the implicit
// virtual document root.
func Contained(q, qPrime *Pattern) bool {
	h := &homChecker{
		src: qPrime.Nodes(),
		dst: q.Nodes(),
	}
	h.init(qPrime, q)
	root := qPrime.Root
	if root.Axis == Child {
		// The virtual root's pc-edge forces q' root onto q's root, and
		// q's root must itself be the document root.
		return q.Root.Axis == Child && h.hom(root, q.Root)
	}
	for _, x := range h.dst {
		if h.hom(root, x) {
			return true
		}
	}
	return false
}

// Equivalent reports q ≡ q' (mutual containment).
func Equivalent(q, qPrime *Pattern) bool {
	return Contained(q, qPrime) && Contained(qPrime, q)
}

// ProperlyContained reports q ⊂ q'.
func ProperlyContained(q, qPrime *Pattern) bool {
	return Contained(q, qPrime) && !Contained(qPrime, q)
}

type homChecker struct {
	src, dst   []*Node
	srcIdx     map[*Node]int
	dstIdx     map[*Node]int
	srcOut     *Node
	dstOut     *Node
	memo       []int8 // 0 unknown, 1 yes, -1 no; indexed src*|dst|+dst
	descendant [][]*Node
}

func (h *homChecker) init(qPrime, q *Pattern) {
	h.srcIdx = make(map[*Node]int, len(h.src))
	for i, n := range h.src {
		h.srcIdx[n] = i
	}
	h.dstIdx = make(map[*Node]int, len(h.dst))
	for i, n := range h.dst {
		h.dstIdx[n] = i
	}
	h.srcOut = qPrime.Output
	h.dstOut = q.Output
	h.memo = make([]int8, len(h.src)*len(h.dst))
	// Precompute proper-descendant lists in q.
	h.descendant = make([][]*Node, len(h.dst))
	var collect func(anc int, n *Node)
	collect = func(anc int, n *Node) {
		for _, c := range n.Children {
			h.descendant[anc] = append(h.descendant[anc], c)
			collect(anc, c)
		}
	}
	for i, n := range h.dst {
		collect(i, n)
	}
}

// hom reports whether the subtree of q' rooted at x can map to q with
// h(x) = y.
func (h *homChecker) hom(x, y *Node) bool {
	xi, yi := h.srcIdx[x], h.dstIdx[y]
	k := xi*len(h.dst) + yi
	if v := h.memo[k]; v != 0 {
		return v == 1
	}
	ok := h.homCompute(x, y, yi)
	if ok {
		h.memo[k] = 1
	} else {
		h.memo[k] = -1
	}
	return ok
}

func (h *homChecker) homCompute(x, y *Node, yi int) bool {
	if !homTagMatches(x.Tag, y.Tag) {
		return false
	}
	// The output of q' must land exactly on the output of q.
	if x == h.srcOut && y != h.dstOut {
		return false
	}
	for _, cx := range x.Children {
		found := false
		switch cx.Axis {
		case Child:
			for _, cy := range y.Children {
				if cy.Axis == Child && h.hom(cx, cy) {
					found = true
					break
				}
			}
		case Descendant:
			for _, cy := range h.descendant[yi] {
				if h.hom(cx, cy) {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// CanonicalDocument materializes the pattern's canonical database: one
// element per pattern node, every edge realized at distance one. The
// image of the output node is returned alongside the document. Every
// pattern in XP{/,//,[]} is satisfiable, and its canonical database is a
// smallest witness.
func (p *Pattern) CanonicalDocument() (*xmltree.Document, *xmltree.Node) {
	var outImg *xmltree.Node
	var build func(q *Node) *xmltree.Node
	build = func(q *Node) *xmltree.Node {
		n := &xmltree.Node{Tag: q.Tag}
		if q == p.Output {
			outImg = n
		}
		for _, c := range q.Children {
			k := build(c)
			k.Parent = n
			n.Children = append(n.Children, k)
		}
		return n
	}
	doc := xmltree.NewDocument(build(p.Root))
	return doc, outImg
}
