package tpq

import (
	"sync"

	"qav/internal/xmltree"
)

// Contains reports whether q' contains q, i.e. q ⊆ q' (q'(D) ⊇ q(D) on
// every database D). For XP{/,//,[]} the existence of a homomorphism
// from q' to q is necessary and sufficient (Amer-Yahia et al., Miklau &
// Suciu, as cited in the paper), so this is a polynomial-time decision.
//
// A homomorphism h : q' -> q preserves tags, maps pc-edges to pc-edges,
// maps ad-edges to proper ancestor/descendant pairs, maps the output of
// q' to the output of q, and respects the root axes via the implicit
// virtual document root.
//
// Before searching for the homomorphism, Contained applies cheap
// necessary conditions that reject most non-containments outright:
//
//   - tag-set subsumption: every concrete tag of q' must occur in q (a
//     set test, not a multiset one — homomorphisms may map many q'
//     nodes onto one q node);
//   - height: any root-to-leaf path of q' maps onto a strictly
//     descending path of q, so height(q') ≤ height(q);
//   - output depth: the root-to-output path of q' maps onto a
//     descending path ending at q's output, so outDepth(q') ≤
//     outDepth(q).
//
// The homomorphism search itself runs on the preorder interval index
// (index.go): node positions come from the labels, descendant lists are
// contiguous windows of the preorder node list, and the memo table is
// recycled through a sync.Pool.
func Contained(q, qPrime *Pattern) bool {
	src, dst := qPrime.index(), q.index()
	if src.height > dst.height {
		return false
	}
	if src.outDepth >= 0 && dst.outDepth >= 0 && src.outDepth > dst.outDepth {
		return false
	}
	for tag := range src.tags {
		if tag != Wildcard && dst.tags[tag] == 0 {
			return false
		}
	}
	root := qPrime.Root
	if root.Axis == Child {
		// The virtual root's pc-edge forces q' root onto q's root, and
		// q's root must itself be the document root.
		if q.Root.Axis != Child || !homTagMatches(root.Tag, q.Root.Tag) {
			return false
		}
	}
	h := homPool.Get().(*homChecker)
	h.init(src, dst, qPrime.Output, q.Output)
	defer h.release()
	if root.Axis == Child {
		return h.hom(root, q.Root)
	}
	for _, x := range h.dst {
		if h.hom(root, x) {
			return true
		}
	}
	return false
}

// Equivalent reports q ≡ q' (mutual containment).
func Equivalent(q, qPrime *Pattern) bool {
	return Contained(q, qPrime) && Contained(qPrime, q)
}

// ProperlyContained reports q ⊂ q'.
func ProperlyContained(q, qPrime *Pattern) bool {
	return Contained(q, qPrime) && !Contained(qPrime, q)
}

// homPool recycles homomorphism checkers (and their memo tables) across
// Contained calls; containment is invoked O(n²) times per redundancy-
// elimination pass, from many goroutines.
var homPool = sync.Pool{New: func() any { return new(homChecker) }}

// homChecker decides homomorphism existence from src (q') to dst (q).
// Both node slices are the patterns' preorder lists, so a node's
// position is its interval label and the proper descendants of dst[i]
// are the contiguous window dst[i+1:end(i)+1].
type homChecker struct {
	src, dst []*Node
	srcOut   *Node
	dstOut   *Node
	memo     []int8 // 0 unknown, 1 yes, -1 no; indexed src*|dst|+dst
}

func (h *homChecker) init(src, dst *patternInfo, srcOut, dstOut *Node) {
	h.src, h.dst = src.nodes, dst.nodes
	h.srcOut, h.dstOut = srcOut, dstOut
	need := len(h.src) * len(h.dst)
	if cap(h.memo) < need {
		h.memo = make([]int8, need)
	} else {
		h.memo = h.memo[:need]
		clear(h.memo)
	}
}

// release returns the checker to the pool, dropping node references so
// pooled checkers never pin pattern trees.
func (h *homChecker) release() {
	h.src, h.dst = nil, nil
	h.srcOut, h.dstOut = nil, nil
	homPool.Put(h)
}

// hom reports whether the subtree of q' rooted at x can map to q with
// h(x) = y.
func (h *homChecker) hom(x, y *Node) bool {
	k := int(x.pre)*len(h.dst) + int(y.pre)
	if v := h.memo[k]; v != 0 {
		return v == 1
	}
	ok := h.homCompute(x, y)
	if ok {
		h.memo[k] = 1
	} else {
		h.memo[k] = -1
	}
	return ok
}

func (h *homChecker) homCompute(x, y *Node) bool {
	if !homTagMatches(x.Tag, y.Tag) {
		return false
	}
	// The output of q' must land exactly on the output of q.
	if x == h.srcOut && y != h.dstOut {
		return false
	}
	for _, cx := range x.Children {
		found := false
		switch cx.Axis {
		case Child:
			for _, cy := range y.Children {
				if cy.Axis == Child && h.hom(cx, cy) {
					found = true
					break
				}
			}
		case Descendant:
			for _, cy := range descendantsIn(h.dst, int(y.pre)) {
				if h.hom(cx, cy) {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// CanonicalDocument materializes the pattern's canonical database: one
// element per pattern node, every edge realized at distance one. The
// image of the output node is returned alongside the document. Every
// pattern in XP{/,//,[]} is satisfiable, and its canonical database is a
// smallest witness.
func (p *Pattern) CanonicalDocument() (*xmltree.Document, *xmltree.Node) {
	var outImg *xmltree.Node
	var build func(q *Node) *xmltree.Node
	build = func(q *Node) *xmltree.Node {
		n := &xmltree.Node{Tag: q.Tag}
		if q == p.Output {
			outImg = n
		}
		for _, c := range q.Children {
			k := build(c)
			k.Parent = n
			n.Children = append(n.Children, k)
		}
		return n
	}
	doc := xmltree.NewDocument(build(p.Root))
	return doc, outImg
}
