package tpq

import (
	"sort"
	"strings"

	"qav/internal/xmltree"
)

// Union is a union of tree patterns. Maximal contained rewritings
// without a schema are, in general, unions of exponentially many TPQs
// (paper §3.2); this type represents them.
type Union struct {
	Patterns []*Pattern
}

// NewUnion builds a union over the given disjuncts.
func NewUnion(ps ...*Pattern) *Union { return &Union{Patterns: ps} }

// Empty reports whether the union has no disjuncts (the always-empty
// query).
func (u *Union) Empty() bool { return u == nil || len(u.Patterns) == 0 }

// Size is the total number of pattern nodes across disjuncts.
func (u *Union) Size() int {
	if u == nil {
		return 0
	}
	total := 0
	for _, p := range u.Patterns {
		total += p.Size()
	}
	return total
}

// Evaluate computes the union of the disjuncts' answers, deduplicated,
// in document preorder.
func (u *Union) Evaluate(d *xmltree.Document) []*xmltree.Node {
	if u.Empty() {
		return nil
	}
	seen := make(map[*xmltree.Node]bool)
	for _, p := range u.Patterns {
		for _, n := range p.Evaluate(d) {
			seen[n] = true
		}
	}
	out := make([]*xmltree.Node, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// ContainedIn reports whether every disjunct is contained in q, i.e.
// the union as a query is contained in q.
func (u *Union) ContainedIn(q *Pattern) bool {
	for _, p := range u.Patterns {
		if !Contained(p, q) {
			return false
		}
	}
	return true
}

// CoveredBy reports whether every disjunct of u is contained in some
// disjunct of v. This is a sufficient condition for u ⊆ v (and it is
// how the paper compares unions of CRs: a CR is redundant iff another
// single CR contains it).
func (u *Union) CoveredBy(v *Union) bool {
	for _, p := range u.Patterns {
		ok := false
		for _, q := range v.Patterns {
			if Contained(p, q) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// SameAs reports mutual disjunct-wise coverage of the two unions.
func (u *Union) SameAs(v *Union) bool {
	return u.CoveredBy(v) && v.CoveredBy(u)
}

// RemoveRedundant drops every disjunct that is contained in another
// disjunct (the paper's notion of a redundant CR), returning a new
// Union. Among equivalent disjuncts one representative is kept.
func (u *Union) RemoveRedundant() *Union {
	if u.Empty() {
		return &Union{}
	}
	kept := make([]*Pattern, 0, len(u.Patterns))
	for i, p := range u.Patterns {
		redundant := false
		for j, q := range u.Patterns {
			if i == j {
				continue
			}
			if !Contained(p, q) {
				continue
			}
			if !Contained(q, p) {
				redundant = true // strictly contained in q
				break
			}
			// p ≡ q: keep only the first of an equivalence class.
			if j < i {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, p)
		}
	}
	return &Union{Patterns: kept}
}

// String renders the union as the disjuncts joined by " U ", in the
// paper's notation, with disjuncts sorted for determinism.
func (u *Union) String() string {
	if u.Empty() {
		return "∅"
	}
	parts := make([]string, len(u.Patterns))
	for i, p := range u.Patterns {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " U ")
}
