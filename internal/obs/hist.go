package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// numBuckets is the fixed size of every latency histogram: bucket i
// covers durations up to 1µs<<i (1µs, 2µs, 4µs, … ≈134s), plus one
// overflow bucket. The memory cost is constant (~240 bytes), which is
// what makes per-endpoint and per-stage histograms free to keep
// forever.
const numBuckets = 28

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// A Histogram is a bounded latency histogram with exponential buckets.
// All updates are atomic; the zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets + 1]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	i := 0
	for i < numBuckets && d > bucketBound(i) {
		i++
	}
	h.buckets[i].Add(1)
}

// HistogramSnapshot is a point-in-time summary of a histogram. The
// quantiles are upper-bound estimates: the bound of the bucket the
// quantile falls in, clamped to the observed maximum.
type HistogramSnapshot struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// Snapshot summarizes the histogram. Concurrent Observe calls may or
// may not be included; the snapshot is internally consistent enough for
// monitoring (count, sum and buckets are read once each).
func (h *Histogram) Snapshot() HistogramSnapshot {
	count := h.count.Load()
	if count == 0 {
		return HistogramSnapshot{}
	}
	var counts [numBuckets + 1]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	max := h.max.Load()
	quantile := func(q float64) int64 {
		if total == 0 {
			return 0
		}
		rank := int64(math.Ceil(q * float64(total)))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for i := range counts {
			cum += counts[i]
			if cum >= rank {
				if i == numBuckets {
					return max // overflow bucket: only the max is known
				}
				bound := int64(bucketBound(i))
				if bound > max {
					return max
				}
				return bound
			}
		}
		return max
	}
	return HistogramSnapshot{
		Count:  count,
		MeanNs: h.sum.Load() / count,
		P50Ns:  quantile(0.50),
		P90Ns:  quantile(0.90),
		P99Ns:  quantile(0.99),
		MaxNs:  max,
	}
}
