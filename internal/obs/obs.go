// Package obs is the system's stdlib-only observability layer: atomic
// counters, bounded latency histograms, per-request stage timers
// (Span), an aggregating Registry, and a slow-query log.
//
// The rewriting cost model of the paper — and of the survey literature
// on tree-pattern evaluation — is dominated by a few hot phases:
// embedding enumeration, CR construction, and the quadratic containment
// matrix of redundancy elimination (plus the chase under a schema).
// This package makes those phases visible at runtime instead of only in
// offline benchmarks: the engine opens a Span per computed request, the
// pipeline credits elapsed time to stages, and the Registry aggregates
// spans into per-stage counters and histograms that GET /metrics (and
// expvar, and qavbench -json) all report through one schema.
//
// Everything here is designed to be cheap enough for the hot kernels:
//
//   - a nil *Span is a valid no-op recorder — Start returns the zero
//     Time without calling time.Now, and Observe on a zero start does
//     nothing, so uninstrumented calls pay a nil check and no clock
//     reads;
//   - Span and Histogram record through atomics, never a lock, so the
//     parallel MCR pipeline can credit stages from its workers;
//   - aggregation work (bucket search, map building) happens on Observe
//     of a whole span or on Snapshot, not per stage credit.
package obs

import (
	"context"
	"sync/atomic"
	"time"

	"qav/internal/names"
)

// Stage identifies one phase of the rewriting pipeline. The taxonomy
// follows the paper's algorithm structure: parse (expression → pattern),
// chase (schema constraint application, §4–5), enumerate (labeling and
// useful-embedding enumeration, Theorem 2 / Fig 10), buildcr (CR
// construction and grafting), contain (containment verification and
// redundancy elimination). The answering path adds the plan stages:
// plan.compile (compensation queries → executable programs), plan.index
// (inverted tag lists over a materialized view forest), plan.exec
// (structural-join execution and answer union). The multi-view path
// adds catalog.prune (signature-index candidate selection over the view
// catalog) and batch.chase (the batched pipeline's shared query-side
// labeling metadata, computed once and reused per candidate). The
// cluster router (internal/router) adds router.pick (policy replica
// selection), router.retry (backoff rounds), router.hedge (hedged
// attempts launched) and router.breaker (circuit-breaker state
// transitions).
type Stage int

const (
	StageParse Stage = iota
	StageChase
	StageEnumerate
	StageBuildCR
	StageContain
	StagePlanCompile
	StagePlanIndex
	StagePlanExec
	StageCatalogPrune
	StageBatchChase
	StageCacheReplay
	StageRouterPick
	StageRouterRetry
	StageRouterHedge
	StageRouterBreaker
	// NumStages bounds the Stage enum; keep it last.
	NumStages
)

var stageNames = [NumStages]string{
	names.StageParse, names.StageChase, names.StageEnumerate,
	names.StageBuildCR, names.StageContain, names.StagePlanCompile,
	names.StagePlanIndex, names.StagePlanExec, names.StageCatalogPrune,
	names.StageBatchChase, names.StageCacheReplay, names.StageRouterPick,
	names.StageRouterRetry, names.StageRouterHedge,
	names.StageRouterBreaker,
}

// String returns the stable metric name of the stage, used as the key
// in /metrics, the slow-query log, and qavbench -json.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// A Span accumulates per-stage elapsed time for one request. It is safe
// for concurrent use: the streaming MCR pipeline credits buildcr and
// contain time from multiple workers at once. The zero value is ready
// to use; a nil *Span is a valid recorder that records nothing.
type Span struct {
	ns [NumStages]atomic.Int64
	n  [NumStages]atomic.Int64
}

// NewSpan returns an empty span.
func NewSpan() *Span { return &Span{} }

// Start returns the current time when the span is recording, and the
// zero Time when the receiver is nil — so hot paths write
//
//	t := sp.Start()
//	... work ...
//	sp.Observe(stage, t)
//
// and pay no clock read when unobserved.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// Observe credits the time elapsed since start to stage st. It is a
// no-op on a nil receiver or a zero start (the pair produced by a nil
// Start), so callers never branch themselves.
func (s *Span) Observe(st Stage, start time.Time) {
	if s == nil || start.IsZero() {
		return
	}
	s.Add(st, time.Since(start))
}

// Add credits d to stage st directly.
func (s *Span) Add(st Stage, d time.Duration) {
	if s == nil {
		return
	}
	s.ns[st].Add(int64(d))
	s.n[st].Add(1)
}

// Load returns the number of credits and total nanoseconds recorded for
// stage st.
func (s *Span) Load(st Stage) (count, ns int64) {
	if s == nil {
		return 0, 0
	}
	return s.n[st].Load(), s.ns[st].Load()
}

// StageNs returns the non-zero stage totals in nanoseconds, keyed by
// stage name — the breakdown the slow-query log records. Under the
// parallel pipeline stage totals are summed across workers, so they may
// exceed the request's wall-clock duration.
func (s *Span) StageNs() map[string]int64 {
	if s == nil {
		return nil
	}
	var m map[string]int64
	for st := Stage(0); st < NumStages; st++ {
		if ns := s.ns[st].Load(); ns > 0 {
			if m == nil {
				m = make(map[string]int64, int(NumStages))
			}
			m[st.String()] = ns
		}
	}
	return m
}

type spanKey struct{}

// WithSpan returns a context carrying sp. The engine attaches a fresh
// span to each computed (non-cache-hit) request; the pipeline retrieves
// it once per call with SpanFrom.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the span carried by ctx, or nil. Call it once at
// function entry, not per loop iteration: the context lookup is the
// expensive part.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
