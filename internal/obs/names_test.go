package obs

import (
	"testing"

	"qav/internal/names"
)

// TestStageNamesMatchRegistry pins the Stage enum to the central name
// registry: same count, same pipeline order. A stage added to one side
// but not the other fails here instead of producing an "unknown" key
// in /metrics.
func TestStageNamesMatchRegistry(t *testing.T) {
	decl := names.Stages()
	if len(decl) != int(NumStages) {
		t.Fatalf("names.Stages() has %d entries, obs declares %d stages", len(decl), NumStages)
	}
	for st := Stage(0); st < NumStages; st++ {
		if got := st.String(); got != decl[st] {
			t.Errorf("Stage(%d).String() = %q, names.Stages()[%d] = %q", st, got, st, decl[st])
		}
	}
}
