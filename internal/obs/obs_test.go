package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageParse:     "parse",
		StageChase:     "chase",
		StageEnumerate: "enumerate",
		StageBuildCR:   "buildcr",
		StageContain:   "contain",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), name)
		}
	}
	if Stage(99).String() != "unknown" {
		t.Errorf("out-of-range stage = %q", Stage(99).String())
	}
}

// A nil span must be a valid recorder that records nothing and never
// reads the clock via Start.
func TestNilSpanIsNoop(t *testing.T) {
	var sp *Span
	start := sp.Start()
	if !start.IsZero() {
		t.Error("nil Start() should return the zero time")
	}
	sp.Observe(StageEnumerate, start) // must not panic
	sp.Add(StageEnumerate, time.Second)
	if n, ns := sp.Load(StageEnumerate); n != 0 || ns != 0 {
		t.Errorf("nil span recorded %d/%d", n, ns)
	}
	if sp.StageNs() != nil {
		t.Error("nil span StageNs should be nil")
	}
}

// A live span with a zero start (as produced by a nil span's Start)
// must also ignore the observation: the pair is what hot paths emit.
func TestSpanZeroStartIgnored(t *testing.T) {
	sp := NewSpan()
	sp.Observe(StageBuildCR, time.Time{})
	if n, _ := sp.Load(StageBuildCR); n != 0 {
		t.Errorf("zero start recorded %d credits", n)
	}
}

func TestSpanAccumulates(t *testing.T) {
	sp := NewSpan()
	sp.Add(StageEnumerate, 3*time.Millisecond)
	sp.Add(StageEnumerate, 2*time.Millisecond)
	sp.Add(StageContain, time.Millisecond)
	if n, ns := sp.Load(StageEnumerate); n != 2 || ns != int64(5*time.Millisecond) {
		t.Errorf("enumerate = %d credits / %dns", n, ns)
	}
	m := sp.StageNs()
	if len(m) != 2 || m["enumerate"] != int64(5*time.Millisecond) || m["contain"] != int64(time.Millisecond) {
		t.Errorf("StageNs = %v", m)
	}
}

func TestSpanContext(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Error("empty context should carry no span")
	}
	sp := NewSpan()
	ctx := WithSpan(context.Background(), sp)
	if SpanFrom(ctx) != sp {
		t.Error("span lost in context round-trip")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.MaxNs != 0 {
		t.Errorf("empty histogram snapshot = %+v", s)
	}
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond) // falls in the ≤1.024ms bucket
	}
	h.Observe(10 * time.Second)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxNs != int64(10*time.Second) {
		t.Errorf("max = %d", s.MaxNs)
	}
	// p50/p90 land in the millisecond bucket (upper bound 1.024ms); p99
	// must not exceed the observed max.
	if s.P50Ns > int64(2*time.Millisecond) || s.P90Ns > int64(2*time.Millisecond) {
		t.Errorf("p50/p90 = %d/%d, want ≲1ms bucket bound", s.P50Ns, s.P90Ns)
	}
	if s.P99Ns > s.MaxNs {
		t.Errorf("p99 %d exceeds max %d", s.P99Ns, s.MaxNs)
	}
	if got := s.MeanNs; got < int64(50*time.Millisecond) || got > int64(200*time.Millisecond) {
		t.Errorf("mean = %d, want ~101ms", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(1) << 62) // beyond the last bound
	h.Observe(-time.Second)           // clamped to zero
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P99Ns != s.MaxNs {
		t.Errorf("overflow p99 = %d, want max %d", s.P99Ns, s.MaxNs)
	}
}

func TestEndpointObserve(t *testing.T) {
	r := NewRegistry()
	ep := r.Endpoint("rewrite")
	if r.Endpoint("rewrite") != ep {
		t.Fatal("Endpoint must return the same aggregate per name")
	}
	ep.Observe(200, time.Millisecond)
	ep.Observe(200, time.Millisecond)
	ep.Observe(422, time.Microsecond)
	ep.Observe(700, time.Microsecond) // out of range → "other"
	snap := r.Snapshot()
	es, ok := snap.Endpoints["rewrite"]
	if !ok {
		t.Fatalf("snapshot = %+v", snap)
	}
	if es.Requests != 4 {
		t.Errorf("requests = %d", es.Requests)
	}
	if es.Status["2xx"] != 2 || es.Status["4xx"] != 1 || es.Status["other"] != 1 {
		t.Errorf("status = %v", es.Status)
	}
	if es.Latency.Count != 4 {
		t.Errorf("latency count = %d", es.Latency.Count)
	}
}

func TestRegistryObserveSpan(t *testing.T) {
	r := NewRegistry()
	sp := NewSpan()
	sp.Add(StageEnumerate, 2*time.Millisecond)
	sp.Add(StageEnumerate, time.Millisecond)
	sp.Add(StageContain, time.Millisecond)
	r.ObserveSpan(sp)
	r.ObserveSpan(nil) // no-op
	r.ObserveStage(StageParse, time.Microsecond)
	snap := r.Snapshot()
	enum := snap.Stages["enumerate"]
	if enum.Count != 2 || enum.TotalNs != int64(3*time.Millisecond) {
		t.Errorf("enumerate = %+v", enum)
	}
	// The stage histogram sees the span's per-request total, not the
	// individual credits.
	if enum.Latency.Count != 1 {
		t.Errorf("enumerate latency count = %d, want 1 request", enum.Latency.Count)
	}
	if snap.Stages["parse"].Count != 1 {
		t.Errorf("parse = %+v", snap.Stages["parse"])
	}
	if _, ok := snap.Stages["chase"]; ok {
		t.Error("untouched stage should be omitted from the snapshot")
	}
}

// Span credits and registry folds must be race-free: the MCR pipeline
// credits stages from parallel workers while the server snapshots.
func TestConcurrentSpansAndSnapshots(t *testing.T) {
	r := NewRegistry()
	ep := r.Endpoint("rewrite")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := NewSpan()
				sp.Add(StageBuildCR, time.Microsecond)
				sp.Add(StageContain, time.Microsecond)
				r.ObserveSpan(sp)
				ep.Observe(200, time.Microsecond)
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Stages["buildcr"].Count; got != 8*200 {
		t.Errorf("buildcr count = %d, want %d", got, 8*200)
	}
	if got := snap.Endpoints["rewrite"].Requests; got != 8*200 {
		t.Errorf("requests = %d, want %d", got, 8*200)
	}
}

func TestSlowLogDisabledByDefaultThreshold(t *testing.T) {
	l := NewSlowLog(0, 4)
	if l.Threshold() != 0 {
		t.Errorf("threshold = %v", l.Threshold())
	}
	l.SetThreshold(time.Second)
	if l.Threshold() != time.Second {
		t.Errorf("threshold = %v", l.Threshold())
	}
}

func TestSlowLogRingEviction(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 3)
	for i := 0; i < 5; i++ {
		l.Record(SlowEntry{Op: "rewrite", Query: fmt.Sprintf("q%d", i)})
	}
	snap := l.Snapshot()
	if snap.Total != 5 {
		t.Errorf("total = %d", snap.Total)
	}
	if len(snap.Entries) != 3 {
		t.Fatalf("retained %d entries", len(snap.Entries))
	}
	// Newest first: q4, q3, q2 survive.
	for i, want := range []string{"q4", "q3", "q2"} {
		if snap.Entries[i].Query != want {
			t.Errorf("entry %d = %q, want %q", i, snap.Entries[i].Query, want)
		}
	}
}

func TestSlowLogConcurrentRecord(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(SlowEntry{Op: "rewrite"})
				if i%25 == 0 {
					l.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if snap := l.Snapshot(); snap.Total != 800 || len(snap.Entries) != 8 {
		t.Errorf("total=%d retained=%d", snap.Total, len(snap.Entries))
	}
}

func TestPublishTwiceIsNoop(t *testing.T) {
	Publish("obs_test_var", func() any { return 1 })
	Publish("obs_test_var", func() any { return 2 }) // must not panic
}
