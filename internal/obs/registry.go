package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// A Registry aggregates observations across requests: per-endpoint
// request/status/latency metrics and per-stage pipeline timings. One
// Registry backs one Engine (and the HTTP surface in front of it); its
// Snapshot is the document GET /metrics serves and expvar republishes.
type Registry struct {
	mu        sync.Mutex
	endpoints map[string]*Endpoint // guarded by mu

	stages [NumStages]stageAgg
}

// stageAgg accumulates one pipeline stage across requests.
type stageAgg struct {
	count atomic.Int64
	ns    atomic.Int64
	hist  Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{endpoints: make(map[string]*Endpoint)}
}

// An Endpoint holds the request metrics of one HTTP endpoint: request
// count, status-class counts, and a latency histogram. All updates are
// atomic.
type Endpoint struct {
	requests atomic.Int64
	status   [6]atomic.Int64 // status/100; index 0 collects out-of-range codes
	latency  Histogram
}

// Endpoint returns the named endpoint's metrics, creating them on first
// use. Handlers should capture the result at mux construction time so
// the per-request path never takes the registry lock.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.endpoints[name]
	if ep == nil {
		ep = &Endpoint{}
		r.endpoints[name] = ep
	}
	return ep
}

// Observe records one served request with its HTTP status and duration.
func (e *Endpoint) Observe(status int, d time.Duration) {
	e.requests.Add(1)
	class := status / 100
	if class < 1 || class > 5 {
		class = 0
	}
	e.status[class].Add(1)
	e.latency.Observe(d)
}

// ObserveStage records one direct stage observation (used for stages
// measured outside a span, like request parsing).
func (r *Registry) ObserveStage(st Stage, d time.Duration) {
	a := &r.stages[st]
	a.count.Add(1)
	a.ns.Add(int64(d))
	a.hist.Observe(d)
}

// ObserveSpan folds one finished request span into the per-stage
// aggregates: stage credit counts and nanoseconds accumulate, and each
// stage's per-request total feeds that stage's latency histogram.
func (r *Registry) ObserveSpan(sp *Span) {
	if sp == nil {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		n, ns := sp.Load(st)
		if n == 0 {
			continue
		}
		a := &r.stages[st]
		a.count.Add(n)
		a.ns.Add(ns)
		a.hist.Observe(time.Duration(ns))
	}
}

// EndpointSnapshot is the /metrics view of one endpoint.
type EndpointSnapshot struct {
	Requests int64             `json:"requests"`
	Status   map[string]int64  `json:"status,omitempty"`
	Latency  HistogramSnapshot `json:"latency"`
}

// StageSnapshot is the /metrics view of one pipeline stage. Count is
// the number of stage credits (per-embedding credits included, so it
// can exceed the request count); TotalNs their summed duration; Latency
// summarizes the per-request stage totals.
type StageSnapshot struct {
	Count   int64             `json:"count"`
	TotalNs int64             `json:"total_ns"`
	Latency HistogramSnapshot `json:"latency"`
}

// CacheSnapshot is the /metrics view of the rewrite cache. Hits are
// completed-entry lookups in the in-memory tier, WarmHits lookups
// served by the persistent warm tier (decoded and promoted, no
// recompute), Misses leader computations, Dedups follower waits
// collapsed onto an in-flight leader — the four are disjoint, so
// hits+warmHits+misses+dedups equals the number of cache lookups. The
// remaining fields describe the persistent tier: entries replayed at
// boot, records appended/dropped by the async persister, and persist
// faults (all zero when no cache directory is configured).
type CacheSnapshot struct {
	Hits          int64 `json:"hits"`
	WarmHits      int64 `json:"warmHits,omitempty"`
	Misses        int64 `json:"misses"`
	Dedups        int64 `json:"dedups"`
	Entries       int   `json:"entries"`
	WarmEntries   int   `json:"warmEntries,omitempty"`
	Replayed      int64 `json:"replayed,omitempty"`
	Persisted     int64 `json:"persisted,omitempty"`
	PersistDrops  int64 `json:"persistDrops,omitempty"`
	PersistErrors int64 `json:"persistErrors,omitempty"`
	SegmentBytes  int64 `json:"segmentBytes,omitempty"`
}

// GateSnapshot is the /metrics view of the admission gate in front of
// Engine compute. Shed counts requests rejected for overload (queue
// full or queue timeout) — the saturation signal operators alert on.
type GateSnapshot struct {
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// Snapshot is the full observability document: what GET /metrics
// serves, what expvar republishes, and (for the Stages section) what
// qavbench -json embeds, so offline benchmarks and live serving report
// through one schema. Endpoints and Stages come from the Registry;
// Cache, Engine, Gate and SlowLog are filled by the engine.
type Snapshot struct {
	Endpoints map[string]EndpointSnapshot `json:"endpoints,omitempty"`
	Stages    map[string]StageSnapshot    `json:"stages,omitempty"`
	Cache     *CacheSnapshot              `json:"cache,omitempty"`
	Engine    map[string]int64            `json:"engine,omitempty"`
	Gate      *GateSnapshot               `json:"gate,omitempty"`
	SlowLog   *SlowLogSnapshot            `json:"slowLog,omitempty"`
}

// Snapshot returns the registry's endpoint and stage aggregates.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Stages: make(map[string]StageSnapshot, int(NumStages))}
	for st := Stage(0); st < NumStages; st++ {
		a := &r.stages[st]
		count := a.count.Load()
		if count == 0 {
			continue
		}
		snap.Stages[st.String()] = StageSnapshot{
			Count:   count,
			TotalNs: a.ns.Load(),
			Latency: a.hist.Snapshot(),
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.endpoints) > 0 {
		snap.Endpoints = make(map[string]EndpointSnapshot, len(r.endpoints))
		for name, ep := range r.endpoints {
			es := EndpointSnapshot{
				Requests: ep.requests.Load(),
				Latency:  ep.latency.Snapshot(),
			}
			for class := range ep.status {
				if n := ep.status[class].Load(); n > 0 {
					if es.Status == nil {
						es.Status = make(map[string]int64, 2)
					}
					es.Status[statusClassName(class)] = n
				}
			}
			snap.Endpoints[name] = es
		}
	}
	return snap
}

func statusClassName(class int) string {
	switch class {
	case 1, 2, 3, 4, 5:
		return string(rune('0'+class)) + "xx"
	default:
		return "other"
	}
}

// Publish registers fn's value under name in the process-wide expvar
// namespace, so /debug/vars exposes the same document as /metrics.
// Publishing a name twice is a no-op (expvar itself would panic).
func Publish(name string, fn func() any) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(fn))
}
