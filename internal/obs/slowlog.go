package obs

import (
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// A SlowLog is a bounded ring buffer of outlier requests: any computed
// rewriting slower than the configured threshold is recorded with its
// canonical query/view and per-stage time breakdown, so a slow request
// can be attributed to a pipeline phase after the fact without a
// profiler attached. A zero threshold disables recording.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 disables
	total     atomic.Int64 // entries ever recorded (ring may have dropped old ones)

	mu     sync.Mutex
	ring   []SlowEntry // guarded by mu
	next   int         // guarded by mu
	logger *log.Logger // guarded by mu
}

// A SlowEntry is one recorded outlier request. StageNs carries the
// span's per-stage totals in nanoseconds; under the parallel pipeline
// their sum may exceed DurationNs.
type SlowEntry struct {
	Time       time.Time        `json:"time"`
	Op         string           `json:"op"`
	Query      string           `json:"query"`
	View       string           `json:"view,omitempty"`
	Schema     string           `json:"schema,omitempty"`
	Recursive  bool             `json:"recursive,omitempty"`
	DurationNs int64            `json:"duration_ns"`
	StageNs    map[string]int64 `json:"stage_ns,omitempty"`
	Err        string           `json:"error,omitempty"`
	// Stack is the goroutine stack captured when the request died to a
	// recovered panic; such entries are recorded regardless of the
	// latency threshold so the crash site is never lost.
	Stack string `json:"stack,omitempty"`
}

// NewSlowLog returns a slow-query log keeping the most recent capacity
// entries (minimum 1) for requests at or above threshold; threshold 0
// disables it.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowEntry, 0, capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the current recording threshold; 0 means disabled.
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// SetThreshold changes the recording threshold at runtime.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.threshold.Store(int64(d))
}

// SetLogger makes the slow log also print one line per recorded entry
// (nil disables printing, the default).
func (l *SlowLog) SetLogger(lg *log.Logger) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.logger = lg
}

// Record appends e to the ring, evicting the oldest entry when full.
// The threshold check is the caller's: the engine compares the request
// duration against Threshold() before building an entry, so sub-
// threshold requests never pay for canonicalization.
func (l *SlowLog) Record(e SlowEntry) {
	l.total.Add(1)
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % cap(l.ring)
	}
	lg := l.logger
	l.mu.Unlock()
	if lg != nil {
		lg.Printf("slow query: op=%s dur=%s query=%s view=%s stages=%v",
			e.Op, time.Duration(e.DurationNs), e.Query, e.View, e.StageNs)
	}
}

// SlowLogSnapshot is the /metrics and /v1/slowlog view of the log.
type SlowLogSnapshot struct {
	ThresholdNs int64       `json:"threshold_ns"`
	Total       int64       `json:"total"`
	Entries     []SlowEntry `json:"entries"`
}

// Snapshot returns the retained entries, newest first.
func (l *SlowLog) Snapshot() SlowLogSnapshot {
	snap := SlowLogSnapshot{
		ThresholdNs: l.threshold.Load(),
		Total:       l.total.Load(),
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.ring)
	snap.Entries = make([]SlowEntry, 0, n)
	// The ring's logical order is oldest..newest starting at next (once
	// wrapped) or at 0 (while filling); emit newest first.
	for i := 0; i < n; i++ {
		idx := (l.next + n - 1 - i) % n
		snap.Entries = append(snap.Entries, l.ring[idx])
	}
	return snap
}
