package router

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A policy ranks the replica set for one request: order returns
// replica indexes in preference order, and the proxy walks them until
// an attempt succeeds. Ranking the whole set (rather than picking one)
// is what makes failover free: the spill target when the top choice is
// open or saturated is simply the next index.
type policy interface {
	name() string
	order(key string, reps []*replica) []int
}

// roundRobin cycles through the replicas; each request starts one past
// the previous request's starting point.
type roundRobin struct{ next atomic.Uint64 }

func (p *roundRobin) name() string { return "roundrobin" }

func (p *roundRobin) order(key string, reps []*replica) []int {
	n := len(reps)
	start := int(p.next.Add(1)-1) % n
	out := make([]int, n)
	for i := range out {
		out[i] = (start + i) % n
	}
	return out
}

// leastLoaded ranks replicas by queueing pressure: the router's own
// in-flight count toward the replica plus the replica's last-reported
// load (handler in-flight + gate queue depth from /healthz). Ties
// break by index so the ranking is deterministic.
type leastLoaded struct{}

func (leastLoaded) name() string { return "leastloaded" }

func (leastLoaded) order(key string, reps []*replica) []int {
	out := make([]int, len(reps))
	load := make([]int64, len(reps))
	for i, rep := range reps {
		out[i] = i
		load[i] = rep.inflight.Load()
		if h := rep.health.Load(); h != nil {
			load[i] += h.InFlight + h.Queued
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return load[out[a]] < load[out[b]]
	})
	return out
}

// affinity implements rendezvous (highest-random-weight) hashing on
// the canonical pattern key: every (replica, key) pair gets a hash
// score and the replicas are ranked by score, so each canonical query
// has one stable owner whose rewrite cache actually accumulates hits —
// and when the owner is open, draining or saturated, the proxy spills
// to the second-ranked replica, which is itself stable per key.
// Membership changes move only ~1/N of the keys (the regression test
// pins that property).
type affinity struct{}

func (a *affinity) name() string { return "affinity" }

func (a *affinity) order(key string, reps []*replica) []int {
	hk := fnv64a(key)
	out := make([]int, len(reps))
	score := make([]uint64, len(reps))
	for i, rep := range reps {
		out[i] = i
		// Mix the precomputed replica-name hash with the key hash;
		// splitmix64 scrambles the combination so nearby keys don't
		// produce correlated rankings.
		score[i] = splitmix64(rep.nameHash ^ hk)
	}
	sort.SliceStable(out, func(x, y int) bool {
		return score[out[x]] > score[out[y]]
	})
	return out
}

// rendezvousRank is the pure ranking function behind the affinity
// policy, exposed for the stability regression test: it returns the
// index in names of the top-ranked owner for key.
func rendezvousRank(names []string, key string) int {
	hk := fnv64a(key)
	best, bestScore := 0, uint64(0)
	for i, name := range names {
		s := splitmix64(fnv64a(name) ^ hk)
		if i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// fnv64a is the 64-bit FNV-1a hash.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality bijective mixer (same construction internal/fault uses
// for deterministic firing decisions).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a mutex-guarded SplitMix64 stream used for every jittered
// duration in the router (breaker cooldowns, retry backoff). Seeding
// it makes chaos runs reproducible: same seed, same jitter schedule.
type rng struct {
	mu sync.Mutex
	s  uint64
}

func newRNG(seed int64) *rng { return &rng{s: uint64(seed)} }

func (r *rng) next() uint64 {
	r.mu.Lock()
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	r.mu.Unlock()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitter returns a duration uniformly in [d/2, d): full-jitter-style
// spreading that keeps the expected wait near 3d/4 while decorrelating
// concurrent waiters.
func (r *rng) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(r.next()%uint64(half))
}
