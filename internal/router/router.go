// Package router is the cluster front end: one HTTP endpoint fanning
// out to N qavd replicas with health-aware failover. A single qavd —
// however warm its rewrite cache — is a single point of failure; this
// layer turns replica death, slowness and saturation into routed-around
// events instead of client-visible errors.
//
// The moving pieces:
//
//   - a replica registry with active health probing (GET /healthz on
//     each replica, which since the drain change reports inflight,
//     queue depth and warm-cache load) plus passive signals
//     (consecutive errors, timeouts) feeding per-replica circuit
//     breakers (closed → open → half-open, seeded-jitter cooldowns);
//   - pluggable routing policies: round-robin, least-loaded (from the
//     health payload's load report), and canonical-affinity via
//     rendezvous hashing on the canonical pattern key — the policy
//     that makes each replica's LRU + persistent warm tier actually
//     hit, with automatic spill to the next-ranked replica when the
//     owner is open, draining or saturated;
//   - a retry layer: per-attempt timeouts, capped exponential backoff
//     with deterministic seeded jitter, Retry-After-aware 429
//     handling (a saturated replica is skipped until its own horizon,
//     never counted as a breaker failure), and retries only where
//     they are safe — idempotent requests, or connect-class errors
//     where the request provably never reached a handler;
//   - hedged requests for the latency tail: after a quantile-tracked
//     delay a second attempt launches on the next-ranked healthy
//     replica, the first success wins and the loser is cancelled;
//   - graceful drain on both layers: a replica reporting "draining"
//     stops receiving new work while its in-flight requests finish.
//
// Every decision is observable (per-replica endpoint metrics, the
// router.pick/retry/hedge/breaker stages, GET /v1/cluster) and every
// failure mode is reproducible: the router.pick, router.probe and
// router.hedge fault points plug into internal/fault's deterministic
// chaos plans, and HandlerTransport lets tests boot a whole cluster
// in-process.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qav/internal/fault"
	"qav/internal/guard"
	"qav/internal/names"
	"qav/internal/obs"
	"qav/internal/tpq"
)

// Router-side fault points (armed by chaos plans; no-ops otherwise).
var (
	faultPick  = fault.Register(names.FaultRouterPick)
	faultProbe = fault.Register(names.FaultRouterProbe)
	faultHedge = fault.Register(names.FaultRouterHedge)
)

// Config tunes one Router. The zero value of every field has a usable
// default; only Replicas is required.
type Config struct {
	// Replicas are the base URLs of the qavd fleet ("http://host:port").
	Replicas []string
	// Policy picks the routing policy: "affinity" (default),
	// "roundrobin" or "leastloaded".
	Policy string
	// Seed drives every jittered duration (breaker cooldowns, retry
	// backoff) and makes chaos runs reproducible. 0 means seed 1.
	Seed int64
	// ProbeInterval spaces active health probes per replica
	// (default 1s; jittered ±50% so probes decorrelate).
	ProbeInterval time.Duration
	// AttemptTimeout bounds each proxied attempt (default 10s).
	AttemptTimeout time.Duration
	// Retries is the number of backoff rounds after the first pass
	// over the candidates (default 2).
	Retries int
	// RetryBackoff is the base backoff (default 25ms), doubled per
	// round, jittered, capped at 40× base.
	RetryBackoff time.Duration
	// HedgeAfter enables hedged requests: when an attempt has not
	// answered after max(HedgeAfter, tracked HedgeQuantile latency), a
	// second attempt launches on the next candidate. 0 disables
	// hedging.
	HedgeAfter time.Duration
	// HedgeQuantile is the attempt-latency quantile that paces hedges
	// once enough samples exist (default 0.9).
	HedgeQuantile float64
	// BreakerThreshold is the consecutive-failure count that opens a
	// replica's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is the open-state dwell before a half-open probe
	// (default 2s, jittered).
	BreakerCooldown time.Duration
	// MaxBodyBytes bounds buffered request bodies (default 16 MiB).
	MaxBodyBytes int64
	// Transport performs the attempts (default http.DefaultTransport).
	// Tests and qavbench install a HandlerTransport here.
	Transport http.RoundTripper
	// Metrics receives endpoint and stage observations (default: a
	// fresh registry, served at GET /metrics).
	Metrics *obs.Registry
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Policy == "" {
		cfg.Policy = "affinity"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 10 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = 0.9
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	return cfg
}

// loadReport is the slice of the replica /healthz payload the router
// consumes (a structural mirror of server.HealthPayload, kept local so
// the router does not depend on the engine's package graph).
type loadReport struct {
	Status       string `json:"status"`
	Draining     bool   `json:"draining"`
	InFlight     int64  `json:"inflight"`
	Queued       int64  `json:"queued"`
	Shed         int64  `json:"shed"`
	CacheEntries int    `json:"cacheEntries"`
	WarmEntries  int    `json:"warmEntries"`
	CacheHits    int64  `json:"cacheHits"`
}

// replica is one registry entry: identity, breaker, and the passive +
// probed health state the policies read.
type replica struct {
	name     string // authority part of the base URL; the routing identity
	nameHash uint64 // fnv64a(name), precomputed for rendezvous scoring
	base     *url.URL
	br       *breaker
	ep       *obs.Endpoint // per-replica attempt metrics ("replica:<name>")

	inflight   atomic.Int64               // router-side attempts in flight
	consecErrs atomic.Int64               // passive failure streak
	attempts   atomic.Int64               // total attempts routed here
	timeouts   atomic.Int64               // attempts lost to deadline
	satUntilNs atomic.Int64               // Retry-After horizon (unix nanos)
	draining   atomic.Bool                // last probe reported draining
	probeOK    atomic.Bool                // last probe succeeded
	health     atomic.Pointer[loadReport] // last successful probe payload
	lastProbe  atomic.Int64               // unix nanos of last probe
}

// available reports whether the proxy may try this replica now:
// breaker admits it, it is not inside a Retry-After horizon, and it
// has not announced it is draining.
func (rep *replica) available(now time.Time) bool {
	if rep.draining.Load() {
		return false
	}
	if now.UnixNano() < rep.satUntilNs.Load() {
		return false
	}
	return rep.br.Allow(now)
}

// markSaturated records a 429's Retry-After horizon; until it passes,
// the proxy routes around this replica without charging its breaker
// (saturation is load, not failure).
func (rep *replica) markSaturated(retryAfter time.Duration) {
	until := time.Now().Add(retryAfter).UnixNano()
	for {
		cur := rep.satUntilNs.Load()
		if cur >= until || rep.satUntilNs.CompareAndSwap(cur, until) {
			return
		}
	}
}

// Router fans one HTTP endpoint out to the replica fleet. Create with
// New, serve Handler, stop with Close.
type Router struct {
	cfg    Config
	reps   []*replica
	policy policy
	reg    *obs.Registry
	mux    *http.ServeMux
	rng    *rng
	hedge  *latencyTracker

	draining atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New validates cfg, builds the replica registry and starts the health
// probers. Callers must Close the router to stop them.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: no replicas configured")
	}
	r := &Router{
		cfg:   cfg,
		reg:   cfg.Metrics,
		rng:   newRNG(cfg.Seed),
		hedge: newLatencyTracker(cfg.HedgeQuantile),
		stop:  make(chan struct{}),
	}
	switch cfg.Policy {
	case "affinity":
		r.policy = &affinity{}
	case "roundrobin":
		r.policy = &roundRobin{}
	case "leastloaded":
		r.policy = leastLoaded{}
	default:
		return nil, fmt.Errorf("router: unknown policy %q (want affinity, roundrobin or leastloaded)", cfg.Policy)
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	for _, raw := range cfg.Replicas {
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("router: replica %q: %w", raw, err)
		}
		if u.Scheme == "" {
			u.Scheme = "http"
		}
		if u.Host == "" {
			return nil, fmt.Errorf("router: replica %q has no host", raw)
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("router: duplicate replica %q", u.Host)
		}
		seen[u.Host] = true
		rep := &replica{
			name:     u.Host,
			nameHash: fnv64a(u.Host),
			base:     u,
			ep:       r.reg.Endpoint("replica:" + u.Host),
		}
		rep.br = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, r.rng,
			func(from, to breakerState, inState time.Duration) {
				r.reg.ObserveStage(obs.StageRouterBreaker, inState)
			})
		r.reps = append(r.reps, rep)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", r.protect("healthz", r.handleHealth))
	mux.Handle("GET /v1/cluster", r.protect("cluster", r.handleCluster))
	mux.Handle("GET /metrics", r.protect("metrics", r.handleMetrics))
	mux.Handle("/", r.protect("proxy", r.handleProxy))
	r.mux = mux
	for _, rep := range r.reps {
		r.wg.Add(1)
		go r.probeLoop(rep)
	}
	return r, nil
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler { return r.mux }

// protect isolates handler panics (including injected ActPanic on the
// router's own fault points): a panic becomes a clean 500 JSON error
// instead of killing the process — the router is exactly the component
// that must not die when a dependency misbehaves.
func (r *Router) protect(op string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wrote := &wroteWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			ie := guard.FromPanic(v, "router "+op)
			if !wrote.wrote {
				httpError(wrote, http.StatusInternalServerError, ie)
			}
		}()
		h(wrote, req)
	})
}

// wroteWriter remembers whether anything was written, so the panic
// path never writes a second header.
type wroteWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *wroteWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *wroteWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// StartDraining flips the router's own /healthz to 503; one-way.
func (r *Router) StartDraining() { r.draining.Store(true) }

// Close stops the health probers and waits for them to exit.
func (r *Router) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
}

// probeLoop actively probes one replica's /healthz on a jittered
// interval. Probe outcomes feed the breaker — which is how an open
// breaker recovers without client traffic: the probe that succeeds
// after a cooldown closes it again.
func (r *Router) probeLoop(rep *replica) {
	defer r.wg.Done()
	defer guard.Rescue("router.probe", nil)
	timer := time.NewTimer(0) // first probe immediately
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-timer.C:
		}
		r.probeOnce(rep)
		timer.Reset(r.rng.jitter(2 * r.cfg.ProbeInterval)) // jitter(2d) ∈ [d, 2d)
	}
}

// probeOnce performs one health probe against rep.
func (r *Router) probeOnce(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeInterval)
	defer cancel()
	rep.lastProbe.Store(time.Now().UnixNano())
	if err := faultProbe.Hit(ctx); err != nil {
		rep.probeOK.Store(false)
		rep.br.Failure(time.Now())
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base.JoinPath("/healthz").String(), nil)
	if err != nil {
		rep.probeOK.Store(false)
		return
	}
	resp, err := r.cfg.Transport.RoundTrip(req)
	if err != nil {
		rep.probeOK.Store(false)
		rep.br.Failure(time.Now())
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var lr loadReport
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&lr); err == nil {
		rep.health.Store(&lr)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		rep.probeOK.Store(true)
		rep.draining.Store(false)
		rep.br.Success(time.Now())
	case resp.StatusCode == http.StatusServiceUnavailable && lr.Draining:
		// An orderly drain is not a fault: stop routing there but do
		// not charge the breaker — the replica is finishing its work.
		rep.probeOK.Store(false)
		rep.draining.Store(true)
	default:
		rep.probeOK.Store(false)
		rep.br.Failure(time.Now())
	}
}

// idempotent reports whether the request may be retried after it might
// have reached a handler. All the compute endpoints are pure functions
// of their body, so they are; POST /v1/views mutates the replica's
// view store and only fails over on connect-class errors.
func idempotent(req *http.Request) bool {
	if req.Method == http.MethodGet || req.Method == http.MethodHead {
		return true
	}
	switch req.URL.Path {
	case "/v1/rewrite", "/v1/rewrite/batch", "/v1/answer", "/v1/contain":
		return true
	}
	return false
}

// isConnectErr reports whether err happened before the request could
// have reached a handler (dial refused / replica down), making a
// retry safe even for non-idempotent requests.
func isConnectErr(err error) bool {
	var de *DownError
	if errors.As(err, &de) {
		return true
	}
	// net/http wraps dial failures in *url.Error around a *net.OpError
	// with Op "dial"; matching on the message keeps the classifier
	// transport-agnostic (the test fabric returns *DownError instead).
	s := err.Error()
	return strings.Contains(s, "connection refused") ||
		strings.Contains(s, "no such host") ||
		strings.Contains(s, "dial tcp")
}

// attemptResult is one attempt's outcome: a fully buffered response
// (so retry-after-5xx never replays a byte already streamed to the
// client) or an error.
type attemptResult struct {
	rep     *replica
	status  int
	header  http.Header
	body    []byte
	err     error
	elapsed time.Duration
}

// handleProxy is the catch-all: buffer the body, rank the replicas,
// then walk retry rounds × candidates with hedging until an attempt
// succeeds.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, errors.New("router: draining"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}

	pickStart := time.Now()
	key := affinityKey(req.URL.Path, body)
	order := r.policy.order(key, r.reps)
	r.reg.ObserveStage(obs.StageRouterPick, time.Since(pickStart))
	if err := faultPick.Hit(req.Context()); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}

	res, retryAfter := r.route(req, body, order)
	if res != nil && res.err != nil {
		// A non-retryable transport failure on a non-idempotent
		// request: the replica may or may not have applied it, so
		// surface the ambiguity instead of retrying.
		httpError(w, http.StatusBadGateway, res.err)
		return
	}
	if res != nil {
		// Propagate the replica's response verbatim, plus attribution.
		h := w.Header()
		for k, vs := range res.header {
			h[k] = vs
		}
		h.Set("X-QAV-Replica", res.rep.name)
		w.WriteHeader(res.status)
		w.Write(res.body)
		return
	}
	if retryAfter > 0 {
		// Every live replica is inside a Retry-After horizon: the
		// cluster is saturated, not broken. Tell the client when the
		// earliest replica expects capacity back.
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, errors.New("router: all replicas saturated"))
		return
	}
	httpError(w, http.StatusBadGateway, errors.New("router: no replica could serve the request"))
}

// route walks retry rounds over the policy's candidate order. It
// returns a successful (or client-errored) result, or (nil, minWait)
// when every live replica was saturated, or (nil, 0) when everything
// failed.
func (r *Router) route(req *http.Request, body []byte, order []int) (*attemptResult, time.Duration) {
	canHedge := r.cfg.HedgeAfter > 0 && idempotent(req)
	idem := idempotent(req)
	var sawSaturated bool
	for round := 0; ; round++ {
		if round > 0 {
			// Capped exponential backoff with seeded jitter between
			// rounds, credited to the router.retry stage. Saturated-only
			// rounds wait out the nearest Retry-After horizon instead.
			d := r.backoff(round)
			if sawSaturated {
				if wait := r.minSaturationWait(); wait > 0 && wait > d {
					d = wait
				}
			}
			r.reg.ObserveStage(obs.StageRouterRetry, d)
			select {
			case <-req.Context().Done():
				return &attemptResult{err: req.Context().Err()}, 0
			case <-time.After(d):
			}
			sawSaturated = false
		}
		now := time.Now()
		for i := 0; i < len(order); i++ {
			rep := r.reps[order[i]]
			if !rep.available(now) {
				continue
			}
			// Pick a hedge partner: the next-ranked available replica.
			var hedgeRep *replica
			if canHedge {
				for j := i + 1; j < len(order); j++ {
					if cand := r.reps[order[j]]; cand.available(now) && cand != rep {
						hedgeRep = cand
						break
					}
				}
			}
			res := r.race(req, body, rep, hedgeRep)
			switch {
			case res.err != nil:
				// Transport-level failure. Retrying is safe when the
				// request never reached a handler (connect error) or the
				// endpoint is idempotent; otherwise surface it.
				if !idem && !isConnectErr(res.err) {
					return res, 0
				}
				continue
			case res.status == http.StatusTooManyRequests:
				sawSaturated = true
				continue
			case res.status >= 500:
				if !idem {
					return res, 0
				}
				continue
			default:
				return res, 0
			}
		}
		if round >= r.cfg.Retries {
			break
		}
	}
	if sawSaturated {
		wait := r.minSaturationWait()
		if wait <= 0 {
			wait = time.Second
		}
		return nil, wait
	}
	return nil, 0
}

// backoff returns the jittered, capped exponential backoff for round
// (1-based).
func (r *Router) backoff(round int) time.Duration {
	d := r.cfg.RetryBackoff
	for i := 1; i < round; i++ {
		d *= 2
		if d > 40*r.cfg.RetryBackoff {
			d = 40 * r.cfg.RetryBackoff
			break
		}
	}
	return r.rng.jitter(2 * d) // jitter(2d) ∈ [d, 2d)
}

// minSaturationWait returns the shortest remaining Retry-After horizon
// across the fleet (0 when none is saturated).
func (r *Router) minSaturationWait() time.Duration {
	now := time.Now().UnixNano()
	var min int64
	for _, rep := range r.reps {
		until := rep.satUntilNs.Load()
		if until <= now {
			continue
		}
		if d := until - now; min == 0 || d < min {
			min = d
		}
	}
	return time.Duration(min)
}

// race runs one attempt on rep, optionally hedged on hedgeRep: if rep
// has not answered after the hedge delay, a second attempt launches
// and the first success wins; the loser's context is cancelled. The
// result channel is buffered for both attempts so a loser's send never
// blocks a goroutine (leaktest pins that).
func (r *Router) race(req *http.Request, body []byte, rep, hedgeRep *replica) *attemptResult {
	results := make(chan *attemptResult, 2)
	launch := func(target *replica) context.CancelFunc {
		actx, cancel := context.WithTimeout(req.Context(), r.cfg.AttemptTimeout)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer guard.Rescue("router.attempt", func(err error) {
				results <- &attemptResult{rep: target, err: err}
			})
			results <- r.attempt(actx, target, req, body)
		}()
		return cancel
	}
	cancel1 := launch(rep)
	defer cancel1()
	if hedgeRep == nil {
		return <-results
	}

	delay := r.hedge.delay(r.cfg.HedgeAfter)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case res := <-results:
		return res
	case <-timer.C:
	}
	// Primary is slow: hedge on the partner, unless the chaos plan
	// says the hedger itself is broken (then just keep waiting).
	if err := faultHedge.Hit(req.Context()); err == nil {
		r.reg.ObserveStage(obs.StageRouterHedge, delay)
		cancel2 := launch(hedgeRep)
		defer cancel2()
		first := <-results
		if attemptOK(first) {
			return first
		}
		second := <-results
		if attemptOK(second) {
			return second
		}
		return first
	}
	return <-results
}

// attemptOK reports whether res should win a hedge race: a response
// that is not a server-side failure.
func attemptOK(res *attemptResult) bool {
	return res.err == nil && res.status < 500 && res.status != http.StatusTooManyRequests
}

// attempt performs one proxied request against rep and fully buffers
// the response. Outcomes feed the breaker and the passive health
// signals; 429s only mark saturation.
func (r *Router) attempt(ctx context.Context, rep *replica, orig *http.Request, body []byte) *attemptResult {
	start := time.Now()
	rep.inflight.Add(1)
	rep.attempts.Add(1)
	defer rep.inflight.Add(-1)

	u := *rep.base
	u.Path = orig.URL.Path
	u.RawQuery = orig.URL.RawQuery
	req, err := http.NewRequestWithContext(ctx, orig.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return &attemptResult{rep: rep, err: err}
	}
	req.Header = orig.Header.Clone()
	resp, err := r.cfg.Transport.RoundTrip(req)
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			rep.timeouts.Add(1)
		}
		rep.consecErrs.Add(1)
		rep.br.Failure(time.Now())
		rep.ep.Observe(0, elapsed)
		return &attemptResult{rep: rep, err: err, elapsed: elapsed}
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes))
	resp.Body.Close()
	if err != nil {
		rep.consecErrs.Add(1)
		rep.br.Failure(time.Now())
		rep.ep.Observe(0, elapsed)
		return &attemptResult{rep: rep, err: err, elapsed: elapsed}
	}
	rep.ep.Observe(resp.StatusCode, elapsed)
	res := &attemptResult{
		rep:     rep,
		status:  resp.StatusCode,
		header:  resp.Header,
		body:    respBody,
		elapsed: elapsed,
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Saturation, not failure: honor the replica's Retry-After.
		ra := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
		rep.markSaturated(ra)
	case resp.StatusCode >= 500:
		rep.consecErrs.Add(1)
		rep.br.Failure(time.Now())
	default:
		rep.consecErrs.Store(0)
		rep.br.Success(time.Now())
		r.hedge.observe(elapsed)
	}
	return res
}

// affinityKey derives the rendezvous key for a request: the canonical
// forms of the query/view patterns in the body, so equivalent queries
// (same canonical pattern, different spelling) land on the same
// replica and hit its rewrite cache. Requests the router cannot
// decode key on their raw body, and GETs on their path.
func affinityKey(path string, body []byte) string {
	if len(body) == 0 {
		return path
	}
	var probe struct {
		Query     string `json:"query"`
		View      string `json:"view"`
		ViewName  string `json:"viewName"`
		Schema    string `json:"schema"`
		Recursive bool   `json:"recursive"`
		P         string `json:"p"`
		Q         string `json:"q"`
		Items     []struct {
			Query  string `json:"query"`
			View   string `json:"view"`
			Schema string `json:"schema"`
		} `json:"items"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return string(body)
	}
	// A batch routes on its first item: batches assembled per canonical
	// query group (the common shape) stay on their owner.
	if len(probe.Items) > 0 {
		return canonicalOr(probe.Items[0].Query) + "\x00" +
			canonicalOr(probe.Items[0].View) + "\x00" + probe.Items[0].Schema
	}
	if probe.P != "" || probe.Q != "" {
		return canonicalOr(probe.P) + "\x00" + canonicalOr(probe.Q) + "\x00" + probe.Schema
	}
	view := probe.View
	if view == "" {
		view = probe.ViewName
	}
	if probe.Query == "" && view == "" {
		return string(body)
	}
	key := canonicalOr(probe.Query) + "\x00" + canonicalOr(view) + "\x00" + probe.Schema
	if probe.Recursive {
		key += "\x00r"
	}
	return key
}

// canonicalOr parses expr as a tree pattern and returns its canonical
// form, or expr itself when it does not parse (the replica will reject
// it consistently, so consistency of routing still holds).
func canonicalOr(expr string) string {
	if expr == "" {
		return ""
	}
	p, err := tpq.Parse(expr)
	if err != nil {
		return expr
	}
	return p.Canonical()
}

// ReplicaStatus is the /v1/cluster view of one replica.
type ReplicaStatus struct {
	Name        string      `json:"name"`
	State       string      `json:"state"` // breaker state
	Healthy     bool        `json:"healthy"`
	Draining    bool        `json:"draining"`
	ConsecErrs  int64       `json:"consecErrs"`
	Attempts    int64       `json:"attempts"`
	Timeouts    int64       `json:"timeouts"`
	InFlight    int64       `json:"inflight"`
	SaturatedMs int64       `json:"saturatedMs,omitempty"` // remaining Retry-After horizon
	Transitions int64       `json:"breakerTransitions"`
	Load        *loadReport `json:"load,omitempty"`
}

// ClusterStatus is the GET /v1/cluster document.
type ClusterStatus struct {
	Policy   string          `json:"policy"`
	Draining bool            `json:"draining"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// Status returns the cluster document (also served at /v1/cluster).
func (r *Router) Status() ClusterStatus {
	now := time.Now()
	cs := ClusterStatus{Policy: r.policy.name(), Draining: r.draining.Load()}
	for _, rep := range r.reps {
		state, _, transitions := rep.br.Snapshot()
		rs := ReplicaStatus{
			Name:        rep.name,
			State:       state.String(),
			Healthy:     rep.probeOK.Load(),
			Draining:    rep.draining.Load(),
			ConsecErrs:  rep.consecErrs.Load(),
			Attempts:    rep.attempts.Load(),
			Timeouts:    rep.timeouts.Load(),
			InFlight:    rep.inflight.Load(),
			Transitions: transitions,
			Load:        rep.health.Load(),
		}
		if until := rep.satUntilNs.Load(); until > now.UnixNano() {
			rs.SaturatedMs = (until - now.UnixNano()) / int64(time.Millisecond)
		}
		cs.Replicas = append(cs.Replicas, rs)
	}
	sort.Slice(cs.Replicas, func(i, j int) bool { return cs.Replicas[i].Name < cs.Replicas[j].Name })
	return cs
}

func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Status())
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.reg.Snapshot())
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	status := "ok"
	code := http.StatusOK
	if r.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"draining": r.draining.Load(),
		"replicas": len(r.reps),
	})
}

// latencyTracker keeps the last window of successful attempt latencies
// and answers "what delay should pace a hedge": the configured floor
// until enough samples exist, then max(floor, tracked quantile).
type latencyTracker struct {
	mu       sync.Mutex
	ring     [128]time.Duration
	n        int // total observed
	quantile float64
}

func newLatencyTracker(q float64) *latencyTracker {
	return &latencyTracker{quantile: q}
}

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.n%len(t.ring)] = d
	t.n++
	t.mu.Unlock()
}

func (t *latencyTracker) delay(floor time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.n
	if size > len(t.ring) {
		size = len(t.ring)
	}
	if size < 16 {
		return floor
	}
	buf := make([]time.Duration, size)
	copy(buf, t.ring[:size])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(float64(size) * t.quantile)
	if idx >= size {
		idx = size - 1
	}
	if q := buf[idx]; q > floor {
		return q
	}
	return floor
}

// writeJSON buffers the encoding so a marshal failure becomes a clean
// 500 instead of a half-written 200.
func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, err error) {
	msg, _ := json.Marshal(err.Error())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\n  \"error\": %s\n}\n", msg)
}
