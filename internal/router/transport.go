package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// DownError is the connect-refused error HandlerTransport returns for
// a host marked down. It models a SIGKILLed replica: the connection
// never reaches a handler, so retrying on another replica is always
// safe — the classifier treats it as a connect-class error even for
// non-idempotent requests.
type DownError struct{ Host string }

func (e *DownError) Error() string {
	return fmt.Sprintf("router: connect %s: connection refused", e.Host)
}

// Transient marks the error retryable for the internal/guard taxonomy.
func (e *DownError) Transient() bool { return true }

// HandlerTransport is an http.RoundTripper that dispatches requests to
// in-process http.Handlers by host name — the cluster test fabric. It
// lets the chaos suite and qavbench boot a 3+ replica cluster inside
// one process with no sockets, then kill (SetDown), slow (SetDelay)
// and restart replicas deterministically under -race.
type HandlerTransport struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	down     map[string]bool
	delay    map[string]time.Duration
}

// NewHandlerTransport returns an empty fabric.
func NewHandlerTransport() *HandlerTransport {
	return &HandlerTransport{
		handlers: make(map[string]http.Handler),
		down:     make(map[string]bool),
		delay:    make(map[string]time.Duration),
	}
}

// Register maps host (the authority part of a replica URL, e.g.
// "replica-0") to handler.
func (t *HandlerTransport) Register(host string, h http.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[host] = h
}

// SetDown marks host dead (RoundTrip fails with *DownError, the
// moral equivalent of a SIGKILL) or alive again.
func (t *HandlerTransport) SetDown(host string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[host] = down
}

// SetDelay injects d of latency before host's handler runs; 0 removes
// the slowdown. The delay respects request-context cancellation, so a
// per-attempt timeout fires instead of blocking.
func (t *HandlerTransport) SetDelay(host string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.delay[host] = d
}

// RoundTrip implements http.RoundTripper.
func (t *HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	h := t.handlers[host]
	down := t.down[host]
	delay := t.delay[host]
	t.mu.Unlock()
	if down || h == nil {
		return nil, &DownError{Host: host}
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	// The handler runs synchronously and honors req.Context, so an
	// expired per-attempt deadline surfaces as the handler's own
	// cancellation behavior — same as a real server.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if err := req.Context().Err(); err != nil {
		// The attempt deadline expired while the handler ran; report
		// the timeout instead of a possibly half-built response.
		return nil, err
	}
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
