package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qav/internal/leaktest"
)

// fakeReplica is a minimal qavd stand-in: /healthz reports ok (or
// draining), /v1/rewrite echoes the replica name, and failure modes
// are switchable per test.
type fakeReplica struct {
	name string
	mux  *http.ServeMux

	mu       sync.Mutex
	status   int    // response status for /v1/rewrite (default 200)
	retryAft string // Retry-After header when status is 429
	draining bool
}

func (f *fakeReplica) set(fn func(*fakeReplica)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

func newFakeReplica(name string) *fakeReplica {
	f := &fakeReplica{name: name, status: http.StatusOK}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		draining := f.draining
		f.mu.Unlock()
		code := http.StatusOK
		if draining {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"status":"ok","draining":%v,"inflight":0,"queued":0}`, draining)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		status, retryAft := f.status, f.retryAft
		f.mu.Unlock()
		if status != http.StatusOK {
			if retryAft != "" {
				w.Header().Set("Retry-After", retryAft)
			}
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":"injected %d"}`, status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"replica":%q}`, f.name)
	})
	f.mux = mux
	return f
}

// testCluster boots n fake replicas behind a HandlerTransport and a
// router over them. Callers must call close().
func testCluster(t *testing.T, n int, tweak func(*Config)) (*Router, *HandlerTransport, []*fakeReplica, func()) {
	t.Helper()
	ht := NewHandlerTransport()
	var reps []*fakeReplica
	var urls []string
	for i := 0; i < n; i++ {
		f := newFakeReplica(fmt.Sprintf("replica-%d", i))
		ht.Register(f.name, f.mux)
		reps = append(reps, f)
		urls = append(urls, "http://"+f.name)
	}
	cfg := Config{
		Replicas:         urls,
		Seed:             7,
		ProbeInterval:    5 * time.Millisecond,
		AttemptTimeout:   250 * time.Millisecond,
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		Transport:        ht,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, ht, reps, r.Close
}

func doRewrite(t *testing.T, r *Router, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(body))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	return rec
}

const rewriteBody = `{"query":"//a[b]//c","view":"//a//c"}`

func TestAffinityStableOwner(t *testing.T) {
	defer leaktest.Check(t)()
	r, _, _, closeAll := testCluster(t, 3, nil)
	defer closeAll()

	owner := ""
	for i := 0; i < 10; i++ {
		rec := doRewrite(t, r, rewriteBody)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		got := rec.Header().Get("X-QAV-Replica")
		if got == "" {
			t.Fatal("missing X-QAV-Replica attribution")
		}
		if owner == "" {
			owner = got
		} else if got != owner {
			t.Fatalf("affinity moved: %s then %s", owner, got)
		}
	}
	// An equivalent spelling of the same canonical pattern must land on
	// the same owner — the whole point of canonical-affinity routing.
	rec := doRewrite(t, r, `{"query":"//a[.//c][b]//c","view":"//a//c"}`)
	_ = rec // different canonical key may differ; just must not error
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestFailoverOnDownReplica(t *testing.T) {
	defer leaktest.Check(t)()
	r, ht, _, closeAll := testCluster(t, 3, nil)
	defer closeAll()

	rec := doRewrite(t, r, rewriteBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	owner := rec.Header().Get("X-QAV-Replica")

	ht.SetDown(owner, true)
	rec = doRewrite(t, r, rewriteBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("after kill: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-QAV-Replica"); got == owner {
		t.Fatalf("request still routed to dead replica %s", owner)
	}
}

func TestBreakerOpensAndRecloses(t *testing.T) {
	defer leaktest.Check(t)()
	r, ht, _, closeAll := testCluster(t, 2, nil)
	defer closeAll()

	ht.SetDown("replica-0", true)
	waitFor(t, time.Second, func() bool {
		return replicaState(r, "replica-0") == "open"
	})
	ht.SetDown("replica-0", false)
	// The active prober's half-open probe must re-close the breaker
	// without any client traffic.
	waitFor(t, time.Second, func() bool {
		return replicaState(r, "replica-0") == "closed"
	})
}

func replicaState(r *Router, name string) string {
	for _, rs := range r.Status().Replicas {
		if rs.Name == name {
			return rs.State
		}
	}
	return ""
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestSaturationHonorsRetryAfter(t *testing.T) {
	defer leaktest.Check(t)()
	r, _, reps, closeAll := testCluster(t, 2, func(c *Config) { c.Retries = 0 })
	defer closeAll()

	// One replica saturated: traffic must spill to the other.
	reps[0].set(func(f *fakeReplica) { f.status = http.StatusTooManyRequests; f.retryAft = "2" })
	rec := doRewrite(t, r, rewriteBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("spill failed: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-QAV-Replica"); got != "replica-1" {
		t.Fatalf("routed to %s, want replica-1", got)
	}

	// Both saturated: the router reports 429 with a Retry-After of its
	// own instead of a 5xx.
	reps[1].set(func(f *fakeReplica) { f.status = http.StatusTooManyRequests; f.retryAft = "2" })
	rec = doRewrite(t, r, rewriteBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d: %s", rec.Code, rec.Body.String())
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("want Retry-After >= 1, got %q", rec.Header().Get("Retry-After"))
	}
	// Saturation must not have charged the breakers.
	for _, rs := range r.Status().Replicas {
		if rs.State != "closed" {
			t.Fatalf("429s opened breaker on %s", rs.Name)
		}
	}
}

func TestDrainingReplicaStopsReceiving(t *testing.T) {
	defer leaktest.Check(t)()
	r, _, reps, closeAll := testCluster(t, 2, nil)
	defer closeAll()

	rec := doRewrite(t, r, rewriteBody)
	owner := rec.Header().Get("X-QAV-Replica")
	var idx int
	fmt.Sscanf(owner, "replica-%d", &idx)
	reps[idx].set(func(f *fakeReplica) { f.draining = true })
	waitFor(t, time.Second, func() bool {
		for _, rs := range r.Status().Replicas {
			if rs.Name == owner {
				return rs.Draining
			}
		}
		return false
	})
	for i := 0; i < 5; i++ {
		rec := doRewrite(t, r, rewriteBody)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		if got := rec.Header().Get("X-QAV-Replica"); got == owner {
			t.Fatalf("request routed to draining replica %s", owner)
		}
	}
	// Draining is orderly: the breaker stays closed.
	if st := replicaState(r, owner); st != "closed" {
		t.Fatalf("draining opened breaker: %s", st)
	}
}

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	defer leaktest.Check(t)()
	r, ht, _, closeAll := testCluster(t, 3, func(c *Config) {
		c.HedgeAfter = 5 * time.Millisecond
	})
	defer closeAll()

	rec := doRewrite(t, r, rewriteBody)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	owner := rec.Header().Get("X-QAV-Replica")

	// Slow the owner far past the hedge delay but inside the attempt
	// timeout: the hedge on the next-ranked replica must win.
	ht.SetDelay(owner, 150*time.Millisecond)
	start := time.Now()
	rec = doRewrite(t, r, rewriteBody)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-QAV-Replica"); got == owner {
		t.Fatalf("slow owner %s still won", owner)
	}
	if elapsed >= 150*time.Millisecond {
		t.Fatalf("hedge did not cut the tail: %v", elapsed)
	}
	// Leaktest (deferred) pins that the losing attempt's goroutine is
	// cancelled and gone after Close.
}

func TestRouterDrainingReturns503(t *testing.T) {
	defer leaktest.Check(t)()
	r, _, _, closeAll := testCluster(t, 2, nil)
	defer closeAll()

	r.StartDraining()
	rec := doRewrite(t, r, rewriteBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 while draining, got %d", rec.Code)
	}
	req := httptest.NewRequest("GET", "/healthz", nil)
	hrec := httptest.NewRecorder()
	r.Handler().ServeHTTP(hrec, req)
	if hrec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d", hrec.Code)
	}
}

func TestNonIdempotentNotRetriedOn5xx(t *testing.T) {
	defer leaktest.Check(t)()
	r, _, reps, closeAll := testCluster(t, 2, nil)
	defer closeAll()

	reps[0].set(func(f *fakeReplica) { f.status = http.StatusInternalServerError })
	reps[1].set(func(f *fakeReplica) { f.status = http.StatusInternalServerError })
	// Idempotent: retried across replicas, eventually surfaces 500
	// after exhausting candidates (here both are broken).
	rec := doRewrite(t, r, rewriteBody)
	if rec.Code != http.StatusBadGateway && rec.Code != http.StatusInternalServerError {
		t.Fatalf("want gateway failure, got %d", rec.Code)
	}

	// Non-idempotent POST /v1/views: the first 5xx surfaces untouched
	// (attempts == 1 more than before on exactly one replica).
	before := totalAttempts(r)
	req := httptest.NewRequest("POST", "/v1/views", strings.NewReader(`{"name":"x"}`))
	vrec := httptest.NewRecorder()
	r.Handler().ServeHTTP(vrec, req)
	if vrec.Code != http.StatusInternalServerError {
		t.Fatalf("want 500 passthrough, got %d", vrec.Code)
	}
	if got := totalAttempts(r) - before; got != 1 {
		t.Fatalf("non-idempotent request attempted %d times, want 1", got)
	}
}

func totalAttempts(r *Router) int64 {
	var n int64
	for _, rs := range r.Status().Replicas {
		n += rs.Attempts
	}
	return n
}

func TestClusterStatusDocument(t *testing.T) {
	defer leaktest.Check(t)()
	r, _, _, closeAll := testCluster(t, 3, nil)
	defer closeAll()

	waitFor(t, time.Second, func() bool {
		for _, rs := range r.Status().Replicas {
			if !rs.Healthy {
				return false
			}
		}
		return true
	})
	req := httptest.NewRequest("GET", "/v1/cluster", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	var cs ClusterStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Policy != "affinity" || len(cs.Replicas) != 3 {
		t.Fatalf("unexpected status: %+v", cs)
	}
	for _, rs := range cs.Replicas {
		if rs.State != "closed" || !rs.Healthy || rs.Load == nil {
			t.Fatalf("replica %s not healthy in status: %+v", rs.Name, rs)
		}
	}
}

// TestRendezvousStability pins the ~1/N migration property: adding a
// replica moves keys only onto the new replica, and removing one moves
// only the keys it owned.
func TestRendezvousStability(t *testing.T) {
	three := []string{"replica-0", "replica-1", "replica-2"}
	four := append(append([]string{}, three...), "replica-3")

	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("//a[b%d]//c\x00//a//c\x00", i)
		before := three[rendezvousRank(three, key)]
		after := four[rendezvousRank(four, key)]
		if before != after {
			moved++
			if after != "replica-3" {
				t.Fatalf("key %d moved %s -> %s, not to the new replica", i, before, after)
			}
		}
	}
	// Expect ~keys/4 to move; allow generous slack either side.
	if moved < keys/8 || moved > keys/2 {
		t.Fatalf("adding a replica moved %d/%d keys, want ~%d", moved, keys, keys/4)
	}

	// Removal: survivors keep every key they already owned.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("//x[y%d]\x00//x\x00", i)
		before := four[rendezvousRank(four, key)]
		after := three[rendezvousRank(three, key)]
		if before != "replica-3" && before != after {
			t.Fatalf("key %d moved %s -> %s on removal of replica-3", i, before, after)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	rng := newRNG(42)
	var transitions []string
	b := newBreaker(3, 50*time.Millisecond, rng, func(from, to breakerState, _ time.Duration) {
		transitions = append(transitions, from.String()+"->"+to.String())
	})
	now := time.Now()
	for i := 0; i < 2; i++ {
		b.Failure(now)
		if !b.Allow(now) {
			t.Fatal("breaker opened before threshold")
		}
	}
	b.Failure(now) // third consecutive failure: opens
	if b.Allow(now) {
		t.Fatal("open breaker admitted a request")
	}
	// Cooldown is jittered in [cooldown/2, cooldown); after the full
	// cooldown it must admit exactly one half-open probe.
	later := now.Add(50 * time.Millisecond)
	if !b.Allow(later) {
		t.Fatal("breaker did not go half-open after cooldown")
	}
	if b.Allow(later) {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.Failure(later) // failed probe: re-open
	if b.Allow(later) {
		t.Fatal("re-opened breaker admitted a request")
	}
	again := later.Add(50 * time.Millisecond)
	if !b.Allow(again) {
		t.Fatal("no second half-open probe")
	}
	b.Success(again) // probe succeeds: closed
	if !b.Allow(again) {
		t.Fatal("closed breaker refused a request")
	}
	want := []string{"closed->open", "open->half-open", "half-open->open", "open->half-open", "half-open->closed"}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
}

func TestPolicies(t *testing.T) {
	reps := []*replica{
		{name: "a", nameHash: fnv64a("a")},
		{name: "b", nameHash: fnv64a("b")},
		{name: "c", nameHash: fnv64a("c")},
	}
	rr := &roundRobin{}
	first := rr.order("k", reps)
	second := rr.order("k", reps)
	if first[0] == second[0] {
		t.Fatalf("round robin did not advance: %v then %v", first, second)
	}
	if len(first) != 3 {
		t.Fatal("order must rank every replica")
	}

	reps[0].inflight.Store(10)
	reps[2].inflight.Store(1)
	ll := leastLoaded{}
	got := ll.order("k", reps)
	if got[0] != 1 || got[2] != 0 {
		t.Fatalf("least-loaded order %v, want [1 2 0]", got)
	}

	af := &affinity{}
	o1 := af.order("key-1", reps)
	o2 := af.order("key-1", reps)
	if fmt.Sprint(o1) != fmt.Sprint(o2) {
		t.Fatalf("affinity order not stable: %v vs %v", o1, o2)
	}
}

func TestAffinityKeyCanonicalizes(t *testing.T) {
	// Two spellings of the same canonical pattern must produce the same
	// routing key; a distinct pattern must not.
	k1 := affinityKey("/v1/rewrite", []byte(`{"query":"//a[b][c]","view":"//a"}`))
	k2 := affinityKey("/v1/rewrite", []byte(`{"query":"//a[c][b]","view":"//a"}`))
	k3 := affinityKey("/v1/rewrite", []byte(`{"query":"//a[d]","view":"//a"}`))
	if k1 != k2 {
		t.Fatalf("equivalent patterns keyed differently:\n%q\n%q", k1, k2)
	}
	if k1 == k3 {
		t.Fatal("distinct patterns share a key")
	}
	// Unparsable bodies still key consistently.
	if affinityKey("/v1/rewrite", []byte("junk")) != affinityKey("/v1/rewrite", []byte("junk")) {
		t.Fatal("raw-body fallback unstable")
	}
}

func TestNoLeaksAfterClose(t *testing.T) {
	defer leaktest.Check(t)()
	r, _, _, _ := testCluster(t, 3, nil)
	for i := 0; i < 3; i++ {
		doRewrite(t, r, rewriteBody)
	}
	r.Close()
	r.Close() // idempotent
}
