package router

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker machine. A
// replica starts closed (traffic flows); threshold consecutive
// failures open it (traffic skips it); after a seeded-jitter cooldown
// it goes half-open and admits exactly one probe, whose outcome either
// re-closes the breaker or re-opens it with a fresh cooldown.
type breakerState int32

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one replica's circuit breaker. All transitions happen
// under mu; the jitter source is the router's seeded generator, so a
// fixed seed reproduces the exact cooldown schedule.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int       // consecutive failures while closed
	openUntil time.Time // when open → half-open probing may begin
	probing   bool      // half-open: one probe is already in flight
	since     time.Time // when the current state was entered

	threshold   int
	cooldown    time.Duration
	rng         *rng
	transitions int64
	// onTransition observes every state change with the time spent in
	// the state being left (feeds the router.breaker stage histogram).
	onTransition func(from, to breakerState, inState time.Duration)
}

func newBreaker(threshold int, cooldown time.Duration, rng *rng, onTransition func(from, to breakerState, inState time.Duration)) *breaker {
	return &breaker{
		state:        stateClosed,
		since:        time.Now(),
		threshold:    threshold,
		cooldown:     cooldown,
		rng:          rng,
		onTransition: onTransition,
	}
}

// transition moves to state to; callers hold mu.
func (b *breaker) transition(to breakerState, now time.Time) {
	from := b.state
	if from == to {
		return
	}
	inState := now.Sub(b.since)
	b.state = to
	b.since = now
	b.transitions++
	if b.onTransition != nil {
		b.onTransition(from, to, inState)
	}
}

// Allow reports whether a request may be sent through the breaker. In
// the open state it also performs the open → half-open transition once
// the cooldown has elapsed: the caller that gets true there is the
// probe, and further callers are refused until its outcome arrives via
// Success or Failure.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.transition(stateHalfOpen, now)
		b.probing = true
		return true
	case stateHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful attempt: half-open re-closes, closed
// resets the consecutive-failure count.
func (b *breaker) Success(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != stateClosed {
		b.transition(stateClosed, now)
	}
}

// Failure records a failed attempt: threshold consecutive failures
// open a closed breaker; a failed half-open probe re-opens it. The
// cooldown is jittered (±50% around the configured value) from the
// seeded generator so a fleet of breakers doesn't probe in lockstep —
// and so a fixed seed reproduces the schedule exactly.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case stateClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.open(now)
		}
	case stateHalfOpen:
		b.open(now)
	case stateOpen:
		// Late failure from an attempt launched before the trip; the
		// breaker is already open.
	}
}

func (b *breaker) open(now time.Time) {
	b.openUntil = now.Add(b.rng.jitter(b.cooldown))
	b.transition(stateOpen, now)
}

// Snapshot returns the state, consecutive failures and transition
// count for /v1/cluster.
func (b *breaker) Snapshot() (state breakerState, fails int, transitions int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails, b.transitions
}
