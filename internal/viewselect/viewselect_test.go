package viewselect

import (
	"context"
	"math/rand"
	"testing"

	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/workload"
)

func TestCandidatesFromPrefixes(t *testing.T) {
	q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	cands := Candidates([]*tpq.Pattern{q})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// The bare prefixes //Trials, //Trials//Trial, //Trials//Trial/Patient
	// and the re-distinguished full query must all appear.
	wantSome := []string{
		"//Trials",
		"//Trials//Trial",
		"//Trials//Trial/Patient",
		"//Trials[//Status]//Trial/Patient",
	}
	for _, w := range wantSome {
		found := false
		wp := tpq.MustParse(w)
		for _, c := range cands {
			if c.StructuralEqual(wp) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("candidate %s missing", w)
		}
	}
	// Deduplicated.
	seen := map[string]bool{}
	for _, c := range cands {
		k := c.Canonical()
		if seen[k] {
			t.Errorf("duplicate candidate %s", c)
		}
		seen[k] = true
	}
}

func TestGreedyPrefersExactCoverage(t *testing.T) {
	q1 := tpq.MustParse("//Trials[//Status]//Trial")
	q2 := tpq.MustParse("//Trials//Trial/Patient")
	w := Workload{Queries: []*tpq.Pattern{q1, q2}}
	cands := Candidates(w.Queries)
	sel, err := Greedy(context.Background(), w, cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 1 {
		t.Fatalf("selected %d views", len(sel.Views))
	}
	// One view must give at least partial coverage of both queries.
	for qi, b := range sel.PerQuery {
		if b == Useless {
			t.Errorf("query %d uncovered by %s", qi, sel.Views[0])
		}
	}
	// With budget 2 both queries are answered exactly.
	sel2, err := Greedy(context.Background(), w, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	for qi, b := range sel2.PerQuery {
		if b != Exact {
			t.Errorf("query %d benefit %v with 2 views (%v)", qi, b, sel2.Views)
		}
	}
	if sel2.Score < sel.Score {
		t.Error("larger budget decreased the score")
	}
}

func TestGreedyStopsWhenNoGain(t *testing.T) {
	q := tpq.MustParse("//a")
	w := Workload{Queries: []*tpq.Pattern{q}}
	sel, err := Greedy(context.Background(), w, Candidates(w.Queries), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 1 {
		t.Errorf("selected %d views for a single trivially-covered query", len(sel.Views))
	}
}

func TestGreedyRespectsWeights(t *testing.T) {
	// Two unrelated queries; the heavier one must be covered first.
	q1 := tpq.MustParse("//x/y")
	q2 := tpq.MustParse("//v/w")
	w := Workload{Queries: []*tpq.Pattern{q1, q2}, Weights: []float64{1, 10}}
	sel, err := Greedy(context.Background(), w, Candidates(w.Queries), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.PerQuery[1] == Useless {
		t.Errorf("heavy query left uncovered; picked %v", sel.Views)
	}
}

// Every selected view's claimed benefit must be real: Partial means
// answerable, Exact means an equivalent rewriting exists.
func TestQuickBenefitsAreReal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		var qs []*tpq.Pattern
		for i := 0; i < 3; i++ {
			qs = append(qs, workload.RandomPattern(rng, []string{"a", "b", "c"}, 4))
		}
		w := Workload{Queries: qs}
		sel, err := Greedy(context.Background(), w, Candidates(qs), 2)
		if err != nil {
			t.Fatal(err)
		}
		for qi, b := range sel.PerQuery {
			if b == Useless {
				continue
			}
			anyAnswerable := false
			anyExact := false
			for _, v := range sel.Views {
				if rewrite.Answerable(qs[qi], v) {
					anyAnswerable = true
					if _, ok, _ := rewrite.EquivalentRewriting(qs[qi], v, rewrite.Options{MaxEmbeddings: 1 << 14}); ok {
						anyExact = true
					}
				}
			}
			if !anyAnswerable {
				t.Fatalf("benefit %v claimed but query %s unanswerable via %v", b, qs[qi], sel.Views)
			}
			if b == Exact && !anyExact {
				t.Fatalf("Exact claimed but no equivalent rewriting: %s via %v", qs[qi], sel.Views)
			}
		}
	}
}
