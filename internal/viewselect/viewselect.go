// Package viewselect chooses which views to materialize for a query
// workload — the view-selection companion problem the paper cites
// (Yang, Lee, Hsu: "Efficient Mining of XML Query Patterns for
// Caching"). Candidate views are derived from the workload itself;
// a greedy sweep picks a bounded set maximizing answerability, with
// exact (equivalent) answerability weighted above partial coverage.
package viewselect

import (
	"context"
	"sort"

	"qav/internal/rewrite"
	"qav/internal/tpq"
)

// Workload is a set of queries with optional weights (frequencies).
type Workload struct {
	Queries []*tpq.Pattern
	// Weights aligns with Queries; nil means uniform weight 1.
	Weights []float64
}

func (w Workload) weight(i int) float64 {
	if w.Weights == nil {
		return 1
	}
	return w.Weights[i]
}

// Benefit grades how useful a set of views is for one query.
type Benefit int

const (
	// Useless: the query is not answerable from any selected view.
	Useless Benefit = iota
	// Partial: a contained rewriting exists (sound but incomplete
	// answers).
	Partial
	// Exact: some view answers the query equivalently.
	Exact
)

// benefitScore weights exact coverage twice as high as partial.
func benefitScore(b Benefit) float64 {
	switch b {
	case Exact:
		return 2
	case Partial:
		return 1
	default:
		return 0
	}
}

// Candidates derives candidate views from the workload: for every
// query, each distinguished-path prefix both as a bare path view
// (//t0…·ti) and as the full query re-distinguished at that prefix
// node. Candidates are deduplicated by canonical form and returned in
// a deterministic order.
func Candidates(queries []*tpq.Pattern) []*tpq.Pattern {
	seen := make(map[string]*tpq.Pattern)
	add := func(p *tpq.Pattern) {
		if p.HasWildcard() {
			return
		}
		key := p.Canonical()
		if _, ok := seen[key]; !ok {
			seen[key] = p
		}
	}
	for _, q := range queries {
		path := q.DistinguishedPath()
		for i := range path {
			// Bare path prefix.
			bare := tpq.New(q.Root.Axis, path[0].Tag)
			cur := bare.Root
			for _, n := range path[1 : i+1] {
				cur = cur.AddChild(n.Axis, n.Tag)
			}
			bare.SetOutput(cur)
			add(bare)
			// The query itself with the output moved up to the prefix.
			full, m := q.Clone()
			full.SetOutput(m[path[i]])
			add(full)
		}
	}
	out := make([]*tpq.Pattern, 0, len(seen))
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// Selection is the result of greedy view selection.
type Selection struct {
	// Views are the chosen views, in pick order.
	Views []*tpq.Pattern
	// Score is the achieved workload score.
	Score float64
	// PerQuery records each workload query's final benefit.
	PerQuery []Benefit
}

// Greedy picks up to k views from the candidates, each round adding the
// view with the largest marginal workload gain; it stops early when no
// candidate improves the score. Benefits are decided with the paper's
// machinery: answerability for Partial, an equivalent rewriting for
// Exact. The precompute pass runs one rewriting per (query, candidate)
// pair — quadratic in the workload — so ctx is forwarded into each
// rewriting and a cancelled ctx aborts selection with its error.
func Greedy(ctx context.Context, w Workload, candidates []*tpq.Pattern, k int) (*Selection, error) {
	// Precompute each (query, candidate) benefit once.
	benefit := make([][]Benefit, len(w.Queries))
	for qi, q := range w.Queries {
		benefit[qi] = make([]Benefit, len(candidates))
		for ci, v := range candidates {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b := Useless
			if rewrite.Answerable(q, v) {
				b = Partial
				opts := rewrite.Options{MaxEmbeddings: 1 << 14, Context: ctx}
				if _, ok, err := rewrite.EquivalentRewriting(q, v, opts); err == nil && ok {
					b = Exact
				}
			}
			benefit[qi][ci] = b
		}
	}

	sel := &Selection{PerQuery: make([]Benefit, len(w.Queries))}
	chosen := make([]bool, len(candidates))
	for round := 0; round < k; round++ {
		bestGain, bestIdx := 0.0, -1
		for ci := range candidates {
			if chosen[ci] {
				continue
			}
			gain := 0.0
			for qi := range w.Queries {
				if benefit[qi][ci] > sel.PerQuery[qi] {
					gain += w.weight(qi) * (benefitScore(benefit[qi][ci]) - benefitScore(sel.PerQuery[qi]))
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, ci
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen[bestIdx] = true
		sel.Views = append(sel.Views, candidates[bestIdx])
		sel.Score += bestGain
		for qi := range w.Queries {
			if benefit[qi][bestIdx] > sel.PerQuery[qi] {
				sel.PerQuery[qi] = benefit[qi][bestIdx]
			}
		}
	}
	return sel, nil
}
