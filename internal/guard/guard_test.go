package guard

import (
	"errors"
	"strings"
	"testing"
)

func TestRecoverConvertsPanic(t *testing.T) {
	work := func() (err error) {
		defer Recover(&err, "guard.test")
		panic("boom")
	}
	err := work()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %#v, want *InternalError", err)
	}
	if ie.Op != "guard.test" || ie.Value != "boom" {
		t.Errorf("InternalError = %+v", ie)
	}
	if !strings.Contains(string(ie.Stack), "guard_test.go") {
		t.Errorf("stack does not point at the panic site:\n%s", ie.Stack)
	}
	if !ie.Transient() {
		t.Error("recovered panics must be Transient")
	}
}

func TestRecoverNoPanicKeepsError(t *testing.T) {
	sentinel := errors.New("ordinary failure")
	work := func() (err error) {
		defer Recover(&err, "guard.test")
		return sentinel
	}
	if err := work(); err != sentinel {
		t.Fatalf("err = %v, want the original error", err)
	}
}

func TestRescueRoutesToCallback(t *testing.T) {
	var got error
	func() {
		defer Rescue("guard.rescue", func(err error) { got = err })
		panic(42)
	}()
	var ie *InternalError
	if !errors.As(got, &ie) || ie.Value != 42 {
		t.Fatalf("rescued error = %#v", got)
	}
}

func TestRescueNilCallbackSwallows(t *testing.T) {
	func() {
		defer Rescue("guard.swallow", nil)
		panic("swallowed")
	}()
	// Reaching here is the assertion: the panic did not propagate.
}

func TestFromPanicNil(t *testing.T) {
	if e := FromPanic(nil, "op"); e != nil {
		t.Fatalf("FromPanic(nil) = %v, want nil", e)
	}
}
