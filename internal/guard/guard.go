// Package guard is the panic-isolation layer of the serving path: it
// converts panics — a poisoned pattern tripping an invariant, a bug in
// a pipeline worker, an injected chaos drill — into typed errors with
// captured stacks, so one bad request degrades into a 500 instead of
// killing the process.
//
// The contract the qavlint panicguard analyzer enforces: every
// goroutine spawned in internal/rewrite and internal/server installs
// one of this package's recovery helpers as a deferred call at the top
// of its body. A panic that escapes a goroutine with no recover is
// process death in Go; these helpers are the only sanctioned route.
package guard

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrInternal is the errors.Is target for recovered panics.
var ErrInternal = errors.New("internal error")

// InternalError is a recovered panic: the operation that hosted it,
// the panic value, and the goroutine stack captured at recovery time.
type InternalError struct {
	// Op names the recovery site ("engine.rewrite", "http POST /v1/rewrite", ...).
	Op string
	// Value is the value the code panicked with.
	Value any
	// Stack is the panicking goroutine's stack, captured by
	// debug.Stack at the recovery point.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("%s: internal error: panic: %v", e.Op, e.Value)
}

// Is makes errors.Is(err, ErrInternal) true for recovered panics.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Transient marks recovered panics as never-cacheable: a panic is a
// bug or a drill, not a deterministic property of the request key, and
// must not be replayed out of a negative cache.
func (e *InternalError) Transient() bool { return true }

// FromPanic wraps a recover() value into an *InternalError, or returns
// nil when v is nil (no panic in flight). Callers that need custom
// handling use it directly:
//
//	defer func() {
//		if e := guard.FromPanic(recover(), "op"); e != nil { ... }
//	}()
func FromPanic(v any, op string) *InternalError {
	if v == nil {
		return nil
	}
	return &InternalError{Op: op, Value: v, Stack: debug.Stack()}
}

// Recover converts an in-flight panic into an *InternalError assigned
// to *errp. Use as a deferred call in functions with a named error
// result:
//
//	func work() (res T, err error) {
//		defer guard.Recover(&err, "pkg.work")
//		...
//	}
//
// A panic raised while errp already holds an error overwrites it: the
// panic is strictly worse news.
func Recover(errp *error, op string) {
	if e := FromPanic(recover(), op); e != nil {
		*errp = e
	}
}

// Rescue converts an in-flight panic into an *InternalError handed to
// fail, for goroutines that report failures through a callback instead
// of a return value:
//
//	go func() {
//		defer guard.Rescue("pkg.worker", fail)
//		...
//	}()
//
// fail may be nil, in which case the panic is swallowed after capture
// (the goroutine still dies cleanly instead of killing the process).
func Rescue(op string, fail func(error)) {
	if e := FromPanic(recover(), op); e != nil && fail != nil {
		fail(e)
	}
}
