package workload

import (
	"context"
	"math/rand"
	"testing"

	"qav/internal/schema"
	"qav/internal/tpq"
)

func TestRandomPatternValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := RandomPattern(rng, []string{"a", "b"}, 8)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.Size() > 8 {
			t.Fatalf("size %d exceeds bound", p.Size())
		}
	}
}

func TestRandomSchemaPatternSatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		g := RandomDAGSchema(rng, 3+rng.Intn(5), 0.5)
		p := RandomSchemaPattern(rng, g, 6)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if !g.Satisfiable(p) {
			t.Fatalf("generated pattern %s unsatisfiable for schema\n%s", p, g)
		}
	}
}

func TestRandomDAGSchemaIsDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		g := RandomDAGSchema(rng, 2+rng.Intn(8), 0.6)
		if g.IsRecursive() {
			t.Fatalf("RandomDAGSchema produced a cycle:\n%s", g)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAuctionSchemaShape(t *testing.T) {
	g := AuctionSchema()
	if g.Root != "Auctions" || g.Size() != 9 || g.IsRecursive() {
		t.Fatalf("auction schema malformed: root=%s size=%d", g.Root, g.Size())
	}
}

func TestDiamondSchema(t *testing.T) {
	g := DiamondSchema(3)
	if g.IsRecursive() {
		t.Fatal("diamond schema must be acyclic")
	}
	// 3 levels: x0..x3 plus b0..b2, c0..c2 = 4 + 6 nodes.
	if g.Size() != 10 {
		t.Fatalf("size = %d, want 10", g.Size())
	}
	if !g.Reachable("x0", "x3") {
		t.Fatal("x3 unreachable")
	}
	// Every edge is mandatory.
	for _, tag := range g.Tags() {
		for _, e := range g.Edges(tag) {
			if e.Quant != schema.One {
				t.Fatalf("edge %s->%s has quantifier %s", tag, e.Child, e.Quant)
			}
		}
	}
}

func TestFigure12Schema(t *testing.T) {
	g := Figure12Schema()
	if g.Size() != 7 {
		t.Fatalf("size = %d, want 7 (a,b,c,d,e,f,g)", g.Size())
	}
	if g.IsRecursive() {
		t.Fatal("must be acyclic")
	}
}

func TestFig8Family(t *testing.T) {
	v := Fig8View()
	if v.String() != "//a//a/b/c" {
		t.Errorf("view = %s", v)
	}
	for n := 1; n <= 4; n++ {
		q := Fig8Query(n)
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		// 1 root + n * (a, b, c, di).
		if q.Size() != 1+4*n {
			t.Errorf("n=%d: size = %d, want %d", n, q.Size(), 1+4*n)
		}
		if q.Output.Tag != "c" {
			t.Errorf("output tag = %s", q.Output.Tag)
		}
	}
}

func TestFig9Fixtures(t *testing.T) {
	q := Fig9Query()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Size() != 5 || q.Output.Tag != "b" {
		t.Fatalf("q = %s", q)
	}
	if Fig9View().String() != "//a//b" {
		t.Errorf("view = %s", Fig9View())
	}
}

func TestClinicalTrialsDoc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := ClinicalTrialsDoc(context.Background(), rng, 50, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Tag != "PharmaLab" {
		t.Fatalf("root = %s", d.Root.Tag)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Root.Children) != 50 {
		t.Fatalf("groups = %d", len(d.Root.Children))
	}
	trials := tpq.MustParse("//Trials/Trial").Evaluate(d)
	if len(trials) != 200 {
		t.Fatalf("trials = %d, want 200", len(trials))
	}
	status := tpq.MustParse("//Trials[//Status]").Evaluate(d)
	if len(status) == 0 || len(status) == 50 {
		t.Fatalf("statusFrac=0.5 gave %d/50 groups with status", len(status))
	}
	// Every Trial has a Patient.
	pat := tpq.MustParse("//Trial/Patient").Evaluate(d)
	if len(pat) != 200 {
		t.Fatalf("patients = %d", len(pat))
	}
}
