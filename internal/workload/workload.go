// Package workload provides the pattern/schema/document generators and
// the paper-figure fixtures shared by tests, examples and the benchmark
// harness. Each fixture function names the figure of the paper it
// reproduces.
package workload

import (
	"context"
	"fmt"
	"math/rand"

	"qav/internal/schema"
	"qav/internal/tpq"
	"qav/internal/xmltree"
)

// RandomPattern builds a random tree pattern with between 1 and
// maxNodes nodes over the alphabet, with uniformly random axes and a
// random output node.
func RandomPattern(rng *rand.Rand, alphabet []string, maxNodes int) *tpq.Pattern {
	n := 1 + rng.Intn(maxNodes)
	p := tpq.New(tpq.Axis(rng.Intn(2)), alphabet[rng.Intn(len(alphabet))])
	nodes := []*tpq.Node{p.Root}
	// Each round attaches exactly one node, so the build is bounded by n.
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		c := parent.AddChild(tpq.Axis(rng.Intn(2)), alphabet[rng.Intn(len(alphabet))])
		nodes = append(nodes, c)
	}
	p.SetOutput(nodes[rng.Intn(len(nodes))])
	p.Reindex() // generated patterns are shared across benchmark goroutines
	return p
}

// CatalogTag names the i-th tag of the catalog-experiment universe.
func CatalogTag(i int) string { return fmt.Sprintf("t%d", i) }

// CatalogView is one generated registration of a synthetic view
// catalog.
type CatalogView struct {
	Name string
	Expr *tpq.Pattern
}

// RandomCatalogViews generates n named views over a root-tag-diverse
// universe of nTags tags, the workload of the catalog-scaling
// experiment: a childFrac fraction is '/'-rooted (root tag uniform over
// the universe, so a '/'-rooted probe query's exact root partition
// holds ~n·childFrac/nTags views), the rest '//'-rooted; each body is a
// small random pattern over tags clustered near the root tag, keeping
// the per-view tag bitmaps diverse.
func RandomCatalogViews(rng *rand.Rand, n, nTags, maxNodes int, childFrac float64) []CatalogView {
	out := make([]CatalogView, n)
	for i := range out {
		r := rng.Intn(nTags)
		axis := tpq.Descendant
		if rng.Float64() < childFrac {
			axis = tpq.Child
		}
		out[i] = CatalogView{
			Name: fmt.Sprintf("v%06d", i),
			Expr: randomClusteredPattern(rng, axis, r, nTags, maxNodes),
		}
	}
	return out
}

// CatalogProbeQuery builds a '/'-rooted (anchored) probe query rooted
// at the rootTag-th universe tag, over the same clustered tag
// neighborhood the views draw from. Anchored probes are the
// signature index's best case: only the matching root partition needs
// labeling, and the pruned views contribute nothing (not even the
// trivial rewriting, which requires a '//' query root).
func CatalogProbeQuery(rng *rand.Rand, rootTag, nTags, maxNodes int) *tpq.Pattern {
	return randomClusteredPattern(rng, tpq.Child, rootTag, nTags, maxNodes)
}

// randomClusteredPattern builds a random pattern rooted (axis, t_r)
// whose body tags stay within a small neighborhood of r, so distinct
// roots give distinct tag sets.
func randomClusteredPattern(rng *rand.Rand, axis tpq.Axis, r, nTags, maxNodes int) *tpq.Pattern {
	p := tpq.New(axis, CatalogTag(r))
	nodes := []*tpq.Node{p.Root}
	target := 1 + rng.Intn(maxNodes)
	for i := 1; i < target; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		tag := CatalogTag((r + rng.Intn(4)) % nTags)
		nodes = append(nodes, parent.AddChild(tpq.Axis(rng.Intn(2)), tag))
	}
	p.SetOutput(nodes[rng.Intn(len(nodes))])
	p.Reindex() // generated patterns are shared across benchmark goroutines
	return p
}

// RandomSchemaPattern builds a random pattern that is satisfiable with
// respect to the schema: pc-edges follow schema edges, ad-edges follow
// schema paths, and the root is the schema root ('/') or a reachable
// tag ('//'). Returns nil if the schema has no edges to walk.
func RandomSchemaPattern(rng *rand.Rand, g *schema.Graph, maxNodes int) *tpq.Pattern {
	reachable := []string{g.Root}
	for _, t := range g.Tags() {
		if t != g.Root && g.Reachable(g.Root, t) {
			reachable = append(reachable, t)
		}
	}
	var p *tpq.Pattern
	if rng.Intn(2) == 0 {
		p = tpq.New(tpq.Child, g.Root)
	} else {
		p = tpq.New(tpq.Descendant, reachable[rng.Intn(len(reachable))])
	}
	nodes := []*tpq.Node{p.Root}
	target := 1 + rng.Intn(maxNodes)
	for attempts := 0; len(nodes) < target && attempts < 8*target; attempts++ {
		parent := nodes[rng.Intn(len(nodes))]
		if rng.Intn(2) == 0 {
			edges := g.Edges(parent.Tag)
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			nodes = append(nodes, parent.AddChild(tpq.Child, e.Child))
		} else {
			var below []string
			for _, t := range g.Tags() {
				if g.Reachable(parent.Tag, t) {
					below = append(below, t)
				}
			}
			if len(below) == 0 {
				continue
			}
			nodes = append(nodes, parent.AddChild(tpq.Descendant, below[rng.Intn(len(below))]))
		}
	}
	p.SetOutput(nodes[rng.Intn(len(nodes))])
	p.Reindex() // generated patterns are shared across benchmark goroutines
	return p
}

// RandomDAGSchema builds a random DAG schema over n single-letter tags
// (edges go from lower to higher indices) with the given edge density.
func RandomDAGSchema(rng *rand.Rand, n int, density float64) *schema.Graph {
	tags := make([]string, n)
	for i := range tags {
		tags[i] = fmt.Sprintf("t%d", i)
	}
	g := schema.New(tags[0])
	quants := []schema.Quantifier{schema.One, schema.Plus, schema.Opt, schema.Star}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.MustAddEdge(tags[i], tags[j], quants[rng.Intn(len(quants))])
			}
		}
	}
	return g
}

// AuctionSchema returns the schema of Figure 2(a).
func AuctionSchema() *schema.Graph {
	return schema.MustParse(`
root Auctions
Auctions -> Auction*
Auction  -> open_auction* closed_auction?
open_auction -> item bids?
closed_auction -> item person? buyer?
bids  -> person+
buyer -> person
person -> name
item  -> name
`)
}

// DiamondSchema returns the Figure 12 family: levels stacked diamonds
//
//	x0 → {b0, c0} → x1 → {b1, c1} → x2 → ...
//
// with all edges mandatory ('1'), ending at leaf x<levels>. Exhaustive
// chase of the view /x0 explodes exponentially in levels; levels = 1
// reproduces Figure 12's 7-node diamond (plus leaves as drawn there).
func DiamondSchema(levels int) *schema.Graph {
	g := schema.New("x0")
	for i := 0; i < levels; i++ {
		x := fmt.Sprintf("x%d", i)
		b := fmt.Sprintf("b%d", i)
		c := fmt.Sprintf("c%d", i)
		next := fmt.Sprintf("x%d", i+1)
		g.MustAddEdge(x, b, schema.One)
		g.MustAddEdge(x, c, schema.One)
		g.MustAddEdge(b, next, schema.One)
		g.MustAddEdge(c, next, schema.One)
	}
	return g
}

// Figure12Schema returns the exact 8-tag schema drawn in Figure 12:
// a→{b,c}, b→d, c→d, d→{e,f}, e→g, f→g, all mandatory. Chasing the
// view /a with sibling constraints alone yields the 13-node chased view
// shown in the figure.
func Figure12Schema() *schema.Graph {
	return schema.MustParse(`
root a
a -> b c
b -> d
c -> d
d -> e f
e -> g
f -> g
`)
}

// Fig8Query builds the n-branch generalization of the Figure 8 query
// (Example 1): a root //a carrying n branches //a/b/c[di] with distinct
// tags di, the output being the c node of the first branch. Against the
// Figure 8 view the MCR is a union of 2^n irredundant CRs. n = 2 with
// tags d1, d2 is the exact query drawn in Figure 8 (there named d, e).
func Fig8Query(n int) *tpq.Pattern {
	p := tpq.New(tpq.Descendant, "a")
	for i := 1; i <= n; i++ {
		a := p.Root.AddChild(tpq.Descendant, "a")
		b := a.AddChild(tpq.Child, "b")
		c := b.AddChild(tpq.Child, "c")
		c.AddChild(tpq.Child, fmt.Sprintf("d%d", i))
		if i == 1 {
			p.SetOutput(c)
		}
	}
	p.Reindex()
	return p
}

// Fig8View is the view of Figure 8: //a//a/b/c with the c node
// distinguished.
func Fig8View() *tpq.Pattern {
	return tpq.MustParse("//a//a/b/c")
}

// Fig9Query is the query of Figure 9: a root //a with two ad-children
// tagged b, the first carrying a pc-child c (and the output mark), the
// second a pc-child d. Its MCR using Fig9View is the four-CR union
// printed in Figure 9.
func Fig9Query() *tpq.Pattern {
	p := tpq.New(tpq.Descendant, "a")
	b1 := p.Root.AddChild(tpq.Descendant, "b")
	b1.AddChild(tpq.Child, "c")
	b2 := p.Root.AddChild(tpq.Descendant, "b")
	b2.AddChild(tpq.Child, "d")
	p.SetOutput(b1)
	p.Reindex()
	return p
}

// Fig9View is the view of Figure 9: //a//b with output b.
func Fig9View() *tpq.Pattern {
	return tpq.MustParse("//a//b")
}

// ClinicalTrialsDoc generates a synthetic clinical-trials document in
// the shape of Figure 1(a): a PharmaLab root with `groups` Trials
// elements, each holding `trialsPer` Trial elements with Patient
// children; a fraction statusFrac of Trials groups contains trials
// carrying a Status element. Used by the savings/overhead experiments.
// The experiments scale groups×trialsPer into the millions, so the
// context is polled once per group and a cancelled ctx aborts the
// build with its error.
func ClinicalTrialsDoc(ctx context.Context, rng *rand.Rand, groups, trialsPer int, statusFrac float64) (*xmltree.Document, error) {
	root := xmltree.Build("PharmaLab")
	for i := 0; i < groups; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		trials := root.AddChild("Trials")
		withStatus := rng.Float64() < statusFrac
		for j := 0; j < trialsPer; j++ {
			trial := trials.AddChild("Trial")
			patient := trial.AddChild("Patient")
			patient.Text = fmt.Sprintf("patient-%d-%d", i, j)
			if withStatus && j%2 == 0 {
				status := trial.AddChild("Status")
				status.Text = "Complete"
			}
		}
	}
	return xmltree.NewDocument(root), nil
}

// Fig15Query generalizes the Figure 9/15 query to k branches: a root
// //a with k ad-children tagged b, the i-th carrying a pc-child ci (the
// first branch carries the output). Under the recursive Figure 15
// schema the MCR grows exponentially in k, the §5 observation that
// recursion restores the schemaless worst case.
func Fig15Query(k int) *tpq.Pattern {
	p := tpq.New(tpq.Descendant, "a")
	for i := 1; i <= k; i++ {
		b := p.Root.AddChild(tpq.Descendant, "b")
		b.AddChild(tpq.Child, fmt.Sprintf("c%d", i))
		if i == 1 {
			p.SetOutput(b)
		}
	}
	p.Reindex()
	return p
}

// Fig15Schema returns a recursive schema in the shape of Figure 15,
// parameterized by the number of distinct leaf tags: a → b*, b → b* and
// every ci optional under b.
func Fig15Schema(k int) *schema.Graph {
	g := schema.New("a")
	g.MustAddEdge("a", "b", schema.Star)
	g.MustAddEdge("b", "b", schema.Star)
	for i := 1; i <= k; i++ {
		g.MustAddEdge("b", fmt.Sprintf("c%d", i), schema.Opt)
	}
	return g
}
