package qav_test

// Heavier randomized cross-module checks, skipped under -short: they
// push the property tests of the internal packages to larger sizes and
// iteration counts, exercising the full pipeline end to end.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qav"
	"qav/internal/engine"
	"qav/internal/fault"
	"qav/internal/leaktest"
	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/server"
	"qav/internal/stream"
	"qav/internal/structjoin"
	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

// Larger-instance agreement of MCRGen with the brute-force baseline.
func TestSoakMCRMatchesNaiveLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(20260706))
	alphabet := []string{"a", "b", "c"}
	for i := 0; i < 400; i++ {
		q := workload.RandomPattern(rng, alphabet, 5)
		v := workload.RandomPattern(rng, alphabet, 5)
		res, err := rewrite.MCR(q, v, rewrite.Options{MaxEmbeddings: 1 << 16})
		if err != nil {
			continue
		}
		naive, err := rewrite.NaiveMCR(context.Background(), q, v)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Union.SameAs(naive.Union) {
			t.Fatalf("q=%s v=%s\n mcr=%s\n naive=%s", q, v, res.Union, naive.Union)
		}
	}
}

// End-to-end pipeline: random schema → conforming instance → rewriting
// with schema → answers via view == subset of direct answers; plus
// every evaluation engine agrees.
func TestSoakEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		g := workload.RandomDAGSchema(rng, 4+rng.Intn(5), 0.4)
		sc := rewrite.NewSchemaContext(g)
		q := workload.RandomSchemaPattern(rng, g, 6)
		v := workload.RandomSchemaPattern(rng, g, 5)
		res, err := sc.MCRWithSchema(q, v)
		if err != nil {
			t.Fatalf("schema:\n%s\nq=%s v=%s: %v", g, q, v, err)
		}
		d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 2})
		if err != nil {
			continue
		}

		// All three engines agree on both q and v.
		ix := structjoin.Build(d)
		xmlSrc := d.XMLString()
		for _, p := range []*tpq.Pattern{q, v} {
			mem := p.Evaluate(d)
			sj, err := ix.Evaluate(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if len(mem) != len(sj) {
				t.Fatalf("engines disagree on %s over schema instance", p)
			}
			sa, err := stream.Evaluate(context.Background(), strings.NewReader(xmlSrc), p)
			if err != nil || len(sa) != len(mem) {
				t.Fatalf("stream engine disagrees on %s: %d vs %d (%v)", p, len(sa), len(mem), err)
			}
		}

		if res.Union.Empty() {
			continue
		}
		inQ := make(map[*xmltree.Node]bool)
		for _, n := range q.Evaluate(d) {
			inQ[n] = true
		}
		viaView, err := rewrite.AnswerUsingView(context.Background(), res.CRs, v, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range viaView {
			if !inQ[n] {
				t.Fatalf("unsound view answer for q=%s v=%s schema:\n%s", q, v, g)
			}
		}
	}
}

// The facade functions compose: ship a view, serialize, read back,
// rewrite against its expression and answer on the forest — sound
// against direct evaluation by answer count.
func TestSoakShipMediateRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(99))
	alphabet := []string{"a", "b", "c"}
	for i := 0; i < 150; i++ {
		d := xmltree.Generate(rng, xmltree.GenSpec{
			Tags: alphabet, MaxDepth: 5, MaxFanout: 3, TargetSize: 30,
		})
		v := workload.RandomPattern(rng, alphabet, 4)
		q := workload.RandomPattern(rng, alphabet, 4)
		res, err := qav.Rewrite(q, v)
		if err != nil || res.Union.Empty() {
			continue
		}
		m := qav.ShipView(v, d)
		var buf strings.Builder
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := qav.ReadShippedView(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		forestAnswers, err := m2.Answer(context.Background(), res.CRs)
		if err != nil {
			t.Fatal(err)
		}
		sourceAnswers, err := rewrite.AnswerUsingView(context.Background(), res.CRs, v, d)
		if err != nil {
			t.Fatal(err)
		}
		// Shape-set comparison (copies vs originals): sizes can differ
		// only through overlapping view trees duplicating elements.
		if len(forestAnswers) < len(sourceAnswers) {
			t.Fatalf("forest lost answers: %d < %d (q=%s v=%s)", len(forestAnswers), len(sourceAnswers), q, v)
		}
	}
}

// Mixed load + fault soak: concurrent clients hammer the HTTP handler
// while a chaos goroutine re-arms random fault plans underneath them.
// Deterministic injections under nondeterministic interleaving — the
// assertions are the survival properties (JSON responses, clean
// shutdown, no leaked goroutines) plus post-storm health.
func TestSoakMixedLoadWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	defer leaktest.Check(t)()
	defer fault.Disable()

	eng := engine.New(engine.Config{
		CacheSize:     128,
		Timeout:       time.Second,
		MaxEmbeddings: 1 << 16,
	})
	h := server.NewWith(eng)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Chaos goroutine: a new deterministic plan every millisecond,
	// cycling action types across the full point registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		names := fault.Names()
		actions := []fault.Action{fault.ActError, fault.ActPanic, fault.ActDelay, fault.ActCancel}
		rng := rand.New(rand.NewSource(42))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			plan := &fault.Plan{Seed: int64(i)}
			for k := 0; k < 1+rng.Intn(2); k++ {
				plan.Injections = append(plan.Injections, fault.Injection{
					Point:  names[rng.Intn(len(names))],
					Action: actions[(i+k)%len(actions)],
					Prob:   0.2,
					Delay:  time.Millisecond,
				})
			}
			if err := fault.Enable(plan); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Client goroutines: each its own deterministic request stream.
	clients := 8
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			alphabet := []string{"a", "b", "c"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := workload.RandomPattern(rng, alphabet, 4)
				v := workload.RandomPattern(rng, alphabet, 4)
				body, _ := json.Marshal(map[string]string{"query": q.String(), "view": v.String()})
				req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(string(body)))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code == 0 {
					t.Error("no status written under fault load")
					return
				}
				var out map[string]any
				if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
					t.Errorf("non-JSON response %d %q", rec.Code, rec.Body.String())
					return
				}
			}
		}(c)
	}

	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()
	fault.Disable()

	// Post-storm health check on the same engine and handler.
	req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(
		`{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-soak rewrite = %d: %s", rec.Code, rec.Body.String())
	}
}
