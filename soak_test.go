package qav_test

// Heavier randomized cross-module checks, skipped under -short: they
// push the property tests of the internal packages to larger sizes and
// iteration counts, exercising the full pipeline end to end.

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"qav"
	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/stream"
	"qav/internal/structjoin"
	"qav/internal/tpq"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

// Larger-instance agreement of MCRGen with the brute-force baseline.
func TestSoakMCRMatchesNaiveLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(20260706))
	alphabet := []string{"a", "b", "c"}
	for i := 0; i < 400; i++ {
		q := workload.RandomPattern(rng, alphabet, 5)
		v := workload.RandomPattern(rng, alphabet, 5)
		res, err := rewrite.MCR(q, v, rewrite.Options{MaxEmbeddings: 1 << 16})
		if err != nil {
			continue
		}
		naive, err := rewrite.NaiveMCR(context.Background(), q, v)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Union.SameAs(naive.Union) {
			t.Fatalf("q=%s v=%s\n mcr=%s\n naive=%s", q, v, res.Union, naive.Union)
		}
	}
}

// End-to-end pipeline: random schema → conforming instance → rewriting
// with schema → answers via view == subset of direct answers; plus
// every evaluation engine agrees.
func TestSoakEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		g := workload.RandomDAGSchema(rng, 4+rng.Intn(5), 0.4)
		sc := rewrite.NewSchemaContext(g)
		q := workload.RandomSchemaPattern(rng, g, 6)
		v := workload.RandomSchemaPattern(rng, g, 5)
		res, err := sc.MCRWithSchema(q, v)
		if err != nil {
			t.Fatalf("schema:\n%s\nq=%s v=%s: %v", g, q, v, err)
		}
		d, err := g.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 2})
		if err != nil {
			continue
		}

		// All three engines agree on both q and v.
		ix := structjoin.Build(d)
		xmlSrc := d.XMLString()
		for _, p := range []*tpq.Pattern{q, v} {
			mem := p.Evaluate(d)
			sj, err := ix.Evaluate(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if len(mem) != len(sj) {
				t.Fatalf("engines disagree on %s over schema instance", p)
			}
			sa, err := stream.Evaluate(context.Background(), strings.NewReader(xmlSrc), p)
			if err != nil || len(sa) != len(mem) {
				t.Fatalf("stream engine disagrees on %s: %d vs %d (%v)", p, len(sa), len(mem), err)
			}
		}

		if res.Union.Empty() {
			continue
		}
		inQ := make(map[*xmltree.Node]bool)
		for _, n := range q.Evaluate(d) {
			inQ[n] = true
		}
		viaView, err := rewrite.AnswerUsingView(context.Background(), res.CRs, v, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range viaView {
			if !inQ[n] {
				t.Fatalf("unsound view answer for q=%s v=%s schema:\n%s", q, v, g)
			}
		}
	}
}

// The facade functions compose: ship a view, serialize, read back,
// rewrite against its expression and answer on the forest — sound
// against direct evaluation by answer count.
func TestSoakShipMediateRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(99))
	alphabet := []string{"a", "b", "c"}
	for i := 0; i < 150; i++ {
		d := xmltree.Generate(rng, xmltree.GenSpec{
			Tags: alphabet, MaxDepth: 5, MaxFanout: 3, TargetSize: 30,
		})
		v := workload.RandomPattern(rng, alphabet, 4)
		q := workload.RandomPattern(rng, alphabet, 4)
		res, err := qav.Rewrite(q, v)
		if err != nil || res.Union.Empty() {
			continue
		}
		m := qav.ShipView(v, d)
		var buf strings.Builder
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := qav.ReadShippedView(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		forestAnswers := m2.Answer(res.CRs)
		sourceAnswers, err := rewrite.AnswerUsingView(context.Background(), res.CRs, v, d)
		if err != nil {
			t.Fatal(err)
		}
		// Shape-set comparison (copies vs originals): sizes can differ
		// only through overlapping view trees duplicating elements.
		if len(forestAnswers) < len(sourceAnswers) {
			t.Fatalf("forest lost answers: %d < %d (q=%s v=%s)", len(forestAnswers), len(sourceAnswers), q, v)
		}
	}
}
