// Command recursive demonstrates §5 of the paper: under a recursive
// schema the maximal contained rewriting is again a union of tree
// patterns (Figure 15), unlike the single-CR guarantee of
// recursion-free schemas — and schema satisfiability still prunes CRs
// the schema forbids.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"qav"
	"qav/internal/schema"
)

const recursiveDSL = `
root a
a -> b*
b -> b* c? d?
c ->
d ->
`

func main() {
	s := qav.MustParseSchema(recursiveDSL)
	fmt.Println("recursive schema (b nests under itself):")
	fmt.Print(s)
	fmt.Println("recursive:", s.IsRecursive())

	// The Figure 9/15 query: sections (b) holding a c, in documents that
	// also have a b holding a d.
	q := qav.New(qav.Descendant, "a")
	b1 := q.Root.AddChild(qav.Descendant, "b")
	b1.AddChild(qav.Child, "c")
	b2 := q.Root.AddChild(qav.Descendant, "b")
	b2.AddChild(qav.Child, "d")
	q.SetOutput(b1)
	v := qav.MustParseQuery("//a//b")
	fmt.Println("\nquery:", q)
	fmt.Println("view :", v)

	rw := qav.NewSchemaRewriter(s)
	res, err := rw.RewriteRecursive(q, v, qav.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMCR under the recursive schema: %d CRs (Figure 15's union)\n", len(res.CRs))
	for _, cr := range res.CRs {
		fmt.Println("  ", cr.Rewriting)
	}

	// A recursion-free schema would collapse this to a single CR
	// (Theorem 8); recursion re-enables the schemaless worst case.
	plain, err := qav.Rewrite(q, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schemaless MCR has %d CRs — identical here, because the schema permits every shape\n", len(plain.CRs))

	// Tighten the schema (no d anywhere): CRs requiring d die.
	s2 := qav.MustParseSchema("root a\na -> b*\nb -> b* c?\nc ->")
	rw2 := qav.NewSchemaRewriter(s2)
	res2, err := rw2.RewriteRecursive(q, v, qav.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith d removed from the schema the MCR has %d CRs (all require a d)\n", len(res2.CRs))

	// Run the rewriting on a generated instance of the recursive schema.
	rng := rand.New(rand.NewSource(2))
	d, err := s.RandomInstance(rng, schema.InstanceSpec{MaxDepth: 8, OptProb: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	answers, err := qav.AnswerUsingView(context.Background(), res.CRs, v, d)
	if err != nil {
		panic(err)
	}
	direct := q.Evaluate(d)
	fmt.Printf("\non a %d-node conforming instance: %d answers via the view, %d direct\n",
		d.Size(), len(answers), len(direct))
}
