// Command quickstart shows the core QAV workflow in a few lines:
// parse a query and a view, test answerability, generate the maximal
// contained rewriting, and answer the query from the materialized view
// without touching the rest of the document.
package main

import (
	"context"
	"fmt"
	"log"

	"qav"
)

func main() {
	// A database the integration system cannot query directly...
	doc, err := qav.ParseDocumentString(`
<catalog>
  <section>
    <book><title>TPQ rewriting</title><award>best paper</award></book>
    <book><title>Unsung tomes</title></book>
  </section>
  <section>
    <book><title>Misc</title></book>
  </section>
</catalog>`)
	if err != nil {
		log.Fatal(err)
	}

	// ...except through a materialized view of its sections.
	v := qav.MustParseQuery("//catalog//section")
	// The integration query wants books in sections holding an award
	// winner.
	q := qav.MustParseQuery("//section[//award]/book")

	fmt.Println("query:", q)
	fmt.Println("view :", v)
	fmt.Println("answerable using view:", qav.Answerable(q, v))

	res, err := qav.Rewrite(q, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("maximal contained rewriting:", res.Union)

	// Answer using only the view: materialize V once, run each CR's
	// compensation query over the view forest.
	views := qav.MaterializeView(v, doc)
	fmt.Printf("materialized view: %d section subtrees\n", len(views))
	answers, err := qav.AnswerUsingView(context.Background(), res.CRs, v, doc)
	if err != nil {
		panic(err)
	}
	for _, n := range answers {
		fmt.Println("answer:", n.Path(), "-", n.Children[0].Text)
	}

	// Contained, not equivalent: the query itself may find more (here
	// it does not on this document, but in general it can).
	direct := q.Evaluate(doc)
	fmt.Printf("direct evaluation finds %d answers; the rewriting found %d sound ones\n",
		len(direct), len(answers))
}
