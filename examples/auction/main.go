// Command auction replays the paper's schema-aware example (Figure 2,
// Example 2): the auction schema's cousin constraint
// Auction : person ⇓ item licenses a rewriting that is NOT contained in
// the query without the schema.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"qav"
	"qav/internal/schema"
	"qav/internal/workload"
)

func main() {
	s := workload.AuctionSchema()
	fmt.Println("schema (Figure 2(a)):")
	fmt.Print(s)

	rw := qav.NewSchemaRewriter(s)
	q := qav.MustParseQuery("//Auction[//item]//name")
	v := qav.MustParseQuery("//Auction//person")
	fmt.Println("\nquery:", q)
	fmt.Println("view :", v)

	// Without the schema the natural rewriting //Auction//person//name
	// is NOT contained in Q — there is no item witness.
	want := qav.MustParseQuery("//Auction//person//name")
	fmt.Println("\nplain containment of", want, "in Q:", qav.Contained(want, q))
	fmt.Println("schema-relative containment:       ", rw.Contained(want, q))
	fmt.Println("(the cousin constraint Auction:person⇓item makes the difference)")

	res, err := rw.Rewrite(q, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMCR under the schema:", res.Union)
	fmt.Println("compensation query:  ", res.CRs[0].Compensation)

	// Demonstrate on generated conforming instances.
	rng := rand.New(rand.NewSource(1))
	d, err := s.RandomInstance(rng, schema.InstanceSpec{MaxRepeat: 3, OptProb: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated a conforming instance with %d elements\n", d.Size())
	answers, err := qav.AnswerUsingView(context.Background(), res.CRs, v, d)
	if err != nil {
		panic(err)
	}
	direct := q.Evaluate(d)
	fmt.Printf("answers via view: %d, direct query answers: %d\n", len(answers), len(direct))
	inQ := make(map[*qav.Node]bool)
	for _, n := range direct {
		inQ[n] = true
	}
	for _, n := range answers {
		if !inQ[n] {
			log.Fatalf("UNSOUND answer %s", n.Path())
		}
	}
	fmt.Println("all view-derived answers verified sound")
}
