// Command integration demonstrates the information-integration
// scenario that motivates contained rewriting (§1 of the paper): one
// mediated query, several autonomous sources each exporting a
// different view with limited coverage. No source supports an
// equivalent rewriting; each contributes the sound answers its view
// can certify, and the mediator unions them.
package main

import (
	"context"
	"fmt"
	"log"

	"qav"
)

// The global database (which no one can query directly).
const world = `<PharmaLab>
  <Trials type="T1">
    <Trial><Patient>John Doe</Patient><Status>Complete</Status><Result>ok</Result></Trial>
    <Trial><Patient>Jennifer Bloe</Patient><Result>ok</Result></Trial>
  </Trials>
  <Trials type="T2">
    <Trial><Patient>Mary Moore</Patient><Status>Running</Status></Trial>
    <Trial><Patient>Bob Roe</Patient></Trial>
  </Trials>
</PharmaLab>`

func main() {
	d, err := qav.ParseDocumentString(world)
	if err != nil {
		log.Fatal(err)
	}

	// The mediated query: patients in trials whose group tracks status.
	q := qav.MustParseQuery("//Trials[//Status]//Trial/Patient")
	fmt.Println("mediated query:", q)

	// Three autonomous sources with different coverage.
	sources := []struct {
		name string
		view *qav.Pattern
	}{
		{"source A (exports whole trials)", qav.MustParseQuery("//Trials//Trial")},
		{"source B (exports status-tracked trial groups)", qav.MustParseQuery("//Trials[//Status]")},
		{"source C (exports only patients)", qav.MustParseQuery("//Patient")},
	}

	combined := make(map[*qav.Node]bool)
	for _, src := range sources {
		fmt.Printf("\n%s: V = %s\n", src.name, src.view)
		if !qav.Answerable(q, src.view) {
			fmt.Println("  cannot contribute (no contained rewriting)")
			continue
		}
		res, err := qav.Rewrite(q, src.view)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  MCR:", res.Union)
		answers, err := qav.AnswerUsingView(context.Background(), res.CRs, src.view, d)
		if err != nil {
			panic(err)
		}
		for _, n := range answers {
			fmt.Printf("  contributes %s (%s)\n", n.Path(), n.Text)
			combined[n] = true
		}
		if len(answers) == 0 {
			fmt.Println("  contributes no answers on this database")
		}
	}

	// The same combination, through the multi-view API: per-view MCRs
	// with redundancy eliminated globally.
	var viewSources []qav.ViewSource
	for _, src := range sources {
		viewSources = append(viewSources, qav.ViewSource{Name: src.name, View: src.view})
	}
	multi, err := qav.RewriteMultiView(q, viewSources, qav.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal multi-view MCR (%d disjunct(s)): %s\n", len(multi.Union.Patterns), multi.Union)
	for i := range multi.Union.Patterns {
		fmt.Printf("  disjunct %d contributed by %s\n", i+1, viewSources[multi.Contributions[i]].Name)
	}
	multiAnswers, err := multi.AnswerMultiView(context.Background(), viewSources, d)
	if err != nil {
		panic(err)
	}
	fmt.Printf("multi-view answers: %d\n", len(multiAnswers))

	direct := q.Evaluate(d)
	fmt.Printf("\ncombined sound answers from all sources: %d\n", len(combined))
	fmt.Printf("answers of Q over the (inaccessible) global database: %d\n", len(direct))
	for _, n := range direct {
		if !combined[n] {
			fmt.Printf("  missed (no source could certify): %s (%s)\n", n.Path(), n.Text)
		}
	}
}
