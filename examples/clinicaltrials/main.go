// Command clinicaltrials replays the paper's running example (§1,
// Figure 1): a pharma lab publishes only a view of its clinical-trial
// data, and an integrator answers a status-constrained query through
// it with a maximal contained rewriting.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"qav"
)

const database = `<PharmaLab>
  <Trials type="T1">
    <Trial><Patient>John Doe</Patient><Status>Complete</Status></Trial>
    <Trial><Patient>Jennifer Bloe</Patient></Trial>
  </Trials>
  <Trials type="T2">
    <Trial><Patient>Mary Moore</Patient></Trial>
  </Trials>
</PharmaLab>`

func main() {
	d, err := qav.ParseDocumentString(database)
	if err != nil {
		log.Fatal(err)
	}

	// The source exports V = //Trials//Trial: every Trial element.
	v := qav.MustParseQuery("//Trials//Trial")
	views := qav.MaterializeView(v, d)
	fmt.Printf("materialized view %s: %d Trial elements\n", v, len(views))
	for _, n := range views {
		fmt.Printf("  view tree rooted at %s (patient %q)\n", n.Path(), n.Children[0].Text)
	}

	// The integrator asks Q = //Trials[//Status]//Trial: trials in
	// groups that track status.
	q := qav.MustParseQuery("//Trials[//Status]//Trial")
	fmt.Println("\nquery:", q)

	if !qav.Answerable(q, v) {
		fmt.Println("not answerable using the view")
		os.Exit(1)
	}
	res, err := qav.Rewrite(q, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("maximal contained rewriting:", res.Union)
	for _, cr := range res.CRs {
		fmt.Printf("  CR %-40s compensation %s\n", cr.Rewriting, cr.Compensation)
	}

	// Sound answers from the view alone: only the first Trial — its
	// own subtree witnesses the Status. Q on the full database would
	// also return Jennifer Bloe's trial (the Status lives on a sibling),
	// but that knowledge is not derivable from the view.
	answers, err := qav.AnswerUsingView(context.Background(), res.CRs, v, d)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nanswers using the view (%d):\n", len(answers))
	for _, n := range answers {
		fmt.Printf("  %s (patient %q)\n", n.Path(), n.Children[0].Text)
	}
	direct := q.Evaluate(d)
	fmt.Printf("for comparison, Q on the full database finds %d trials\n", len(direct))
}
