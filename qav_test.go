package qav_test

import (
	"context"
	"strings"
	"testing"

	"qav"
)

const trialsXML = `<PharmaLab>
  <Trials type="T1">
    <Trial><Patient>John Doe</Patient><Status>Complete</Status></Trial>
    <Trial><Patient>Jennifer Bloe</Patient></Trial>
  </Trials>
  <Trials type="T2">
    <Trial><Patient>Mary Moore</Patient></Trial>
  </Trials>
</PharmaLab>`

const auctionSchema = `
root Auctions
Auctions -> Auction*
Auction  -> open_auction* closed_auction?
open_auction -> item bids?
closed_auction -> item person? buyer?
bids  -> person+
buyer -> person
person -> name
item  -> name
`

func TestPublicAPISchemaless(t *testing.T) {
	q := qav.MustParseQuery("//Trials[//Status]//Trial")
	v := qav.MustParseQuery("//Trials//Trial")
	if !qav.Answerable(q, v) {
		t.Fatal("Answerable = false")
	}
	res, err := qav.Rewrite(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Union.Empty() {
		t.Fatal("empty MCR")
	}
	d, err := qav.ParseDocumentString(trialsXML)
	if err != nil {
		t.Fatal(err)
	}
	direct := res.Union.Evaluate(d)
	viaView, err := qav.AnswerUsingView(context.Background(), res.CRs, v, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 1 || len(viaView) != 1 || direct[0] != viaView[0] {
		t.Fatalf("direct=%d viaView=%d answers", len(direct), len(viaView))
	}
	if got := direct[0].Path(); got != "/PharmaLab/Trials/Trial" {
		t.Errorf("answer path = %s", got)
	}
}

func TestPublicAPIWithSchema(t *testing.T) {
	s, err := qav.ParseSchema(auctionSchema)
	if err != nil {
		t.Fatal(err)
	}
	rw := qav.NewSchemaRewriter(s)
	q := qav.MustParseQuery("//Auction[//item]//name")
	v := qav.MustParseQuery("//Auction//person")
	if !rw.Answerable(q, v) {
		t.Fatal("Answerable = false under schema")
	}
	res, err := rw.Rewrite(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Union.Patterns) != 1 {
		t.Fatalf("MCR = %s, want single CR", res.Union)
	}
	want := qav.MustParseQuery("//Auction//person//name")
	if !rw.Equivalent(res.Union.Patterns[0], want) {
		t.Errorf("MCR = %s, want %s", res.Union.Patterns[0], want)
	}
	if !rw.Contained(res.Union.Patterns[0], q) {
		t.Error("MCR not S-contained in query")
	}
}

func TestPublicAPIContainment(t *testing.T) {
	a := qav.MustParseQuery("//a/b")
	b := qav.MustParseQuery("//a//b")
	if !qav.Contained(a, b) || qav.Contained(b, a) {
		t.Error("containment broken through the facade")
	}
	if !qav.Equivalent(a, a) {
		t.Error("equivalence broken")
	}
}

func TestPublicAPIBuildPatternsProgrammatically(t *testing.T) {
	p := qav.New(qav.Descendant, "a")
	c := p.Root.AddChild(qav.Child, "b")
	p.SetOutput(c)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.String() != "//a/b" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPublicAPIMaterializeView(t *testing.T) {
	d, err := qav.ParseDocumentString(trialsXML)
	if err != nil {
		t.Fatal(err)
	}
	v := qav.MustParseQuery("//Trials//Trial")
	got := qav.MaterializeView(v, d)
	if len(got) != 3 {
		t.Errorf("view returned %d nodes, want 3", len(got))
	}
	for _, n := range got {
		if !strings.HasSuffix(n.Path(), "/Trial") {
			t.Errorf("unexpected view node %s", n.Path())
		}
	}
}

func TestPublicAPIUnanswerable(t *testing.T) {
	q := qav.MustParseQuery("/b/d")
	v := qav.MustParseQuery("/a/b//c")
	if qav.Answerable(q, v) {
		t.Error("mismatched roots must be unanswerable")
	}
	res, err := qav.Rewrite(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Union.Empty() {
		t.Errorf("MCR = %s, want empty", res.Union)
	}
}

func TestPublicAPIShipAndMediate(t *testing.T) {
	d, err := qav.ParseDocumentString(trialsXML)
	if err != nil {
		t.Fatal(err)
	}
	v := qav.MustParseQuery("//Trials//Trial")
	m := qav.ShipView(v, d)
	if len(m.Forest) != 3 {
		t.Fatalf("shipped %d trees, want 3", len(m.Forest))
	}
	var buf strings.Builder
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := qav.ReadShippedView(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	q := qav.MustParseQuery("//Trials[//Status]//Trial/Patient")
	res, err := qav.RewriteWithOptions(q, m2.Expr, qav.Options{MaxEmbeddings: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := m2.Answer(context.Background(), res.CRs)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Text != "John Doe" {
		t.Fatalf("mediated answers = %v", answers)
	}
}

func TestPublicAPIIndex(t *testing.T) {
	d, err := qav.ParseDocumentString(trialsXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := qav.BuildIndex(d)
	got, err := ix.Evaluate(context.Background(), qav.MustParseQuery("//Trials//Trial"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("indexed evaluation found %d, want 3", len(got))
	}
	if ix.Cardinality("Patient") != 3 {
		t.Error("cardinality wrong")
	}
	if ix.Doc() != d {
		t.Error("Doc() lost the document")
	}
}

func TestPublicAPIRecursiveSchema(t *testing.T) {
	s := qav.MustParseSchema("root a\na -> b*\nb -> b* c? d?\nc ->\nd ->")
	rw := qav.NewSchemaRewriter(s)
	q := qav.MustParseQuery("//a//b[c]")
	v := qav.MustParseQuery("//a//b")
	res, err := rw.RewriteRecursive(q, v, qav.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Union.Empty() {
		t.Fatal("recursive MCR empty")
	}
	if _, err := rw.Rewrite(q, v); err == nil {
		t.Error("Rewrite must refuse recursive schemas")
	}
}

func TestPublicAPIWildcardRejectedInRewrite(t *testing.T) {
	if _, err := qav.Rewrite(qav.MustParseQuery("//a[*]"), qav.MustParseQuery("//a")); err == nil {
		t.Error("wildcard query accepted by Rewrite")
	}
	if qav.Answerable(qav.MustParseQuery("//a[*]"), qav.MustParseQuery("//a")) {
		t.Error("wildcard query reported answerable")
	}
	// But evaluation works: children of the two Trials groups are the
	// two lifted type attributes plus the three Trial elements.
	d, _ := qav.ParseDocumentString(trialsXML)
	got := qav.MustParseQuery("//Trials/*").Evaluate(d)
	if len(got) != 5 {
		t.Errorf("wildcard children = %d, want 5", len(got))
	}
}

func TestPublicAPIParseDocumentReader(t *testing.T) {
	d, err := qav.ParseDocument(strings.NewReader("<a><b/></a>"))
	if err != nil || d.Size() != 2 {
		t.Fatalf("ParseDocument: %v", err)
	}
	if _, err := qav.ParseQuery("///"); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := qav.ParseSchema("nonsense"); err == nil {
		t.Error("bad schema accepted")
	}
}

func TestPublicAPIMinimizeComposeCounterexample(t *testing.T) {
	m := qav.Minimize(qav.MustParseQuery("//a[b][b][//b]"))
	if !qav.Equivalent(m, qav.MustParseQuery("//a[b]")) {
		t.Errorf("Minimize = %s", m)
	}
	r, err := qav.Compose(qav.MustParseQuery("//Trial[//Status]"), qav.MustParseQuery("//Trials//Trial"))
	if err != nil || !qav.Equivalent(r, qav.MustParseQuery("//Trials//Trial[//Status]")) {
		t.Errorf("Compose = %v (%v)", r, err)
	}
	d, w, ok := qav.Counterexample(qav.MustParseQuery("//a//b"), qav.MustParseQuery("//a/b"))
	if !ok || d == nil || w == nil {
		t.Fatal("no counterexample for //a//b vs //a/b")
	}
	if _, _, ok := qav.Counterexample(qav.MustParseQuery("/a"), qav.MustParseQuery("//a")); ok {
		t.Error("counterexample for a valid containment")
	}
}

func TestPublicAPIEquivalentRewriting(t *testing.T) {
	cr, ok, err := qav.EquivalentRewriting(qav.MustParseQuery("//a[b]"), qav.MustParseQuery("//a"), qav.Options{})
	if err != nil || !ok {
		t.Fatalf("expected equivalent rewriting (%v)", err)
	}
	if !qav.Equivalent(cr.Rewriting, qav.MustParseQuery("//a[b]")) {
		t.Errorf("rewriting = %s", cr.Rewriting)
	}
	s := qav.MustParseSchema(auctionSchema)
	rw := qav.NewSchemaRewriter(s)
	if _, ok, _ := rw.EquivalentRewriting(
		qav.MustParseQuery("//Auction[//item]//name"),
		qav.MustParseQuery("//Auction//person"), qav.Options{}); ok {
		t.Error("Fig 2 rewriting must be contained, not equivalent")
	}
}
