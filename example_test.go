package qav_test

import (
	"context"
	"fmt"
	"strings"

	"qav"
)

// The paper's running example: rewrite a query against a materialized
// view and answer it from the view alone.
func Example() {
	q := qav.MustParseQuery("//Trials[//Status]//Trial")
	v := qav.MustParseQuery("//Trials//Trial")

	fmt.Println("answerable:", qav.Answerable(q, v))
	res, _ := qav.Rewrite(q, v)
	fmt.Println("first CR:", res.CRs[0].Rewriting)
	fmt.Println("compensation:", res.CRs[0].Compensation)
	// Output:
	// answerable: true
	// first CR: //Trials//Trial[//Status]
	// compensation: //Trial[//Status]
}

// Containment of tree patterns is decided by homomorphism.
func ExampleContained() {
	fmt.Println(qav.Contained(qav.MustParseQuery("//a/b"), qav.MustParseQuery("//a//b")))
	fmt.Println(qav.Contained(qav.MustParseQuery("//a//b"), qav.MustParseQuery("//a/b")))
	// Output:
	// true
	// false
}

// With a schema, constraints license rewritings that plain containment
// rejects (the paper's Figure 2).
func ExampleSchemaRewriter_Rewrite() {
	s := qav.MustParseSchema(`
root Auctions
Auctions -> Auction*
Auction  -> open_auction* closed_auction?
open_auction -> item bids?
closed_auction -> item person? buyer?
bids  -> person+
buyer -> person
person -> name
item  -> name
`)
	rw := qav.NewSchemaRewriter(s)
	q := qav.MustParseQuery("//Auction[//item]//name")
	v := qav.MustParseQuery("//Auction//person")
	res, _ := rw.Rewrite(q, v)
	fmt.Println(res.Union)
	// Output:
	// //Auction//person//name
}

// AnswerUsingView never evaluates the query itself: the view is
// materialized once and the compensations run over the view forest.
func ExampleAnswerUsingView() {
	d, _ := qav.ParseDocumentString(`<PharmaLab><Trials>
	  <Trial><Patient>John</Patient><Status/></Trial>
	  <Trial><Patient>Jen</Patient></Trial>
	</Trials></PharmaLab>`)
	q := qav.MustParseQuery("//Trials[//Status]//Trial/Patient")
	v := qav.MustParseQuery("//Trials//Trial")
	res, _ := qav.Rewrite(q, v)
	answers, _ := qav.AnswerUsingView(context.Background(), res.CRs, v, d)
	for _, n := range answers {
		fmt.Println(n.Path(), n.Text)
	}
	// Output:
	// /PharmaLab/Trials/Trial/Patient John
}

// Streaming evaluation scans an XML byte stream in one pass.
func ExampleEvaluateStream() {
	src := `<log><entry level="error"><msg>boom</msg></entry><entry level="info"><msg>ok</msg></entry></log>`
	q := qav.MustParseQuery("//entry[level]/msg")
	answers, _ := qav.EvaluateStream(context.Background(), strings.NewReader(src), q)
	for _, a := range answers {
		fmt.Println(a.Path, a.Text)
	}
	// Output:
	// /log/entry/msg boom
	// /log/entry/msg ok
}
